//! Differential properties for the sharded control plane (DESIGN.md
//! §17): whatever the shard count, the service must deliver the same
//! *outcomes* — and a fixed shard count must be exactly as deterministic
//! as the single-instance service it replaced.
//!
//! Three tiers, weakest guarantee last:
//!
//! 1. **Fault-free equivalence.** Scheduling differs across shard counts
//!    (each shard rounds over its own clients; cross-shard facts travel
//!    via barrier exchanges), so timings diverge — but the *outcome* may
//!    not: per-copy fault codes, destination bytes, task totals,
//!    and pin balance at N shards must equal the 1-shard reference.
//! 2. **Faulty invariants.** Under chaos (DMA transients/hard faults/
//!    timeouts, stale ATC, silent flips with full verification) and
//!    crash/restart schedules, fault placement legitimately differs
//!    across shard counts — the draw order follows the dispatch order.
//!    What must still hold at any shard count: no copy reports success
//!    over wrong bytes, nothing stays pinned, the pending index stays
//!    consistent, recovery completes exactly once.
//! 3. **Determinism.** Same seed + same shard count ⇒ bit-identical
//!    everything (virtual end time, full stats vector, per-shard
//!    counters), including under chaos and crash — and a recorded
//!    4-shard run replays with zero divergence.
//!
//! Reproduce failures with the printed `TESTKIT_REPRO=<seed>` line.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use copier::client::AmemcpyOpts;
use copier::core::{
    stats_to_vec, CopierConfig, CopyFault, Handler, JournalStore, PollMode, SegDescriptor,
};
use copier::mem::Prot;
use copier::os::Os;
use copier::sim::{FaultConfig, FaultPlan, Machine, Nanos, Sim, Tracer};
use copier_testkit::prop::{check_with, Config, PropResult};
use copier_testkit::{assert_no_pinned_leaks, prop_assert, prop_assert_eq, TestRng};

/// One multi-tenant scenario, identical across every shard count it is
/// run at — only `shards` varies between differential runs.
#[derive(Debug, Clone)]
struct DiffCase {
    seed: u64,
    tenants: usize,
    /// Copies submitted per tenant.
    ncopies: usize,
    len: usize,
    faults: Option<FaultConfig>,
}

fn gen_base(rng: &mut TestRng) -> DiffCase {
    DiffCase {
        seed: rng.next_u64(),
        tenants: rng.range_usize(2, 6),
        ncopies: rng.range_usize(2, 5),
        len: rng.range_usize(2, 12) * 4 * 1024 + rng.range_usize(0, 3) * 512,
        faults: None,
    }
}

/// Chaos envelope: execution faults plus silent corruption (the service
/// runs with `VerifyPolicy::Full` whenever flips are armed, so a flip is
/// either repaired or surfaced — never silent).
fn gen_chaos(rng: &mut TestRng) -> DiffCase {
    let mut case = gen_base(rng);
    case.faults = Some(FaultConfig {
        seed: case.seed ^ 0xFA17,
        dma_transient_prob: rng.gen_f64() * 0.3,
        dma_hard_prob: if rng.gen_bool(0.3) {
            rng.gen_f64() * 0.1
        } else {
            0.0
        },
        dma_timeout_prob: if rng.gen_bool(0.3) {
            rng.gen_f64() * 0.15
        } else {
            0.0
        },
        atc_stale_prob: rng.gen_f64() * 0.4,
        dma_flip_prob: if rng.gen_bool(0.5) {
            rng.gen_f64() * 0.2
        } else {
            0.0
        },
        ..Default::default()
    });
    case
}

/// Deterministic per-(tenant, copy) source pattern.
fn pattern(tenant: usize, copy: usize, seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed
        ^ (tenant as u64).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (copy as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.push((x >> 33) as u8);
    }
    v
}

fn fnv(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest = (*digest ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
}

/// What must be equal across shard counts on a fault-free run.
#[derive(Debug, PartialEq)]
struct Outcome {
    /// Per (tenant, copy) in submission order: fault + destination digest.
    per_copy: Vec<(usize, usize, Option<CopyFault>, u64)>,
    /// Copy tasks retired — structural (one per submission), unlike
    /// `syncs`, which depends on completion timing (a csync against an
    /// already-complete descriptor pushes no Sync Task) and so is only
    /// compared by the same-shard-count determinism tier.
    tasks_completed: u64,
    pinned: usize,
}

/// What must be equal between two runs of the *same* (case, shards)
/// pair: everything, to the nanosecond and the last counter.
#[derive(Debug, PartialEq)]
struct Exact {
    outcome: Outcome,
    end: u64,
    stats: Vec<u64>,
    per_shard: Vec<(u64, u64, u64)>,
    /// `None` unless a copy completed faultless with wrong bytes — the
    /// one invariant no fault schedule is allowed to break.
    phantom: Option<String>,
}

fn shard_cfg(case: &DiffCase, shards: usize) -> CopierConfig {
    let verify = case.faults.as_ref().is_some_and(|f| f.dma_flip_prob > 0.0);
    CopierConfig {
        shards,
        use_dma: case.faults.is_some(),
        dma_channels: 2,
        verify: if verify {
            copier::core::VerifyPolicy::Full
        } else {
            copier::core::VerifyPolicy::Off
        },
        polling: PollMode::Napi {
            spin_rounds: 64,
            park_timeout: Nanos(20_000),
        },
        ..Default::default()
    }
}

fn run_diff(case: &DiffCase, shards: usize) -> Exact {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, case.tenants + shards);
    let os = Os::boot(&h, machine, 8192);
    let plan = case.faults.clone().map(FaultPlan::new);
    let mut cfg = shard_cfg(case, shards);
    cfg.fault_plan = plan.clone();
    os.install_copier(
        (0..shards)
            .map(|i| os.machine.core(case.tenants + i))
            .collect(),
        cfg,
    );

    let done = Rc::new(Cell::new(0usize));
    let mut tenants = Vec::new();
    for t in 0..case.tenants {
        let proc = os.spawn_process();
        let lib = proc.lib();
        let uspace = Rc::clone(&lib.uspace);
        let mut bufs = Vec::new();
        for c in 0..case.ncopies {
            let src = uspace.mmap(case.len, Prot::RW, true).unwrap();
            let dst = uspace.mmap(case.len, Prot::RW, true).unwrap();
            uspace
                .write_bytes(src, &pattern(t, c, case.seed, case.len))
                .unwrap();
            bufs.push((src, dst));
        }
        let descrs: Rc<RefCell<Vec<Rc<SegDescriptor>>>> = Rc::new(RefCell::new(Vec::new()));
        let lib2 = Rc::clone(&lib);
        let os2 = Rc::clone(&os);
        let d2 = Rc::clone(&descrs);
        let done2 = Rc::clone(&done);
        let core = os.machine.core(t);
        let bufs2 = bufs.clone();
        let len = case.len;
        let ntenants = case.tenants;
        sim.spawn("tenant", async move {
            for &(src, dst) in &bufs2 {
                // Default quotas dwarf this workload; a rejection would
                // itself be a bug worth failing on.
                let d = lib2.amemcpy(&core, dst, src, len).await.expect("admitted");
                d2.borrow_mut().push(d);
            }
            let _ = lib2.csync_all(&core).await;
            done2.set(done2.get() + 1);
            if done2.get() == ntenants {
                os2.copier().stop();
            }
        });
        tenants.push((lib, uspace, bufs, descrs));
    }
    let end = sim.run();
    let svc = os.copier();

    let mut per_copy = Vec::new();
    let mut phantom = None;
    for (t, (lib, uspace, bufs, descrs)) in tenants.iter().enumerate() {
        for (c, d) in descrs.borrow().iter().enumerate() {
            let (_src, dst) = bufs[c];
            let mut got = vec![0u8; case.len];
            uspace.read_bytes(dst, &mut got).unwrap();
            if d.fault().is_none() && got != pattern(t, c, case.seed, case.len) {
                phantom.get_or_insert_with(|| {
                    format!(
                        "tenant {t} copy {c} clean but bytes differ (seed {})",
                        case.seed
                    )
                });
            }
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            fnv(&mut digest, &got);
            per_copy.push((t, c, d.fault(), digest));
        }
        if let Err(msg) = lib
            .client
            .sets
            .borrow()
            .iter()
            .try_for_each(|s| s.index_consistent())
        {
            panic!("pending index diverged (seed {}): {msg}", case.seed);
        }
    }
    assert_no_pinned_leaks(&os.pm);

    let s = svc.stats();
    Exact {
        outcome: Outcome {
            per_copy,
            tasks_completed: s.tasks_completed,
            pinned: os.pm.pinned_frames(),
        },
        end: end.as_nanos(),
        stats: stats_to_vec(&s),
        per_shard: (0..svc.nshards()).map(|i| svc.shard_stats(i)).collect(),
        phantom,
    }
}

fn cases(default: u32) -> Config {
    let mut cfg = Config::from_env();
    if std::env::var("TESTKIT_CASES").is_err() {
        cfg.cases = default;
    }
    cfg
}

fn no_shrink(_: &DiffCase) -> Vec<DiffCase> {
    Vec::new()
}

/// Tier 1: a fault-free workload lands the same outcome at 2, 3, and 4
/// shards as the 1-shard reference — per-copy faults, destination
/// digests, task totals, and pin balance. (128 cases × 4 shard
/// counts = 512 seeded schedules.)
#[test]
fn fault_free_sharded_outcomes_match_single_shard_reference() {
    check_with(
        &cases(128),
        gen_base,
        no_shrink,
        |case: &DiffCase| -> PropResult {
            let reference = run_diff(case, 1);
            prop_assert!(
                reference.phantom.is_none(),
                "reference run corrupt: {:?}",
                reference.phantom
            );
            prop_assert!(
                reference.outcome.per_copy.iter().all(|p| p.2.is_none()),
                "fault-free reference reported a fault"
            );
            for shards in [2usize, 3, 4] {
                let sharded = run_diff(case, shards);
                prop_assert_eq!(
                    &sharded.outcome,
                    &reference.outcome,
                    "outcome diverged at {} shards",
                    shards
                );
            }
            Ok(())
        },
    );
}

/// Tier 2 + 3 under chaos: at a random shard count, faults may land
/// elsewhere than the 1-shard run put them — but no clean copy may hold
/// wrong bytes, nothing leaks, and the run is bit-reproducible.
#[test]
fn chaos_at_n_shards_preserves_invariants_and_determinism() {
    check_with(
        &cases(96),
        |rng: &mut TestRng| (gen_chaos(rng), rng.range_usize(2, 5)),
        |_| Vec::new(),
        |(case, shards): &(DiffCase, usize)| -> PropResult {
            let a = run_diff(case, *shards);
            prop_assert!(a.phantom.is_none(), "{:?}", a.phantom);
            prop_assert_eq!(a.outcome.pinned, 0, "pins leaked");
            let b = run_diff(case, *shards);
            prop_assert_eq!(&a, &b, "same seed, same shard count, different run");
            Ok(())
        },
    );
}

/// Tier 2 + 3 under crash/restart: a journaled N-shard service crashes
/// mid-run, a supervisor reinstalls it over the same store, every tenant
/// reattaches — and recovery is exactly-once (no clean copy with wrong
/// bytes, epoch counts incarnations) and seed-deterministic.
#[test]
fn crash_restart_at_n_shards_recovers_exactly_once() {
    #[derive(Debug)]
    struct CrashRun {
        exact: Exact,
        restarts: u64,
        epoch: u64,
        /// Per (tenant, copy): final fault + handler delivery count.
        fired: Vec<(usize, usize, Option<CopyFault>, u64)>,
    }

    fn run_crash(case: &DiffCase, shards: usize) -> CrashRun {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, case.tenants + shards);
        let os = Os::boot(&h, machine, 8192);
        let store = JournalStore::new();
        let plan = case.faults.clone().map(FaultPlan::new);
        let mut cfg = shard_cfg(case, shards);
        cfg.fault_plan = plan.clone();
        cfg.journal = Some(Rc::clone(&store));
        let cores: Vec<_> = (0..shards)
            .map(|i| os.machine.core(case.tenants + i))
            .collect();
        os.install_copier(cores.clone(), cfg.clone());

        let done = Rc::new(Cell::new(0usize));
        let restarts = Rc::new(Cell::new(0u64));
        let mut tenants = Vec::new();
        for t in 0..case.tenants {
            let proc = os.spawn_process();
            let lib = proc.lib();
            let uspace = Rc::clone(&lib.uspace);
            let mut bufs = Vec::new();
            for c in 0..case.ncopies {
                let src = uspace.mmap(case.len, Prot::RW, true).unwrap();
                let dst = uspace.mmap(case.len, Prot::RW, true).unwrap();
                uspace
                    .write_bytes(src, &pattern(t, c, case.seed, case.len))
                    .unwrap();
                bufs.push((src, dst));
            }
            let counters: Vec<Rc<Cell<u64>>> =
                (0..case.ncopies).map(|_| Rc::new(Cell::new(0))).collect();
            tenants.push((
                lib,
                uspace,
                bufs,
                Rc::new(RefCell::new(Vec::new())),
                counters,
            ));
        }

        // Supervisor: reinstall over the shared journal store after a
        // crash (same shard count — the restart recipe is the config)
        // and reattach every tenant.
        {
            let os2 = Rc::clone(&os);
            let libs: Vec<_> = tenants.iter().map(|t| Rc::clone(&t.0)).collect();
            let h2 = h.clone();
            let done2 = Rc::clone(&done);
            let r2 = Rc::clone(&restarts);
            let ntenants = case.tenants;
            let score = os.machine.core(case.tenants);
            sim.spawn("supervisor", async move {
                loop {
                    if done2.get() == ntenants {
                        break;
                    }
                    if os2.copier().has_crashed() {
                        r2.set(r2.get() + 1);
                        let new_svc = os2.install_copier(cores.clone(), cfg.clone());
                        for lib in &libs {
                            lib.reattach(&score, &new_svc).await;
                        }
                    }
                    h2.sleep(Nanos(5_000)).await;
                }
            });
        }

        for (t, (lib, _uspace, bufs, descrs, counters)) in tenants.iter().enumerate() {
            let lib2 = Rc::clone(lib);
            let os2 = Rc::clone(&os);
            let h2 = h.clone();
            let d2 = Rc::clone(descrs);
            let done2 = Rc::clone(&done);
            let counters2 = counters.clone();
            let core = os.machine.core(t);
            let bufs2 = bufs.clone();
            let len = case.len;
            let ntenants = case.tenants;
            sim.spawn("tenant", async move {
                for (i, &(src, dst)) in bufs2.iter().enumerate() {
                    let c = Rc::clone(&counters2[i]);
                    let opts = AmemcpyOpts {
                        func: Some(Handler::UFunc(Rc::new(move || c.set(c.get() + 1)))),
                        ..Default::default()
                    };
                    let d = lib2
                        ._amemcpy(&core, dst, src, len, opts)
                        .await
                        .expect("admitted");
                    d2.borrow_mut().push(d);
                }
                let _ = lib2.csync_all(&core).await;
                // csync returns once the bytes are visible, but a crash
                // between landing and finalize (PreFinalize point) leaves
                // the handler — and the unpin — to the *restarted*
                // incarnation. Drain with a bounded budget so recovery
                // gets to run before teardown; a genuinely lost handler
                // leaves its counter at zero and fails exactly-once below.
                let mut spins = 0u32;
                loop {
                    let _ = lib2.post_handlers(&core).await;
                    if counters2.iter().all(|c| c.get() > 0) || spins >= 2_000 {
                        break;
                    }
                    spins += 1;
                    h2.sleep(Nanos(2_000)).await;
                }
                done2.set(done2.get() + 1);
                if done2.get() == ntenants {
                    os2.copier().stop();
                }
            });
        }
        let end = sim.run();
        let svc = os.copier();

        let mut per_copy = Vec::new();
        let mut fired = Vec::new();
        let mut phantom = None;
        for (t, (lib, uspace, bufs, descrs, counters)) in tenants.iter().enumerate() {
            for (c, d) in descrs.borrow().iter().enumerate() {
                let (_src, dst) = bufs[c];
                let mut got = vec![0u8; case.len];
                uspace.read_bytes(dst, &mut got).unwrap();
                if d.fault().is_none() && got != pattern(t, c, case.seed, case.len) {
                    phantom.get_or_insert_with(|| {
                        format!("tenant {t} copy {c} clean but wrong after recovery")
                    });
                }
                let mut digest = 0xcbf2_9ce4_8422_2325u64;
                fnv(&mut digest, &got);
                per_copy.push((t, c, d.fault(), digest));
                fired.push((t, c, d.fault(), counters[c].get()));
            }
            assert_eq!(
                lib.client.epoch.get(),
                svc.epoch(),
                "client epoch not restamped after restart"
            );
        }
        // A pin leak is reported through the property (which prints the
        // repro seed); the leaked spaces must outlive the check or their
        // teardown aborts the process inside PhysMem's free assert.
        if os.pm.pinned_frames() != 0 {
            std::mem::forget(tenants.clone());
            std::mem::forget(Rc::clone(&os));
        }
        let s = svc.stats();
        CrashRun {
            exact: Exact {
                outcome: Outcome {
                    per_copy,
                    tasks_completed: s.tasks_completed,
                    pinned: os.pm.pinned_frames(),
                },
                end: end.as_nanos(),
                stats: stats_to_vec(&s),
                per_shard: (0..svc.nshards()).map(|i| svc.shard_stats(i)).collect(),
                phantom,
            },
            restarts: restarts.get(),
            epoch: svc.epoch(),
            fired,
        }
    }

    check_with(
        &cases(48),
        |rng: &mut TestRng| {
            let mut case = gen_base(rng);
            case.faults = Some(FaultConfig {
                seed: case.seed ^ 0xDEAD,
                dma_transient_prob: rng.gen_f64() * 0.2,
                crash_prob: 0.05 + rng.gen_f64() * 0.35,
                max_crashes: rng.range_usize(1, 4) as u64,
                ..Default::default()
            });
            (case, rng.range_usize(2, 5))
        },
        |_| Vec::new(),
        |(case, shards): &(DiffCase, usize)| -> PropResult {
            let a = run_crash(case, *shards);
            prop_assert!(a.exact.phantom.is_none(), "{:?}", a.exact.phantom);
            prop_assert_eq!(a.exact.outcome.pinned, 0, "pins leaked across restart");
            prop_assert_eq!(
                a.epoch,
                a.restarts + 1,
                "journal epoch must count incarnations"
            );
            for (t, c, fault, fired) in &a.fired {
                match fault {
                    // A clean copy's handler fires exactly once, however
                    // many incarnations the task lived through.
                    None => prop_assert_eq!(
                        *fired,
                        1,
                        "tenant {} copy {} clean but handler fired {}x",
                        t,
                        c,
                        fired
                    ),
                    Some(_) => prop_assert!(
                        *fired <= 1,
                        "tenant {} copy {} faulted yet handler fired {}x",
                        t,
                        c,
                        fired
                    ),
                }
            }
            let b = run_crash(case, *shards);
            prop_assert_eq!(&a.exact, &b.exact, "crash schedule not reproducible");
            prop_assert_eq!(a.restarts, b.restarts);
            Ok(())
        },
    );
}

/// Tier 3, strongest form: a 4-shard chaos run recorded to a trace
/// replays through the same build with zero divergence — the per-shard
/// lazy round hashes (pending/index/stats) all match — and lands the
/// identical outcome.
#[test]
fn sharded_record_replay_is_bit_identical() {
    fn run_traced(case: &DiffCase, shards: usize, tracer: Rc<Tracer>) -> Exact {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, case.tenants + shards);
        let os = Os::boot(&h, machine, 8192);
        let plan = case.faults.clone().map(FaultPlan::new);
        if let Some(p) = &plan {
            p.set_tracer(&tracer);
        }
        let mut cfg = shard_cfg(case, shards);
        cfg.fault_plan = plan;
        cfg.tracer = Some(Rc::clone(&tracer));
        os.install_copier(
            (0..shards)
                .map(|i| os.machine.core(case.tenants + i))
                .collect(),
            cfg,
        );
        let done = Rc::new(Cell::new(0usize));
        let mut tenants = Vec::new();
        for t in 0..case.tenants {
            let proc = os.spawn_process();
            let lib = proc.lib();
            let uspace = Rc::clone(&lib.uspace);
            let mut bufs = Vec::new();
            for c in 0..case.ncopies {
                let src = uspace.mmap(case.len, Prot::RW, true).unwrap();
                let dst = uspace.mmap(case.len, Prot::RW, true).unwrap();
                uspace
                    .write_bytes(src, &pattern(t, c, case.seed, case.len))
                    .unwrap();
                bufs.push((src, dst));
            }
            let descrs: Rc<RefCell<Vec<Rc<SegDescriptor>>>> = Rc::new(RefCell::new(Vec::new()));
            let lib2 = Rc::clone(&lib);
            let os2 = Rc::clone(&os);
            let d2 = Rc::clone(&descrs);
            let done2 = Rc::clone(&done);
            let core = os.machine.core(t);
            let bufs2 = bufs.clone();
            let len = case.len;
            let ntenants = case.tenants;
            sim.spawn("tenant", async move {
                for &(src, dst) in &bufs2 {
                    let d = lib2.amemcpy(&core, dst, src, len).await.expect("admitted");
                    d2.borrow_mut().push(d);
                }
                let _ = lib2.csync_all(&core).await;
                done2.set(done2.get() + 1);
                if done2.get() == ntenants {
                    os2.copier().stop();
                }
            });
            tenants.push((lib, uspace, bufs, descrs));
        }
        let end = sim.run();
        let svc = os.copier();
        let mut per_copy = Vec::new();
        for (t, (_lib, uspace, bufs, descrs)) in tenants.iter().enumerate() {
            for (c, d) in descrs.borrow().iter().enumerate() {
                let (_src, dst) = bufs[c];
                let mut got = vec![0u8; case.len];
                uspace.read_bytes(dst, &mut got).unwrap();
                let mut digest = 0xcbf2_9ce4_8422_2325u64;
                fnv(&mut digest, &got);
                per_copy.push((t, c, d.fault(), digest));
            }
        }
        let s = svc.stats();
        Exact {
            outcome: Outcome {
                per_copy,
                tasks_completed: s.tasks_completed,
                pinned: os.pm.pinned_frames(),
            },
            end: end.as_nanos(),
            stats: stats_to_vec(&s),
            per_shard: (0..svc.nshards()).map(|i| svc.shard_stats(i)).collect(),
            phantom: None,
        }
    }

    check_with(
        &cases(8),
        gen_chaos,
        no_shrink,
        |case: &DiffCase| -> PropResult {
            let rec = Tracer::record();
            let recorded = run_traced(case, 4, Rc::clone(&rec));
            let rep = Tracer::replay(rec.finish());
            let replayed = run_traced(case, 4, Rc::clone(&rep));
            prop_assert!(
                rep.divergence().is_none(),
                "replay diverged: {:?}",
                rep.divergence()
            );
            prop_assert_eq!(&recorded, &replayed, "replay landed a different outcome");
            Ok(())
        },
    );
}

/// The space-id hash must actually spread tenants: eight consecutive
/// space ids land on at least three of four shards. (A degenerate hash
/// would silently turn every "sharded" run above into a 1-shard run.)
#[test]
fn space_hash_spreads_tenants_across_shards() {
    let case = DiffCase {
        seed: 7,
        tenants: 8,
        ncopies: 1,
        len: 4096,
        faults: None,
    };
    let exact = run_diff(&case, 4);
    let busy = exact.per_shard.iter().filter(|p| p.1 > 0).count();
    assert!(
        busy >= 3,
        "8 tenants hashed onto only {busy} of 4 shards: {:?}",
        exact.per_shard
    );
}
