//! Crash–restart recovery suite (DESIGN.md §15).
//!
//! Every run drives real client traffic through a journaled Copier whose
//! scheduling loop is interposed by seeded crash injection: the service
//! dies at one of the four [`CrashPoint`]s (mid-drain, mid-dispatch,
//! pre-finalize, mid-journal-flush with a torn final record), a
//! supervisor task installs a fresh incarnation over the same
//! [`JournalStore`], and the library re-attaches the surviving client.
//! The properties assert the recovery contract:
//!
//! 1. **exactly-once** — after any number of crash–restart cycles every
//!    admitted task settles exactly once: handler fired once, credit
//!    returned once, destination bytes correct — or it is poisoned with
//!    a typed fault; never both, never twice, never neither;
//! 2. **no leaks** — pins, credits, and the address index reconcile
//!    after recovery exactly as after a crash-free run;
//! 3. **journal transparency** — a crash-free journaled run is
//!    byte-identical (virtual end time, stats, memory digest) to the
//!    same run without a journal;
//! 4. **torn detection** — a destination that matches neither the
//!    journaled pre-copy digest nor the source digest is poisoned
//!    [`CopyFault::Torn`] at adoption and walls off dependents until
//!    fully overwritten;
//! 5. **reproducibility** — a recorded crashed run replays
//!    byte-identically from its `.cptr` trace (crash draws included).
//!
//! Reproduce any failure with the `TESTKIT_REPRO=<case seed>` line the
//! runner prints, e.g. `TESTKIT_REPRO=1234567 cargo test -q --test crash`.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use copier::client::{AmemcpyOpts, CopierHandle};
use copier::core::{
    AdmitRec, Copier, CopierConfig, CopyFault, Handler, Journal, JournalStore, SegDescriptor,
};
use copier::mem::{Prot, PAGE_SIZE};
use copier::os::Os;
use copier::sim::{
    FaultConfig, FaultLog, FaultPlan, Machine, Nanos, Sim, Trace, TraceEvent, Tracer,
};
use copier_testkit::prop::{check_with, Config};
use copier_testkit::{assert_no_pinned_leaks, prop_assert, prop_assert_eq, TestRng};

/// One randomized crash schedule.
///
/// Copy lengths are whole pages: the journal's torn-destination check
/// samples extents with page-boundary-relative chunks, so src and dst
/// must share their page offset for the digest comparison to be
/// meaningful (both are mmapped page-aligned here).
#[derive(Debug, Clone)]
struct CrashCase {
    seed: u64,
    ncopies: usize,
    pages: usize,
    crash_prob: f64,
    max_crashes: u64,
    use_dma: bool,
    transient: f64,
}

fn gen_case(rng: &mut TestRng) -> CrashCase {
    CrashCase {
        seed: rng.next_u64(),
        ncopies: rng.range_usize(2, 5),
        pages: rng.range_usize(1, 5),
        crash_prob: 0.05 + rng.gen_f64() * 0.45,
        max_crashes: 1 + rng.range_usize(0, 3) as u64,
        use_dma: rng.gen_bool(0.5),
        transient: if rng.gen_bool(0.3) {
            rng.gen_f64() * 0.3
        } else {
            0.0
        },
    }
}

/// Deterministic per-copy source pattern (independent of the sim).
fn pattern(copy: usize, seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed ^ (copy as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.push((x >> 33) as u8 | 1); // never zero: distinguishable from fresh pages
    }
    v
}

/// Everything a crashed run produces that must be reproducible from the
/// seed (and from a recorded trace).
#[derive(Debug, PartialEq)]
struct CrashOutcome {
    end: u64,
    /// Final incarnation's stats (see `stats_key`).
    stats: Vec<u64>,
    log: FaultLog,
    /// Per copy: final fault, all-segments-ready, handler fire count.
    per_copy: Vec<(Option<CopyFault>, bool, u64)>,
    /// Copies with no fault whose destination bytes differ from the
    /// source pattern (must be empty).
    wrong_bytes: Vec<usize>,
    /// FNV fold over every destination buffer's final bytes.
    digest: u64,
    /// Supervisor restarts performed.
    restarts: u64,
    /// Final incarnation's journal epoch.
    epoch: u64,
    /// (credits, credit_cap) at teardown.
    credits: (u64, u64),
    pinned: usize,
    /// Journal store size at teardown (durable bytes).
    store_len: usize,
}

fn stats_key(svc: &Rc<Copier>) -> Vec<u64> {
    let s = svc.stats();
    vec![
        s.tasks_completed,
        s.bytes_copied,
        s.bytes_absorbed,
        s.bytes_deferred_executed,
        s.syncs,
        s.promotions,
        s.aborts,
        s.faults,
        s.proactive_faults,
        s.retries,
        s.fallback_bytes,
        s.quarantined_channels,
        s.orphans_reclaimed,
        s.dependents_aborted,
        s.dispatch.cpu_bytes as u64,
        s.dispatch.dma_bytes as u64,
        s.dispatch.dma_descriptors as u64,
        s.dispatch.dma_wait.as_nanos(),
        s.dispatch.retries,
        s.dispatch.fallback_bytes as u64,
        s.admission_rejected,
        s.shed_bytes,
        s.credits_granted,
        s.degraded_sync_copies,
        s.pressure_events,
        s.crashes,
        s.recovered_tasks,
        s.recovered_finalized,
        s.dropped_unjournaled,
        s.torn_poisoned,
    ]
}

/// Whether (and how) a crash run is traced.
enum TraceMode {
    Off,
    Record,
    Replay(Trace),
}

fn run_crash(case: &CrashCase) -> CrashOutcome {
    run_crash_traced(case, TraceMode::Off).0
}

fn run_crash_traced(case: &CrashCase, mode: TraceMode) -> (CrashOutcome, Option<Rc<Tracer>>) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 4096);
    let store = JournalStore::new();
    let plan = FaultPlan::new(FaultConfig {
        seed: case.seed,
        dma_transient_prob: case.transient,
        crash_prob: case.crash_prob,
        max_crashes: case.max_crashes,
        ..Default::default()
    });
    let tracer = match mode {
        TraceMode::Off => None,
        TraceMode::Record => Some(Tracer::record()),
        TraceMode::Replay(trace) => Some(Tracer::replay(trace)),
    };
    if let Some(t) = &tracer {
        t.emit(TraceEvent::Meta {
            key: 1,
            val: case.seed,
        });
        plan.set_tracer(t);
    }
    // The config is the restart recipe: the supervisor reinstalls with a
    // clone, so every incarnation shares the store, plan, and tracer.
    let cfg = CopierConfig {
        use_dma: case.use_dma,
        dma_channels: 2,
        journal: Some(Rc::clone(&store)),
        fault_plan: Some(Rc::clone(&plan)),
        tracer: tracer.clone(),
        ..Default::default()
    };
    os.install_copier(vec![os.machine.core(1)], cfg.clone());
    let proc = os.spawn_process();
    let lib: Rc<CopierHandle> = proc.lib();
    let uspace = Rc::clone(&lib.uspace);

    let len = case.pages * PAGE_SIZE;
    let mut bufs = Vec::new();
    for i in 0..case.ncopies {
        let src = uspace.mmap(len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(len, Prot::RW, true).unwrap();
        uspace
            .write_bytes(src, &pattern(i, case.seed, len))
            .unwrap();
        bufs.push((src, dst));
    }

    let done = Rc::new(Cell::new(false));
    let restarts = Rc::new(Cell::new(0u64));

    // Supervisor: polls for a dead incarnation, reinstalls the service
    // over the shared journal store, and re-attaches the client. Runs on
    // the service core, which is idle exactly while the service is down.
    {
        let os2 = Rc::clone(&os);
        let lib2 = Rc::clone(&lib);
        let cfg2 = cfg.clone();
        let h2 = h.clone();
        let done2 = Rc::clone(&done);
        let r2 = Rc::clone(&restarts);
        sim.spawn("supervisor", async move {
            let score = os2.machine.core(1);
            loop {
                if done2.get() {
                    break;
                }
                if os2.copier().has_crashed() {
                    r2.set(r2.get() + 1);
                    let new_svc = os2.install_copier(vec![Rc::clone(&score)], cfg2.clone());
                    lib2.reattach(&score, &new_svc).await;
                }
                h2.sleep(Nanos(5_000)).await;
            }
        });
    }

    let counters: Vec<Rc<Cell<u64>>> = (0..case.ncopies).map(|_| Rc::new(Cell::new(0))).collect();
    let descrs: Rc<RefCell<Vec<Rc<SegDescriptor>>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let d2 = Rc::clone(&descrs);
        let lib2 = Rc::clone(&lib);
        let os2 = Rc::clone(&os);
        let h2 = h.clone();
        let done2 = Rc::clone(&done);
        let counters2 = counters.clone();
        let core = os.machine.core(0);
        let bufs2 = bufs.clone();
        sim.spawn("client", async move {
            for (i, &(src, dst)) in bufs2.iter().enumerate() {
                let c = Rc::clone(&counters2[i]);
                let opts = AmemcpyOpts {
                    func: Some(Handler::UFunc(Rc::new(move || c.set(c.get() + 1)))),
                    ..Default::default()
                };
                // Default quotas are far above this workload; a rejection
                // here would itself be a bug.
                let d = lib2
                    ._amemcpy(&core, dst, src, len, opts)
                    .await
                    .expect("admitted");
                d2.borrow_mut().push(d);
            }
            let _ = lib2.csync_all(&core).await;
            // Handlers for the last finalized batch may still be a round
            // away (finalize can trail the final segment mark by one
            // completion scan — possibly under a restarted incarnation).
            // Drain with a bounded budget; a genuinely lost handler
            // leaves its counter at zero and fails the property below.
            let mut spins = 0u32;
            loop {
                let _ = lib2.post_handlers(&core).await;
                let missing = counters2.iter().any(|c| c.get() == 0);
                if !missing || spins >= 2_000 {
                    break;
                }
                spins += 1;
                h2.sleep(Nanos(2_000)).await;
            }
            done2.set(true);
            os2.copier().stop();
        });
    }
    let end = sim.run();
    let svc = os.copier();

    let mut per_copy = Vec::new();
    let mut wrong_bytes = Vec::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for (i, d) in descrs.borrow().iter().enumerate() {
        let expected = pattern(i, case.seed, len);
        let (_src, dst) = bufs[i];
        let mut got = vec![0u8; len];
        uspace.read_bytes(dst, &mut got).unwrap();
        if d.fault().is_none() && got != expected {
            wrong_bytes.push(i);
        }
        for &b in &got {
            digest = (digest ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        per_copy.push((d.fault(), d.all_ready(), counters[i].get()));
    }

    // Teardown invariants for every crash run, regardless of which
    // property the caller asserts on: recovery must leave nothing pinned
    // and the address index must still mirror each set's window.
    assert_no_pinned_leaks(&os.pm);
    for set in lib.client.sets.borrow().iter() {
        if let Err(msg) = set.index_consistent() {
            panic!(
                "pending index diverged after crash run (seed {}): {msg}",
                case.seed
            );
        }
    }

    (
        CrashOutcome {
            end: end.as_nanos(),
            stats: stats_key(&svc),
            log: plan.log(),
            per_copy,
            wrong_bytes,
            digest,
            restarts: restarts.get(),
            epoch: svc.epoch(),
            credits: (lib.client.credits.get(), lib.client.credit_cap.get()),
            pinned: os.pm.pinned_frames(),
            store_len: store.len(),
        },
        tracer,
    )
}

/// Per-case exactly-once checks shared by the property and the replay
/// acceptance test.
fn assert_exactly_once(case: &CrashCase, out: &CrashOutcome) -> Result<(), String> {
    for (i, (fault, ready, fired)) in out.per_copy.iter().enumerate() {
        match fault {
            None => {
                prop_assert!(*ready, "copy {i} has no fault but unfinished segments");
                prop_assert_eq!(
                    *fired,
                    1u64,
                    "copy {i} handler fired {fired} times (seed {})",
                    case.seed
                );
            }
            Some(f) => {
                // A poisoned task settles without a duplicate delivery;
                // its handler runs at most once (through the same claim).
                prop_assert!(
                    *fired <= 1,
                    "faulted copy {i} ({f:?}) delivered {fired} times"
                );
            }
        }
    }
    prop_assert!(
        out.wrong_bytes.is_empty(),
        "fault-free copies with wrong destination bytes: {:?} (seed {})",
        out.wrong_bytes,
        case.seed
    );
    prop_assert_eq!(
        out.credits.0,
        out.credits.1,
        "credits not fully returned (seed {})",
        case.seed
    );
    prop_assert_eq!(out.pinned, 0, "leaked pins (seed {})", case.seed);
    // Every fired crash is answered by a restart, except one that lands
    // after the client finished (the supervisor sees `done` first).
    prop_assert!(
        out.restarts == out.log.crashes || out.restarts + 1 == out.log.crashes,
        "restarts {} vs crashes {} (seed {})",
        out.restarts,
        out.log.crashes,
        case.seed
    );
    // Each incarnation bumps the journal epoch exactly once.
    prop_assert_eq!(
        out.epoch,
        out.restarts + 1,
        "epoch does not match incarnation count (seed {})",
        case.seed
    );
    Ok(())
}

/// Tentpole property: across ≥500 seeded crash schedules, every admitted
/// task completes exactly once — handler fired once, credit returned,
/// bytes correct — or is poisoned with a typed fault; no pin leaks, no
/// duplicate deliveries, and the journal epoch tracks incarnations.
#[test]
fn crash_recovery_completes_exactly_once() {
    let mut c = Config::from_env();
    if std::env::var("TESTKIT_CASES").is_err() {
        c.cases = 500;
    }
    let total_crashes = Rc::new(Cell::new(0u64));
    let tc = Rc::clone(&total_crashes);
    check_with(
        &c,
        gen_case,
        |_| Vec::new(),
        move |case: &CrashCase| {
            let out = run_crash(case);
            tc.set(tc.get() + out.log.crashes);
            assert_exactly_once(case, &out)
        },
    );
    // The schedule space must actually have crashed the service, or the
    // whole property is vacuous.
    assert!(
        total_crashes.get() > 0,
        "no crashes fired across the schedule space"
    );
}

/// Journal transparency: the same crash-free workload, with and without
/// a journal, is byte-identical — same virtual end time, same stats,
/// same destination memory. Journaling writes are host-side only and
/// must not perturb the simulated timeline.
#[test]
fn crash_free_journaled_run_is_byte_identical() {
    fn quiet_run(seed: u64, journal: bool) -> (u64, Vec<u64>, u64, usize) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let os = Os::boot(&h, machine, 4096);
        let plan = FaultPlan::new(FaultConfig {
            seed,
            dma_transient_prob: 0.3,
            dma_timeout_prob: 0.1,
            atc_stale_prob: 0.3,
            ..Default::default()
        });
        let store = JournalStore::new();
        let svc = os.install_copier(
            vec![os.machine.core(1)],
            CopierConfig {
                use_dma: true,
                dma_channels: 2,
                journal: journal.then(|| Rc::clone(&store)),
                fault_plan: Some(Rc::clone(&plan)),
                ..Default::default()
            },
        );
        let proc = os.spawn_process();
        let lib = proc.lib();
        let uspace = Rc::clone(&lib.uspace);
        let len = 16 * PAGE_SIZE;
        let mut bufs = Vec::new();
        for i in 0..4usize {
            let src = uspace.mmap(len, Prot::RW, true).unwrap();
            let dst = uspace.mmap(len, Prot::RW, true).unwrap();
            uspace.write_bytes(src, &pattern(i, seed, len)).unwrap();
            bufs.push((src, dst));
        }
        let lib2 = Rc::clone(&lib);
        let svc2 = Rc::clone(&svc);
        let core = os.machine.core(0);
        let bufs2 = bufs.clone();
        sim.spawn("client", async move {
            for &(src, dst) in &bufs2 {
                let _ = lib2.amemcpy(&core, dst, src, len).await;
            }
            let _ = lib2.csync_all(&core).await;
            svc2.stop();
        });
        let end = sim.run();
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut got = vec![0u8; len];
        for &(_src, dst) in &bufs {
            uspace.read_bytes(dst, &mut got).unwrap();
            for &b in &got {
                digest = (digest ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
        (end.as_nanos(), stats_key(&svc), digest, store.len())
    }

    for seed in [0xC0DE_0001u64, 0xC0DE_0002, 0xC0DE_0003] {
        let (end_j, stats_j, digest_j, store_j) = quiet_run(seed, true);
        let (end_p, stats_p, digest_p, store_p) = quiet_run(seed, false);
        assert_eq!(
            end_j, end_p,
            "seed {seed:#x}: journaling moved virtual time"
        );
        assert_eq!(stats_j, stats_p, "seed {seed:#x}: journaling changed stats");
        assert_eq!(
            digest_j, digest_p,
            "seed {seed:#x}: journaling changed memory"
        );
        assert!(store_j > 0, "journaled run wrote nothing durable");
        assert_eq!(store_p, 0, "journal-free run wrote a journal");
    }
}

/// Torn-destination reconciliation: a journaled-live task absent from
/// every window (its Complete record died with the old incarnation)
/// whose destination matches neither the pre-copy digest nor the source
/// digest is poisoned [`CopyFault::Torn`] at adoption. The taint walls
/// off dependent reads until the range is fully overwritten.
#[test]
fn torn_destination_is_poisoned_at_recovery() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 4096);

    // Incarnation 1 runs journal-free: the store is hand-built below to
    // stage exactly the crash shape this test needs (a finalized entry
    // whose Complete record was lost).
    let svc1 = os.install_copier(vec![os.machine.core(1)], CopierConfig::default());
    let proc = os.spawn_process();
    let lib: Rc<CopierHandle> = proc.lib();
    let uspace = Rc::clone(&lib.uspace);
    let len = 2 * PAGE_SIZE;
    let src = uspace.mmap(len, Prot::RW, true).unwrap();
    let dst = uspace.mmap(len, Prot::RW, true).unwrap();
    let spare = uspace.mmap(len, Prot::RW, true).unwrap();
    uspace.write_bytes(src, &pattern(0, 0x70AD, len)).unwrap();

    // The dead incarnation's journal: one admitted copy src→dst with
    // digests sampled at admission time (dst untouched).
    let store = JournalStore::new();
    {
        let (j, recovered) = Journal::attach(&store);
        assert_eq!(recovered.records, 0, "fresh store must be empty");
        j.record_admit(AdmitRec {
            tid: 1,
            client: lib.client.id,
            set_idx: 0,
            key: (u64::MAX, 1, 1),
            dst_space: uspace.id(),
            dst: dst.0,
            src_space: uspace.id(),
            src: src.0,
            len: len as u64,
            seg: PAGE_SIZE as u64,
            dst_digest: uspace.extent_digest(dst, len),
            src_digest: uspace.extent_digest(src, len),
        });
        j.flush();
        assert!(store.len() > 0, "staged admit must reach the store");
    }
    // The torn write: the crash left only half the head page copied, so
    // the extent digest now matches neither journaled side.
    uspace.write_bytes(dst, &vec![0xAB; PAGE_SIZE / 2]).unwrap();

    svc1.stop();
    let svc2 = os.install_copier(
        vec![os.machine.core(1)],
        CopierConfig {
            journal: Some(Rc::clone(&store)),
            ..Default::default()
        },
    );
    let lib2 = Rc::clone(&lib);
    let svc3 = Rc::clone(&svc2);
    let core = os.machine.core(0);
    sim.spawn("client", async move {
        let resubmitted = lib2.reattach(&core, &svc3).await;
        assert_eq!(resubmitted, 0, "no window entries existed to drop");
        assert_eq!(
            svc3.stats().torn_poisoned,
            1,
            "torn destination not detected at adoption"
        );
        assert_eq!(
            lib2.client.epoch.get(),
            svc3.epoch(),
            "client epoch not restamped"
        );

        // A dependent read from the torn range is walled off (§4.4).
        let d = lib2
            .amemcpy(&core, spare, dst, len)
            .await
            .expect("admitted");
        let _ = lib2.csync_all(&core).await;
        assert_eq!(
            d.fault(),
            Some(CopyFault::Torn),
            "dependent of a torn range must inherit the Torn poison"
        );

        // A full overwrite heals the taint; reads flow again.
        let d2 = lib2.amemcpy(&core, dst, src, len).await.expect("admitted");
        let _ = lib2.csync_all(&core).await;
        assert_eq!(d2.fault(), None, "healing overwrite must complete");
        let d3 = lib2
            .amemcpy(&core, spare, dst, len)
            .await
            .expect("admitted");
        let _ = lib2.csync_all(&core).await;
        assert_eq!(d3.fault(), None, "read after heal must complete");
        svc3.stop();
    });
    sim.run();

    let mut got = vec![0u8; len];
    uspace.read_bytes(spare, &mut got).unwrap();
    assert_eq!(
        got,
        pattern(0, 0x70AD, len),
        "healed bytes must flow through"
    );
    assert_no_pinned_leaks(&os.pm);
}

/// Reproducibility acceptance: a crashed run records to a `.cptr` trace
/// that (a) contains crash draws and (b) replays byte-identically —
/// same outcome, no divergence, and a re-recorded log that encodes to
/// the same bytes.
#[test]
fn crash_record_replay_identical() {
    let mut c = Config::from_env();
    if std::env::var("TESTKIT_CASES").is_err() {
        c.cases = 8; // each case runs two full crashing sims
    }
    check_with(
        &c,
        |rng| {
            let mut case = gen_case(rng);
            case.crash_prob = 0.3 + rng.gen_f64() * 0.4; // bias toward crashing
            case
        },
        |_| Vec::new(),
        |case: &CrashCase| {
            let (a, rec) = run_crash_traced(case, TraceMode::Record);
            let trace = rec.unwrap().finish();
            prop_assert!(!trace.events().is_empty(), "recorded nothing");
            let (b, rep) = run_crash_traced(case, TraceMode::Replay(trace.clone()));
            let rep = rep.unwrap();
            prop_assert!(
                rep.divergence().is_none(),
                "faithful replay diverged: {}",
                rep.divergence().unwrap()
            );
            prop_assert_eq!(a, b, "replayed outcome differs from recorded run");
            prop_assert_eq!(
                rep.finish().encode(),
                trace.encode(),
                "re-recorded trace is not byte-identical"
            );
            Ok(())
        },
    );
}

/// §4.6 availability fallback + client-side resubmission: while the
/// service is down the library copies synchronously on the caller's
/// core; at re-attach, the entry whose admission never became durable is
/// resubmitted and runs under the new incarnation — each side delivered
/// exactly once, with the journal epoch advanced.
#[test]
fn sync_fallback_and_resubmission_across_restart() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 4096);
    let store = JournalStore::new();
    // crash_prob 1.0, max_crashes 1: the first drained batch kills the
    // service at MidDrain deterministically; the restart runs clean.
    let plan = FaultPlan::new(FaultConfig {
        seed: 0x5FB0_FA11,
        crash_prob: 1.0,
        max_crashes: 1,
        ..Default::default()
    });
    let cfg = CopierConfig {
        journal: Some(Rc::clone(&store)),
        fault_plan: Some(Rc::clone(&plan)),
        ..Default::default()
    };
    os.install_copier(vec![os.machine.core(1)], cfg.clone());
    let proc = os.spawn_process();
    let lib: Rc<CopierHandle> = proc.lib();
    let uspace = Rc::clone(&lib.uspace);
    let len = 2 * PAGE_SIZE;
    let src1 = uspace.mmap(len, Prot::RW, true).unwrap();
    let dst1 = uspace.mmap(len, Prot::RW, true).unwrap();
    let src2 = uspace.mmap(len, Prot::RW, true).unwrap();
    let dst2 = uspace.mmap(len, Prot::RW, true).unwrap();
    uspace.write_bytes(src1, &pattern(1, 0x5FB0, len)).unwrap();
    uspace.write_bytes(src2, &pattern(2, 0x5FB0, len)).unwrap();

    let c1 = Rc::new(Cell::new(0u64));
    let c2 = Rc::new(Cell::new(0u64));
    let (c1b, c2b) = (Rc::clone(&c1), Rc::clone(&c2));
    let lib2 = Rc::clone(&lib);
    let os2 = Rc::clone(&os);
    let h2 = h.clone();
    let core0 = os.machine.core(0);
    let core1 = os.machine.core(1);
    sim.spawn("client", async move {
        let opts1 = AmemcpyOpts {
            func: Some(Handler::UFunc(Rc::new(move || c1b.set(c1b.get() + 1)))),
            ..Default::default()
        };
        let d1 = lib2
            ._amemcpy(&core0, dst1, src1, len, opts1)
            .await
            .expect("admitted");
        // The drain of that submission is the service's death sentence.
        while !lib2.service().has_crashed() {
            h2.sleep(Nanos(1_000)).await;
        }
        let old_epoch = lib2.service().epoch();

        // Crash window: the copy runs synchronously on this core, the
        // handler fires inline, and no credit is consumed.
        let opts2 = AmemcpyOpts {
            func: Some(Handler::UFunc(Rc::new(move || c2b.set(c2b.get() + 1)))),
            ..Default::default()
        };
        let d2 = lib2
            ._amemcpy(&core0, dst2, src2, len, opts2)
            .await
            .expect("sync fallback");
        assert_eq!(lib2.sync_fallbacks(), 1, "crash window must copy inline");
        assert!(
            d2.all_ready(),
            "sync fallback returns a completed descriptor"
        );
        assert_eq!(c2.get(), 1, "inline handler must have fired");

        // Restart: the MidDrain crash killed the admission before it
        // became durable, so adoption drops it and reattach resubmits.
        let new_svc = os2.install_copier(vec![Rc::clone(&core1)], cfg.clone());
        let resubmitted = lib2.reattach(&core0, &new_svc).await;
        assert_eq!(
            resubmitted, 1,
            "the undurable admission must be resubmitted"
        );
        assert_eq!(
            new_svc.epoch(),
            old_epoch + 1,
            "restart must advance the epoch"
        );
        assert_eq!(lib2.client.epoch.get(), new_svc.epoch());

        let _ = lib2.csync_all(&core0).await;
        let mut spins = 0u32;
        while c1.get() == 0 && spins < 2_000 {
            let _ = lib2.post_handlers(&core0).await;
            h2.sleep(Nanos(2_000)).await;
            spins += 1;
        }
        assert_eq!(d1.fault(), None, "resubmitted copy must complete");
        assert!(d1.all_ready(), "resubmitted copy must finish all segments");
        assert_eq!(c1.get(), 1, "resubmitted copy delivers exactly once");
        new_svc.stop();
    });
    sim.run();

    assert_eq!(plan.log().crashes, 1, "exactly one crash must have fired");
    let mut got = vec![0u8; len];
    uspace.read_bytes(dst1, &mut got).unwrap();
    assert_eq!(got, pattern(1, 0x5FB0, len), "resubmitted copy bytes");
    uspace.read_bytes(dst2, &mut got).unwrap();
    assert_eq!(got, pattern(2, 0x5FB0, len), "sync-fallback bytes");
    assert_eq!(
        lib.client.credits.get(),
        lib.client.credit_cap.get(),
        "credits must be fully returned (fallback takes none)"
    );
    assert_no_pinned_leaks(&os.pm);
    for set in lib.client.sets.borrow().iter() {
        set.index_consistent().expect("index consistent");
    }
}
