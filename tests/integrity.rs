//! End-to-end data integrity suite: seeded silent-corruption schedules
//! against the full service stack (DESIGN.md §16).
//!
//! Every run drives real client traffic (amemcpy/csync_all) through a
//! Copier whose DMA engine silently corrupts transfers — bit flips and
//! misdirected writes that still report success — under a seeded
//! [`FaultPlan`] oracle. The properties assert the integrity contract:
//!
//! 1. under `VerifyPolicy::Full`, no corruption is ever silent: every
//!    injected hit is either repaired before the descriptor completes or
//!    surfaced as a typed [`CopyFault::Corrupted`] poison;
//! 2. crash-free uncorrupted runs produce zero detections (no false
//!    positives) and verification charges no virtual time — `Off` and
//!    `Full` end at the identical virtual timestamp;
//! 3. completion handlers fire exactly once per submission, repaired or
//!    poisoned alike, and pins never leak;
//! 4. the same seed reproduces byte-identical outcomes, and a recorded
//!    corrupted run replays byte-identically from its `.cptr` trace.
//!
//! Reproduce any failure with the `TESTKIT_REPRO=<case seed>` line the
//! runner prints. The committed corpus under `tests/repros/` is replayed
//! by `repro_corpus_replays_identically` (the `REPRO_REPLAY` verify
//! gate); regenerate it with `REPRO_RECORD=1 cargo test -q --test
//! integrity record_repro_corpus`.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use copier::client::AmemcpyOpts;
use copier::core::{Copier, CopierConfig, CopyFault, Handler, SegDescriptor, VerifyPolicy};
use copier::mem::Prot;
use copier::os::Os;
use copier::sim::{
    FaultConfig, FaultLog, FaultPlan, Machine, Nanos, Sim, Trace, TraceEvent, Tracer,
};
use copier_testkit::prop::{check_with, Config};
use copier_testkit::{assert_no_pinned_leaks, prop_assert, prop_assert_eq, TestRng};

/// One randomized integrity scenario.
#[derive(Debug, Clone)]
struct IntegrityCase {
    seed: u64,
    channels: usize,
    ncopies: usize,
    len: usize,
    flip: f64,
    misdirect: f64,
    policy: VerifyPolicy,
}

/// Corruption-heavy case generator: both corruption classes enabled at
/// rates high enough that most schedules inject at least one hit.
fn gen_corrupt_case(rng: &mut TestRng) -> IntegrityCase {
    IntegrityCase {
        seed: rng.next_u64(),
        channels: rng.range_usize(1, 4),
        ncopies: rng.range_usize(2, 6),
        len: rng.range_usize(1, 4) * 8 * 1024 + rng.range_usize(0, 4) * 1024,
        flip: if rng.gen_bool(0.8) {
            0.05 + rng.gen_f64() * 0.6
        } else {
            0.0
        },
        misdirect: if rng.gen_bool(0.5) {
            rng.gen_f64() * 0.4
        } else {
            0.0
        },
        policy: VerifyPolicy::Full,
    }
}

/// Corruption-free variant of the same workload space.
fn gen_clean_case(rng: &mut TestRng) -> IntegrityCase {
    IntegrityCase {
        flip: 0.0,
        misdirect: 0.0,
        ..gen_corrupt_case(rng)
    }
}

/// Deterministic per-copy source pattern (independent of the sim).
fn pattern(copy: usize, seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed ^ (copy as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.push((x >> 33) as u8);
    }
    v
}

/// Everything a run produces that must be reproducible from the seed.
#[derive(Debug, PartialEq)]
struct Outcome {
    end: u64,
    stats: Vec<u64>,
    log: FaultLog,
    /// Per copy: final fault (if any) and whether the destination bytes
    /// match the source pattern exactly.
    per_copy: Vec<(Option<CopyFault>, bool)>,
    /// Handler deliveries per copy (exactly-once contract: each is 1).
    handler_fires: Vec<u32>,
    /// FNV fold over every destination buffer's final bytes.
    digest: u64,
    /// Frames still pinned after the run (must be 0).
    pinned: usize,
    /// Silent escapes: copies that completed clean but whose destination
    /// bytes differ from the source.
    escapes: Vec<String>,
}

fn stats_key(svc: &Rc<Copier>) -> Vec<u64> {
    let s = svc.stats();
    vec![
        s.tasks_completed,
        s.bytes_copied,
        s.bytes_absorbed,
        s.faults,
        s.dispatch.dma_bytes as u64,
        s.dispatch.dma_descriptors as u64,
        s.dispatch.retries,
        s.dispatch.fallback_bytes as u64,
        s.dispatch.corruptions,
        s.dispatch.repairs,
        s.corrupted_poisoned,
        s.corrupt_quarantined,
        s.quarantined_channels,
        s.credits_granted,
        s.scrub_chunks,
        s.scrub_heals,
        s.scrub_unrepairable,
    ]
}

/// Trace keys carrying the case in a recorded `.cptr` prologue, so the
/// committed repro corpus is self-describing.
mod meta {
    pub const SEED: u32 = 0x10;
    pub const CHANNELS: u32 = 0x11;
    pub const NCOPIES: u32 = 0x12;
    pub const LEN: u32 = 0x13;
    pub const FLIP: u32 = 0x14;
    pub const MISDIRECT: u32 = 0x15;
    pub const POLICY: u32 = 0x16;
}

fn policy_code(p: VerifyPolicy) -> u64 {
    match p {
        VerifyPolicy::Off => 0,
        VerifyPolicy::Sampled => 1,
        VerifyPolicy::Full => 2,
    }
}

fn case_meta(case: &IntegrityCase) -> Vec<(u32, u64)> {
    vec![
        (meta::SEED, case.seed),
        (meta::CHANNELS, case.channels as u64),
        (meta::NCOPIES, case.ncopies as u64),
        (meta::LEN, case.len as u64),
        (meta::FLIP, case.flip.to_bits()),
        (meta::MISDIRECT, case.misdirect.to_bits()),
        (meta::POLICY, policy_code(case.policy)),
    ]
}

fn case_from_trace(trace: &Trace) -> IntegrityCase {
    let get = |k: u32| trace.meta(k).expect("trace lacks a case Meta key");
    IntegrityCase {
        seed: get(meta::SEED),
        channels: get(meta::CHANNELS) as usize,
        ncopies: get(meta::NCOPIES) as usize,
        len: get(meta::LEN) as usize,
        flip: f64::from_bits(get(meta::FLIP)),
        misdirect: f64::from_bits(get(meta::MISDIRECT)),
        policy: match get(meta::POLICY) {
            0 => VerifyPolicy::Off,
            1 => VerifyPolicy::Sampled,
            _ => VerifyPolicy::Full,
        },
    }
}

enum TraceMode {
    Off,
    Record,
    Replay(Trace),
}

fn run_integrity(case: &IntegrityCase) -> Outcome {
    run_integrity_traced(case, TraceMode::Off).0
}

fn run_integrity_traced(case: &IntegrityCase, mode: TraceMode) -> (Outcome, Option<Rc<Tracer>>) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 4096);
    let plan = FaultPlan::new(FaultConfig {
        seed: case.seed,
        dma_flip_prob: case.flip,
        dma_misdirect_prob: case.misdirect,
        ..Default::default()
    });
    let tracer = match mode {
        TraceMode::Off => None,
        TraceMode::Record => Some(Tracer::record()),
        TraceMode::Replay(trace) => Some(Tracer::replay(trace)),
    };
    if let Some(t) = &tracer {
        for (key, val) in case_meta(case) {
            t.emit(TraceEvent::Meta { key, val });
        }
        plan.set_tracer(t);
    }
    let svc = os.install_copier(
        vec![os.machine.core(1)],
        CopierConfig {
            use_dma: true,
            dma_channels: case.channels,
            fault_plan: Some(Rc::clone(&plan)),
            verify: case.policy,
            tracer: tracer.clone(),
            ..Default::default()
        },
    );
    let proc = os.spawn_process();
    let lib = proc.lib();
    let uspace = Rc::clone(&lib.uspace);

    let mut bufs = Vec::new();
    let mut fires: Vec<Rc<Cell<u32>>> = Vec::new();
    for i in 0..case.ncopies {
        let src = uspace.mmap(case.len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(case.len, Prot::RW, true).unwrap();
        uspace
            .write_bytes(src, &pattern(i, case.seed, case.len))
            .unwrap();
        bufs.push((src, dst));
        fires.push(Rc::new(Cell::new(0)));
    }

    let descrs: Rc<RefCell<Vec<Rc<SegDescriptor>>>> = Rc::new(RefCell::new(Vec::new()));
    let d2 = Rc::clone(&descrs);
    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    let bufs2 = bufs.clone();
    let fires2 = fires.clone();
    let len = case.len;
    let h2 = h.clone();
    sim.spawn("client", async move {
        for (i, &(src, dst)) in bufs2.iter().enumerate() {
            let fired = Rc::clone(&fires2[i]);
            let opts = AmemcpyOpts {
                func: Some(Handler::UFunc(Rc::new(move || {
                    fired.set(fired.get() + 1);
                }))),
                ..Default::default()
            };
            let d = lib2
                ._amemcpy(&core, dst, src, len, opts)
                .await
                .expect("admitted");
            d2.borrow_mut().push(d);
        }
        let _ = lib2.csync_all(&core).await;
        // csync returns when the segments are marked; handler delivery
        // lands at finalize, up to a few rounds later (repair can extend
        // the round). Drain until every submission's handler ran — the
        // loop is virtual-time bounded and seed-deterministic.
        for _ in 0..200 {
            if fires2.iter().all(|f| f.get() > 0) {
                break;
            }
            h2.sleep(Nanos(2_000)).await;
            let _ = lib2.post_handlers(&core).await;
        }
        svc2.stop();
    });
    let end = sim.run();

    let mut escapes = Vec::new();
    let mut per_copy = Vec::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for (i, d) in descrs.borrow().iter().enumerate() {
        let expected = pattern(i, case.seed, case.len);
        let (_src, dst) = bufs[i];
        let mut got = vec![0u8; case.len];
        uspace.read_bytes(dst, &mut got).unwrap();
        let intact = got == expected;
        if d.fault().is_none() && d.all_ready() && !intact {
            escapes.push(format!(
                "copy {i} completed clean but bytes differ (seed {})",
                case.seed
            ));
        }
        for &b in &got {
            digest = (digest ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        per_copy.push((d.fault(), intact));
    }

    assert_no_pinned_leaks(&os.pm);

    (
        Outcome {
            end: end.as_nanos(),
            stats: stats_key(&svc),
            log: plan.log(),
            per_copy,
            handler_fires: fires.iter().map(|f| f.get()).collect(),
            digest,
            pinned: os.pm.pinned_frames(),
            escapes,
        },
        tracer,
    )
}

fn prop_cases(default: u32) -> Config {
    let mut c = Config::from_env();
    if std::env::var("TESTKIT_CASES").is_err() {
        c.cases = default;
    }
    c
}

/// Tentpole property: under `VerifyPolicy::Full`, silent corruption
/// never escapes. Every copy either completes with its destination bytes
/// exactly matching the source (possibly via automatic repair) or is
/// poisoned with the typed `Corrupted` fault — across hundreds of seeded
/// corruption schedules. Handlers fire exactly once and pins never leak
/// on every one of them.
#[test]
fn full_verify_detects_or_heals_every_corruption() {
    check_with(
        &prop_cases(300),
        gen_corrupt_case,
        |_| Vec::new(),
        |case: &IntegrityCase| {
            let out = run_integrity(case);
            prop_assert!(out.escapes.is_empty(), "silent escapes: {:?}", out.escapes);
            for (i, &(fault, intact)) in out.per_copy.iter().enumerate() {
                prop_assert!(
                    intact || fault == Some(CopyFault::Corrupted),
                    "copy {} damaged without a Corrupted poison: fault {:?}",
                    i,
                    fault
                );
            }
            for (i, &n) in out.handler_fires.iter().enumerate() {
                prop_assert_eq!(n, 1, "copy {} handler fired {} times", i, n);
            }
            prop_assert_eq!(out.pinned, 0, "leaked pins");
            Ok(())
        },
    );
}

/// Zero false positives: with both corruption classes disabled, `Full`
/// verification detects nothing, repairs nothing, poisons nothing — and
/// every copy lands byte-exact.
#[test]
fn clean_runs_are_false_positive_free() {
    check_with(
        &prop_cases(120),
        gen_clean_case,
        |_| Vec::new(),
        |case: &IntegrityCase| {
            let out = run_integrity(case);
            // stats_key indices 8..11: corruptions, repairs,
            // corrupted_poisoned, corrupt_quarantined.
            prop_assert_eq!(out.stats[8], 0, "false-positive corruption detections");
            prop_assert_eq!(out.stats[9], 0, "phantom repairs");
            prop_assert_eq!(out.stats[10], 0, "phantom Corrupted poisons");
            prop_assert_eq!(out.stats[11], 0, "phantom corruption quarantines");
            for (i, &(fault, intact)) in out.per_copy.iter().enumerate() {
                prop_assert!(fault.is_none() && intact, "clean copy {} damaged", i);
            }
            prop_assert_eq!(out.log.dma_flips, 0);
            prop_assert_eq!(out.log.dma_misdirects, 0);
            Ok(())
        },
    );
}

/// Same seed, byte-identical outcome — with corruption, verification,
/// and repair all active.
#[test]
fn corrupted_runs_are_seed_deterministic() {
    check_with(
        &prop_cases(40),
        gen_corrupt_case,
        |_| Vec::new(),
        |case: &IntegrityCase| {
            let a = run_integrity(case);
            let b = run_integrity(case);
            prop_assert_eq!(a, b, "seeded corrupted run not reproducible");
            Ok(())
        },
    );
}

/// Verification is host-side only: on corruption-free runs, `Off` and
/// `Full` end at the identical virtual timestamp with identical stats
/// and memory — digesting charges no virtual time and consumes no PRNG
/// draw.
#[test]
fn verify_policy_charges_no_virtual_time() {
    check_with(
        &prop_cases(40),
        gen_clean_case,
        |_| Vec::new(),
        |case: &IntegrityCase| {
            let off = run_integrity(&IntegrityCase {
                policy: VerifyPolicy::Off,
                ..case.clone()
            });
            let full = run_integrity(&IntegrityCase {
                policy: VerifyPolicy::Full,
                ..case.clone()
            });
            prop_assert_eq!(
                off.end,
                full.end,
                "verification shifted the virtual timeline"
            );
            prop_assert_eq!(off, full, "verification changed a clean run's outcome");
            Ok(())
        },
    );
}

/// Corruption draws record and replay through the `.cptr` trace layer: a
/// recorded corrupted run replays byte-identically — same outcome, no
/// divergence, and the re-recorded trace encodes to the same bytes.
#[test]
fn record_replay_covers_corruption_draws() {
    check_with(
        &prop_cases(20),
        gen_corrupt_case,
        |_| Vec::new(),
        |case: &IntegrityCase| {
            let (a, rec) = run_integrity_traced(case, TraceMode::Record);
            let trace = rec.unwrap().finish();
            let (b, rep) = run_integrity_traced(case, TraceMode::Replay(trace.clone()));
            let rep = rep.unwrap();
            prop_assert!(
                rep.divergence().is_none(),
                "faithful replay diverged: {}",
                rep.divergence().unwrap()
            );
            prop_assert_eq!(a, b, "replayed outcome differs from recorded run");
            prop_assert_eq!(
                rep.finish().encode(),
                trace.encode(),
                "re-recorded trace is not byte-identical"
            );
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Scrubber: background rot detection and healing.
// ---------------------------------------------------------------------

/// Boots a service with bit-rot injection aimed at a registered scrub
/// region and keeps traffic flowing long enough for the walker to act.
/// Returns `(svc, heals, unrepairable, scrub_chunks)` style observations
/// via the service stats.
fn run_scrub(seed: u64, damage_replica: bool, kill_at: Option<Nanos>) -> (Vec<u64>, usize, bool) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 4096);
    let plan = FaultPlan::new(FaultConfig {
        seed,
        rot_prob: 0.9,
        ..Default::default()
    });
    let svc = os.install_copier(
        vec![os.machine.core(1)],
        CopierConfig {
            use_dma: true,
            fault_plan: Some(Rc::clone(&plan)),
            verify: VerifyPolicy::Full,
            scrub_period: 2,
            ..Default::default()
        },
    );
    let proc = os.spawn_process();
    let lib = proc.lib();
    let uspace = Rc::clone(&lib.uspace);

    let region = 16 * 1024usize;
    let primary = uspace.mmap(region, Prot::RW, true).unwrap();
    let replica = uspace.mmap(region, Prot::RW, true).unwrap();
    let golden = pattern(7, seed, region);
    uspace.write_bytes(primary, &golden).unwrap();
    uspace.write_bytes(replica, &golden).unwrap();
    lib.register_scrub(primary, replica, region, 4 * 1024);
    if damage_replica {
        // Every replica chunk is damaged, so the first rot the walker
        // finds is unrepairable no matter which chunk it lands in.
        let mut bad = golden.clone();
        for b in bad.iter_mut().step_by(512) {
            *b ^= 0x40;
        }
        uspace.write_bytes(replica, &bad).unwrap();
    }

    // Post-death handlers would be a bug: UFuncs only run from the
    // client's own post_handlers loop, which stops at the kill.
    let watched_client = Rc::clone(&lib.client);

    if let Some(t) = kill_at {
        let svc2 = Rc::clone(&svc);
        let lib2 = Rc::clone(&lib);
        let h2 = h.clone();
        sim.spawn("killer", async move {
            h2.sleep(t).await;
            svc2.reap_client(&lib2.client);
        });
    }

    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    let len = 8 * 1024usize;
    let src = uspace.mmap(len, Prot::RW, true).unwrap();
    let dst = uspace.mmap(len, Prot::RW, true).unwrap();
    uspace.write_bytes(src, &pattern(1, seed, len)).unwrap();
    sim.spawn("client", async move {
        // Steady background traffic keeps the service polling (and the
        // scrub walker ticking) across many rounds.
        for _ in 0..60 {
            let fired_dead = Rc::clone(&watched_client);
            let opts = AmemcpyOpts {
                func: Some(Handler::UFunc(Rc::new(move || {
                    assert!(
                        !fired_dead.dead.get(),
                        "handler fired for a dead client (post-reap delivery)"
                    );
                }))),
                ..Default::default()
            };
            if lib2._amemcpy(&core, dst, src, len, opts).await.is_err() {
                break;
            }
            if lib2.csync(&core, dst, len).await.is_err() {
                break;
            }
            if lib2.client.dead.get() {
                break;
            }
        }
        svc2.stop();
    });
    sim.run();

    assert_no_pinned_leaks(&os.pm);
    let s = svc.stats();
    let primary_ok = {
        let mut got = vec![0u8; region];
        uspace.read_bytes(primary, &mut got).unwrap();
        got == golden
    };
    (
        vec![
            s.scrub_chunks,
            s.scrub_heals,
            s.scrub_unrepairable,
            s.corrupt_quarantined,
            s.quarantined_channels,
        ],
        os.pm.pinned_frames(),
        primary_ok,
    )
}

/// The scrubber walks registered regions, finds injected bit-rot, and
/// heals it from the intact replica through ordinary copy tasks.
#[test]
fn scrubber_heals_rot_from_replica() {
    let (s, pinned, _) = run_scrub(0xB17_207, false, None);
    assert!(s[0] > 0, "scrub walker never ran (chunks {})", s[0]);
    assert!(s[1] > 0, "rot injected every round but nothing healed");
    assert_eq!(s[2], 0, "intact replica misreported as unrepairable");
    assert_eq!(pinned, 0);
}

/// A rotted chunk whose replica is also damaged is unrepairable: the
/// walker remembers a `Corrupted` taint, retires the chunk, and never
/// claims a heal.
#[test]
fn scrubber_surfaces_unrepairable_rot() {
    let (s, pinned, _) = run_scrub(0xDEAD_1207, true, None);
    assert!(s[0] > 0, "scrub walker never ran");
    assert!(s[2] > 0, "damaged replica never surfaced as unrepairable");
    assert_eq!(pinned, 0);
}

/// Satellite: `reap_client` racing an in-flight scrub/heal pipeline.
/// The kill lands mid-workload while rot injection and the walker are
/// active; afterwards no pins survive, the quarantine counters stay
/// consistent (corruption quarantines are a subset of dead channels),
/// and no completion handler fires for the dead client.
#[test]
fn reap_races_inflight_scrub_and_repair() {
    for (i, t) in [60_000u64, 180_000, 400_000, 900_000]
        .into_iter()
        .enumerate()
    {
        let (s, pinned, _) = run_scrub(0x5EED_0000 + i as u64, i % 2 == 1, Some(Nanos(t)));
        assert_eq!(pinned, 0, "kill at {t}ns leaked pins");
        assert!(
            s[3] <= s[4],
            "corrupt quarantines ({}) exceed dead channels ({})",
            s[3],
            s[4]
        );
    }
}

/// Client-facing surface: `amemcpy_verified` forces Full verification
/// per task even when the service-wide policy is `Off`, and
/// `integrity_stats` accounts for the submissions and every surfaced
/// `Corrupted` fault.
#[test]
fn amemcpy_verified_overrides_service_policy_off() {
    let seed = 0x0E11_F1ED_u64;
    let (ncopies, len) = (4usize, 16 * 1024);
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 4096);
    let plan = FaultPlan::new(FaultConfig {
        seed,
        dma_flip_prob: 0.6,
        dma_misdirect_prob: 0.2,
        ..Default::default()
    });
    let svc = os.install_copier(
        vec![os.machine.core(1)],
        CopierConfig {
            use_dma: true,
            dma_channels: 2,
            fault_plan: Some(Rc::clone(&plan)),
            verify: VerifyPolicy::Off,
            ..Default::default()
        },
    );
    let proc = os.spawn_process();
    let lib = proc.lib();
    let uspace = Rc::clone(&lib.uspace);
    let mut bufs = Vec::new();
    for i in 0..ncopies {
        let src = uspace.mmap(len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(len, Prot::RW, true).unwrap();
        uspace.write_bytes(src, &pattern(i, seed, len)).unwrap();
        bufs.push((src, dst));
    }
    let descrs: Rc<RefCell<Vec<Rc<SegDescriptor>>>> = Rc::new(RefCell::new(Vec::new()));
    let d2 = Rc::clone(&descrs);
    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    let bufs2 = bufs.clone();
    let h2 = h.clone();
    sim.spawn("client", async move {
        for &(src, dst) in &bufs2 {
            let d = lib2
                .amemcpy_verified(&core, dst, src, len)
                .await
                .expect("admitted");
            d2.borrow_mut().push(d);
        }
        // Settle before syncing so every verification verdict (poison or
        // successful repair) has landed; each Corrupted fault is then
        // observed exactly once by the csync below.
        h2.sleep(Nanos::from_micros(300)).await;
        let _ = lib2.csync_all(&core).await;
        svc2.stop();
    });
    sim.run();

    let log = plan.log();
    assert!(
        log.dma_flips + log.dma_misdirects > 0,
        "seed injected nothing — pick another"
    );
    assert!(
        svc.stats().dispatch.corruptions > 0,
        "Off-policy service must still verify flagged tasks"
    );
    let mut corrupted = 0u64;
    for (i, d) in descrs.borrow().iter().enumerate() {
        match d.fault() {
            Some(CopyFault::Corrupted) => corrupted += 1,
            Some(f) => panic!("unexpected fault {f:?}"),
            None => {
                let mut got = vec![0u8; len];
                uspace.read_bytes(bufs[i].1, &mut got).unwrap();
                assert_eq!(got, pattern(i, seed, len), "copy {i} escaped verification");
            }
        }
    }
    assert_eq!(lib.integrity_stats(), (ncopies as u64, corrupted));
    assert_no_pinned_leaks(&os.pm);
}

// ---------------------------------------------------------------------
// Committed repro corpus (`tests/repros/*.cptr`) — the REPRO_REPLAY gate.
// ---------------------------------------------------------------------

fn repro_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/repros")
}

/// Canonical cases the corpus pins down: one per corruption class plus a
/// mixed multi-channel schedule.
fn corpus_cases() -> Vec<(&'static str, IntegrityCase)> {
    let base = IntegrityCase {
        seed: 0,
        channels: 2,
        ncopies: 4,
        len: 24 * 1024,
        flip: 0.0,
        misdirect: 0.0,
        policy: VerifyPolicy::Full,
    };
    vec![
        (
            "flip",
            IntegrityCase {
                seed: 0xF11_0001,
                flip: 0.35,
                ..base.clone()
            },
        ),
        (
            "misdirect",
            IntegrityCase {
                seed: 0x315_0002,
                misdirect: 0.35,
                ..base.clone()
            },
        ),
        (
            "mixed",
            IntegrityCase {
                seed: 0x3117_0003,
                channels: 3,
                flip: 0.25,
                misdirect: 0.2,
                ..base.clone()
            },
        ),
        (
            "sampled",
            IntegrityCase {
                seed: 0x5A3_0004,
                flip: 0.3,
                policy: VerifyPolicy::Sampled,
                ..base
            },
        ),
    ]
}

/// Corpus writer: `REPRO_RECORD=1 cargo test -q --test integrity
/// record_repro_corpus` re-records every canonical case. A no-op
/// otherwise, so plain `cargo test` never rewrites committed traces.
#[test]
fn record_repro_corpus() {
    if std::env::var("REPRO_RECORD").is_err() {
        return;
    }
    let dir = repro_dir();
    std::fs::create_dir_all(&dir).expect("create tests/repros");
    for (name, case) in corpus_cases() {
        let (_, rec) = run_integrity_traced(&case, TraceMode::Record);
        let path = dir.join(format!("integrity-{name}.cptr"));
        rec.unwrap()
            .finish()
            .save(&path)
            .expect("save corpus trace");
        eprintln!("recorded {}", path.display());
    }
}

/// The REPRO_REPLAY gate: every committed `.cptr` trace under
/// `tests/repros/` replays in lockstep with zero divergence. A failure
/// here means a change altered recorded behaviour — the draw order, the
/// round structure, or the state hashes — for a pinned schedule.
#[test]
fn repro_corpus_replays_identically() {
    let dir = repro_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        panic!("tests/repros/ is missing — run REPRO_RECORD=1 to create the corpus");
    };
    let mut n = 0;
    for entry in entries {
        let path = entry.expect("read tests/repros").path();
        if path.extension().and_then(|e| e.to_str()) != Some("cptr") {
            continue;
        }
        n += 1;
        let trace = Trace::load(&path).expect("load committed trace");
        let case = case_from_trace(&trace);
        let (out, rep) = run_integrity_traced(&case, TraceMode::Replay(trace));
        let rep = rep.unwrap();
        assert!(
            rep.divergence().is_none(),
            "{} diverged: {}",
            path.display(),
            rep.divergence().unwrap()
        );
        assert!(
            out.escapes.is_empty() || case.policy != VerifyPolicy::Full,
            "{} replayed with silent escapes: {:?}",
            path.display(),
            out.escapes
        );
    }
    assert!(n > 0, "tests/repros/ holds no .cptr traces");
}
