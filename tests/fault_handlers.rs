//! Handler delivery on the fault path: a poisoned copy still fires its
//! completion handler (KFUNC inline on the service thread, UFUNC via
//! `post_handlers`), and the handler observes the fault through the
//! descriptor — the §4.4 contract that completion callbacks see the
//! outcome, not just success.

use std::cell::RefCell;
use std::rc::Rc;

use copier::client::AmemcpyOpts;
use copier::core::{CopierConfig, CopyFault, Handler, SegDescriptor, DEFAULT_SEGMENT};
use copier::mem::{Prot, PAGE_SIZE};
use copier::os::Os;
use copier::sim::{Machine, Sim};

/// Observed handler firing: `Some(fault)` once the handler ran.
type Observed = Rc<RefCell<Option<Option<CopyFault>>>>;

/// Runs one copy of `len` bytes into a destination mapping of `dst_len`
/// bytes with the given handler attached; returns what the handler saw.
fn run_with_handler(
    dst_len: usize,
    len: usize,
    make: impl FnOnce(Rc<SegDescriptor>, Observed) -> Handler,
) -> (Observed, Rc<SegDescriptor>) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 1024);
    let svc = os.install_copier(vec![os.machine.core(1)], CopierConfig::default());
    let proc = os.spawn_process();
    let lib = proc.lib();
    let uspace = Rc::clone(&lib.uspace);

    let src = uspace.mmap(len, Prot::RW, true).unwrap();
    let dst = uspace.mmap(dst_len, Prot::RW, true).unwrap();
    uspace.write_bytes(src, &vec![0xA5u8; len]).unwrap();

    let descr = Rc::new(SegDescriptor::new(len, DEFAULT_SEGMENT));
    let observed: Observed = Rc::new(RefCell::new(None));
    let func = make(Rc::clone(&descr), Rc::clone(&observed));

    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    let d2 = Rc::clone(&descr);
    sim.spawn("client", async move {
        let opts = AmemcpyOpts {
            func: Some(func),
            descr: Some(Rc::clone(&d2)),
            ..Default::default()
        };
        let _ = lib2._amemcpy(&core, dst, src, len, opts).await;
        let _ = lib2.csync_all(&core).await;
        svc2.stop();
    });
    sim.run();
    (observed, descr)
}

fn observe(descr: Rc<SegDescriptor>, observed: Observed) -> impl Fn() {
    move || {
        observed.borrow_mut().replace(descr.fault());
    }
}

#[test]
fn kfunc_handler_observes_poison() {
    let len = 3 * PAGE_SIZE;
    let (seen, descr) = run_with_handler(len - PAGE_SIZE, len, |d, o| {
        Handler::KFunc(Rc::new(observe(d, o)))
    });
    assert_eq!(descr.fault(), Some(CopyFault::Segv));
    assert_eq!(
        *seen.borrow(),
        Some(Some(CopyFault::Segv)),
        "KFUNC handler must fire on the fault path and see the poison"
    );
}

#[test]
fn ufunc_handler_observes_poison() {
    let len = 3 * PAGE_SIZE;
    let (seen, descr) = run_with_handler(len - PAGE_SIZE, len, |d, o| {
        Handler::UFunc(Rc::new(observe(d, o)))
    });
    assert_eq!(descr.fault(), Some(CopyFault::Segv));
    assert_eq!(
        *seen.borrow(),
        Some(Some(CopyFault::Segv)),
        "UFUNC handler must be delivered via post_handlers and see the poison"
    );
}

#[test]
fn handlers_still_fire_clean_on_success() {
    let len = 2 * PAGE_SIZE;
    let (seen, descr) = run_with_handler(len, len, |d, o| Handler::UFunc(Rc::new(observe(d, o))));
    assert!(descr.all_ready());
    assert_eq!(
        *seen.borrow(),
        Some(None),
        "success-path handler must observe a clean descriptor"
    );
}
