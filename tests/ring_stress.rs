//! Real-thread stress of the lock-free CSH ring (§5.1 / Fig. 12-b's
//! "thanks to Copier's lock-free queue design").
//!
//! Everything else in the repository runs on the deterministic simulator;
//! this test exercises the identical `Ring` type under genuine OS-thread
//! concurrency: many producers acquiring slots with CAS, one consumer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use copier::core::Ring;
use copier_testkit::TestRng;

#[test]
fn mpsc_no_loss_no_duplication_per_producer_fifo() {
    const PRODUCERS: u64 = 3;
    const PER: u64 = 30_000;
    let ring: Arc<Ring<u64>> = Arc::new(Ring::new(512));
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let ring = Arc::clone(&ring);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER {
                let v = p << 32 | i;
                while ring.push(v).is_err() {
                    std::thread::yield_now();
                }
            }
        }));
    }

    let consumer = {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = [None::<u64>; PRODUCERS as usize];
            let mut seen = 0u64;
            while seen < PRODUCERS * PER {
                match ring.pop() {
                    Some(v) => {
                        let (p, i) = ((v >> 32) as usize, v & 0xffff_ffff);
                        assert!(
                            last[p].map_or(true, |x| x < i),
                            "producer {p} out of order: {i} after {:?}",
                            last[p]
                        );
                        last[p] = Some(i);
                        seen += 1;
                    }
                    None => {
                        if stop.load(Ordering::Relaxed) {
                            // Producers done: drain whatever remains.
                            std::thread::yield_now();
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            assert_eq!(last, [Some(PER - 1); PRODUCERS as usize]);
        })
    };

    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    consumer.join().unwrap();
    assert!(ring.pop().is_none(), "ring fully drained");
}

/// Randomized interleavings: seeded per-thread streams vary producer
/// count, ring capacity, burst sizes, and yield points, so each seed
/// exercises a different contention pattern against the same
/// no-loss / no-duplication / per-producer-FIFO contract.
#[test]
fn randomized_interleavings_preserve_ring_contract() {
    for seed in 0..6u64 {
        let mut root = TestRng::new(0xB1A5_0000 + seed);
        let producers = root.range_usize(2, 5);
        let capacity = 1 << root.range_usize(3, 9); // 8..=256 slots
        let per: u64 = root.range_usize(2_000, 12_000) as u64;
        let ring: Arc<Ring<u64>> = Arc::new(Ring::new(capacity));

        let mut handles = Vec::new();
        for p in 0..producers as u64 {
            let ring = Arc::clone(&ring);
            let mut rng = root.fork();
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while i < per {
                    // Push a random burst, then maybe yield to shake
                    // up which producer owns the CAS race.
                    let burst = rng.range_usize(1, 64) as u64;
                    for _ in 0..burst.min(per - i) {
                        let v = p << 32 | i;
                        while ring.push(v).is_err() {
                            std::thread::yield_now();
                        }
                        i += 1;
                    }
                    if rng.gen_bool(0.3) {
                        std::thread::yield_now();
                    }
                }
            }));
        }

        let consumer = {
            let ring = Arc::clone(&ring);
            let mut rng = root.fork();
            std::thread::spawn(move || {
                let mut last = vec![None::<u64>; producers];
                let mut seen = 0u64;
                while seen < producers as u64 * per {
                    match ring.pop() {
                        Some(v) => {
                            let (p, i) = ((v >> 32) as usize, v & 0xffff_ffff);
                            assert!(
                                last[p].map_or(true, |x| x < i),
                                "producer {p} out of order: {i} after {:?}",
                                last[p]
                            );
                            last[p] = Some(i);
                            seen += 1;
                            // Random consumer stalls force the ring
                            // through full/empty transitions.
                            if rng.gen_bool(0.05) {
                                std::thread::yield_now();
                            }
                        }
                        None => std::hint::spin_loop(),
                    }
                }
                assert_eq!(last, vec![Some(per - 1); producers]);
            })
        };

        for h in handles {
            h.join().unwrap();
        }
        consumer.join().unwrap();
        assert!(ring.pop().is_none(), "seed {seed}: ring fully drained");
    }
}

#[test]
fn descriptor_visible_across_threads() {
    // The descriptor contract: a consumer thread marking segments is
    // observed by a producer-side csync poll (release/acquire pairing).
    use copier::core::SegDescriptor;
    let d = Arc::new(SegDescriptor::new(64 * 1024, 1024));
    let d2 = Arc::clone(&d);
    let marker = std::thread::spawn(move || {
        for i in 0..64 {
            d2.mark(i);
        }
    });
    // Spin until fully ready; must terminate (no lost marks).
    while !d.all_ready() {
        std::hint::spin_loop();
    }
    marker.join().unwrap();
    assert_eq!(d.ready_segments(), 64);
}
