//! Chaos suite: seeded fault schedules against the full service stack.
//!
//! Every run drives real client traffic (amemcpy/csync_all) through a
//! Copier whose DMA engine, ATCache, and client lifetime are interposed
//! by a [`FaultPlan`]. The properties assert the recovery invariants of
//! the fault model (DESIGN.md §Fault model & recovery):
//!
//! 1. no segment is ever marked done without its bytes actually landed;
//! 2. pins never leak — even when the client dies mid-copy;
//! 3. absorption never forwards from a poisoned source (dependents are
//!    aborted in dependency order, §4.4);
//! 4. the same seed reproduces byte-identical stats and memory.
//!
//! Reproduce any failure with the `TESTKIT_REPRO=<case seed>` line the
//! runner prints, e.g. `TESTKIT_REPRO=1234567 cargo test -q --test chaos`.
//! Trace-recording properties additionally save a `.cptr` event log on
//! failure and print a `TRACE_REPLAY=<path>` line; replaying it through
//! `chaos_replay_from_env` re-executes the recorded run in lockstep and
//! reports the first diverging round (DESIGN.md §14).

use std::cell::RefCell;
use std::rc::Rc;

use copier::core::{Copier, CopierConfig, CopyFault, SegDescriptor};
use copier::mem::{Prot, PAGE_SIZE};
use copier::os::Os;
use copier::sim::{
    FaultConfig, FaultLog, FaultPlan, Machine, Nanos, Sim, Trace, TraceEvent, Tracer,
};
use copier_testkit::prop::{check_with, Config};
use copier_testkit::{assert_no_pinned_leaks, prop_assert, prop_assert_eq, TestRng};

/// One randomized chaos scenario.
#[derive(Debug, Clone)]
struct ChaosCase {
    seed: u64,
    channels: usize,
    ncopies: usize,
    len: usize,
    transient: f64,
    hard: f64,
    timeout: f64,
    stale: f64,
    /// Kill the client mid-flight (orphan reclamation path).
    kill: bool,
}

fn gen_case(rng: &mut TestRng, kill_prob: f64) -> ChaosCase {
    ChaosCase {
        seed: rng.next_u64(),
        channels: rng.range_usize(1, 5),
        ncopies: rng.range_usize(2, 7),
        len: rng.range_usize(1, 5) * 16 * 1024 + rng.range_usize(0, 4) * 1024,
        transient: if rng.gen_bool(0.7) {
            rng.gen_f64() * 0.4
        } else {
            0.0
        },
        hard: if rng.gen_bool(0.4) {
            rng.gen_f64() * 0.15
        } else {
            0.0
        },
        timeout: if rng.gen_bool(0.4) {
            rng.gen_f64() * 0.2
        } else {
            0.0
        },
        stale: rng.gen_f64() * 0.5,
        kill: rng.gen_bool(kill_prob),
    }
}

/// Deterministic per-copy source pattern (independent of the sim).
fn pattern(copy: usize, seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed ^ (copy as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.push((x >> 33) as u8);
    }
    v
}

/// Everything a run produces that must be reproducible from the seed.
#[derive(Debug, PartialEq)]
struct Outcome {
    end: u64,
    stats: Vec<u64>,
    log: FaultLog,
    /// Per copy: final fault (if any) and the segment-done bitmap.
    per_copy: Vec<(Option<CopyFault>, Vec<bool>)>,
    /// FNV fold over every destination buffer's final bytes.
    digest: u64,
    /// Frames still pinned after the run (must be 0).
    pinned: usize,
    /// Phantom-done violations: segments marked done whose destination
    /// bytes do not match the source.
    phantoms: Vec<String>,
}

fn stats_key(svc: &Rc<Copier>) -> Vec<u64> {
    let s = svc.stats();
    vec![
        s.tasks_completed,
        s.bytes_copied,
        s.bytes_absorbed,
        s.bytes_deferred_executed,
        s.syncs,
        s.promotions,
        s.aborts,
        s.faults,
        s.idle_polls,
        s.busy_rounds,
        s.proactive_faults,
        s.retries,
        s.fallback_bytes,
        s.quarantined_channels,
        s.orphans_reclaimed,
        s.dependents_aborted,
        s.dispatch.cpu_bytes as u64,
        s.dispatch.dma_bytes as u64,
        s.dispatch.dma_descriptors as u64,
        s.dispatch.dma_wait.as_nanos(),
        s.dispatch.retries,
        s.dispatch.fallback_bytes as u64,
        s.admission_rejected,
        s.shed_bytes,
        s.credits_granted,
        s.degraded_sync_copies,
        s.pressure_events,
    ]
}

/// Trace keys under which a recorded chaos trace carries its own case
/// (so `TRACE_REPLAY` needs only the `.cptr` file, not the seed line).
mod meta {
    pub const SEED: u32 = 1;
    pub const CHANNELS: u32 = 2;
    pub const NCOPIES: u32 = 3;
    pub const LEN: u32 = 4;
    pub const TRANSIENT: u32 = 5;
    pub const HARD: u32 = 6;
    pub const TIMEOUT: u32 = 7;
    pub const STALE: u32 = 8;
    pub const KILL: u32 = 9;
}

fn case_meta(case: &ChaosCase) -> Vec<(u32, u64)> {
    vec![
        (meta::SEED, case.seed),
        (meta::CHANNELS, case.channels as u64),
        (meta::NCOPIES, case.ncopies as u64),
        (meta::LEN, case.len as u64),
        (meta::TRANSIENT, case.transient.to_bits()),
        (meta::HARD, case.hard.to_bits()),
        (meta::TIMEOUT, case.timeout.to_bits()),
        (meta::STALE, case.stale.to_bits()),
        (meta::KILL, case.kill as u64),
    ]
}

fn case_from_trace(trace: &Trace) -> ChaosCase {
    let get = |k: u32| trace.meta(k).expect("trace lacks a case Meta key");
    ChaosCase {
        seed: get(meta::SEED),
        channels: get(meta::CHANNELS) as usize,
        ncopies: get(meta::NCOPIES) as usize,
        len: get(meta::LEN) as usize,
        transient: f64::from_bits(get(meta::TRANSIENT)),
        hard: f64::from_bits(get(meta::HARD)),
        timeout: f64::from_bits(get(meta::TIMEOUT)),
        stale: f64::from_bits(get(meta::STALE)),
        kill: get(meta::KILL) != 0,
    }
}

/// Whether (and how) a chaos run is traced.
enum TraceMode {
    Off,
    Record,
    Replay(Trace),
}

/// Saves a failing run's trace for `TRACE_REPLAY` and returns its path.
///
/// Traces land in the repo's own `target/chaos-repros/` (created on
/// demand, gitignored with the rest of `target/`) rather than the
/// per-crate tmpdir: they survive `cargo` re-runs at a predictable
/// location, so a failing CI log's `TRACE_REPLAY=` line still points at
/// a file a developer can fetch and replay.
fn save_repro_trace(tracer: &Rc<Tracer>, tag: &str, seed: u64) -> String {
    let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/target/chaos-repros"));
    std::fs::create_dir_all(dir).expect("create target/chaos-repros");
    let path = dir.join(format!("chaos-{tag}-{seed:016x}.cptr"));
    tracer.finish().save(&path).expect("save repro trace");
    path.display().to_string()
}

fn run_chaos(case: &ChaosCase) -> Outcome {
    run_chaos_traced(case, TraceMode::Off).0
}

fn run_chaos_traced(case: &ChaosCase, mode: TraceMode) -> (Outcome, Option<Rc<Tracer>>) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 4096);
    let plan = FaultPlan::new(FaultConfig {
        seed: case.seed,
        dma_transient_prob: case.transient,
        dma_hard_prob: case.hard,
        dma_timeout_prob: case.timeout,
        atc_stale_prob: case.stale,
        ..Default::default()
    });
    // Record/replay hook: the case itself is the trace prologue, then the
    // fault plan and the service both stream into (or out of) the log.
    let tracer = match mode {
        TraceMode::Off => None,
        TraceMode::Record => Some(Tracer::record()),
        TraceMode::Replay(trace) => Some(Tracer::replay(trace)),
    };
    if let Some(t) = &tracer {
        for (key, val) in case_meta(case) {
            t.emit(TraceEvent::Meta { key, val });
        }
        plan.set_tracer(t);
    }
    let svc = os.install_copier(
        vec![os.machine.core(1)],
        CopierConfig {
            use_dma: true,
            dma_channels: case.channels,
            fault_plan: Some(Rc::clone(&plan)),
            tracer: tracer.clone(),
            ..Default::default()
        },
    );
    let proc = os.spawn_process();
    let lib = proc.lib();
    let uspace = Rc::clone(&lib.uspace);

    let mut bufs = Vec::new();
    for i in 0..case.ncopies {
        let src = uspace.mmap(case.len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(case.len, Prot::RW, true).unwrap();
        uspace
            .write_bytes(src, &pattern(i, case.seed, case.len))
            .unwrap();
        bufs.push((src, dst));
    }

    if case.kill {
        // Exit race: the client process dies somewhere inside the busy
        // window and the service must sweep its orphans.
        let t = plan.race_times(1, Nanos(150_000))[0];
        let svc2 = Rc::clone(&svc);
        let lib2 = Rc::clone(&lib);
        let h2 = h.clone();
        sim.spawn("killer", async move {
            h2.sleep(t).await;
            svc2.reap_client(&lib2.client);
        });
    }

    let descrs: Rc<RefCell<Vec<Rc<SegDescriptor>>>> = Rc::new(RefCell::new(Vec::new()));
    let d2 = Rc::clone(&descrs);
    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    let bufs2 = bufs.clone();
    let len = case.len;
    sim.spawn("client", async move {
        for &(src, dst) in &bufs2 {
            // Default quotas are far above this workload; a rejection here
            // would itself be a bug.
            let d = lib2.amemcpy(&core, dst, src, len).await.expect("admitted");
            d2.borrow_mut().push(d);
        }
        let _ = lib2.csync_all(&core).await;
        svc2.stop();
    });
    let end = sim.run();

    let mut phantoms = Vec::new();
    let mut per_copy = Vec::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for (i, d) in descrs.borrow().iter().enumerate() {
        let expected = pattern(i, case.seed, case.len);
        let (_src, dst) = bufs[i];
        let mut got = vec![0u8; case.len];
        let readable = uspace.read_bytes(dst, &mut got).is_ok();
        let mut marks = Vec::with_capacity(d.num_segments());
        for s in 0..d.num_segments() {
            let m = d.is_marked(s);
            marks.push(m);
            if m && readable {
                let (lo, hi) = d.segment_range(s);
                if got[lo..hi] != expected[lo..hi] {
                    phantoms.push(format!(
                        "copy {i} segment {s} marked done but bytes differ (seed {})",
                        case.seed
                    ));
                }
            }
        }
        for &b in &got {
            digest = (digest ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        per_copy.push((d.fault(), marks));
    }

    // Teardown invariants for every chaos run, regardless of which
    // property the caller asserts on: even a mid-flight kill must leave
    // nothing pinned once the orphan sweep has run, and the address
    // index must still mirror each set's pending window exactly —
    // faults, aborts, taint cascades, and the reap sweep all route
    // through the same submit/finalize bookkeeping.
    assert_no_pinned_leaks(&os.pm);
    for set in lib.client.sets.borrow().iter() {
        if let Err(msg) = set.index_consistent() {
            panic!(
                "pending index diverged after chaos run (seed {}): {msg}",
                case.seed
            );
        }
    }

    (
        Outcome {
            end: end.as_nanos(),
            stats: stats_key(&svc),
            log: plan.log(),
            per_copy,
            digest,
            pinned: os.pm.pinned_frames(),
            phantoms,
        },
        tracer,
    )
}

fn prop_cases() -> Config {
    // Each case boots a full machine + service; keep the default budget
    // tractable in debug builds. TESTKIT_CASES overrides as usual.
    let mut c = Config::from_env();
    if std::env::var("TESTKIT_CASES").is_err() {
        c.cases = 24;
    }
    c
}

/// Property 1: under any seeded fault schedule, no segment is marked
/// done unless its destination bytes actually match the source.
#[test]
fn chaos_no_phantom_done_segments() {
    check_with(
        &prop_cases(),
        |rng| gen_case(rng, 0.2),
        |_| Vec::new(),
        |case: &ChaosCase| {
            let (out, tracer) = run_chaos_traced(case, TraceMode::Record);
            if !out.phantoms.is_empty() {
                let path = save_repro_trace(&tracer.unwrap(), "phantom", case.seed);
                eprintln!(
                    "repro: TRACE_REPLAY={path} cargo test -q --test chaos chaos_replay_from_env"
                );
            }
            prop_assert!(
                out.phantoms.is_empty(),
                "phantom-done segments: {:?}",
                out.phantoms
            );
            Ok(())
        },
    );
}

/// Property 2: pins never leak — every frame pinned during planning is
/// unpinned by completion, fault recovery, or the orphan sweep.
#[test]
fn chaos_pins_never_leak() {
    check_with(
        &prop_cases(),
        // Bias hard toward mid-flight client death: the orphan sweep is
        // the most pin-hostile path.
        |rng| gen_case(rng, 0.6),
        |_| Vec::new(),
        |case: &ChaosCase| {
            let (out, tracer) = run_chaos_traced(case, TraceMode::Record);
            if out.pinned != 0 {
                let path = save_repro_trace(&tracer.unwrap(), "pins", case.seed);
                eprintln!(
                    "repro: TRACE_REPLAY={path} cargo test -q --test chaos chaos_replay_from_env"
                );
            }
            prop_assert_eq!(out.pinned, 0, "leaked pins");
            Ok(())
        },
    );
}

/// Property 3: same seed, byte-identical outcome — stats, fault log,
/// per-descriptor state, memory digest, and the end-of-time timestamp.
#[test]
fn chaos_same_seed_identical_outcome() {
    let mut cfg = prop_cases();
    cfg.cases = (cfg.cases / 2).max(8); // each case runs two full sims
    check_with(
        &cfg,
        |rng| gen_case(rng, 0.3),
        |_| Vec::new(),
        |case: &ChaosCase| {
            let a = run_chaos(case);
            let b = run_chaos(case);
            prop_assert_eq!(a, b, "seeded run not reproducible");
            Ok(())
        },
    );
}

/// Tentpole property: a recorded chaos run replays byte-identically —
/// same outcome, no divergence, and the replay's own re-recorded trace
/// encodes to the same bytes as the original log.
#[test]
fn chaos_record_replay_identical() {
    let mut cfg = prop_cases();
    cfg.cases = (cfg.cases / 3).max(6); // each case runs two full sims
    check_with(
        &cfg,
        |rng| gen_case(rng, 0.3),
        |_| Vec::new(),
        |case: &ChaosCase| {
            let (a, rec) = run_chaos_traced(case, TraceMode::Record);
            let trace = rec.unwrap().finish();
            prop_assert!(!trace.events().is_empty(), "recorded nothing");
            let (b, rep) = run_chaos_traced(case, TraceMode::Replay(trace.clone()));
            let rep = rep.unwrap();
            prop_assert!(
                rep.divergence().is_none(),
                "faithful replay diverged: {}",
                rep.divergence().unwrap()
            );
            prop_assert_eq!(a, b, "replayed outcome differs from recorded run");
            prop_assert_eq!(
                rep.finish().encode(),
                trace.encode(),
                "re-recorded trace is not byte-identical"
            );
            Ok(())
        },
    );
}

/// Tentpole property: perturbing one recorded fault draw makes the
/// divergence checker fire at (or just after) the perturbed round — the
/// checker localizes *where* a replay left the recorded timeline.
#[test]
fn chaos_replay_divergence_localizes() {
    let case = ChaosCase {
        seed: 0x7EA5_E01D,
        channels: 2,
        ncopies: 5,
        len: 96 * 1024,
        transient: 0.3,
        hard: 0.0,
        timeout: 0.1,
        stale: 0.3,
        kill: false,
    };
    let (_, rec) = run_chaos_traced(&case, TraceMode::Record);
    let mut trace = rec.unwrap().finish();

    // Find the first DMA draw and the round it belongs to, then flip its
    // outcome (none <-> transient) so the replayed execution must differ.
    let mut round = 0u64;
    let mut hit = None;
    for (i, e) in trace.events().iter().enumerate() {
        match e {
            TraceEvent::RoundStart { round: r, .. } => round = *r,
            TraceEvent::DmaDraw { .. } if hit.is_none() => hit = Some((i, round)),
            _ => {}
        }
    }
    let (pos, bad_round) = hit.expect("case injected no DMA draws");
    let TraceEvent::DmaDraw { fault } = trace.events()[pos] else {
        unreachable!()
    };
    trace.events_mut()[pos] = TraceEvent::DmaDraw {
        fault: if fault == 0 { 1 } else { 0 },
    };

    let (_, rep) = run_chaos_traced(&case, TraceMode::Replay(trace));
    let d = rep
        .unwrap()
        .divergence()
        .expect("perturbed replay must diverge");
    // The prefix before the perturbation replays verbatim, so the checker
    // must point at or after it — never before.
    assert!(
        d.pos > pos,
        "divergence at event {} precedes the perturbation at {pos}: {d}",
        d.pos
    );
    assert!(
        d.round >= bad_round,
        "divergence at round {} precedes the perturbed round {bad_round}: {d}",
        d.round
    );
}

/// `TRACE_REPLAY=<path>` repro knob: re-executes a saved chaos trace in
/// replay mode and asserts the run is faithful and the original
/// invariants hold. Silently passes when the variable is unset.
#[test]
fn chaos_replay_from_env() {
    let Ok(path) = std::env::var("TRACE_REPLAY") else {
        return;
    };
    let trace = Trace::load(std::path::Path::new(&path)).expect("load TRACE_REPLAY trace");
    let case = case_from_trace(&trace);
    eprintln!("replaying {path}: {case:?}");
    let (out, rep) = run_chaos_traced(&case, TraceMode::Replay(trace));
    if let Some(d) = rep.unwrap().divergence() {
        panic!("replay diverged from the recording: {d}");
    }
    eprintln!(
        "replay faithful: end={} pinned={} phantoms={}",
        out.end,
        out.pinned,
        out.phantoms.len()
    );
    assert!(out.phantoms.is_empty(), "phantoms: {:?}", out.phantoms);
    assert_eq!(out.pinned, 0, "leaked pins");
}

/// Property 4: absorption never forwards from a poisoned source. A
/// faulting producer taints its destination range; consumers — direct
/// and transitive — are aborted in dependency order with the parent
/// fault, and their destinations stay untouched.
#[test]
fn chaos_poisoned_source_never_forwarded() {
    check_with(
        &prop_cases(),
        |rng| (rng.range_usize(2, 6), rng.next_u64()),
        |_| Vec::new(),
        |&(pages, seed): &(usize, u64)| {
            let len = pages * PAGE_SIZE;

            let mut sim = Sim::new();
            let h = sim.handle();
            let machine = Machine::new(&h, 2);
            let os = Os::boot(&h, machine, 4096);
            let svc = os.install_copier(
                vec![os.machine.core(1)],
                CopierConfig {
                    use_dma: true,
                    ..Default::default()
                },
            );
            let proc = os.spawn_process();
            let lib = proc.lib();
            let uspace = Rc::clone(&lib.uspace);

            // W (fully mapped) → X (one page short: the producer faults) →
            // Y → Z. Only the W→X copy touches unmapped memory; X→Y and
            // Y→Z are well-formed on their own and must die by taint alone.
            let w = uspace.mmap(len, Prot::RW, true).unwrap();
            let x = uspace.mmap(len - PAGE_SIZE, Prot::RW, true).unwrap();
            let y = uspace.mmap(len - PAGE_SIZE, Prot::RW, true).unwrap();
            let z = uspace.mmap(len - PAGE_SIZE, Prot::RW, true).unwrap();
            uspace.write_bytes(w, &pattern(0, seed, len)).unwrap();

            let descrs: Rc<RefCell<Vec<Rc<SegDescriptor>>>> = Rc::new(RefCell::new(Vec::new()));
            let d2 = Rc::clone(&descrs);
            let lib2 = Rc::clone(&lib);
            let svc2 = Rc::clone(&svc);
            let core = os.machine.core(0);
            sim.spawn("client", async move {
                let a = lib2.amemcpy(&core, x, w, len).await.expect("admitted");
                let b = lib2
                    .amemcpy(&core, y, x, len - PAGE_SIZE)
                    .await
                    .expect("admitted");
                let c = lib2
                    .amemcpy(&core, z, y, len - PAGE_SIZE)
                    .await
                    .expect("admitted");
                let _ = lib2.csync_all(&core).await;
                d2.borrow_mut().extend([a, b, c]);
                svc2.stop();
            });
            sim.run();

            let ds = descrs.borrow();
            prop_assert_eq!(ds[0].fault(), Some(CopyFault::Segv), "producer must fault");
            prop_assert_eq!(
                ds[1].fault(),
                Some(CopyFault::Segv),
                "direct consumer must inherit the producer's fault"
            );
            prop_assert_eq!(
                ds[2].fault(),
                Some(CopyFault::Segv),
                "transitive consumer must inherit the fault"
            );
            for (name, addr) in [("Y", y), ("Z", z)] {
                let mut got = vec![0u8; len - PAGE_SIZE];
                uspace.read_bytes(addr, &mut got).unwrap();
                prop_assert!(
                    got.iter().all(|&b| b == 0),
                    "{name} must stay untouched after its producer was poisoned"
                );
            }
            let st = svc.stats();
            prop_assert!(
                st.dependents_aborted >= 2,
                "dependency-ordered aborts not counted: {}",
                st.dependents_aborted
            );
            assert_no_pinned_leaks(&os.pm);
            Ok(())
        },
    );
}

/// Acceptance: with every DMA channel dying on first touch, the service
/// degrades to the CPU path and still completes every task with correct
/// bytes — `fallback_bytes > 0` and all channels quarantined.
#[test]
fn dma_hard_failure_completes_via_cpu_fallback() {
    let case = ChaosCase {
        seed: 0xDEAD_C0DE,
        channels: 2,
        ncopies: 4,
        len: 64 * 1024,
        transient: 0.0,
        hard: 1.0,
        timeout: 0.0,
        stale: 0.0,
        kill: false,
    };
    let out = run_chaos(&case);
    assert!(out.phantoms.is_empty(), "{:?}", out.phantoms);
    for (i, (fault, marks)) in out.per_copy.iter().enumerate() {
        assert_eq!(*fault, None, "copy {i} must complete despite dead DMA");
        assert!(marks.iter().all(|&m| m), "copy {i} has unfinished segments");
    }
    // stats layout: see stats_key().
    let (fallback, quarantined) = (out.stats[12], out.stats[13]);
    assert!(fallback > 0, "no bytes were rescued by the CPU fallback");
    assert_eq!(quarantined, 2, "both channels must be quarantined");
    assert!(out.log.dma_hard >= 2, "hard faults were not injected");
    assert_eq!(out.pinned, 0);
}

/// Acceptance: transient DMA errors are retried with bounded backoff
/// and the workload completes with correct bytes.
#[test]
fn dma_transient_errors_are_retried() {
    let case = ChaosCase {
        seed: 7,
        channels: 1,
        ncopies: 4,
        len: 64 * 1024,
        transient: 0.5,
        hard: 0.0,
        timeout: 0.0,
        stale: 0.0,
        kill: false,
    };
    let out = run_chaos(&case);
    assert!(out.phantoms.is_empty(), "{:?}", out.phantoms);
    for (i, (fault, marks)) in out.per_copy.iter().enumerate() {
        assert_eq!(*fault, None, "copy {i} must complete despite transients");
        assert!(marks.iter().all(|&m| m), "copy {i} has unfinished segments");
    }
    assert!(out.stats[11] > 0, "no retries recorded"); // stats_key: retries
    assert!(out.log.dma_transient > 0, "no transients injected");
    assert_eq!(out.pinned, 0);
}

/// Acceptance: a client killed mid-copy is fully reclaimed — its rings
/// drained, in-flight tasks aborted, and every pin released.
#[test]
fn orphan_reclamation_sweeps_dead_client() {
    let case = ChaosCase {
        seed: 11,
        channels: 1,
        ncopies: 6,
        len: 256 * 1024,
        transient: 0.0,
        hard: 0.0,
        timeout: 0.0,
        stale: 0.0,
        kill: true,
    };
    let out = run_chaos(&case);
    let orphans = out.stats[14]; // stats_key: orphans_reclaimed
    assert!(orphans > 0, "no orphans reclaimed: {:?}", out.stats);
    assert_eq!(out.pinned, 0, "orphan sweep leaked pins");
    assert!(out.phantoms.is_empty(), "{:?}", out.phantoms);
    // Every descriptor the client got back is settled one way or the
    // other: completed before the kill, or poisoned by the sweep.
    for (i, (fault, marks)) in out.per_copy.iter().enumerate() {
        assert!(
            fault.is_some() || marks.iter().all(|&m| m),
            "copy {i} left unsettled after the orphan sweep"
        );
    }
}

/// Acceptance: a munmap racing a copy resolves safely either way — the
/// unmap is refused while frames are pinned, or the copy is poisoned;
/// never a torn copy into freed memory, and never a leaked pin.
#[test]
fn munmap_race_is_pinned_or_poisoned() {
    for seed in [1u64, 2, 3, 4, 5] {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let os = Os::boot(&h, machine, 4096);
        let plan = FaultPlan::new(FaultConfig {
            seed,
            ..Default::default()
        });
        let svc = os.install_copier(
            vec![os.machine.core(1)],
            CopierConfig {
                use_dma: true,
                fault_plan: Some(Rc::clone(&plan)),
                ..Default::default()
            },
        );
        let proc = os.spawn_process();
        let lib = proc.lib();
        let uspace = Rc::clone(&lib.uspace);
        let len = 256 * 1024;
        let src = uspace.mmap(len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(len, Prot::RW, true).unwrap();
        uspace.write_bytes(src, &pattern(0, seed, len)).unwrap();

        // Delayed munmap race (FaultPlan picks the moment).
        let t = plan.race_times(1, Nanos(60_000))[0];
        let us2 = Rc::clone(&uspace);
        let h2 = h.clone();
        let unmapped = Rc::new(RefCell::new(false));
        let un2 = Rc::clone(&unmapped);
        sim.spawn("racer", async move {
            h2.sleep(t).await;
            if us2.munmap(dst, len).is_ok() {
                *un2.borrow_mut() = true;
            }
        });

        let descr = Rc::new(RefCell::new(None));
        let dd = Rc::clone(&descr);
        let lib2 = Rc::clone(&lib);
        let svc2 = Rc::clone(&svc);
        let core = os.machine.core(0);
        sim.spawn("client", async move {
            let d = lib2.amemcpy(&core, dst, src, len).await.expect("admitted");
            let _ = lib2.csync_all(&core).await;
            dd.borrow_mut().replace(d);
            svc2.stop();
        });
        sim.run();

        let d = descr.borrow().clone().unwrap();
        assert!(
            d.fault().is_some() || d.all_ready(),
            "seed {seed}: descriptor left unsettled after munmap race"
        );
        if d.all_ready() && !*unmapped.borrow() {
            let mut got = vec![0u8; len];
            uspace.read_bytes(dst, &mut got).unwrap();
            assert_eq!(got, pattern(0, seed, len), "seed {seed}: torn copy");
        }
        assert_no_pinned_leaks(&os.pm);
    }
}
