//! Table 1's capability matrix, asserted as executable facts about this
//! implementation: Copier works without page alignment, across privilege
//! levels and address spaces, without blocking the submitter, and it
//! absorbs redundant copies — the combination no baseline system offers.

use std::rc::Rc;

use copier::client::CopierHandle;
use copier::core::{Copier, CopierConfig};
use copier::hw::CostModel;
use copier::mem::{AddressSpace, AllocPolicy, PhysMem, Prot};
use copier::sim::{Machine, Nanos, Sim};

struct World {
    sim: Sim,
    machine: Rc<Machine>,
    pm: Rc<PhysMem>,
    svc: Rc<Copier>,
}

fn world() -> World {
    let sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let pm = Rc::new(PhysMem::new(4096, AllocPolicy::Scattered));
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        Rc::new(CostModel::default()),
        CopierConfig::default(),
    );
    svc.start();
    World {
        sim,
        machine,
        pm,
        svc,
    }
}

#[test]
fn no_alignment_requirement() {
    // Zero-copy sockets and zIO need page-aligned, page-granular buffers;
    // Copier copies arbitrary ragged ranges.
    let mut w = world();
    let space = AddressSpace::new(1, Rc::clone(&w.pm));
    let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
    let core = w.machine.core(0);
    let svc = Rc::clone(&w.svc);
    w.sim.spawn("t", async move {
        let src = space.mmap(16 * 1024, Prot::RW, true).unwrap();
        let dst = space.mmap(16 * 1024, Prot::RW, true).unwrap();
        let data = vec![0x5Au8; 7331];
        space.write_bytes(src.add(13), &data).unwrap();
        lib.amemcpy(&core, dst.add(777), src.add(13), 7331)
            .await
            .expect("admitted");
        lib.csync(&core, dst.add(777), 7331).await.unwrap();
        let mut out = vec![0u8; 7331];
        space.read_bytes(dst.add(777), &mut out).unwrap();
        assert_eq!(out, data);
        svc.stop();
    });
    w.sim.run();
}

#[test]
fn cross_address_space_copy() {
    // IPC-style: source in process A, destination in process B.
    let mut w = world();
    let a = AddressSpace::new(1, Rc::clone(&w.pm));
    let b = AddressSpace::new(2, Rc::clone(&w.pm));
    let lib = CopierHandle::new(&w.svc, Rc::clone(&a));
    let core = w.machine.core(0);
    let svc = Rc::clone(&w.svc);
    let b2 = Rc::clone(&b);
    w.sim.spawn("t", async move {
        let src = a.mmap(4096, Prot::RW, true).unwrap();
        let dst = b2.mmap(4096, Prot::RW, true).unwrap();
        a.write_bytes(src, b"cross-space message").unwrap();
        lib._amemcpy(
            &core,
            dst,
            src,
            19,
            copier::client::AmemcpyOpts {
                dst_space: Some(Rc::clone(&b2)),
                ..Default::default()
            },
        )
        .await
        .expect("admitted");
        lib.csync_in(&core, b2.id(), dst, 19, 0).await.unwrap();
        let mut out = [0u8; 19];
        b2.read_bytes(dst, &mut out).unwrap();
        assert_eq!(&out, b"cross-space message");
        svc.stop();
    });
    w.sim.run();
}

#[test]
fn submission_does_not_block() {
    // The submitter's cost is bounded by queue ops, independent of size.
    let mut w = world();
    let space = AddressSpace::new(1, Rc::clone(&w.pm));
    let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
    let core = w.machine.core(0);
    let svc = Rc::clone(&w.svc);
    let h = w.sim.handle();
    w.sim.spawn("t", async move {
        let len = 1024 * 1024; // 1 MB — takes ~95us to actually copy
        let src = space.mmap(len, Prot::RW, true).unwrap();
        let dst = space.mmap(len, Prot::RW, true).unwrap();
        let t0 = h.now();
        lib.amemcpy(&core, dst, src, len).await.expect("admitted");
        let submit_time = h.now() - t0;
        assert!(
            submit_time < Nanos::from_micros(1),
            "submission must not block on the copy, took {submit_time}"
        );
        lib.csync(&core, dst, len).await.unwrap();
        svc.stop();
    });
    w.sim.run();
}

#[test]
fn multiple_replicas_supported() {
    // Unlike remapping-based zero-copy, the same source can be copied to
    // many independent destinations, each privately mutable.
    let mut w = world();
    let space = AddressSpace::new(1, Rc::clone(&w.pm));
    let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
    let core = w.machine.core(0);
    let svc = Rc::clone(&w.svc);
    w.sim.spawn("t", async move {
        let src = space.mmap(8192, Prot::RW, true).unwrap();
        space.write_bytes(src, b"replicate me").unwrap();
        let mut dsts = Vec::new();
        for _ in 0..4 {
            let d = space.mmap(8192, Prot::RW, true).unwrap();
            lib.amemcpy(&core, d, src, 12).await.expect("admitted");
            dsts.push(d);
        }
        lib.csync_all(&core).await.unwrap();
        for (i, d) in dsts.iter().enumerate() {
            space.write_bytes(d.add(10), &[b'0' + i as u8]).unwrap();
        }
        for (i, d) in dsts.iter().enumerate() {
            let mut out = [0u8; 12];
            space.read_bytes(*d, &mut out).unwrap();
            assert_eq!(&out[..10], b"replicate ");
            assert_eq!(out[10], b'0' + i as u8, "replica {i} is independent");
        }
        svc.stop();
    });
    w.sim.run();
}

#[test]
fn absorbs_redundant_copies() {
    let mut w = world();
    let space = AddressSpace::new(1, Rc::clone(&w.pm));
    let lib = CopierHandle::new(&w.svc, Rc::clone(&space));
    let core = w.machine.core(0);
    let svc = Rc::clone(&w.svc);
    w.sim.spawn("t", async move {
        let a = space.mmap(32 * 1024, Prot::RW, true).unwrap();
        let b = space.mmap(32 * 1024, Prot::RW, true).unwrap();
        let c = space.mmap(32 * 1024, Prot::RW, true).unwrap();
        space.write_bytes(a, &vec![9u8; 32 * 1024]).unwrap();
        lib.amemcpy(&core, b, a, 32 * 1024).await.expect("admitted");
        lib.amemcpy(&core, c, b, 32 * 1024).await.expect("admitted");
        lib.csync(&core, c, 32 * 1024).await.unwrap();
        assert!(svc.stats().bytes_absorbed > 0, "{:?}", svc.stats());
        let mut out = vec![0u8; 32 * 1024];
        space.read_bytes(c, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 9));
        svc.stop();
    });
    w.sim.run();
}
