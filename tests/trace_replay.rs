//! Record/replay differential tests over the full service stack
//! (DESIGN.md §14). A seeded fault-injected run is recorded; replaying
//! the trace must reproduce the run bit-for-bit — same end-of-time
//! timestamp, same stats, same destination bytes, and a re-recorded
//! event log that encodes to the same bytes. Perturbing the log must
//! make the divergence checker fire at the first bad round.

use std::rc::Rc;

use copier::core::CopierConfig;
use copier::mem::Prot;
use copier::os::Os;
use copier::sim::{FaultConfig, FaultPlan, Machine, Sim, SimRng, Trace, TraceEvent, Tracer};

/// What one run produces, everything that must be reproducible.
#[derive(Debug, PartialEq)]
struct RunOut {
    end: u64,
    stats: Vec<u64>,
    digest: u64,
}

/// One fault-injected copy workload (modeled on tests/determinism.rs),
/// optionally recorded into or replayed from a tracer. The workload data
/// derives from `seed`; the fault schedule from `plan_seed` — split so a
/// replay can run under a *different* plan seed and still be checked
/// bit-identical, proving every draw came from the log.
fn traced_run(seed: u64, plan_seed: u64, tracer: Option<Rc<Tracer>>) -> RunOut {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 2048);
    let plan = FaultPlan::new(FaultConfig {
        seed: plan_seed,
        dma_transient_prob: 0.3,
        dma_hard_prob: 0.05,
        dma_timeout_prob: 0.1,
        atc_stale_prob: 0.3,
        ..Default::default()
    });
    if let Some(t) = &tracer {
        t.emit(TraceEvent::Meta { key: 1, val: seed });
        plan.set_tracer(t);
    }
    let svc = os.install_copier(
        vec![os.machine.core(1)],
        CopierConfig {
            use_dma: true,
            dma_channels: 2,
            fault_plan: Some(Rc::clone(&plan)),
            tracer: tracer.clone(),
            ..Default::default()
        },
    );
    let proc = os.spawn_process();
    let lib = proc.lib();
    let uspace = Rc::clone(&lib.uspace);
    let len = 96 * 1024;
    let mut bufs = Vec::new();
    let mut data = vec![0u8; len];
    let fill = SimRng::new(seed ^ 0xF111);
    for i in 0..4usize {
        let src = uspace.mmap(len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(len, Prot::RW, true).unwrap();
        for b in data.iter_mut() {
            *b = (fill.next_u64() >> (8 * (i % 8))) as u8;
        }
        uspace.write_bytes(src, &data).unwrap();
        bufs.push((src, dst));
    }
    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    let bufs2 = bufs.clone();
    sim.spawn("client", async move {
        for &(src, dst) in &bufs2 {
            let _ = lib2.amemcpy(&core, dst, src, len).await;
        }
        let _ = lib2.csync_all(&core).await;
        svc2.stop();
    });
    let end = sim.run();
    let s = svc.stats();
    let stats = vec![
        s.tasks_completed,
        s.bytes_copied,
        s.faults,
        s.retries,
        s.fallback_bytes,
        s.quarantined_channels,
        s.dispatch.dma_wait.as_nanos(),
        s.dispatch.retries,
    ];
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut got = vec![0u8; len];
    for &(_src, dst) in &bufs {
        uspace.read_bytes(dst, &mut got).unwrap();
        for &b in &got {
            digest = (digest ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    RunOut {
        end: end.as_nanos(),
        stats,
        digest,
    }
}

/// Recording charges no virtual time: a traced run is byte-identical to
/// an untraced one.
#[test]
fn recording_does_not_perturb_the_run() {
    let plain = traced_run(0xC0DE, 0xC0DE, None);
    let rec = Tracer::record();
    let traced = traced_run(0xC0DE, 0xC0DE, Some(Rc::clone(&rec)));
    assert_eq!(plain, traced, "tracing changed the execution");
    let trace = rec.finish();
    assert!(trace.rounds() > 0, "no rounds recorded");
}

/// The core differential: record → replay → bit-identical outputs, no
/// divergence, and a byte-identical re-recorded log. The replay consumes
/// its fault draws from the log, so it holds even though the replay's
/// fault plan is seeded differently.
#[test]
fn recorded_run_replays_bit_identically() {
    for seed in [0xC0DEu64, 7, 0xFEED_F00D] {
        let rec = Tracer::record();
        let a = traced_run(seed, seed, Some(Rc::clone(&rec)));
        let trace = rec.finish();

        // Replay under a *different* fault-plan seed: every draw must
        // come from the log, not the plan's RNG, or the checker fires.
        let rep = Tracer::replay(trace.clone());
        let b = traced_run(seed, seed ^ 0xBAD_5EED, Some(Rc::clone(&rep)));
        if let Some(d) = rep.divergence() {
            panic!("seed {seed:#x}: replay diverged: {d}");
        }
        assert_eq!(a.end, b.end, "seed {seed:#x}: end time differs");
        assert_eq!(a.stats, b.stats, "seed {seed:#x}: stats differ");
        assert_eq!(a.digest, b.digest, "seed {seed:#x}: memory differs");
        assert_eq!(
            rep.finish().encode(),
            trace.encode(),
            "seed {seed:#x}: re-recorded trace differs"
        );
    }
}

/// Perturbing one recorded round-end hash makes the checker fire exactly
/// there: the first bad round is named, nothing earlier.
#[test]
fn perturbed_round_hash_is_localized() {
    let rec = Tracer::record();
    traced_run(42, 42, Some(Rc::clone(&rec)));
    let mut trace = rec.finish();

    // Corrupt the pending-set hash of a mid-stream RoundEnd.
    let rounds: Vec<usize> = trace
        .events()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e, TraceEvent::RoundEnd { .. }).then_some(i))
        .collect();
    assert!(rounds.len() >= 3, "need a few rounds to perturb the middle");
    let pos = rounds[rounds.len() / 2];
    let TraceEvent::RoundEnd {
        round,
        pending,
        index,
        stats,
    } = trace.events()[pos]
    else {
        unreachable!()
    };
    trace.events_mut()[pos] = TraceEvent::RoundEnd {
        round,
        pending: pending ^ 1,
        index,
        stats,
    };

    let rep = Tracer::replay(trace);
    traced_run(42, 42, Some(Rc::clone(&rep)));
    let d = rep.divergence().expect("perturbed hash must diverge");
    assert_eq!(d.pos, pos, "checker must stop at the corrupted event: {d}");
    assert_eq!(d.round, round, "checker must name the corrupted round: {d}");
    assert_eq!(
        d.expected,
        Some(TraceEvent::RoundEnd {
            round,
            pending: pending ^ 1,
            index,
            stats
        }),
        "{d}"
    );
}

/// Save/load round-trip through the wire format, end to end.
#[test]
fn saved_trace_replays_from_disk() {
    let rec = Tracer::record();
    let a = traced_run(99, 99, Some(Rc::clone(&rec)));
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).ok();
    let path = dir.join("trace_replay_roundtrip.cptr");
    rec.finish().save(&path).unwrap();

    let trace = Trace::load(&path).unwrap();
    let rep = Tracer::replay(trace);
    let b = traced_run(99, 99, Some(Rc::clone(&rep)));
    assert!(rep.divergence().is_none(), "{}", rep.divergence().unwrap());
    assert_eq!(a, b);
}
