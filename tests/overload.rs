//! Overload robustness: admission control, credit backpressure, and
//! memory-pressure graceful degradation (DESIGN.md §Overload model).
//!
//! Acceptance properties:
//!
//! 1. open-loop overload at 2× saturation keeps goodput ≥ 80% of peak —
//!    no congestion collapse — and no tenant falls below half its fair
//!    share (priority-aware shedding + copy-length CFS);
//! 2. the same seed reproduces byte-identical outcomes;
//! 3. a too-tight global watermark sheds with typed `Overloaded` faults
//!    while the least-served tenant is exempted from shedding;
//! 4. under memory pressure the service degrades to the unpinned
//!    synchronous path with correct bytes, and recovers automatically
//!    once pressure clears;
//! 5. `reap_client` returns every quota: credits, in-flight counters,
//!    pinned frames, and the global admitted window;
//! 6. every client submission terminates — success, bounded-backoff
//!    retry, or typed error — even against a service that never runs.

use std::cell::Cell;
use std::rc::Rc;

use copier::client::{AmemcpyOpts, CopierHandle};
use copier::core::{AdmissionConfig, Copier, CopierConfig, CopierStats};
use copier::hw::CostModel;
use copier::mem::{AddressSpace, AllocPolicy, PhysMem, Prot, VirtAddr};
use copier::sim::{Machine, Nanos, Sim, WorkloadConfig, WorkloadPlan};
use copier_testkit::prop::{check_with, Config};
use copier_testkit::{assert_no_pinned_leaks, prop_assert, prop_assert_eq, TestRng};

const TENANTS: usize = 4;
const HORIZON: Nanos = Nanos::from_millis(2);
const LEN_MIN: usize = 16 * 1024;
const LEN_MAX: usize = 64 * 1024;
/// Nominal single-core service copy bandwidth, bytes/ns.
const SAT_RATE: f64 = 10.0;
const POOL: usize = 8;

fn tight_admission() -> AdmissionConfig {
    AdmissionConfig {
        max_client_tasks: 64,
        max_client_bytes: 4 * 1024 * 1024,
        max_client_pinned: 4096,
        global_high_bytes: 8 * 1024 * 1024,
        global_low_bytes: 6 * 1024 * 1024,
    }
}

struct Out {
    goodput: f64,
    per_tenant: Vec<u64>,
    client_rejected: u64,
    stats: CopierStats,
    end: Nanos,
}

/// Open-loop multi-tenant run at `load` × nominal saturation. Mirrors the
/// `fig_overload` bench harness.
fn run(load: f64, seed: u64, admission: AdmissionConfig, pressured: bool) -> Out {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, TENANTS + 1);
    let pm = Rc::new(PhysMem::new(8192, AllocPolicy::Scattered));
    let cost = Rc::new(CostModel::default());
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(TENANTS)],
        cost,
        CopierConfig {
            admission,
            ..CopierConfig::default()
        },
    );
    svc.start();

    let mean_len = (LEN_MIN + LEN_MAX) as f64 / 2.0;
    let gap = (mean_len * TENANTS as f64 / (load * SAT_RATE)) as u64;
    let plan = WorkloadPlan::new(WorkloadConfig {
        seed,
        tenants: TENANTS,
        mean_gap: Nanos(gap.max(1)),
        len_min: LEN_MIN,
        len_max: LEN_MAX,
        horizon: HORIZON,
        ..Default::default()
    });

    let mut tenants = Vec::new();
    for t in 0..TENANTS {
        let space = AddressSpace::new(t as u32 + 1, Rc::clone(&pm));
        let lib = CopierHandle::new(&svc, Rc::clone(&space));
        let pool: Vec<(VirtAddr, VirtAddr)> = (0..POOL)
            .map(|_| {
                (
                    space.mmap(LEN_MAX, Prot::RW, true).unwrap(),
                    space.mmap(LEN_MAX, Prot::RW, true).unwrap(),
                )
            })
            .collect();
        tenants.push((lib, pool));
    }
    if pressured {
        let hi = pm.allocated().max(2);
        pm.set_watermarks(hi - 1, hi);
    }

    let client_rejected = Rc::new(Cell::new(0u64));
    let done = Rc::new(Cell::new(0usize));
    for (t, (lib, pool)) in tenants.iter().enumerate() {
        let lib = Rc::clone(lib);
        let pool = pool.clone();
        let arrivals = plan.tenant(t).to_vec();
        let core = machine.core(t);
        let h2 = h.clone();
        let rej = Rc::clone(&client_rejected);
        let done2 = Rc::clone(&done);
        sim.spawn("tenant", async move {
            for (i, a) in arrivals.iter().enumerate() {
                let now = h2.now();
                if a.at > now {
                    h2.sleep(a.at - now).await;
                }
                let (src, dst) = pool[i % POOL];
                if lib
                    .try_amemcpy(&core, dst, src, a.len, AmemcpyOpts::default())
                    .await
                    .is_err()
                {
                    rej.set(rej.get() + 1);
                }
            }
            done2.set(done2.get() + 1);
        });
    }

    let svc2 = Rc::clone(&svc);
    let h2 = h.clone();
    let done2 = Rc::clone(&done);
    let end = Rc::new(Cell::new(Nanos::ZERO));
    let end2 = Rc::clone(&end);
    sim.spawn("driver", async move {
        while done2.get() < TENANTS {
            h2.sleep(Nanos::from_micros(20)).await;
        }
        let mut stable = 0;
        while stable < 3 {
            h2.sleep(Nanos::from_micros(10)).await;
            stable = if svc2.admitted_bytes() == 0 {
                stable + 1
            } else {
                0
            };
        }
        end2.set(h2.now());
        svc2.stop();
    });
    sim.run();

    assert_no_pinned_leaks(&pm);
    let per_tenant: Vec<u64> = tenants
        .iter()
        .map(|(lib, _)| lib.client.copied_total.get())
        .collect();
    let served: u64 = per_tenant.iter().sum();
    Out {
        goodput: served as f64 / end.get().as_nanos() as f64,
        per_tenant,
        client_rejected: client_rejected.get(),
        stats: svc.stats(),
        end: end.get(),
    }
}

fn stats_key(s: &CopierStats) -> Vec<u64> {
    vec![
        s.tasks_completed,
        s.bytes_copied,
        s.bytes_absorbed,
        s.syncs,
        s.aborts,
        s.faults,
        s.admission_rejected,
        s.shed_bytes,
        s.credits_granted,
        s.degraded_sync_copies,
        s.pressure_events,
    ]
}

/// Acceptance 1: 2× saturation keeps goodput ≥ 80% of peak, and no
/// tenant falls below half its fair share.
#[test]
fn overload_2x_keeps_goodput_and_fairness() {
    let runs: Vec<Out> = [1.0, 2.0, 4.0]
        .iter()
        .map(|&l| run(l, 42, tight_admission(), false))
        .collect();
    let peak = runs.iter().map(|o| o.goodput).fold(0.0, f64::max);
    let at2 = &runs[1];
    assert!(
        at2.goodput >= 0.8 * peak,
        "goodput collapsed past saturation: {:.2} vs peak {:.2} B/ns",
        at2.goodput,
        peak
    );
    // Overload must actually be overload: the client library refused
    // submissions rather than queueing without bound.
    assert!(at2.client_rejected > 0, "2x load never hit backpressure");
    let fair = at2.per_tenant.iter().sum::<u64>() / TENANTS as u64;
    for (t, &served) in at2.per_tenant.iter().enumerate() {
        assert!(
            served >= fair / 2,
            "tenant {t} starved: {served} served, fair share {fair}"
        );
    }
}

/// Acceptance 2: the same seed reproduces the identical outcome.
#[test]
fn overload_same_seed_identical_outcome() {
    let a = run(2.0, 7, tight_admission(), false);
    let b = run(2.0, 7, tight_admission(), false);
    assert_eq!(a.per_tenant, b.per_tenant);
    assert_eq!(a.client_rejected, b.client_rejected);
    assert_eq!(stats_key(&a.stats), stats_key(&b.stats));
    assert_eq!(a.end, b.end);
}

/// Acceptance 3: a too-tight global watermark sheds admitted work with
/// typed `Overloaded` faults, but never starves a tenant (the
/// least-served client is exempt from shedding).
#[test]
fn global_watermark_sheds_without_starvation() {
    let admission = AdmissionConfig {
        max_client_tasks: 256,
        max_client_bytes: 64 * 1024 * 1024,
        max_client_pinned: 4096,
        global_high_bytes: 2 * 1024 * 1024,
        global_low_bytes: 1024 * 1024,
    };
    let o = run(6.0, 13, admission, false);
    assert!(
        o.stats.admission_rejected > 0,
        "global watermark never shed: {:?}",
        stats_key(&o.stats)
    );
    assert!(o.stats.shed_bytes > 0);
    assert!(o.goodput > 0.5 * SAT_RATE, "shedding collapsed goodput");
    let fair = o.per_tenant.iter().sum::<u64>() / TENANTS as u64;
    for (t, &served) in o.per_tenant.iter().enumerate() {
        assert!(
            served >= fair / 2,
            "tenant {t} starved under shedding: {served} vs fair {fair}"
        );
    }
}

/// Acceptance 4a: under memory pressure every copy takes the degraded
/// unpinned synchronous path — and the bytes are still correct.
#[test]
fn degraded_sync_copy_is_correct_under_pressure() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let pm = Rc::new(PhysMem::new(4096, AllocPolicy::Scattered));
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        Rc::new(CostModel::default()),
        CopierConfig::default(),
    );
    svc.start();
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let len = 128 * 1024;
    let src = space.mmap(len, Prot::RW, true).unwrap();
    let dst = space.mmap(len, Prot::RW, true).unwrap();
    let data: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
    space.write_bytes(src, &data).unwrap();
    // Latch pressure before any copy runs.
    let hi = pm.allocated().max(2);
    pm.set_watermarks(hi - 1, hi);

    let svc2 = Rc::clone(&svc);
    let space2 = Rc::clone(&space);
    sim.spawn("app", async move {
        lib.amemcpy(&core, dst, src, len).await.unwrap();
        lib.csync(&core, dst, len).await.unwrap();
        let mut out = vec![0u8; len];
        space2.read_bytes(dst, &mut out).unwrap();
        assert_eq!(out, data, "degraded copy corrupted bytes");
        svc2.stop();
    });
    sim.run();
    let st = svc.stats();
    assert!(st.degraded_sync_copies >= 1, "{st:?}");
    assert!(st.pressure_events >= 1, "{st:?}");
    assert_no_pinned_leaks(&pm);
}

/// Acceptance 4b: once allocation falls back under the low watermark the
/// service leaves degraded mode on its own.
#[test]
fn pressure_recovery_reenables_async_path() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let pm = Rc::new(PhysMem::new(4096, AllocPolicy::Scattered));
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        Rc::new(CostModel::default()),
        CopierConfig::default(),
    );
    svc.start();
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let len = 64 * 1024;
    let src = space.mmap(len, Prot::RW, true).unwrap();
    let dst = space.mmap(len, Prot::RW, true).unwrap();
    let hi = pm.allocated().max(2);
    pm.set_watermarks(hi - 1, hi); // pressured now

    let svc2 = Rc::clone(&svc);
    let pm2 = Rc::clone(&pm);
    sim.spawn("app", async move {
        lib.amemcpy(&core, dst, src, len).await.unwrap();
        lib.csync(&core, dst, len).await.unwrap();
        let degraded_before = svc2.stats().degraded_sync_copies;
        assert!(degraded_before >= 1, "pressure did not degrade");
        // Relieve pressure: allocation is now at/below the low watermark.
        let cap = pm2.capacity();
        pm2.set_watermarks(pm2.allocated(), cap);
        lib.amemcpy(&core, dst, src, len).await.unwrap();
        lib.csync(&core, dst, len).await.unwrap();
        assert_eq!(
            svc2.stats().degraded_sync_copies,
            degraded_before,
            "service failed to leave degraded mode after recovery"
        );
        svc2.stop();
    });
    sim.run();
    assert!(!pm.pressure(), "pressure latch stuck");
    assert_no_pinned_leaks(&pm);
}

/// Acceptance 4c: the degraded unpinned path is byte-correct through the
/// arena even for misaligned, non-page-multiple copies over scattered
/// frames — the case where run coalescing degenerates to many small
/// extent pairs.
#[test]
fn degraded_copy_handles_misaligned_buffers_in_arena() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let pm = Rc::new(PhysMem::new(4096, AllocPolicy::Scattered));
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        Rc::new(CostModel::default()),
        CopierConfig::default(),
    );
    svc.start();
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let len = 96 * 1024 + 777; // not a page multiple
    let src = space.mmap(len + 8192, Prot::RW, true).unwrap().add(1234);
    let dst = space.mmap(len + 8192, Prot::RW, true).unwrap().add(3333);
    let data: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
    space.write_bytes(src, &data).unwrap();
    let hi = pm.allocated().max(2);
    pm.set_watermarks(hi - 1, hi); // pressured before the first copy

    let svc2 = Rc::clone(&svc);
    let space2 = Rc::clone(&space);
    sim.spawn("app", async move {
        lib.amemcpy(&core, dst, src, len).await.unwrap();
        lib.csync(&core, dst, len).await.unwrap();
        let mut out = vec![0u8; len];
        space2.read_bytes(dst, &mut out).unwrap();
        assert_eq!(out, data, "misaligned degraded copy corrupted bytes");
        svc2.stop();
    });
    sim.run();
    assert!(svc.stats().degraded_sync_copies >= 1);
    assert_no_pinned_leaks(&pm);
}

/// Acceptance 4d: a full multi-tenant overload run *under pressure* still
/// terminates with the degraded path engaged, and is deterministic.
#[test]
fn pressured_overload_degrades_deterministically() {
    let a = run(2.0, 9, tight_admission(), true);
    let b = run(2.0, 9, tight_admission(), true);
    assert!(
        a.stats.pressure_events >= 1,
        "pressured run never latched pressure: {:?}",
        stats_key(&a.stats)
    );
    assert!(
        a.stats.degraded_sync_copies >= 1,
        "pressured run never took the degraded path: {:?}",
        stats_key(&a.stats)
    );
    assert!(a.goodput > 0.0, "pressured overload made no progress");
    assert_eq!(a.per_tenant, b.per_tenant);
    assert_eq!(stats_key(&a.stats), stats_key(&b.stats));
    assert_eq!(a.end, b.end);
}

/// Satellite: after reaping the client and dropping its address space,
/// every arena frame is back in the free pool — the refcount plumbing of
/// the arena (alloc, CoW decref, pin/unpin, reap) balances exactly.
#[test]
fn teardown_after_reap_frees_every_arena_frame() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let pm = Rc::new(PhysMem::new(4096, AllocPolicy::Scattered));
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        Rc::new(CostModel::default()),
        CopierConfig::default(),
    );
    svc.start();
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let len = 64 * 1024;

    let svc2 = Rc::clone(&svc);
    let lib2 = Rc::clone(&lib);
    let space2 = Rc::clone(&space);
    let h2 = h.clone();
    sim.spawn("client", async move {
        let src = space2.mmap(len, Prot::RW, true).unwrap();
        let dst = space2.mmap(len, Prot::RW, true).unwrap();
        space2.write_bytes(src, &vec![7u8; len]).unwrap();
        for _ in 0..4 {
            let _ = lib2.amemcpy(&core, dst, src, len).await;
        }
        // Kill the client mid-stream, then let the sweep settle.
        svc2.reap_client(&lib2.client);
        h2.sleep(Nanos::from_micros(500)).await;
        svc2.stop();
    });
    sim.run();

    assert!(lib.client.dead.get());
    assert_no_pinned_leaks(&pm);
    drop(lib);
    drop(space);
    assert_eq!(
        pm.allocated(),
        0,
        "arena frames leaked after space teardown"
    );
}

/// One randomized reap scenario: copies in flight, client dies at a
/// seeded instant.
#[derive(Debug, Clone)]
struct ReapCase {
    ncopies: usize,
    len: usize,
    kill_at: u64,
}

/// Satellite property: `reap_client` returns every quota — credits back
/// to the cap, in-flight counters to zero, pinned frames released, and
/// the client's share of the global admitted window returned.
#[test]
fn reap_returns_all_quota_credits_and_pins() {
    let mut cfg = Config::from_env();
    if std::env::var("TESTKIT_CASES").is_err() {
        cfg.cases = 16;
    }
    check_with(
        &cfg,
        |rng: &mut TestRng| ReapCase {
            ncopies: rng.range_usize(2, 8),
            len: rng.range_usize(1, 5) * 64 * 1024,
            kill_at: 1_000 + rng.next_u64() % 120_000,
        },
        |_| Vec::new(),
        |case: &ReapCase| {
            let mut sim = Sim::new();
            let h = sim.handle();
            let machine = Machine::new(&h, 2);
            let pm = Rc::new(PhysMem::new(4096, AllocPolicy::Scattered));
            let svc = Copier::new(
                &h,
                Rc::clone(&pm),
                vec![machine.core(1)],
                Rc::new(CostModel::default()),
                CopierConfig::default(),
            );
            svc.start();
            let space = AddressSpace::new(1, Rc::clone(&pm));
            let lib = CopierHandle::new(&svc, Rc::clone(&space));
            let core = machine.core(0);

            let svc2 = Rc::clone(&svc);
            let lib2 = Rc::clone(&lib);
            let h2 = h.clone();
            let kill_at = Nanos(case.kill_at);
            sim.spawn("killer", async move {
                h2.sleep(kill_at).await;
                svc2.reap_client(&lib2.client);
            });

            let svc3 = Rc::clone(&svc);
            let lib3 = Rc::clone(&lib);
            let space2 = Rc::clone(&space);
            let (ncopies, len) = (case.ncopies, case.len);
            let h3 = h.clone();
            sim.spawn("client", async move {
                for _ in 0..ncopies {
                    let src = space2.mmap(len, Prot::RW, true).unwrap();
                    let dst = space2.mmap(len, Prot::RW, true).unwrap();
                    // Rejections after death are expected; the property is
                    // about what reaping returns, not what it admits.
                    let _ = lib3.amemcpy(&core, dst, src, len).await;
                }
                let _ = lib3.csync_all(&core).await;
                // Let the sweep and any in-flight work settle.
                h3.sleep(Nanos::from_micros(500)).await;
                svc3.stop();
            });
            sim.run();

            let c = &lib.client;
            prop_assert!(c.dead.get(), "client must be dead after reap");
            prop_assert_eq!(
                c.credits.get(),
                c.credit_cap.get(),
                "credits not fully returned"
            );
            prop_assert_eq!(c.inflight_tasks.get(), 0, "in-flight task quota leaked");
            prop_assert_eq!(c.inflight_bytes.get(), 0, "in-flight byte quota leaked");
            prop_assert_eq!(c.pinned.get(), 0, "pinned-frame quota leaked");
            prop_assert_eq!(
                svc.admitted_bytes(),
                0,
                "global admitted window not returned"
            );
            prop_assert_eq!(pm.pinned_frames(), 0, "physical pins leaked");
            Ok(())
        },
    );
}

/// Satellite: reaping a client *while the service is pressure-degraded*
/// reconciles exactly like a reap on the async path. Degraded-sync
/// completions take no pins and return credits inline; the reap sweep
/// must balance against that accounting, not double-return anything —
/// credits end at the cap (not above), quotas at zero, no pins leaked.
#[test]
fn reap_during_pressure_degraded_mode_reconciles() {
    for seed in [3u64, 17, 29] {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let pm = Rc::new(PhysMem::new(4096, AllocPolicy::Scattered));
        let svc = Copier::new(
            &h,
            Rc::clone(&pm),
            vec![machine.core(1)],
            Rc::new(CostModel::default()),
            CopierConfig::default(),
        );
        svc.start();
        let space = AddressSpace::new(1, Rc::clone(&pm));
        let lib = CopierHandle::new(&svc, Rc::clone(&space));
        let core = machine.core(0);
        let len = 64 * 1024;
        let src = space.mmap(len, Prot::RW, true).unwrap();
        let dst = space.mmap(len, Prot::RW, true).unwrap();
        space.write_bytes(src, &vec![5u8; len]).unwrap();
        // Latch pressure before the first copy: every admitted task runs
        // on the degraded unpinned synchronous path.
        let hi = pm.allocated().max(2);
        pm.set_watermarks(hi - 1, hi);

        // The kill lands at a seeded instant inside the busy window, so
        // across seeds the reap interleaves differently with degraded
        // completions.
        let svc2 = Rc::clone(&svc);
        let lib2 = Rc::clone(&lib);
        let h2 = h.clone();
        let kill_at = Nanos(2_000 + seed * 13_777);
        sim.spawn("killer", async move {
            h2.sleep(kill_at).await;
            svc2.reap_client(&lib2.client);
        });

        let svc3 = Rc::clone(&svc);
        let lib3 = Rc::clone(&lib);
        let h3 = h.clone();
        sim.spawn("client", async move {
            for _ in 0..6 {
                // Post-reap rejections are expected; the property is the
                // accounting, not the admissions.
                let _ = lib3.amemcpy(&core, dst, src, len).await;
            }
            let _ = lib3.csync_all(&core).await;
            h3.sleep(Nanos::from_micros(500)).await;
            svc3.stop();
        });
        sim.run();

        let st = svc.stats();
        assert!(
            st.pressure_events >= 1,
            "seed {seed}: pressure never latched: {st:?}"
        );
        let c = &lib.client;
        assert!(c.dead.get(), "seed {seed}: client must be dead after reap");
        assert_eq!(
            c.credits.get(),
            c.credit_cap.get(),
            "seed {seed}: credits must end exactly at the cap"
        );
        assert_eq!(c.inflight_tasks.get(), 0, "seed {seed}: task quota leaked");
        assert_eq!(c.inflight_bytes.get(), 0, "seed {seed}: byte quota leaked");
        assert_eq!(c.pinned.get(), 0, "seed {seed}: pinned quota leaked");
        assert_eq!(
            svc.admitted_bytes(),
            0,
            "seed {seed}: global admitted window not returned"
        );
        assert_no_pinned_leaks(&pm);
        for set in c.sets.borrow().iter() {
            set.index_consistent()
                .unwrap_or_else(|m| panic!("seed {seed}: index diverged: {m}"));
        }
    }
}

/// Satellite property: every submission terminates in bounded time with
/// success or a typed error — even against a service that never runs a
/// single round (the pathological worst case for spin-retry).
#[test]
fn submissions_always_terminate_with_typed_outcome() {
    let mut cfg = Config::from_env();
    if std::env::var("TESTKIT_CASES").is_err() {
        cfg.cases = 12;
    }
    check_with(
        &cfg,
        |rng: &mut TestRng| (rng.range_usize(1200, 2500), rng.range_usize(1, 9) * 1024),
        |_| Vec::new(),
        |&(n, len): &(usize, usize)| {
            let mut sim = Sim::new();
            let h = sim.handle();
            let machine = Machine::new(&h, 2);
            let pm = Rc::new(PhysMem::new(8192, AllocPolicy::Scattered));
            let svc = Copier::new(
                &h,
                Rc::clone(&pm),
                vec![machine.core(1)],
                Rc::new(CostModel::default()),
                CopierConfig::default(),
            );
            // Deliberately never started: credits are never regranted and
            // the ring is never drained.
            let space = AddressSpace::new(1, Rc::clone(&pm));
            let lib = CopierHandle::new(&svc, Rc::clone(&space));
            let core = machine.core(0);
            let ok = Rc::new(Cell::new(0usize));
            let err = Rc::new(Cell::new(0usize));
            let (ok2, err2) = (Rc::clone(&ok), Rc::clone(&err));
            sim.spawn("flood", async move {
                let src = space.mmap(len, Prot::RW, true).unwrap();
                let dst = space.mmap(len, Prot::RW, true).unwrap();
                for _ in 0..n {
                    match lib.amemcpy(&core, dst, src, len).await {
                        Ok(_) => ok2.set(ok2.get() + 1),
                        Err(_) => err2.set(err2.get() + 1),
                    }
                }
            });
            // The sim terminating at all proves every submission returned
            // (an unbounded spin would loop on virtual time forever).
            sim.run();
            prop_assert_eq!(ok.get() + err.get(), n, "a submission vanished");
            prop_assert!(
                err.get() > 0,
                "flooding a dead service must surface typed errors"
            );
            prop_assert!(
                ok.get() <= copier::core::DEFAULT_QUEUE_CAP,
                "more successes than the credit cap allows: {}",
                ok.get()
            );
            Ok(())
        },
    );
}
