//! Differential properties for the O(active) control plane (DESIGN.md
//! §18): the active-set / incremental-aggregate fast path must be a pure
//! read-path optimisation. At a fixed `(seed, shards)` pair, a run with
//! `full_sweep: true` (every read recomputed by the legacy O(clients)
//! sweeps) and a run with the fast path must agree on *everything* —
//! per-copy outcomes, destination bytes, virtual end time, the full
//! stats vector, per-shard counters — bit for bit.
//!
//! Coverage tiers:
//!
//! 1. **Fault-free equivalence** at 1–4 shards (the 1-shard case is the
//!    single-service-core fast path; sharded cases add the commutative
//!    delta-folded trace hashes). Aggregate audits
//!    ([`copier::core::Copier::audit_aggregates`]) cross-check every
//!    incrementally maintained total against a from-scratch sweep.
//! 2. **Chaos equivalence**: injected DMA faults, stale ATC, and silent
//!    flips draw in dispatch order, which the fast path must not perturb.
//! 3. **Membership churn**: clients leaving mid-run (reap), arriving
//!    into a restarted incarnation (crash-recovery adoption), and idle
//!    clients re-activated by service-internal scrub heals.
//! 4. **Traced hashes**: a run recorded on the fast path replays through
//!    the full-sweep build with zero divergence — the per-round cached
//!    hash sums equal the full recompute, round by round.
//!
//! Reproduce failures with the printed `TESTKIT_REPRO=<seed>` line.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use copier::client::AmemcpyOpts;
use copier::core::{
    stats_to_vec, ControlObs, CopierConfig, CopyFault, JournalStore, PollMode, SegDescriptor,
    VerifyPolicy,
};
use copier::mem::Prot;
use copier::os::Os;
use copier::sim::{FaultConfig, FaultPlan, Machine, Nanos, Sim, Tracer};
use copier_testkit::prop::{check_with, Config, PropResult};
use copier_testkit::{assert_no_pinned_leaks, prop_assert, prop_assert_eq, TestRng};

/// One multi-tenant scenario, identical between the fast-path and
/// full-sweep runs it is compared across — only `full_sweep` varies.
#[derive(Debug, Clone)]
struct SoakCase {
    seed: u64,
    tenants: usize,
    ncopies: usize,
    len: usize,
    faults: Option<FaultConfig>,
}

fn gen_base(rng: &mut TestRng) -> SoakCase {
    SoakCase {
        seed: rng.next_u64(),
        tenants: rng.range_usize(2, 6),
        ncopies: rng.range_usize(2, 5),
        len: rng.range_usize(2, 12) * 4 * 1024 + rng.range_usize(0, 3) * 512,
        faults: None,
    }
}

fn gen_chaos(rng: &mut TestRng) -> SoakCase {
    let mut case = gen_base(rng);
    case.faults = Some(FaultConfig {
        seed: case.seed ^ 0x50AC,
        dma_transient_prob: rng.gen_f64() * 0.3,
        dma_hard_prob: if rng.gen_bool(0.3) {
            rng.gen_f64() * 0.1
        } else {
            0.0
        },
        dma_timeout_prob: if rng.gen_bool(0.3) {
            rng.gen_f64() * 0.15
        } else {
            0.0
        },
        atc_stale_prob: rng.gen_f64() * 0.4,
        dma_flip_prob: if rng.gen_bool(0.5) {
            rng.gen_f64() * 0.2
        } else {
            0.0
        },
        ..Default::default()
    });
    case
}

/// Deterministic per-(tenant, copy) source pattern.
fn pattern(tenant: usize, copy: usize, seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed
        ^ (tenant as u64).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (copy as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.push((x >> 33) as u8);
    }
    v
}

fn fnv(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest = (*digest ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
}

/// Everything that must be bit-identical between a fast-path run and its
/// full-sweep reference at the same `(seed, shards)`.
#[derive(Debug, PartialEq)]
struct Exact {
    /// Per (tenant, copy) in submission order: fault + destination digest.
    per_copy: Vec<(usize, usize, Option<CopyFault>, u64)>,
    end: u64,
    stats: Vec<u64>,
    per_shard: Vec<(u64, u64, u64)>,
    pinned: usize,
    /// `None` unless a copy completed faultless with wrong bytes.
    phantom: Option<String>,
}

fn soak_cfg(case: &SoakCase, shards: usize, full_sweep: bool) -> CopierConfig {
    let verify = case.faults.as_ref().is_some_and(|f| f.dma_flip_prob > 0.0);
    CopierConfig {
        shards,
        use_dma: case.faults.is_some(),
        dma_channels: 2,
        verify: if verify {
            VerifyPolicy::Full
        } else {
            VerifyPolicy::Off
        },
        polling: PollMode::Napi {
            spin_rounds: 64,
            park_timeout: Nanos(20_000),
        },
        full_sweep,
        ..Default::default()
    }
}

/// Runs one scenario and returns the exact observable state plus the
/// control-plane observability counters. An optional `kill_at` reaps
/// tenant 0 mid-run (membership-churn coverage). The aggregate audit
/// runs post-settle inside, so every property exercises it for free.
fn run_soak(
    case: &SoakCase,
    shards: usize,
    full_sweep: bool,
    kill_at: Option<Nanos>,
) -> (Exact, ControlObs) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, case.tenants + shards);
    let os = Os::boot(&h, machine, 8192);
    let plan = case.faults.clone().map(FaultPlan::new);
    let mut cfg = soak_cfg(case, shards, full_sweep);
    cfg.fault_plan = plan.clone();
    os.install_copier(
        (0..shards)
            .map(|i| os.machine.core(case.tenants + i))
            .collect(),
        cfg,
    );

    let done = Rc::new(Cell::new(0usize));
    let mut tenants = Vec::new();
    for t in 0..case.tenants {
        let proc = os.spawn_process();
        let lib = proc.lib();
        let uspace = Rc::clone(&lib.uspace);
        let mut bufs = Vec::new();
        for c in 0..case.ncopies {
            let src = uspace.mmap(case.len, Prot::RW, true).unwrap();
            let dst = uspace.mmap(case.len, Prot::RW, true).unwrap();
            uspace
                .write_bytes(src, &pattern(t, c, case.seed, case.len))
                .unwrap();
            bufs.push((src, dst));
        }
        let descrs: Rc<RefCell<Vec<Rc<SegDescriptor>>>> = Rc::new(RefCell::new(Vec::new()));
        let lib2 = Rc::clone(&lib);
        let os2 = Rc::clone(&os);
        let d2 = Rc::clone(&descrs);
        let done2 = Rc::clone(&done);
        let core = os.machine.core(t);
        let bufs2 = bufs.clone();
        let len = case.len;
        let ntenants = case.tenants;
        sim.spawn("tenant", async move {
            for &(src, dst) in &bufs2 {
                // A reap can kill this tenant mid-loop; submissions then
                // fail and the tenant just stops submitting.
                match lib2.amemcpy(&core, dst, src, len).await {
                    Ok(d) => d2.borrow_mut().push(d),
                    Err(_) => break,
                }
            }
            if !lib2.client.dead.get() {
                let _ = lib2.csync_all(&core).await;
            }
            done2.set(done2.get() + 1);
            if done2.get() == ntenants {
                os2.copier().stop();
            }
        });
        tenants.push((lib, uspace, bufs, descrs));
    }

    // Reap tenant 0 mid-run: active-set exit, min-vruntime decrement,
    // pending drain through finalize — membership churn on a live shard.
    if let Some(t) = kill_at {
        let os2 = Rc::clone(&os);
        let victim = Rc::clone(&tenants[0].0);
        let h2 = h.clone();
        sim.spawn("killer", async move {
            h2.sleep(t).await;
            if !victim.client.dead.get() {
                os2.copier().reap_client(&victim.client);
            }
        });
    }

    let end = sim.run();
    let svc = os.copier();
    svc.audit_aggregates()
        .unwrap_or_else(|e| panic!("aggregate audit failed (seed {}): {e}", case.seed));

    let mut per_copy = Vec::new();
    let mut phantom = None;
    for (t, (lib, uspace, bufs, descrs)) in tenants.iter().enumerate() {
        for (c, d) in descrs.borrow().iter().enumerate() {
            let (_src, dst) = bufs[c];
            let mut got = vec![0u8; case.len];
            uspace.read_bytes(dst, &mut got).unwrap();
            if d.fault().is_none() && got != pattern(t, c, case.seed, case.len) {
                phantom.get_or_insert_with(|| {
                    format!(
                        "tenant {t} copy {c} clean but bytes differ (seed {})",
                        case.seed
                    )
                });
            }
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            fnv(&mut digest, &got);
            per_copy.push((t, c, d.fault(), digest));
        }
        if let Err(msg) = lib
            .client
            .sets
            .borrow()
            .iter()
            .try_for_each(|s| s.index_consistent())
        {
            panic!("pending index diverged (seed {}): {msg}", case.seed);
        }
    }
    assert_no_pinned_leaks(&os.pm);

    let s = svc.stats();
    (
        Exact {
            per_copy,
            end: end.as_nanos(),
            stats: stats_to_vec(&s),
            per_shard: (0..svc.nshards()).map(|i| svc.shard_stats(i)).collect(),
            pinned: os.pm.pinned_frames(),
            phantom,
        },
        svc.control_obs(),
    )
}

fn cases(default: u32) -> Config {
    let mut cfg = Config::from_env();
    if std::env::var("TESTKIT_CASES").is_err() {
        cfg.cases = default;
    }
    cfg
}

fn no_shrink(_: &SoakCase) -> Vec<SoakCase> {
    Vec::new()
}

/// Tier 1: at every shard count, a fault-free fast-path run is
/// bit-identical to its full-sweep reference — and sharded rounds never
/// call `autoscale` in either mode. (128 cases × 4 shard counts = 512
/// seeded schedule pairs.)
#[test]
fn fast_rounds_match_full_sweep_reference_at_every_shard_count() {
    check_with(
        &cases(128),
        gen_base,
        no_shrink,
        |case: &SoakCase| -> PropResult {
            for shards in [1usize, 2, 3, 4] {
                let (fast, fast_obs) = run_soak(case, shards, false, None);
                let (full, full_obs) = run_soak(case, shards, true, None);
                prop_assert!(fast.phantom.is_none(), "{:?}", fast.phantom);
                prop_assert_eq!(&fast, &full, "fast path diverged at {} shards", shards);
                if shards > 1 {
                    prop_assert_eq!(
                        fast_obs.autoscale_calls,
                        0,
                        "sharded fast-path round called autoscale"
                    );
                    prop_assert_eq!(
                        full_obs.autoscale_calls,
                        0,
                        "sharded full-sweep round called autoscale"
                    );
                }
                // The fast path must actually be on: submissions ring the
                // doorbell, settles drain the active set.
                prop_assert!(fast_obs.activations > 0, "no doorbell ever activated");
                prop_assert!(fast_obs.deactivations > 0, "no client ever settled out");
            }
            Ok(())
        },
    );
}

/// Tier 2: chaos draws follow dispatch order, which the fast path must
/// not perturb — fault placement, repair outcomes, and timing all equal
/// the full-sweep reference at a random shard count.
#[test]
fn chaos_fast_path_matches_full_sweep() {
    check_with(
        &cases(64),
        |rng: &mut TestRng| (gen_chaos(rng), rng.range_usize(1, 5)),
        |_| Vec::new(),
        |(case, shards): &(SoakCase, usize)| -> PropResult {
            let (fast, _) = run_soak(case, *shards, false, None);
            let (full, _) = run_soak(case, *shards, true, None);
            prop_assert!(fast.phantom.is_none(), "{:?}", fast.phantom);
            prop_assert_eq!(fast.pinned, 0, "pins leaked");
            prop_assert_eq!(
                &fast,
                &full,
                "chaos fast path diverged at {} shards",
                shards
            );
            Ok(())
        },
    );
}

/// Tier 3a: a tenant reaped mid-run (active-set exit, min-vruntime
/// decrement, pending drain through finalize) leaves the fast path
/// bit-identical to the reference.
#[test]
fn reap_midrun_matches_full_sweep() {
    check_with(
        &cases(48),
        |rng: &mut TestRng| {
            let case = gen_base(rng);
            let kill = Nanos(rng.range_usize(5_000, 200_000) as u64);
            let shards = rng.range_usize(1, 5);
            (case, shards, kill)
        },
        |_| Vec::new(),
        |(case, shards, kill): &(SoakCase, usize, Nanos)| -> PropResult {
            let (fast, _) = run_soak(case, *shards, false, Some(*kill));
            let (full, _) = run_soak(case, *shards, true, Some(*kill));
            prop_assert!(fast.phantom.is_none(), "{:?}", fast.phantom);
            prop_assert_eq!(&fast, &full, "reap schedule diverged at {} shards", shards);
            Ok(())
        },
    );
}

/// Tier 3b: crash/restart with journaled recovery — adopted clients
/// re-enter the new incarnation's active sets and aggregates, and the
/// whole multi-incarnation run stays bit-identical to the full-sweep
/// reference.
#[test]
fn crash_adoption_matches_full_sweep() {
    #[derive(Debug, PartialEq)]
    struct CrashExact {
        exact: Exact,
        restarts: u64,
        epoch: u64,
    }

    fn run_crash(case: &SoakCase, shards: usize, full_sweep: bool) -> CrashExact {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, case.tenants + shards);
        let os = Os::boot(&h, machine, 8192);
        let store = JournalStore::new();
        let plan = case.faults.clone().map(FaultPlan::new);
        let mut cfg = soak_cfg(case, shards, full_sweep);
        cfg.fault_plan = plan.clone();
        cfg.journal = Some(Rc::clone(&store));
        let cores: Vec<_> = (0..shards)
            .map(|i| os.machine.core(case.tenants + i))
            .collect();
        os.install_copier(cores.clone(), cfg.clone());

        let done = Rc::new(Cell::new(0usize));
        let restarts = Rc::new(Cell::new(0u64));
        let mut tenants = Vec::new();
        for t in 0..case.tenants {
            let proc = os.spawn_process();
            let lib = proc.lib();
            let uspace = Rc::clone(&lib.uspace);
            let mut bufs = Vec::new();
            for c in 0..case.ncopies {
                let src = uspace.mmap(case.len, Prot::RW, true).unwrap();
                let dst = uspace.mmap(case.len, Prot::RW, true).unwrap();
                uspace
                    .write_bytes(src, &pattern(t, c, case.seed, case.len))
                    .unwrap();
                bufs.push((src, dst));
            }
            tenants.push((lib, uspace, bufs, Rc::new(RefCell::new(Vec::new()))));
        }

        // Supervisor: reinstall over the shared journal store after a
        // crash and reattach every tenant (the adoption path).
        {
            let os2 = Rc::clone(&os);
            let libs: Vec<_> = tenants.iter().map(|t| Rc::clone(&t.0)).collect();
            let h2 = h.clone();
            let done2 = Rc::clone(&done);
            let r2 = Rc::clone(&restarts);
            let ntenants = case.tenants;
            let score = os.machine.core(case.tenants);
            sim.spawn("supervisor", async move {
                loop {
                    if done2.get() == ntenants {
                        break;
                    }
                    if os2.copier().has_crashed() {
                        r2.set(r2.get() + 1);
                        let new_svc = os2.install_copier(cores.clone(), cfg.clone());
                        for lib in &libs {
                            lib.reattach(&score, &new_svc).await;
                        }
                    }
                    h2.sleep(Nanos(5_000)).await;
                }
            });
        }

        for (t, (lib, _uspace, bufs, descrs)) in tenants.iter().enumerate() {
            let lib2 = Rc::clone(lib);
            let os2 = Rc::clone(&os);
            let d2 = Rc::clone(descrs);
            let done2 = Rc::clone(&done);
            let core = os.machine.core(t);
            let bufs2 = bufs.clone();
            let len = case.len;
            let ntenants = case.tenants;
            sim.spawn("tenant", async move {
                for &(src, dst) in &bufs2 {
                    let d = lib2.amemcpy(&core, dst, src, len).await.expect("admitted");
                    d2.borrow_mut().push(d);
                }
                let _ = lib2.csync_all(&core).await;
                done2.set(done2.get() + 1);
                if done2.get() == ntenants {
                    os2.copier().stop();
                }
            });
        }
        let end = sim.run();
        let svc = os.copier();
        svc.audit_aggregates()
            .unwrap_or_else(|e| panic!("post-recovery audit failed (seed {}): {e}", case.seed));

        let mut per_copy = Vec::new();
        let mut phantom = None;
        for (t, (_lib, uspace, bufs, descrs)) in tenants.iter().enumerate() {
            for (c, d) in descrs.borrow().iter().enumerate() {
                let (_src, dst) = bufs[c];
                let mut got = vec![0u8; case.len];
                uspace.read_bytes(dst, &mut got).unwrap();
                if d.fault().is_none() && got != pattern(t, c, case.seed, case.len) {
                    phantom.get_or_insert_with(|| {
                        format!("tenant {t} copy {c} clean but wrong after recovery")
                    });
                }
                let mut digest = 0xcbf2_9ce4_8422_2325u64;
                fnv(&mut digest, &got);
                per_copy.push((t, c, d.fault(), digest));
            }
        }
        let s = svc.stats();
        CrashExact {
            exact: Exact {
                per_copy,
                end: end.as_nanos(),
                stats: stats_to_vec(&s),
                per_shard: (0..svc.nshards()).map(|i| svc.shard_stats(i)).collect(),
                pinned: os.pm.pinned_frames(),
                phantom,
            },
            restarts: restarts.get(),
            epoch: svc.epoch(),
        }
    }

    check_with(
        &cases(24),
        |rng: &mut TestRng| {
            let mut case = gen_base(rng);
            case.faults = Some(FaultConfig {
                seed: case.seed ^ 0xC4A5,
                dma_transient_prob: rng.gen_f64() * 0.2,
                crash_prob: 0.05 + rng.gen_f64() * 0.35,
                max_crashes: rng.range_usize(1, 4) as u64,
                ..Default::default()
            });
            (case, rng.range_usize(1, 5))
        },
        |_| Vec::new(),
        |(case, shards): &(SoakCase, usize)| -> PropResult {
            let fast = run_crash(case, *shards, false);
            let full = run_crash(case, *shards, true);
            prop_assert!(fast.exact.phantom.is_none(), "{:?}", fast.exact.phantom);
            prop_assert_eq!(&fast, &full, "recovery diverged at {} shards", shards);
            Ok(())
        },
    );
}

/// Tier 3c: an idle client re-activated by service-internal scrub heals
/// (the walker pushes repair copies into the client's kernel queue with
/// a direct `activate`, no libCopier doorbell) behaves identically on
/// the fast path. The client submits one burst, settles out of the
/// active set, then only the scrubber touches it.
#[test]
fn scrub_heal_reactivates_idle_clients_identically() {
    fn run_scrub(seed: u64, full_sweep: bool) -> (Vec<u64>, u64, u64) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let os = Os::boot(&h, machine, 4096);
        let plan = FaultPlan::new(FaultConfig {
            seed,
            rot_prob: 0.9,
            ..Default::default()
        });
        let svc = os.install_copier(
            vec![os.machine.core(1)],
            CopierConfig {
                use_dma: true,
                fault_plan: Some(Rc::clone(&plan)),
                verify: VerifyPolicy::Full,
                scrub_period: 2,
                full_sweep,
                ..Default::default()
            },
        );
        let proc = os.spawn_process();
        let lib = proc.lib();
        let uspace = Rc::clone(&lib.uspace);

        let region = 16 * 1024usize;
        let primary = uspace.mmap(region, Prot::RW, true).unwrap();
        let replica = uspace.mmap(region, Prot::RW, true).unwrap();
        let golden = pattern(7, 0, seed, region);
        uspace.write_bytes(primary, &golden).unwrap();
        uspace.write_bytes(replica, &golden).unwrap();
        lib.register_scrub(primary, replica, region, 4 * 1024);

        let lib2 = Rc::clone(&lib);
        let svc2 = Rc::clone(&svc);
        let h2 = h.clone();
        let core = os.machine.core(0);
        let len = 8 * 1024usize;
        let src = uspace.mmap(len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(len, Prot::RW, true).unwrap();
        uspace.write_bytes(src, &pattern(1, 0, seed, len)).unwrap();
        sim.spawn("client", async move {
            // One burst, then idle: the client settles out of the active
            // set and only scrub heals re-activate it while the walker
            // keeps ticking on the park-timeout re-polls.
            for _ in 0..4 {
                if lib2
                    ._amemcpy(&core, dst, src, len, AmemcpyOpts::default())
                    .await
                    .is_err()
                {
                    break;
                }
                if lib2.csync(&core, dst, len).await.is_err() {
                    break;
                }
            }
            h2.sleep(Nanos(2_000_000)).await;
            svc2.stop();
        });
        let end = sim.run();
        svc.audit_aggregates()
            .unwrap_or_else(|e| panic!("post-scrub audit failed (seed {seed}): {e}"));
        assert_no_pinned_leaks(&os.pm);

        // The final primary contents race the per-round rot oracle (a rot
        // can land after the last heal), so the heal outcome is asserted
        // through the scrub counters instead of buffer purity; the buffer
        // state still participates in the fast==full equality through the
        // stats vector and end time.
        let s = svc.stats();
        let mut primary_now = vec![0u8; region];
        uspace.read_bytes(primary, &mut primary_now).unwrap();
        let mut dig = 0xcbf2_9ce4_8422_2325u64;
        fnv(&mut dig, &primary_now);
        (stats_to_vec(&s), end.as_nanos(), dig)
    }

    for seed in [0x5C2B_0001u64, 0x5C2B_0002, 0x5C2B_0003, 0x5C2B_0004] {
        let fast = run_scrub(seed, false);
        let full = run_scrub(seed, true);
        assert!(fast.0.iter().sum::<u64>() > 0, "no service activity");
        assert_eq!(fast, full, "scrub re-activation diverged (seed {seed:#x})");
        assert!(fast.0[40] > 0, "scrub walker never ran (seed {seed:#x})");
        assert!(fast.0[41] > 0, "rot was never healed (seed {seed:#x})");
    }
}

/// Tier 4, strongest hash check: a 4-shard chaos run *recorded* with the
/// fast path (delta-folded commutative hash sums) *replays* through the
/// full-sweep build (fresh commutative recompute every round) with zero
/// divergence — so the cached sums equal the recompute at every traced
/// round, not just at the end.
#[test]
fn fast_recording_replays_through_full_sweep() {
    fn run_traced(case: &SoakCase, full_sweep: bool, tracer: Rc<Tracer>) -> Exact {
        let shards = 4;
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, case.tenants + shards);
        let os = Os::boot(&h, machine, 8192);
        let plan = case.faults.clone().map(FaultPlan::new);
        if let Some(p) = &plan {
            p.set_tracer(&tracer);
        }
        let mut cfg = soak_cfg(case, shards, full_sweep);
        cfg.fault_plan = plan;
        cfg.tracer = Some(Rc::clone(&tracer));
        os.install_copier(
            (0..shards)
                .map(|i| os.machine.core(case.tenants + i))
                .collect(),
            cfg,
        );
        let done = Rc::new(Cell::new(0usize));
        let mut tenants = Vec::new();
        for t in 0..case.tenants {
            let proc = os.spawn_process();
            let lib = proc.lib();
            let uspace = Rc::clone(&lib.uspace);
            let mut bufs = Vec::new();
            for c in 0..case.ncopies {
                let src = uspace.mmap(case.len, Prot::RW, true).unwrap();
                let dst = uspace.mmap(case.len, Prot::RW, true).unwrap();
                uspace
                    .write_bytes(src, &pattern(t, c, case.seed, case.len))
                    .unwrap();
                bufs.push((src, dst));
            }
            let descrs: Rc<RefCell<Vec<Rc<SegDescriptor>>>> = Rc::new(RefCell::new(Vec::new()));
            let lib2 = Rc::clone(&lib);
            let os2 = Rc::clone(&os);
            let d2 = Rc::clone(&descrs);
            let done2 = Rc::clone(&done);
            let core = os.machine.core(t);
            let bufs2 = bufs.clone();
            let len = case.len;
            let ntenants = case.tenants;
            sim.spawn("tenant", async move {
                for &(src, dst) in &bufs2 {
                    let d = lib2.amemcpy(&core, dst, src, len).await.expect("admitted");
                    d2.borrow_mut().push(d);
                }
                let _ = lib2.csync_all(&core).await;
                done2.set(done2.get() + 1);
                if done2.get() == ntenants {
                    os2.copier().stop();
                }
            });
            tenants.push((lib, uspace, bufs, descrs));
        }
        let end = sim.run();
        let svc = os.copier();
        let mut per_copy = Vec::new();
        for (t, (_lib, uspace, bufs, descrs)) in tenants.iter().enumerate() {
            for (c, d) in descrs.borrow().iter().enumerate() {
                let (_src, dst) = bufs[c];
                let mut got = vec![0u8; case.len];
                uspace.read_bytes(dst, &mut got).unwrap();
                let mut digest = 0xcbf2_9ce4_8422_2325u64;
                fnv(&mut digest, &got);
                per_copy.push((t, c, d.fault(), digest));
            }
        }
        let s = svc.stats();
        Exact {
            per_copy,
            end: end.as_nanos(),
            stats: stats_to_vec(&s),
            per_shard: (0..svc.nshards()).map(|i| svc.shard_stats(i)).collect(),
            pinned: os.pm.pinned_frames(),
            phantom: None,
        }
    }

    check_with(
        &cases(8),
        gen_chaos,
        no_shrink,
        |case: &SoakCase| -> PropResult {
            let rec = Tracer::record();
            let recorded = run_traced(case, false, Rc::clone(&rec));
            let rep = Tracer::replay(rec.finish());
            let replayed = run_traced(case, true, Rc::clone(&rep));
            prop_assert!(
                rep.divergence().is_none(),
                "full-sweep replay of a fast-path trace diverged: {:?}",
                rep.divergence()
            );
            prop_assert_eq!(&recorded, &replayed, "replay landed a different outcome");
            Ok(())
        },
    );
}

/// Autoscale gating: the unsharded multi-core service still autoscales —
/// from the O(1) pending aggregate on the fast path, from the legacy
/// O(clients × sets) sweep only in full-sweep mode — and both modes land
/// the identical run.
#[test]
fn autoscale_reads_aggregate_not_sweep() {
    fn run_autoscale(full_sweep: bool) -> (Exact, ControlObs) {
        let case = SoakCase {
            seed: 0xA5CA_1E,
            tenants: 4,
            ncopies: 6,
            len: 48 * 1024,
            faults: None,
        };
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, case.tenants + 2);
        let os = Os::boot(&h, machine, 8192);
        let mut cfg = soak_cfg(&case, 1, full_sweep);
        cfg.auto_scale = true;
        cfg.low_load = 4 * 1024;
        cfg.high_load = 64 * 1024;
        os.install_copier(
            vec![
                os.machine.core(case.tenants),
                os.machine.core(case.tenants + 1),
            ],
            cfg,
        );
        let done = Rc::new(Cell::new(0usize));
        let mut tenants = Vec::new();
        for t in 0..case.tenants {
            let proc = os.spawn_process();
            let lib = proc.lib();
            let uspace = Rc::clone(&lib.uspace);
            let mut bufs = Vec::new();
            for c in 0..case.ncopies {
                let src = uspace.mmap(case.len, Prot::RW, true).unwrap();
                let dst = uspace.mmap(case.len, Prot::RW, true).unwrap();
                uspace
                    .write_bytes(src, &pattern(t, c, case.seed, case.len))
                    .unwrap();
                bufs.push((src, dst));
            }
            let descrs: Rc<RefCell<Vec<Rc<SegDescriptor>>>> = Rc::new(RefCell::new(Vec::new()));
            let lib2 = Rc::clone(&lib);
            let os2 = Rc::clone(&os);
            let d2 = Rc::clone(&descrs);
            let done2 = Rc::clone(&done);
            let core = os.machine.core(t);
            let bufs2 = bufs.clone();
            let len = case.len;
            let ntenants = case.tenants;
            sim.spawn("tenant", async move {
                for &(src, dst) in bufs2.iter() {
                    let d = lib2.amemcpy(&core, dst, src, len).await.expect("admitted");
                    d2.borrow_mut().push(d);
                }
                let _ = lib2.csync_all(&core).await;
                done2.set(done2.get() + 1);
                if done2.get() == ntenants {
                    os2.copier().stop();
                }
            });
            tenants.push((lib, uspace, bufs, descrs));
        }
        let end = sim.run();
        let svc = os.copier();
        svc.audit_aggregates().unwrap();
        let mut per_copy = Vec::new();
        for (t, (_lib, uspace, bufs, descrs)) in tenants.iter().enumerate() {
            for (c, d) in descrs.borrow().iter().enumerate() {
                let (_src, dst) = bufs[c];
                let mut got = vec![0u8; case.len];
                uspace.read_bytes(dst, &mut got).unwrap();
                let mut digest = 0xcbf2_9ce4_8422_2325u64;
                fnv(&mut digest, &got);
                per_copy.push((t, c, d.fault(), digest));
            }
        }
        let s = svc.stats();
        (
            Exact {
                per_copy,
                end: end.as_nanos(),
                stats: stats_to_vec(&s),
                per_shard: (0..svc.nshards()).map(|i| svc.shard_stats(i)).collect(),
                pinned: os.pm.pinned_frames(),
                phantom: None,
            },
            svc.control_obs(),
        )
    }

    let (fast, fast_obs) = run_autoscale(false);
    let (full, full_obs) = run_autoscale(true);
    assert_eq!(fast, full, "autoscale read path changed the run");
    assert!(fast_obs.autoscale_calls > 0, "autoscale never consulted");
    assert!(full_obs.autoscale_calls > 0, "autoscale never consulted");
    assert_eq!(
        fast_obs.autoscale_sweeps, 0,
        "fast path paid the O(clients x sets) load sweep"
    );
    assert!(
        full_obs.autoscale_sweeps > 0,
        "full-sweep mode should pay the legacy sweep"
    );
}
