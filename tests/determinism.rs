//! The simulator's foundational property: the same program produces the
//! same timeline, byte for byte and nanosecond for nanosecond — which is
//! what makes every number in EXPERIMENTS.md reproducible.

use std::rc::Rc;

use copier::apps::redis::{run_client, Op, RedisMode, RedisServer};
use copier::core::CopierConfig;
use copier::mem::Prot;
use copier::os::{NetStack, Os};
use copier::sim::{FaultConfig, FaultLog, FaultPlan, Machine, Sim, SimRng};

fn redis_trace(seed: u64) -> (Vec<u64>, u64, u64) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 3);
    let os = Os::boot(&h, machine, 16 * 1024);
    os.install_copier(vec![os.machine.core(2)], Default::default());
    let net = NetStack::new(&os);
    let server = RedisServer::new(&os, &net, RedisMode::Copier, 256 * 1024).unwrap();
    let (cs, ss) = net.socket_pair();
    let score = os.machine.core(1);
    let server2 = Rc::clone(&server);
    sim.spawn("server", async move {
        server2.serve(&score, ss, 9).await;
    });
    let os2 = Rc::clone(&os);
    let net2 = Rc::clone(&net);
    let ccore = os.machine.core(0);
    let out = Rc::new(std::cell::RefCell::new(Vec::new()));
    let out2 = Rc::clone(&out);
    sim.spawn("client", async move {
        let rng = Rc::new(SimRng::new(seed));
        let s = run_client(
            Rc::clone(&os2),
            net2,
            ccore,
            cs,
            Op::Set,
            1,
            8 * 1024,
            8,
            rng,
        )
        .await;
        out2.borrow_mut()
            .extend(s.iter().map(|x| x.latency.as_nanos()));
        os2.copier().stop();
    });
    let end = sim.run();
    let stats = os.copier().stats();
    let v = out.borrow().clone();
    (v, end.as_nanos(), stats.bytes_copied)
}

#[test]
fn identical_seeds_identical_timelines() {
    let a = redis_trace(42);
    let b = redis_trace(42);
    assert_eq!(a, b, "same seed must reproduce the exact timeline");
}

/// A copy workload under an active fault schedule: DMA transients,
/// channel deaths, timeouts, and stale ATCache hits all injected.
fn fault_trace(seed: u64) -> (u64, Vec<u64>, FaultLog, u64) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 2048);
    let plan = FaultPlan::new(FaultConfig {
        seed,
        dma_transient_prob: 0.3,
        dma_hard_prob: 0.05,
        dma_timeout_prob: 0.1,
        atc_stale_prob: 0.3,
        ..Default::default()
    });
    let svc = os.install_copier(
        vec![os.machine.core(1)],
        CopierConfig {
            use_dma: true,
            dma_channels: 2,
            fault_plan: Some(Rc::clone(&plan)),
            ..Default::default()
        },
    );
    let proc = os.spawn_process();
    let lib = proc.lib();
    let uspace = Rc::clone(&lib.uspace);
    let len = 96 * 1024;
    let mut bufs = Vec::new();
    let mut data = vec![0u8; len];
    let fill = SimRng::new(seed ^ 0xF111);
    for i in 0..4usize {
        let src = uspace.mmap(len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(len, Prot::RW, true).unwrap();
        for b in data.iter_mut() {
            *b = (fill.next_u64() >> (8 * (i % 8))) as u8;
        }
        uspace.write_bytes(src, &data).unwrap();
        bufs.push((src, dst));
    }
    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    let bufs2 = bufs.clone();
    sim.spawn("client", async move {
        for &(src, dst) in &bufs2 {
            let _ = lib2.amemcpy(&core, dst, src, len).await;
        }
        let _ = lib2.csync_all(&core).await;
        svc2.stop();
    });
    let end = sim.run();
    let s = svc.stats();
    let stats = vec![
        s.tasks_completed,
        s.bytes_copied,
        s.faults,
        s.retries,
        s.fallback_bytes,
        s.quarantined_channels,
        s.dispatch.dma_wait.as_nanos(),
        s.dispatch.retries,
    ];
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut got = vec![0u8; len];
    for &(_src, dst) in &bufs {
        uspace.read_bytes(dst, &mut got).unwrap();
        for &b in &got {
            digest = (digest ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    (end.as_nanos(), stats, plan.log(), digest)
}

#[test]
fn fault_injected_runs_are_deterministic() {
    let a = fault_trace(0xC0DE);
    let b = fault_trace(0xC0DE);
    assert_eq!(a, b, "same seed + same fault plan must reproduce exactly");
    // The schedule must actually have injected something, or this test
    // is vacuous.
    assert!(a.2.total() > 0, "no faults injected: {:?}", a.2);
}

#[test]
fn different_seeds_differ_in_data_not_structure() {
    let a = redis_trace(1);
    let b = redis_trace(2);
    // Same request count either way; payload bytes differ but the
    // structural schedule (copy sizes → service work) is identical here.
    assert_eq!(a.0.len(), b.0.len());
}
