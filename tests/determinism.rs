//! The simulator's foundational property: the same program produces the
//! same timeline, byte for byte and nanosecond for nanosecond — which is
//! what makes every number in EXPERIMENTS.md reproducible.

use std::rc::Rc;

use copier::apps::redis::{run_client, Op, RedisMode, RedisServer};
use copier::os::{NetStack, Os};
use copier::sim::{Machine, Sim, SimRng};

fn redis_trace(seed: u64) -> (Vec<u64>, u64, u64) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 3);
    let os = Os::boot(&h, machine, 16 * 1024);
    os.install_copier(vec![os.machine.core(2)], Default::default());
    let net = NetStack::new(&os);
    let server = RedisServer::new(&os, &net, RedisMode::Copier, 256 * 1024).unwrap();
    let (cs, ss) = net.socket_pair();
    let score = os.machine.core(1);
    let server2 = Rc::clone(&server);
    sim.spawn("server", async move {
        server2.serve(&score, ss, 9).await;
    });
    let os2 = Rc::clone(&os);
    let net2 = Rc::clone(&net);
    let ccore = os.machine.core(0);
    let out = Rc::new(std::cell::RefCell::new(Vec::new()));
    let out2 = Rc::clone(&out);
    sim.spawn("client", async move {
        let rng = Rc::new(SimRng::new(seed));
        let s = run_client(
            Rc::clone(&os2),
            net2,
            ccore,
            cs,
            Op::Set,
            1,
            8 * 1024,
            8,
            rng,
        )
        .await;
        out2.borrow_mut()
            .extend(s.iter().map(|x| x.latency.as_nanos()));
        os2.copier().stop();
    });
    let end = sim.run();
    let stats = os.copier().stats();
    let v = out.borrow().clone();
    (v, end.as_nanos(), stats.bytes_copied)
}

#[test]
fn identical_seeds_identical_timelines() {
    let a = redis_trace(42);
    let b = redis_trace(42);
    assert_eq!(a, b, "same seed must reproduce the exact timeline");
}

#[test]
fn different_seeds_differ_in_data_not_structure() {
    let a = redis_trace(1);
    let b = redis_trace(2);
    // Same request count either way; payload bytes differ but the
    // structural schedule (copy sizes → service work) is identical here.
    assert_eq!(a.0.len(), b.0.len());
}
