//! CopierSanitizer wired against the real service: the instrumented app
//! pattern (§5.1.2) — every amemcpy poisons, every csync unpoisons, and
//! the omitted-csync bug the tool exists to find is actually found.

use std::rc::Rc;

use copier::client::CopierHandle;
use copier::core::{Copier, CopierConfig};
use copier::hw::CostModel;
use copier::mem::{AddressSpace, AllocPolicy, PhysMem, Prot};
use copier::sanitizer::{AccessKind, Sanitizer};
use copier::sim::{Machine, Sim};

#[test]
fn sanitizer_catches_omitted_csync_in_a_real_run() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let pm = Rc::new(PhysMem::new(1024, AllocPolicy::Scattered));
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        Rc::new(CostModel::default()),
        CopierConfig::default(),
    );
    svc.start();
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let san = Rc::new(Sanitizer::new());
    let san2 = Rc::clone(&san);
    let svc2 = Rc::clone(&svc);
    sim.spawn("app", async move {
        let src = space.mmap(8192, Prot::RW, true).unwrap();
        let dst = space.mmap(8192, Prot::RW, true).unwrap();
        space.write_bytes(src, &[1u8; 4096]).unwrap();

        // Correctly synced access: clean.
        lib.amemcpy(&core, dst, src, 4096).await.expect("admitted");
        san2.on_amemcpy(dst.0, src.0, 4096);
        lib.csync(&core, dst, 4096).await.unwrap();
        san2.on_csync(dst.0, 4096);
        san2.on_read(dst.0, 64, "synced read");
        assert!(san2.clean());

        // The bug: read the destination without csync.
        lib.amemcpy(&core, dst, src, 4096).await.expect("admitted");
        san2.on_amemcpy(dst.0, src.0, 4096);
        san2.on_read(dst.0 + 100, 8, "parse before csync");
        assert!(!san2.clean(), "omitted csync must be reported");
        let r = &san2.reports()[0];
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(r.context, "parse before csync");

        lib.csync_all(&core).await.unwrap();
        san2.on_csync_all();
        svc2.stop();
    });
    sim.run();
    assert_eq!(san.reports().len(), 1);
}
