//! Zero-length and segment-boundary edge cases, end to end.
//!
//! `amemcpy(dst, src, 0)` is legal the way `memcpy(dst, src, 0)` is: the
//! descriptor has zero segments and is born complete, the service
//! finishes it at the drain boundary (handler delivered, credit
//! returned), and no byte of memory moves. Straddling lengths
//! (`k*segment ± 1`) exercise the span math in `mark_progress` and the
//! address-index scan bounds, which previously underflowed at `len == 0`
//! and mis-clamped at partial last segments.

use std::cell::Cell;
use std::rc::Rc;

use copier::client::AmemcpyOpts;
use copier::core::{CopierConfig, Handler, DEFAULT_SEGMENT};
use copier::mem::Prot;
use copier::os::Os;
use copier::sim::{Machine, Sim};
use copier_testkit::assert_no_pinned_leaks;

/// Zero-length copies complete immediately: born all-ready, handler run,
/// credit returned, zero bytes moved, destination untouched.
#[test]
fn zero_length_amemcpy_completes_immediately() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 2048);
    let svc = os.install_copier(vec![os.machine.core(1)], CopierConfig::default());
    let proc = os.spawn_process();
    let lib = proc.lib();
    let uspace = Rc::clone(&lib.uspace);
    let len = 64 * 1024;
    let src = uspace.mmap(len, Prot::RW, true).unwrap();
    let dst = uspace.mmap(len, Prot::RW, true).unwrap();
    uspace.write_bytes(src, &vec![0xAB; len]).unwrap();

    let fired = Rc::new(Cell::new(0u32));
    let f2 = Rc::clone(&fired);
    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    let credits_before = lib.client.credits.get();
    sim.spawn("client", async move {
        for _ in 0..3 {
            let d = lib2
                ._amemcpy(
                    &core,
                    dst,
                    src,
                    0,
                    AmemcpyOpts {
                        func: Some(Handler::KFunc(Rc::new({
                            let f = Rc::clone(&f2);
                            move || f.set(f.get() + 1)
                        }))),
                        ..Default::default()
                    },
                )
                .await
                .expect("zero-length submission admitted");
            assert!(d.all_ready(), "zero-length descriptor born complete");
            assert_eq!(d.num_segments(), 0);
            assert_eq!(d.fault(), None);
        }
        let _ = lib2.csync_all(&core).await;
        svc2.stop();
    });
    sim.run();

    assert_eq!(fired.get(), 3, "every zero-length handler must run");
    let st = svc.stats();
    assert_eq!(
        st.tasks_completed, 3,
        "zero-length tasks count as completed"
    );
    assert_eq!(st.bytes_copied, 0, "no bytes may move");
    assert!(st.credits_granted >= 3, "credits must be returned");
    assert_eq!(
        lib.client.credits.get(),
        credits_before,
        "credit pool must be restored — a zero-length task may not leak its window slot"
    );
    let mut got = vec![0u8; len];
    uspace.read_bytes(dst, &mut got).unwrap();
    assert!(
        got.iter().all(|&b| b == 0),
        "destination must stay untouched"
    );
    assert_no_pinned_leaks(&os.pm);
}

/// Zero-length copies interleaved with real ones neither block nor
/// corrupt them, under absorption-friendly chaining (dst of one is src
/// of a zero-length follow-up).
#[test]
fn zero_length_interleaves_with_real_copies() {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 2048);
    let svc = os.install_copier(vec![os.machine.core(1)], CopierConfig::default());
    let proc = os.spawn_process();
    let lib = proc.lib();
    let uspace = Rc::clone(&lib.uspace);
    let len = 48 * 1024 + 123;
    let src = uspace.mmap(len, Prot::RW, true).unwrap();
    let dst = uspace.mmap(len, Prot::RW, true).unwrap();
    let pat: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
    uspace.write_bytes(src, &pat).unwrap();

    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    sim.spawn("client", async move {
        let _ = lib2.amemcpy(&core, dst, src, 0).await.expect("admitted");
        let d = lib2.amemcpy(&core, dst, src, len).await.expect("admitted");
        // Zero-length read *of the pending destination*: must not trip
        // the absorption/taint machinery (nothing is forwarded).
        let _ = lib2.amemcpy(&core, src, dst, 0).await.expect("admitted");
        let _ = lib2.csync_all(&core).await;
        assert!(d.all_ready(), "real copy must complete");
        svc2.stop();
    });
    sim.run();

    let mut got = vec![0u8; len];
    uspace.read_bytes(dst, &mut got).unwrap();
    assert_eq!(got, pat, "real copy corrupted by zero-length neighbours");
    assert_eq!(svc.stats().tasks_completed, 3);
    assert_no_pinned_leaks(&os.pm);
}

/// Lengths straddling segment boundaries: `k*seg - 1`, `k*seg`,
/// `k*seg + 1`, and `1`. Every segment must be marked, the partial last
/// segment included, and the bytes must land exactly.
#[test]
fn segment_straddling_lengths_complete_exactly() {
    let seg = DEFAULT_SEGMENT;
    let mut lens = vec![1usize];
    for k in [1usize, 3, 7] {
        lens.extend([k * seg - 1, k * seg, k * seg + 1]);
    }
    for len in lens {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let os = Os::boot(&h, machine, 2048);
        let svc = os.install_copier(vec![os.machine.core(1)], CopierConfig::default());
        let proc = os.spawn_process();
        let lib = proc.lib();
        let uspace = Rc::clone(&lib.uspace);
        let src = uspace.mmap(len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(len, Prot::RW, true).unwrap();
        let pat: Vec<u8> = (0..len).map(|i| (i ^ (i >> 8)) as u8).collect();
        uspace.write_bytes(src, &pat).unwrap();

        let got_d = Rc::new(std::cell::RefCell::new(None));
        let gd = Rc::clone(&got_d);
        let lib2 = Rc::clone(&lib);
        let svc2 = Rc::clone(&svc);
        let core = os.machine.core(0);
        sim.spawn("client", async move {
            let d = lib2.amemcpy(&core, dst, src, len).await.expect("admitted");
            let _ = lib2.csync_all(&core).await;
            gd.borrow_mut().replace(d);
            svc2.stop();
        });
        sim.run();

        let d = got_d.borrow().clone().unwrap();
        assert_eq!(d.num_segments(), len.div_ceil(seg), "len {len}");
        assert!(d.all_ready(), "len {len}: unfinished segments");
        for s in 0..d.num_segments() {
            assert!(d.is_marked(s), "len {len}: segment {s} unmarked");
            let (lo, hi) = d.segment_range(s);
            assert!(
                hi <= len,
                "len {len}: segment {s} range [{lo},{hi}) overruns"
            );
        }
        let mut got = vec![0u8; len];
        uspace.read_bytes(dst, &mut got).unwrap();
        assert_eq!(got, pat, "len {len}: bytes differ");
        assert_eq!(svc.stats().bytes_copied, len as u64, "len {len}");
        assert_no_pinned_leaks(&os.pm);
    }
}
