//! Fig. 10: average send()/recv() latency under echo load, across the
//! syscall-optimization systems: baseline, UB, io_uring, io_uring-batch,
//! zero-copy send, and Copier.
//!
//! Paper shape: Copier cuts send by 7–37% and recv by 16–92%; UB's gain
//! fades with size; zero-copy wins only for large sends; io_uring alone
//! doesn't shorten the data path.

use std::cell::RefCell;
use std::rc::Rc;

use copier_bench::{kb, row, section, stats};
use copier_mem::Prot;
use copier_os::{IoMode, NetStack, Os, Sqe, Uring};
use copier_sim::{Machine, Nanos, Sim};

const ROUNDS: usize = 60;

#[derive(Clone, Copy, PartialEq, Debug)]
enum Sys {
    Baseline,
    Ub,
    IoUring,
    IoUringBatch,
    ZeroCopy,
    Copier,
    CopierBatch,
}

/// Measures average send / recv syscall latency for `len`-byte messages.
fn run(sys: Sys, len: usize) -> (Nanos, Nanos) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 3);
    let os = Os::boot(&h, machine, 16 * 1024);
    let copier_on = matches!(sys, Sys::Copier | Sys::CopierBatch);
    if copier_on {
        os.install_copier(vec![os.machine.core(2)], Default::default());
    }
    let net = NetStack::new(&os);
    let (a, b) = net.socket_pair();
    let proc = os.spawn_process();
    let core = os.machine.core(0);
    let uring = matches!(sys, Sys::IoUring | Sys::IoUringBatch | Sys::CopierBatch)
        .then(|| Uring::new(&os, &net, &proc, os.machine.core(1)));
    if let (Some(u), Sys::CopierBatch) = (&uring, sys) {
        u.copier_mode.set(true);
    }
    let out: Rc<RefCell<(Vec<Nanos>, Vec<Nanos>)>> = Rc::new(RefCell::new((vec![], vec![])));
    let out2 = Rc::clone(&out);
    let os2 = Rc::clone(&os);
    let h2 = h.clone();
    sim.spawn("echo", async move {
        let tx = proc.space.mmap(len.max(4096), Prot::RW, true).unwrap();
        let rx = proc.space.mmap(len.max(4096), Prot::RW, true).unwrap();
        proc.space.write_bytes(tx, &vec![0x42; len]).unwrap();
        let (send_mode, recv_mode) = match sys {
            Sys::Baseline | Sys::IoUring | Sys::IoUringBatch => (IoMode::Sync, IoMode::Sync),
            Sys::Ub => (IoMode::Ub, IoMode::Ub),
            Sys::ZeroCopy => (IoMode::ZeroCopy, IoMode::Sync),
            Sys::Copier | Sys::CopierBatch => (IoMode::Copier, IoMode::Copier),
        };
        for _ in 0..ROUNDS {
            match &uring {
                Some(u) => {
                    // Batched: 4 sends per doorbell; singles otherwise.
                    let batch = if matches!(sys, Sys::IoUringBatch | Sys::CopierBatch) {
                        4
                    } else {
                        1
                    };
                    let t0 = h2.now();
                    let sqes = (0..batch)
                        .map(|_| Sqe::Send {
                            sock: Rc::clone(&a),
                            va: tx,
                            len,
                        })
                        .collect();
                    u.submit_batch_wait(&core, sqes).await;
                    out2.borrow_mut()
                        .0
                        .push(Nanos((h2.now() - t0).as_nanos() / batch as u64));
                    for _ in 0..batch {
                        let t1 = h2.now();
                        u.submit(
                            &core,
                            Sqe::Recv {
                                sock: Rc::clone(&b),
                                va: rx,
                                cap: len,
                            },
                        )
                        .await;
                        u.wait_cqe(&core).await;
                        out2.borrow_mut().1.push(h2.now() - t1);
                    }
                }
                None => {
                    let t0 = h2.now();
                    let zc = net
                        .send(&core, &proc, &a, tx, len, send_mode)
                        .await
                        .unwrap();
                    out2.borrow_mut().0.push(h2.now() - t0);
                    let t1 = h2.now();
                    let (_, d) = net
                        .recv(&core, &proc, &b, rx, len, recv_mode)
                        .await
                        .unwrap();
                    out2.borrow_mut().1.push(h2.now() - t1);
                    // Copier recv's contract: sync before reuse of rx.
                    if let Some(d) = d {
                        let lib = proc.lib();
                        lib._csync(&core, &d, 0, len, proc.space.id(), rx, 0)
                            .await
                            .unwrap();
                    }
                    // Zero-copy contract: wait for reclaim before reuse.
                    if let Some(z) = zc {
                        z.wait().await;
                    }
                }
            }
        }
        if let Some(u) = &uring {
            u.close();
        }
        if copier_on {
            os2.copier().stop();
        }
    });
    sim.run();
    let mut o = out.borrow_mut();
    let s = stats(&mut o.0).avg;
    let r = stats(&mut o.1).avg;
    (s, r)
}

fn main() {
    section("Fig 10: send()/recv() syscall latency (echo load)");
    for len in [1024, 4096, 16 * 1024, 64 * 1024] {
        println!("\n  message = {}", kb(len));
        let (base_s, base_r) = run(Sys::Baseline, len);
        for sys in [
            Sys::Baseline,
            Sys::Ub,
            Sys::IoUring,
            Sys::IoUringBatch,
            Sys::ZeroCopy,
            Sys::Copier,
            Sys::CopierBatch,
        ] {
            let (s, r) = run(sys, len);
            row(&[
                ("sys", format!("{sys:?}")),
                ("send", format!("{s}")),
                ("recv", format!("{r}")),
                ("send-vs-base", copier_bench::delta(base_s, s)),
                ("recv-vs-base", copier_bench::delta(base_r, r)),
            ]);
        }
    }
}
