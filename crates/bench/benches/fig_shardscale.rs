//! fig_shardscale: sharded control plane — goodput scaling across
//! simulated service cores (DESIGN.md §17).
//!
//! Many open-loop tenants offer several times one service core's copy
//! bandwidth; the sweep grows the control plane from 1 to 8 shards over
//! dedicated cores. Desired shape: goodput scales near-linearly until
//! the offered load is absorbed (≥ 3× at 8 shards is the bar — hash
//! imbalance across tenants and the round barrier are the honest gap to
//! 8×), tenants are never starved, and a fixed shard count is perfectly
//! deterministic: the same seed replays to bit-identical outcomes,
//! checked here by running the 4-shard point twice and comparing every
//! per-tenant byte count and the full stats vector.
//!
//! DMA is off so every copy runs on its shard's own core (the AVX2
//! service path) — the clean configuration for measuring *control-plane*
//! scaling rather than contention on a shared engine.

use std::cell::Cell;
use std::rc::Rc;

use copier_bench::json::Json;
use copier_bench::{row, section};
use copier_client::{AmemcpyOpts, CopierHandle};
use copier_core::{stats_to_vec, AdmissionConfig, Copier, CopierConfig, CopierStats, PollMode};
use copier_hw::CostModel;
use copier_mem::{AddressSpace, AllocPolicy, PhysMem, Prot, VirtAddr};
use copier_sim::{Machine, Nanos, Sim, WorkloadConfig, WorkloadPlan};

/// Uniform copy lengths in [16 KiB, 64 KiB] — mean 40 KiB.
const LEN_MIN: usize = 16 * 1024;
const LEN_MAX: usize = 64 * 1024;
/// Nominal per-shard-core service copy bandwidth (AVX2 ≈ 10–11 B/ns).
const SAT_RATE: f64 = 10.0;
/// Distinct reusable buffer pairs per tenant.
const POOL: usize = 8;
/// Largest shard count in the sweep.
const MAX_SHARDS: usize = 8;

/// Window quotas: roomy per client, with a global watermark high enough
/// that eight saturated shards are not throttled by it, yet low enough
/// to bound the drain tail of the overloaded single-shard run.
fn admission() -> AdmissionConfig {
    AdmissionConfig {
        max_client_tasks: 64,
        max_client_bytes: 4 * 1024 * 1024,
        max_client_pinned: 8192,
        global_high_bytes: 24 * 1024 * 1024,
        global_low_bytes: 18 * 1024 * 1024,
    }
}

struct Out {
    /// Offered load, bytes/ns (all tenants).
    offered: f64,
    /// Delivered copy bytes/ns over the whole run (incl. drain tail).
    goodput: f64,
    /// Bytes actually served per tenant.
    per_tenant: Vec<u64>,
    /// Per-shard (bytes_copied, tasks_completed, rounds_active).
    per_shard: Vec<(u64, u64, u64)>,
    /// End-of-run service stats.
    stats: CopierStats,
    /// Frames still pinned after the drain (must be 0).
    pinned: usize,
    /// Virtual end time.
    end: Nanos,
}

fn run(shards: usize, tenants: usize, horizon: Nanos, load: f64, seed: u64) -> Out {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, tenants + shards);
    let pm = Rc::new(PhysMem::new(16384, AllocPolicy::Scattered));
    let cost = Rc::new(CostModel::default());
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        (0..shards).map(|i| machine.core(tenants + i)).collect(),
        cost,
        CopierConfig {
            shards,
            use_dma: false,
            admission: admission(),
            polling: PollMode::Napi {
                spin_rounds: 256,
                park_timeout: Nanos::from_micros(50),
            },
            ..CopierConfig::default()
        },
    );
    svc.start();

    // Offered load is a multiple of the *full fleet's* nominal bandwidth
    // (MAX_SHARDS cores), so every point of the sweep sees identical
    // traffic and the small-shard points are genuinely overloaded.
    let mean_len = (LEN_MIN + LEN_MAX) as f64 / 2.0;
    let gap = (mean_len * tenants as f64 / (load * SAT_RATE * MAX_SHARDS as f64)) as u64;
    let plan = WorkloadPlan::new(WorkloadConfig {
        seed,
        tenants,
        mean_gap: Nanos(gap.max(1)),
        len_min: LEN_MIN,
        len_max: LEN_MAX,
        horizon,
        ..Default::default()
    });

    let mut handles = Vec::new();
    for t in 0..tenants {
        let space = AddressSpace::new(t as u32 + 1, Rc::clone(&pm));
        let lib = CopierHandle::new(&svc, Rc::clone(&space));
        let pool: Vec<(VirtAddr, VirtAddr)> = (0..POOL)
            .map(|_| {
                (
                    space.mmap(LEN_MAX, Prot::RW, true).unwrap(),
                    space.mmap(LEN_MAX, Prot::RW, true).unwrap(),
                )
            })
            .collect();
        handles.push((lib, pool));
    }

    let done = Rc::new(Cell::new(0usize));
    for (t, (lib, pool)) in handles.iter().enumerate() {
        let lib = Rc::clone(lib);
        let pool = pool.clone();
        let arrivals = plan.tenant(t).to_vec();
        let core = machine.core(t);
        let h2 = h.clone();
        let done2 = Rc::clone(&done);
        sim.spawn("tenant", async move {
            for (i, a) in arrivals.iter().enumerate() {
                let now = h2.now();
                if a.at > now {
                    h2.sleep(a.at - now).await;
                }
                let (src, dst) = pool[i % POOL];
                // Open loop with typed rejection: no credit / shed ⇒ the
                // submission is simply lost, arrivals never slow down.
                let _ = lib
                    .try_amemcpy(&core, dst, src, a.len, AmemcpyOpts::default())
                    .await;
            }
            done2.set(done2.get() + 1);
        });
    }

    let svc2 = Rc::clone(&svc);
    let h2 = h.clone();
    let done2 = Rc::clone(&done);
    let end = Rc::new(Cell::new(Nanos::ZERO));
    let end2 = Rc::clone(&end);
    let ntenants = tenants;
    sim.spawn("driver", async move {
        while done2.get() < ntenants {
            h2.sleep(Nanos::from_micros(20)).await;
        }
        let mut stable = 0;
        while stable < 3 {
            h2.sleep(Nanos::from_micros(10)).await;
            stable = if svc2.admitted_bytes() == 0 {
                stable + 1
            } else {
                0
            };
        }
        end2.set(h2.now());
        svc2.stop();
    });
    sim.run();

    let per_tenant: Vec<u64> = handles
        .iter()
        .map(|(lib, _)| lib.client.copied_total.get())
        .collect();
    let served: u64 = per_tenant.iter().sum();
    Out {
        offered: plan.offered_rate(),
        goodput: served as f64 / end.get().as_nanos() as f64,
        per_tenant,
        per_shard: (0..svc.nshards()).map(|i| svc.shard_stats(i)).collect(),
        stats: svc.stats(),
        pinned: pm.pinned_frames(),
        end: end.get(),
    }
}

fn main() {
    let smoke = std::env::var("SHARDSCALE_SMOKE").is_ok_and(|v| v == "1");
    let (tenants, horizon, load) = if smoke {
        (8, Nanos::from_micros(200), 2.0)
    } else {
        (32, Nanos::from_millis(1), 1.5)
    };
    let sweep: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };

    section("fig_shardscale: open-loop tenants vs 1..8 control-plane shards");
    println!("  tenants={tenants} horizon={}us load={load:.1}x of {MAX_SHARDS} cores ({SAT_RATE:.0} B/ns each), DMA off",
        horizon.as_nanos() / 1000);
    let mut results: Vec<(usize, Out)> = Vec::new();
    for &s in sweep {
        let o = run(s, tenants, horizon, load, 42);
        assert_eq!(o.pinned, 0, "pins must drain");
        let busy = o.per_shard.iter().filter(|p| p.1 > 0).count();
        let tmin = *o.per_tenant.iter().min().unwrap();
        let tmax = *o.per_tenant.iter().max().unwrap().max(&1);
        row(&[
            ("shards", format!("{s}")),
            ("offered-GB/s", format!("{:.1}", o.offered)),
            ("goodput-GB/s", format!("{:.1}", o.goodput)),
            ("svc-rej", format!("{}", o.stats.admission_rejected)),
            ("busy-shards", format!("{busy}/{s}")),
            (
                "tenant-min/max",
                format!("{:.2}", tmin as f64 / tmax as f64),
            ),
            ("end-us", format!("{}", o.end.as_nanos() / 1000)),
        ]);
        results.push((s, o));
    }
    let g1 = results.first().map(|(_, o)| o.goodput).unwrap();
    let gn = results.last().map(|(_, o)| o.goodput).unwrap();
    let speedup = gn / g1;
    let top = *sweep.last().unwrap();
    println!("\n  goodput x{top} shards / x1 shard = {speedup:.2}x");

    section("determinism: same seed, same shard count, bit-identical outcome");
    let a = run(4.min(top), tenants, horizon, load, 42);
    let b = run(4.min(top), tenants, horizon, load, 42);
    let identical = a.per_tenant == b.per_tenant
        && a.end == b.end
        && stats_to_vec(&a.stats) == stats_to_vec(&b.stats)
        && a.per_shard == b.per_shard;
    row(&[
        ("shards", format!("{}", 4.min(top))),
        ("identical", format!("{identical}")),
        ("end-us", format!("{}", a.end.as_nanos() / 1000)),
    ]);
    assert!(identical, "sharded run must be seed-deterministic");

    let json = Json::obj([
        ("bench", Json::Str("fig_shardscale".into())),
        ("smoke", Json::Bool(smoke)),
        ("tenants", Json::Int(tenants as u64)),
        ("load", Json::Num(load)),
        (
            "sweep",
            Json::Arr(
                results
                    .iter()
                    .map(|(s, o)| {
                        Json::obj([
                            ("shards", Json::Int(*s as u64)),
                            ("offered_gbps", Json::Num(o.offered)),
                            ("goodput_gbps", Json::Num(o.goodput)),
                            ("rejected", Json::Int(o.stats.admission_rejected)),
                            ("end_ns", Json::Int(o.end.as_nanos())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "summary",
            Json::Arr(vec![
                // The tentpole bar: ≥ 3× goodput at the top of the sweep.
                Json::summary(&format!("goodput_x{top}"), "speedup_min", 3.0, speedup),
                Json::summary(
                    "shard_determinism",
                    "identical_min",
                    1.0,
                    if identical { 1.0 } else { 0.0 },
                ),
            ]),
        ),
    ]);
    // Smoke runs also write the file (the verify.sh gate reads it); the
    // `smoke` flag keeps bench_summary.sh from gating their bars — the
    // committed JSON must come from a full run.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shardscale.json");
    json.write_file(path).expect("write BENCH_shardscale.json");
    println!("\n  wrote {path}");
}
