//! §6.1.2 Binder IPC: end-to-end latency for a client sending n 1 KB
//! strings, the server reading them one by one via Parcel, n = 10–800.
//!
//! Paper shape: Copier −9.6% to −35.5%.

use std::rc::Rc;

use copier_apps as _;
use copier_bench::{delta, row, section};
use copier_mem::Prot;
use copier_os::binder::{write_strings, BinderChannel};
use copier_os::{IoMode, Os};
use copier_sim::{Machine, Nanos, Notify, Sim};

fn run(n: usize, use_copier: bool) -> Nanos {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 3);
    let os = Os::boot(&h, machine, 16 * 1024 + n.div_ceil(2));
    if use_copier {
        os.install_copier(vec![os.machine.core(2)], Default::default());
    }
    let client = os.spawn_process();
    let server = os.spawn_process();
    let chan = BinderChannel::new(&os, &server, (n + 2) * 1100).unwrap();
    let ccore = os.machine.core(0);
    let score = os.machine.core(1);
    let done = Rc::new(Notify::new());
    let done2 = Rc::clone(&done);
    let chan2 = Rc::clone(&chan);
    sim.spawn("server", async move {
        let msg = chan2.next_message(&score).await;
        let mut p = chan2.parcel(&msg);
        let mut count = 0;
        while p.remaining() > 0 {
            let s = p.read_string(&score).await;
            assert_eq!(s.len(), 1024);
            count += 1;
        }
        assert_eq!(count, n);
        done2.notify_one();
    });
    let os2 = Rc::clone(&os);
    let h2 = h.clone();
    let out = Rc::new(std::cell::Cell::new(Nanos::ZERO));
    let out2 = Rc::clone(&out);
    sim.spawn("client", async move {
        let buf = client.space.mmap((n + 2) * 1100, Prot::RW, true).unwrap();
        let len = write_strings(&client, buf, &[0x7e; 1024], n).unwrap();
        let mode = if use_copier {
            IoMode::Copier
        } else {
            IoMode::Sync
        };
        let t0 = h2.now();
        chan.transact(&ccore, &client, buf, len, mode)
            .await
            .unwrap();
        done.notified().await;
        out2.set(h2.now() - t0);
        if let Some(svc) = os2.copier.borrow().as_ref() {
            svc.stop();
        }
    });
    sim.run();
    out.get()
}

fn main() {
    section("Binder IPC end-to-end latency (n strings of 1KB)");
    for n in [10usize, 50, 100, 200, 400, 800] {
        let b = run(n, false);
        let c = run(n, true);
        row(&[
            ("n", format!("{n}")),
            ("baseline", format!("{b}")),
            ("copier", format!("{c}")),
            ("change", delta(b, c)),
        ]);
    }
}
