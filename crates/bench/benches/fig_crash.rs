//! fig_crash — journal record overhead, recovery latency, and the
//! exactly-once guarantee under crash–restart cycles (DESIGN.md §15).
//!
//! Three sections:
//!
//! - `record` — host wall-clock of a fig07-class unit-copy run with the
//!   control-plane journal on vs. off. Journaling is host-side only
//!   (virtual time is identical by construction — asserted here), so
//!   the overhead is pure record append + FNV checksum; the acceptance
//!   bar is ≤ 5%.
//! - `recovery` — `Journal::attach` (replay + torn-tail scrub + epoch
//!   open) over synthetic stores of growing live-admission depth: the
//!   restart-latency curve of the control plane.
//! - `exactly_once` — a sweep of seeded crash schedules through the
//!   full supervisor/restart/re-attach loop, counting contract
//!   violations (duplicate or lost handler deliveries, wrong bytes,
//!   unreturned credits, leaked pins). The sweep must fire real
//!   crashes and the violation count must be zero.
//!
//! Writes `BENCH_crash.json` at the repo root. `CRASH_SMOKE=1` shrinks
//! the workload for CI.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

use copier::client::{AmemcpyOpts, CopierHandle};
use copier::core::{AdmitRec, CopierConfig, Handler, Journal, JournalStore, SegDescriptor};
use copier::mem::{Prot, PAGE_SIZE};
use copier::os::Os;
use copier::sim::{FaultConfig, FaultPlan, Machine, Nanos, Sim};
use copier_bench::json::Json;
use copier_bench::{kb, section};

/// One fig07-class run: `ncopies` unit copies of `len` bytes through the
/// full service stack, optionally journaled. Returns (virtual end ns,
/// tasks completed, journal-store bytes).
fn run_once(ncopies: usize, len: usize, seed: u64, journal: bool) -> (u64, u64, usize) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, (ncopies * len) / 4096 * 4 + 4096);
    let store = JournalStore::new();
    let svc = os.install_copier(
        vec![os.machine.core(1)],
        CopierConfig {
            use_dma: true,
            dma_channels: 2,
            journal: journal.then(|| Rc::clone(&store)),
            ..Default::default()
        },
    );
    let proc = os.spawn_process();
    let lib: Rc<CopierHandle> = proc.lib();
    let uspace = Rc::clone(&lib.uspace);
    let mut bufs = Vec::new();
    for i in 0..ncopies {
        let src = uspace.mmap(len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(len, Prot::RW, true).unwrap();
        let data: Vec<u8> = (0..len)
            .map(|b| (b as u64 ^ seed ^ i as u64) as u8)
            .collect();
        uspace.write_bytes(src, &data).unwrap();
        bufs.push((src, dst));
    }
    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    sim.spawn("client", async move {
        for &(src, dst) in &bufs {
            let _ = lib2.amemcpy(&core, dst, src, len).await;
        }
        let _ = lib2.csync_all(&core).await;
        svc2.stop();
    });
    let end = sim.run();
    (end.as_nanos(), svc.stats().tasks_completed, store.len())
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Minimum wall-clock milliseconds over `reps` *interleaved* runs of the
/// two variants. Sequential batches (all of A, then all of B) fold any
/// drift in host load into the ratio; pairing each A with an adjacent B
/// and taking minima measures the code, not the machine.
fn paired_min_ms(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut best = (f64::MAX, f64::MAX);
    for _ in 0..reps {
        let t0 = Instant::now();
        a();
        best.0 = best.0.min(t0.elapsed().as_secs_f64() * 1e3);
        let t1 = Instant::now();
        b();
        best.1 = best.1.min(t1.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Builds a store holding `depth` live admissions (plus an epoch record),
/// as a crashed incarnation would leave it.
fn synthetic_store(depth: usize) -> Rc<JournalStore> {
    let store = JournalStore::new();
    let (j, _) = Journal::attach(&store);
    // Keep the store below the compaction threshold regardless of depth:
    // attach latency should measure replay, not a rewrite.
    j.set_compact_threshold(usize::MAX);
    for i in 0..depth as u64 {
        j.record_admit(AdmitRec {
            tid: i + 1,
            client: 1,
            set_idx: 0,
            key: (u64::MAX, 1, i + 1),
            dst_space: 1,
            dst: 0x1000_0000 + i * 0x1_0000,
            src_space: 1,
            src: 0x2000_0000 + i * 0x1_0000,
            len: 0x1_0000,
            seg: PAGE_SIZE as u64,
            dst_digest: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            src_digest: i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        });
    }
    j.flush();
    store
}

struct SweepOut {
    crashes: u64,
    restarts: u64,
    completed: u64,
    violations: Vec<String>,
}

/// One seeded crash schedule through the supervisor/restart/re-attach
/// loop (the tests/crash.rs harness, condensed). Every violation of the
/// exactly-once contract is returned as a line.
fn crashed_run(seed: u64, ncopies: usize, pages: usize, crash_prob: f64) -> SweepOut {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 4096);
    let store = JournalStore::new();
    let plan = FaultPlan::new(FaultConfig {
        seed,
        crash_prob,
        max_crashes: 2,
        ..Default::default()
    });
    let cfg = CopierConfig {
        use_dma: true,
        dma_channels: 2,
        journal: Some(Rc::clone(&store)),
        fault_plan: Some(Rc::clone(&plan)),
        ..Default::default()
    };
    os.install_copier(vec![os.machine.core(1)], cfg.clone());
    let proc = os.spawn_process();
    let lib: Rc<CopierHandle> = proc.lib();
    let uspace = Rc::clone(&lib.uspace);
    let len = pages * PAGE_SIZE;
    let mut bufs = Vec::new();
    for i in 0..ncopies {
        let src = uspace.mmap(len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(len, Prot::RW, true).unwrap();
        let data: Vec<u8> = (0..len)
            .map(|b| (b as u64 ^ seed ^ i as u64) as u8 | 1)
            .collect();
        uspace.write_bytes(src, &data).unwrap();
        bufs.push((src, dst, data));
    }

    let done = Rc::new(Cell::new(false));
    let restarts = Rc::new(Cell::new(0u64));
    {
        let os2 = Rc::clone(&os);
        let lib2 = Rc::clone(&lib);
        let cfg2 = cfg.clone();
        let h2 = h.clone();
        let done2 = Rc::clone(&done);
        let r2 = Rc::clone(&restarts);
        sim.spawn("supervisor", async move {
            let score = os2.machine.core(1);
            loop {
                if done2.get() {
                    break;
                }
                if os2.copier().has_crashed() {
                    r2.set(r2.get() + 1);
                    let new_svc = os2.install_copier(vec![Rc::clone(&score)], cfg2.clone());
                    lib2.reattach(&score, &new_svc).await;
                }
                h2.sleep(Nanos(5_000)).await;
            }
        });
    }

    let counters: Vec<Rc<Cell<u64>>> = (0..ncopies).map(|_| Rc::new(Cell::new(0))).collect();
    let descrs: Rc<RefCell<Vec<Rc<SegDescriptor>>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let d2 = Rc::clone(&descrs);
        let lib2 = Rc::clone(&lib);
        let os2 = Rc::clone(&os);
        let h2 = h.clone();
        let done2 = Rc::clone(&done);
        let counters2 = counters.clone();
        let core = os.machine.core(0);
        let addrs: Vec<_> = bufs.iter().map(|&(s, d, _)| (s, d)).collect();
        sim.spawn("client", async move {
            for (i, &(src, dst)) in addrs.iter().enumerate() {
                let c = Rc::clone(&counters2[i]);
                let opts = AmemcpyOpts {
                    func: Some(Handler::UFunc(Rc::new(move || c.set(c.get() + 1)))),
                    ..Default::default()
                };
                let d = lib2
                    ._amemcpy(&core, dst, src, len, opts)
                    .await
                    .expect("admitted");
                d2.borrow_mut().push(d);
            }
            let _ = lib2.csync_all(&core).await;
            let mut spins = 0u32;
            loop {
                let _ = lib2.post_handlers(&core).await;
                if !counters2.iter().any(|c| c.get() == 0) || spins >= 2_000 {
                    break;
                }
                spins += 1;
                h2.sleep(Nanos(2_000)).await;
            }
            done2.set(true);
            os2.copier().stop();
        });
    }
    sim.run();

    let mut violations = Vec::new();
    for (i, d) in descrs.borrow().iter().enumerate() {
        let fired = counters[i].get();
        match d.fault() {
            None => {
                if !d.all_ready() {
                    violations.push(format!("seed {seed} copy {i}: unfinished, no fault"));
                }
                if fired != 1 {
                    violations.push(format!("seed {seed} copy {i}: handler fired {fired}x"));
                }
                let mut got = vec![0u8; len];
                uspace.read_bytes(bufs[i].1, &mut got).unwrap();
                if got != bufs[i].2 {
                    violations.push(format!("seed {seed} copy {i}: wrong bytes"));
                }
            }
            Some(f) => {
                if fired > 1 {
                    violations.push(format!(
                        "seed {seed} copy {i}: fault {f:?}, {fired} deliveries"
                    ));
                }
            }
        }
    }
    if lib.client.credits.get() != lib.client.credit_cap.get() {
        violations.push(format!(
            "seed {seed}: credits {} != cap {}",
            lib.client.credits.get(),
            lib.client.credit_cap.get()
        ));
    }
    if os.pm.pinned_frames() != 0 {
        violations.push(format!(
            "seed {seed}: {} pinned frames leaked",
            os.pm.pinned_frames()
        ));
    }
    SweepOut {
        crashes: plan.log().crashes,
        restarts: restarts.get(),
        completed: os.copier().stats().tasks_completed,
        violations,
    }
}

fn main() {
    let smoke = std::env::var("CRASH_SMOKE").is_ok_and(|v| v == "1");
    let (ncopies, len, reps, depths, sweep): (usize, usize, usize, &[usize], usize) = if smoke {
        (8, 64 * 1024, 3, &[64, 256], 8)
    } else {
        (64, 256 * 1024, 9, &[64, 256, 1024, 4096], 64)
    };
    let seed = 0xC4A5_11ADu64;
    let t0 = Instant::now();

    section("fig_crash: journal record overhead (host wall clock)");
    println!(
        "  mode: {}, workload: {ncopies} x {} (fig07-class)",
        if smoke { "smoke" } else { "full" },
        kb(len)
    );
    // Host timing here is noisy enough (same binary, same inputs: 2-4x
    // swings under container load) that sequential medians of each mode
    // mostly compare the machine against itself ten seconds later.
    // Interleaved pairs with per-mode minima converge on the actual cost.
    let pair_reps = if smoke { reps } else { 40 };
    let (base_ms, journaled_ms) = paired_min_ms(
        pair_reps,
        || {
            run_once(ncopies, len, seed, false);
        },
        || {
            run_once(ncopies, len, seed, true);
        },
    );
    let overhead = journaled_ms / base_ms - 1.0;
    // Journaling must not perturb virtual time or completions, and must
    // actually write something durable or the ratio is vacuous.
    let (end_p, done_p, store_p) = run_once(ncopies, len, seed, false);
    let (end_j, done_j, store_j) = run_once(ncopies, len, seed, true);
    assert_eq!(end_p, end_j, "journaling perturbed virtual time");
    assert_eq!(done_p, done_j, "journaling changed completions");
    assert_eq!(store_p, 0);
    assert!(store_j > 0, "journaled run left an empty store");
    println!(
        "  base={base_ms:.2} ms  journaled={journaled_ms:.2} ms  overhead={:.1}%  store={} B",
        overhead * 100.0,
        store_j
    );

    section("fig_crash: recovery latency vs journal depth (Journal::attach)");
    let mut recovery = Vec::new();
    for &depth in depths {
        let store = synthetic_store(depth);
        let us = median_ms(reps.max(5), || {
            let (_, rec) = Journal::attach(&store);
            assert_eq!(rec.live.len(), depth, "replay lost admissions");
        }) * 1e3;
        println!(
            "  depth {depth:>5}: attach {us:>8.1} us  ({} B store)",
            store.len()
        );
        recovery.push(Json::obj([
            ("depth", Json::Int(depth as u64)),
            ("attach_us", Json::Num(us)),
            ("store_bytes", Json::Int(store.len() as u64)),
        ]));
    }

    section("fig_crash: exactly-once sweep over seeded crash schedules");
    let mut crashes = 0u64;
    let mut restarts = 0u64;
    let mut completed = 0u64;
    let mut violations: Vec<String> = Vec::new();
    for i in 0..sweep as u64 {
        let out = crashed_run(
            seed ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            2 + (i % 3) as usize,
            1 + (i % 4) as usize,
            0.15 + (i % 5) as f64 * 0.1,
        );
        crashes += out.crashes;
        restarts += out.restarts;
        completed += out.completed;
        violations.extend(out.violations);
    }
    println!(
        "  schedules={sweep}  crashes={crashes}  restarts={restarts}  completed={completed}  violations={}",
        violations.len()
    );
    for v in violations.iter().take(8) {
        println!("    VIOLATION: {v}");
    }
    assert!(crashes > 0, "sweep fired no crashes — contract untested");
    assert!(
        violations.is_empty(),
        "{} exactly-once violations",
        violations.len()
    );
    if !smoke {
        // Acceptance bar (full mode only; smoke runs are too short for a
        // stable wall-clock ratio): journaling costs at most 5%.
        assert!(
            overhead <= 0.05,
            "journal record overhead {:.1}% exceeds the 5% bar",
            overhead * 100.0
        );
    }

    let suite_ms = t0.elapsed().as_secs_f64() * 1e3;
    let json = Json::obj([
        ("bench", Json::Str("fig_crash".into())),
        ("smoke", Json::Bool(smoke)),
        ("suite_ms", Json::Num(suite_ms)),
        (
            "record",
            Json::obj([
                ("base_ms", Json::Num(base_ms)),
                ("journaled_ms", Json::Num(journaled_ms)),
                ("overhead_frac", Json::Num(overhead)),
                ("store_bytes", Json::Int(store_j as u64)),
                ("workload_bytes", Json::Int((ncopies * len) as u64)),
            ]),
        ),
        ("recovery", Json::Arr(recovery)),
        (
            "exactly_once",
            Json::obj([
                ("schedules", Json::Int(sweep as u64)),
                ("crashes", Json::Int(crashes)),
                ("restarts", Json::Int(restarts)),
                ("completed", Json::Int(completed)),
                ("violations", Json::Int(violations.len() as u64)),
            ]),
        ),
        (
            "summary",
            Json::Arr(vec![
                Json::summary("journal_overhead", "frac_max", 0.05, overhead),
                Json::summary(
                    "exactly_once_violations",
                    "count_max",
                    0.0,
                    violations.len() as f64,
                ),
                Json::summary("crash_coverage", "count_min", 1.0, crashes as f64),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crash.json");
    json.write_file(path).expect("write BENCH_crash.json");
    println!("\n  wrote {path} (suite {suite_ms:.0} ms)");
}
