//! §4.6 break-even sizes: at which copy size does Copier beat a sync copy
//! (a) with a sufficient Copy-Use window, and (b) with no window at all?
//!
//! Paper: with windows, kernel copies ≥0.3 KB and user copies ≥0.5 KB
//! benefit; without windows (pure hardware win), kernel ≥2 KB and user
//! ≥12 KB.

use std::rc::Rc;

use copier_bench::{delta, kb, row, section};
use copier_client::{sync_copy, CopierHandle};
use copier_core::{Copier, CopierConfig};
use copier_hw::{CostModel, CpuCopyKind};
use copier_mem::{AddressSpace, AllocPolicy, PhysMem, Prot};
use copier_sim::{Machine, Nanos, Sim};

const ROUNDS: usize = 40;

/// Per-operation latency of copy-then-use with a `window` of unrelated
/// compute between copy and use.
fn run(size: usize, window: Nanos, use_copier: bool, kind: CpuCopyKind) -> Nanos {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let pm = Rc::new(PhysMem::new(8192, AllocPolicy::Scattered));
    let cost = Rc::new(CostModel::default());
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        Rc::clone(&cost),
        CopierConfig::default(),
    );
    svc.start();
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let out = Rc::new(std::cell::Cell::new(Nanos::ZERO));
    let out2 = Rc::clone(&out);
    let svc2 = Rc::clone(&svc);
    let h2 = h.clone();
    sim.spawn("driver", async move {
        let src = space.mmap(size, Prot::RW, true).unwrap();
        let dst = space.mmap(size, Prot::RW, true).unwrap();
        // Warm the service (it would be spinning under load).
        lib.amemcpy(&core, dst, src, size).await.expect("admitted");
        lib.csync(&core, dst, size).await.unwrap();
        let t0 = h2.now();
        for _ in 0..ROUNDS {
            if use_copier {
                lib.amemcpy(&core, dst, src, size).await.expect("admitted");
                core.advance(window).await;
                lib.csync(&core, dst, size).await.unwrap();
            } else {
                sync_copy(&core, &cost, kind, &space, dst, &space, src, size)
                    .await
                    .unwrap();
                core.advance(window).await;
            }
        }
        out2.set(Nanos((h2.now() - t0).as_nanos() / ROUNDS as u64));
        svc2.stop();
    });
    sim.run();
    out.get()
}

fn main() {
    section("Break-even: copy+use latency, generous Copy-Use window (2x copy time)");
    let cost = CostModel::default();
    for size in [256usize, 512, 1024, 2048, 4096] {
        let window = Nanos(cost.cpu_copy(CpuCopyKind::Avx2, size).as_nanos() * 2);
        let sync = run(size, window, false, CpuCopyKind::Avx2);
        let cop = run(size, window, true, CpuCopyKind::Avx2);
        row(&[
            ("size", kb(size)),
            ("sync", format!("{sync}")),
            ("copier", format!("{cop}")),
            ("change", delta(sync, cop)),
        ]);
    }
    section("Break-even: no Copy-Use window (hardware-only win)");
    for size in [2048usize, 8 * 1024, 16 * 1024, 64 * 1024, 256 * 1024] {
        let sync = run(size, Nanos::ZERO, false, CpuCopyKind::Avx2);
        let cop = run(size, Nanos::ZERO, true, CpuCopyKind::Avx2);
        row(&[
            ("size", kb(size)),
            ("sync", format!("{sync}")),
            ("copier", format!("{cop}")),
            ("change", delta(sync, cop)),
        ]);
    }
}
