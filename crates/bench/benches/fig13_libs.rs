//! Fig. 13: frameworks and libraries — Protobuf (a), OpenSSL-style TLS
//! reads (b), and the smartphone avcodec pipeline (c), plus the zlib
//! deflate case of §6.2.3.
//!
//! Paper shape: Protobuf −4–33%; SSL_read −1.4–8.4% flattening at the
//! 16 KB record cap; avcodec −3–10% latency with ≤0.3% energy and fewer
//! frame drops; zlib up to −18.8%.

use std::cell::RefCell;
use std::rc::Rc;

use copier_apps::avcodec::{self, PlaybackReport};
use copier_apps::proto;
use copier_apps::tls::{chacha20_xor, TlsSession};
use copier_apps::zlib;
use copier_bench::{delta, kb, row, section};
use copier_core::{CopierConfig, PollMode};
use copier_mem::Prot;
use copier_os::{IoMode, NetStack, Os};
use copier_sim::{Machine, Nanos, PowerModel, Sim, SimRng};

fn proto_run(use_copier: bool, total: usize) -> Nanos {
    let field = 2048.min(total / 2);
    let nfields = total / field;
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 3);
    let os = Os::boot(&h, machine, 65536);
    if use_copier {
        os.install_copier(vec![os.machine.core(2)], Default::default());
    }
    let net = NetStack::new(&os);
    let (txs, rxs) = net.socket_pair();
    let rng = SimRng::new(3);
    let fields: Vec<(u8, Vec<u8>)> = (0..nfields)
        .map(|i| {
            let mut p = vec![0u8; field];
            rng.fill_bytes(&mut p);
            (i as u8 + 1, p)
        })
        .collect();
    let sender = os.spawn_process();
    let cap = total + nfields * 8 + 64;
    let net2 = Rc::clone(&net);
    let score = os.machine.core(0);
    let f2 = fields.clone();
    sim.spawn("tx", async move {
        let buf = sender.space.mmap(cap, Prot::RW, true).unwrap();
        let n = proto::encode(&sender, buf, &f2).unwrap();
        net2.send(&score, &sender, &txs, buf, n, IoMode::Sync)
            .await
            .unwrap();
    });
    let receiver = os.spawn_process();
    let rcore = os.machine.core(1);
    let os2 = Rc::clone(&os);
    let out = Rc::new(std::cell::Cell::new(Nanos::ZERO));
    let out2 = Rc::clone(&out);
    sim.spawn("rx", async move {
        let buf = receiver.space.mmap(cap, Prot::RW, true).unwrap();
        let (msg, lat) =
            proto::recv_and_decode(&os2, &net, &rcore, &receiver, &rxs, buf, cap, use_copier)
                .await
                .unwrap();
        assert_eq!(msg.fields, fields);
        out2.set(lat);
        if let Some(svc) = os2.copier.borrow().as_ref() {
            svc.stop();
        }
    });
    sim.run();
    out.get()
}

fn tls_run(use_copier: bool, total: usize) -> Nanos {
    // Records cap at 16 KB; larger reads decompose.
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 3);
    let os = Os::boot(&h, machine, 65536);
    if use_copier {
        os.install_copier(vec![os.machine.core(2)], Default::default());
    }
    let net = NetStack::new(&os);
    let (txs, rxs) = net.socket_pair();
    let session = Rc::new(TlsSession {
        key: [9; 32],
        nonce: [1; 12],
    });
    let rng = SimRng::new(8);
    let mut plain = vec![0u8; total];
    rng.fill_bytes(&mut plain);
    let records: Vec<Vec<u8>> = plain.chunks(16 * 1024).map(|c| c.to_vec()).collect();

    let sender = os.spawn_process();
    let score = os.machine.core(0);
    let net2 = Rc::clone(&net);
    let s2 = Rc::clone(&session);
    let recs = records.clone();
    sim.spawn("tx", async move {
        let buf = sender.space.mmap(16 * 1024, Prot::RW, true).unwrap();
        for r in recs {
            let mut c = r.clone();
            chacha20_xor(&s2.key, &s2.nonce, 0, &mut c);
            sender.space.write_bytes(buf, &c).unwrap();
            net2.send(&score, &sender, &txs, buf, c.len(), IoMode::Sync)
                .await
                .unwrap();
        }
    });
    let receiver = os.spawn_process();
    let rcore = os.machine.core(1);
    let os2 = Rc::clone(&os);
    let out = Rc::new(std::cell::Cell::new(Nanos::ZERO));
    let out2 = Rc::clone(&out);
    let nrec = records.len();
    sim.spawn("rx", async move {
        let buf = receiver.space.mmap(16 * 1024, Prot::RW, true).unwrap();
        let mut total_lat = Nanos::ZERO;
        for _ in 0..nrec {
            let (_, lat) = session
                .ssl_read(
                    &os2,
                    &net,
                    &rcore,
                    &receiver,
                    &rxs,
                    buf,
                    16 * 1024,
                    use_copier,
                )
                .await
                .unwrap();
            total_lat += lat;
        }
        out2.set(total_lat);
        if let Some(svc) = os2.copier.borrow().as_ref() {
            svc.stop();
        }
    });
    sim.run();
    out.get()
}

fn zlib_run(use_copier: bool, total: usize) -> Nanos {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 131072);
    if use_copier {
        os.install_copier(vec![os.machine.core(1)], Default::default());
    }
    let proc = os.spawn_process();
    let core = os.machine.core(0);
    let os2 = Rc::clone(&os);
    let out = Rc::new(std::cell::Cell::new(Nanos::ZERO));
    let out2 = Rc::clone(&out);
    sim.spawn("deflate", async move {
        let input = proc.space.mmap(total, Prot::RW, true).unwrap();
        let window = proc.space.mmap(2 * zlib::BLOCK, Prot::RW, true).unwrap();
        let data: Vec<u8> = (0..total).map(|i| ((i / 48) % 230) as u8).collect();
        proc.space.write_bytes(input, &data).unwrap();
        let (c, lat) = zlib::deflate(&os2, &core, &proc, input, total, window, use_copier)
            .await
            .unwrap();
        assert_eq!(zlib::lz77_decompress(&c), data);
        out2.set(lat);
        if let Some(svc) = os2.copier.borrow().as_ref() {
            svc.stop();
        }
    });
    sim.run();
    out.get()
}

fn avcodec_run(use_copier: bool, frames: u64, jitter: u64) -> (PlaybackReport, f64) {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 65536);
    if use_copier {
        os.install_copier(
            vec![os.machine.core(1)],
            CopierConfig {
                polling: PollMode::ScenarioDriven,
                ..Default::default()
            },
        );
        os.copier().set_scenario_active(false);
    }
    let core = os.machine.core(0);
    let proc = os.spawn_process();
    let os2 = Rc::clone(&os);
    let out = Rc::new(RefCell::new(None));
    let out2 = Rc::clone(&out);
    sim.spawn("playback", async move {
        let r = avcodec::play(
            Rc::clone(&os2),
            core,
            proc,
            1024 * 1024, // 1 MB frames
            frames,
            use_copier,
            jitter,
        )
        .await
        .unwrap();
        *out2.borrow_mut() = Some(r);
        if let Some(svc) = os2.copier.borrow().as_ref() {
            svc.stop();
        }
    });
    let end = sim.run();
    let e = os.machine.energy_joules(PowerModel::default(), end);
    let r = out.borrow().unwrap();
    (r, e)
}

fn main() {
    section("Fig 13-a: Protobuf recv+deserialize latency");
    for total in [4 * 1024, 16 * 1024, 64 * 1024, 128 * 1024] {
        let b = proto_run(false, total);
        let c = proto_run(true, total);
        row(&[
            ("size", kb(total)),
            ("baseline", format!("{b}")),
            ("copier", format!("{c}")),
            ("change", delta(b, c)),
        ]);
    }

    section("Fig 13-b: TLS SSL_read latency (records cap at 16KB)");
    for total in [4 * 1024, 16 * 1024, 64 * 1024] {
        let b = tls_run(false, total);
        let c = tls_run(true, total);
        row(&[
            ("size", kb(total)),
            ("baseline", format!("{b}")),
            ("copier", format!("{c}")),
            ("change", delta(b, c)),
        ]);
    }

    section("zlib deflate_fast (§6.2.3)");
    for total in [64 * 1024, 256 * 1024] {
        let b = zlib_run(false, total);
        let c = zlib_run(true, total);
        row(&[
            ("size", kb(total)),
            ("baseline", format!("{b}")),
            ("copier", format!("{c}")),
            ("change", delta(b, c)),
        ]);
    }

    section("Fig 13-c: avcodec playback (1MB frames, 60 frames, jittered decode)");
    let (b, eb) = avcodec_run(false, 60, 100);
    let (c, ec) = avcodec_run(true, 60, 100);
    assert_eq!(b.checksum, c.checksum, "identical pixels");
    row(&[
        ("sys", "baseline".into()),
        ("frame-lat", format!("{}", b.avg_latency)),
        ("drops", format!("{}", b.dropped)),
        ("energy(J)", format!("{eb:.3}")),
    ]);
    row(&[
        ("sys", "copier".into()),
        ("frame-lat", format!("{}", c.avg_latency)),
        ("drops", format!("{}", c.dropped)),
        ("energy(J)", format!("{ec:.3}")),
    ]);
    println!(
        "  latency change {}  energy change {:+.2}%",
        delta(b.avg_latency, c.avg_latency),
        (ec - eb) / eb * 100.0
    );
}
