//! Fig. 3: the Copy-Use window versus the copy time at each byte
//! position.
//!
//! We replay the baseline access patterns of the receive-and-process
//! applications, timestamping the *first use* of each position relative
//! to the copy's completion point. The paper finds windows of 2–10× the
//! copy time — the headroom async copy hides behind.

use copier_bench::{kb, row, section};
use copier_hw::{CostModel, CpuCopyKind};

struct Pattern {
    name: &'static str,
    /// ns of compute consumed per KB before the cursor advances past it.
    ns_per_kb: u64,
    /// Fixed pre-processing before the first byte is touched.
    lead_ns: u64,
}

fn main() {
    let m = CostModel::default();
    let msg = 16 * 1024usize;
    // Access patterns of the paper's Fig. 3 workloads, taken from the
    // miniature implementations' cost constants.
    let patterns = [
        Pattern {
            name: "protobuf",
            ns_per_kb: 1000 + 50,
            lead_ns: 800,
        },
        Pattern {
            name: "aes-dec",
            ns_per_kb: copier_apps::tls::DECRYPT_NS_PER_KB,
            lead_ns: 800,
        },
        Pattern {
            name: "redis-set",
            ns_per_kb: 0,
            lead_ns: 550,
        },
        Pattern {
            name: "deflate",
            ns_per_kb: copier_apps::zlib::MATCH_NS_PER_KB,
            lead_ns: 100,
        },
        Pattern {
            name: "png-decode",
            ns_per_kb: copier_apps::png::UNFILTER_NS_PER_KB,
            lead_ns: 700,
        },
    ];
    section("Fig 3: Copy-Use window vs copy time at position x (16KB message)");
    for p in patterns {
        println!("\n  {}", p.name);
        for pos in [1024usize, 4096, 8192, 16384] {
            // Window: time from copy completion (recv return) until the
            // byte at `pos` is first used by the processing loop.
            let window = p.lead_ns + (pos as u64 - 1) * p.ns_per_kb / 1024;
            // Time needed to (re)copy everything up to pos.
            let copy = m.cpu_copy(CpuCopyKind::Erms, pos).as_nanos();
            row(&[
                ("pos", kb(pos)),
                ("window(ns)", format!("{window}")),
                ("copy(ns)", format!("{copy}")),
                ("ratio", format!("{:.1}x", window as f64 / copy as f64)),
            ]);
        }
        let _ = msg;
    }
    println!("\n  (redis-set window: parse+table-op before the value is copied out)");
}
