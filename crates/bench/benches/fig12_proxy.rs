//! Fig. 12: TinyProxy throughput (a), multi-thread scalability (b), and
//! the performance breakdown ablation (c).
//!
//! Paper shape: (a) Copier +7.2–32.3%, zIO ≤ +11.6% and ≥16 KB only;
//! (b) near-linear scaling with per-thread queues; (c) async dominates at
//! 1 KB, hardware + absorption matter at 256 KB.

use std::cell::Cell;
use std::rc::Rc;

use copier_apps::proxy::{echo_server, Proxy, ProxyMode};
use copier_baselines::Zio;
use copier_bench::{kb, ratio, row, section};
use copier_core::CopierConfig;
use copier_mem::Prot;
use copier_os::{IoMode, NetStack, Os};
use copier_sim::{Machine, Nanos, Sim};

const MSGS: u64 = 40;

/// Messages/second through `threads` proxy workers with `len`-byte messages.
fn run(
    mode: &ProxyMode,
    with_copier: bool,
    cfg: Option<CopierConfig>,
    len: usize,
    threads: usize,
) -> f64 {
    let mut sim = Sim::new();
    let h = sim.handle();
    // client cores + proxy cores + upstream core + copier core.
    let machine = Machine::new(&h, threads * 2 + 2);
    let os = Os::boot(&h, machine, 128 * 1024);
    if with_copier {
        os.install_copier(
            vec![os.machine.core(threads * 2 + 1)],
            cfg.unwrap_or_default(),
        );
    }
    let net = NetStack::new(&os);
    let shared_proc = os.spawn_process();
    let done = Rc::new(Cell::new(0usize));
    let finish = Rc::new(Cell::new(Nanos::ZERO));
    let start = Rc::new(Cell::new(Nanos::ZERO));
    for t in 0..threads {
        let (ctx, prx) = net.socket_pair();
        let (ptx, urx) = net.socket_pair();
        let fd = if t == 0 {
            0
        } else {
            // Per-thread queue sets (§5.1 multi-queue).
            if with_copier {
                shared_proc.lib().create_queue(1024)
            } else {
                0
            }
        };
        let proxy = Proxy::with_process(
            &os,
            &net,
            mode.clone(),
            512 * 1024,
            Rc::clone(&shared_proc),
            fd,
        )
        .unwrap();
        let pcore = os.machine.core(threads + t);
        sim.spawn("proxy", async move {
            proxy.pump(&pcore, prx, ptx, MSGS).await;
        });
        // Upstream sink: the last delivery timestamps the run's end.
        let os2 = Rc::clone(&os);
        let net2 = Rc::clone(&net);
        let ucore = os.machine.core(threads * 2);
        let h3 = h.clone();
        let done3 = Rc::clone(&done);
        let finish3 = Rc::clone(&finish);
        sim.spawn("upstream", async move {
            echo_server(Rc::clone(&os2), net2, ucore, urx, MSGS, None).await;
            finish3.set(finish3.get().max(h3.now()));
            done3.set(done3.get() + 1);
            if done3.get() == threads {
                if let Some(svc) = os2.copier.borrow().as_ref() {
                    svc.stop();
                }
            }
        });
        // Client pump.
        let os3 = Rc::clone(&os);
        let net3 = Rc::clone(&net);
        let ccore = os.machine.core(t);
        let start2 = Rc::clone(&start);
        let h2 = h.clone();
        sim.spawn("client", async move {
            let proc = os3.spawn_process();
            let buf = proc.space.mmap(len.max(4096), Prot::RW, true).unwrap();
            proc.space.write_bytes(buf, &vec![1u8; len]).unwrap();
            if start2.get() == Nanos::ZERO {
                start2.set(h2.now());
            }
            for _ in 0..MSGS {
                net3.send(&ccore, &proc, &ctx, buf, len, IoMode::Sync)
                    .await
                    .unwrap();
            }
        });
    }
    sim.run_until(Nanos::from_secs(5));
    let total = MSGS as f64 * threads as f64;
    total / (finish.get() - start.get()).as_secs_f64() / 1000.0 // kmsg/s
}

fn main() {
    section("Fig 12-a: TinyProxy forwarding throughput (kmsg/s)");
    for len in [4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024] {
        let base = run(&ProxyMode::Baseline, false, None, len, 1);
        let cop = run(&ProxyMode::Copier, true, None, len, 1);
        let zio = run(
            &ProxyMode::Zio(Zio::new(Rc::new(copier_hw::CostModel::default()))),
            false,
            None,
            len,
            1,
        );
        row(&[
            ("size", kb(len)),
            ("baseline", format!("{base:.1}")),
            ("copier", format!("{cop:.1}")),
            ("zio", format!("{zio:.1}")),
            ("copier-imp", ratio(cop, base)),
            ("zio-imp", ratio(zio, base)),
        ]);
    }

    section("Fig 12-b: multi-thread scalability (16KB messages)");
    let one = run(&ProxyMode::Copier, true, None, 16 * 1024, 1);
    for threads in [1usize, 2, 4, 8] {
        let t = run(&ProxyMode::Copier, true, None, 16 * 1024, threads);
        row(&[
            ("threads", format!("{threads}")),
            ("kmsg/s", format!("{t:.1}")),
            ("scaling", ratio(t, one)),
        ]);
    }

    section("Fig 12-c: breakdown (async / +hardware / +absorption)");
    for len in [1024usize, 256 * 1024] {
        let base = run(&ProxyMode::Baseline, false, None, len, 1);
        let async_only = run(
            &ProxyMode::Copier,
            true,
            Some(CopierConfig {
                use_dma: false,
                absorption: false,
                ..Default::default()
            }),
            len,
            1,
        );
        let plus_hw = run(
            &ProxyMode::Copier,
            true,
            Some(CopierConfig {
                absorption: false,
                ..Default::default()
            }),
            len,
            1,
        );
        let full = run(&ProxyMode::Copier, true, None, len, 1);
        row(&[
            ("size", kb(len)),
            ("baseline", format!("{base:.1}")),
            ("async", format!("{async_only:.1}")),
            ("+hw", format!("{plus_hw:.1}")),
            ("+absorb", format!("{full:.1}")),
        ]);
    }
}
