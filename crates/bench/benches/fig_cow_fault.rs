//! §6.1.2 CoW fault handling: average thread-blocking time per fault for
//! 4 KB base pages and 2 MB huge-page regions.
//!
//! Paper shape: −71.8% for 2 MB, −8.0% for 4 KB.

use std::rc::Rc;

use copier_bench::{delta, kb, row, section};
use copier_mem::{Prot, PAGE_SIZE};
use copier_os::{handle_cow_fault, Os};
use copier_sim::{Machine, Nanos, Sim};

const FAULTS: usize = 12;

fn run(region: usize, use_copier: bool) -> Nanos {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 3 * FAULTS * region / PAGE_SIZE + 4096);
    if use_copier {
        os.install_copier(vec![os.machine.core(1)], Default::default());
    }
    let parent = os.spawn_process();
    let core = os.machine.core(0);
    let os2 = Rc::clone(&os);
    let out = Rc::new(std::cell::Cell::new(Nanos::ZERO));
    let out2 = Rc::clone(&out);
    sim.spawn("faults", async move {
        let mut total = Nanos::ZERO;
        let mut children = Vec::new();
        for i in 0..FAULTS {
            let va = parent.space.mmap(region, Prot::RW, true).unwrap();
            parent.space.write_bytes(va, &vec![i as u8; 64]).unwrap();
            // Fork to arm CoW, then fault the whole region at once.
            children.push(parent.space.fork(1000 + i as u32).unwrap());
            let o = handle_cow_fault(&os2, &core, &parent, va, region, use_copier)
                .await
                .unwrap();
            total += o.blocked;
        }
        out2.set(Nanos(total.as_nanos() / FAULTS as u64));
        if let Some(svc) = os2.copier.borrow().as_ref() {
            svc.stop();
        }
    });
    sim.run();
    out.get()
}

fn main() {
    section("CoW fault blocking time per fault");
    for region in [PAGE_SIZE, 2 * 1024 * 1024] {
        let b = run(region, false);
        let c = run(region, true);
        row(&[
            ("region", kb(region)),
            ("baseline", format!("{b}")),
            ("copier", format!("{c}")),
            ("change", delta(b, c)),
        ]);
    }
}
