//! fig_trace — record overhead and replay fidelity of the trace layer.
//!
//! Three sections over a fig07-class unit-copy workload (N× 256 KB
//! amemcpy + csync_all through the full service stack, faults injected):
//!
//! - `record` — host wall-clock of the same run untraced vs. recorded.
//!   Recording is host-side only (virtual time is identical by
//!   construction — asserted here), so the overhead is pure event
//!   append; the acceptance bar is ≤ 10%.
//! - `replay` — the recorded trace replayed in lockstep: no divergence,
//!   the same virtual end time, and a re-recorded log that encodes to
//!   the same bytes as the original.
//! - `divergence` — one recorded DMA draw is flipped; the checker must
//!   fire at (or just after) the perturbed round, never before.
//!
//! Writes `BENCH_trace.json` at the repo root. `TRACE_SMOKE=1` shrinks
//! the workload for CI.

use std::rc::Rc;
use std::time::Instant;

use copier::client::CopierHandle;
use copier::core::CopierConfig;
use copier::mem::Prot;
use copier::os::Os;
use copier::sim::{FaultConfig, FaultPlan, Machine, Sim, Trace, TraceEvent, Tracer};
use copier_bench::json::Json;
use copier_bench::{kb, section};

struct RunOut {
    end: u64,
    events: usize,
}

/// One fig07-class run: `ncopies` unit copies of `len` bytes, faults
/// injected, optionally traced.
fn run_once(ncopies: usize, len: usize, seed: u64, tracer: Option<Rc<Tracer>>) -> RunOut {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    // 4x the buffer frames plus slack: the workload must stay far below
    // the pressure watermark or every copy degrades to the sync CPU path
    // and the DMA draw stream this bench measures never happens.
    let os = Os::boot(&h, machine, (ncopies * len) / 4096 * 4 + 4096);
    let plan = FaultPlan::new(FaultConfig {
        seed,
        dma_transient_prob: 0.2,
        dma_hard_prob: 0.0,
        dma_timeout_prob: 0.1,
        atc_stale_prob: 0.2,
        ..Default::default()
    });
    if let Some(t) = &tracer {
        t.emit(TraceEvent::Meta { key: 1, val: seed });
        plan.set_tracer(t);
    }
    let svc = os.install_copier(
        vec![os.machine.core(1)],
        CopierConfig {
            use_dma: true,
            dma_channels: 2,
            fault_plan: Some(Rc::clone(&plan)),
            tracer: tracer.clone(),
            ..Default::default()
        },
    );
    let proc = os.spawn_process();
    let lib: Rc<CopierHandle> = proc.lib();
    let uspace = Rc::clone(&lib.uspace);
    let mut bufs = Vec::new();
    for i in 0..ncopies {
        let src = uspace.mmap(len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(len, Prot::RW, true).unwrap();
        let data: Vec<u8> = (0..len)
            .map(|b| (b as u64 ^ seed ^ i as u64) as u8)
            .collect();
        uspace.write_bytes(src, &data).unwrap();
        bufs.push((src, dst));
    }
    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    sim.spawn("client", async move {
        for &(src, dst) in &bufs {
            let _ = lib2.amemcpy(&core, dst, src, len).await;
        }
        let _ = lib2.csync_all(&core).await;
        svc2.stop();
    });
    let end = sim.run();
    assert_eq!(
        svc.stats().degraded_sync_copies,
        0,
        "workload tripped pressure degradation — grow the frame pool"
    );
    RunOut {
        end: end.as_nanos(),
        events: tracer.map_or(0, |t| t.events_len()),
    }
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::var("TRACE_SMOKE").is_ok_and(|v| v == "1");
    let (ncopies, len, reps) = if smoke {
        (8, 64 * 1024, 3)
    } else {
        (64, 256 * 1024, 9)
    };
    let seed = 0x7ACE_D00Du64;
    let bytes = (ncopies * len) as u64;
    let t0 = Instant::now();

    section("fig_trace: record overhead (host wall clock)");
    println!(
        "  mode: {}, workload: {ncopies} x {} (fig07-class)",
        if smoke { "smoke" } else { "full" },
        kb(len)
    );
    let base_ms = median_ms(reps, || {
        run_once(ncopies, len, seed, None);
    });
    let traced_ms = median_ms(reps, || {
        run_once(ncopies, len, seed, Some(Tracer::record()));
    });
    let overhead = traced_ms / base_ms - 1.0;

    // Recording must not perturb virtual time, and the trace must be
    // non-trivial or the overhead number is vacuous.
    let plain = run_once(ncopies, len, seed, None);
    let rec = Tracer::record();
    let recorded = run_once(ncopies, len, seed, Some(Rc::clone(&rec)));
    assert_eq!(plain.end, recorded.end, "tracing perturbed virtual time");
    let trace = rec.finish();
    let trace_bytes = trace.encode().len();
    println!(
        "  base={base_ms:.2} ms  traced={traced_ms:.2} ms  overhead={:.1}%  events={} ({} bytes)",
        overhead * 100.0,
        recorded.events,
        trace_bytes
    );

    section("fig_trace: replay fidelity");
    let rep = Tracer::replay(trace.clone());
    // Different fault-plan seed: every draw must come from the log.
    let replayed = run_once(ncopies, len, seed, Some(Rc::clone(&rep)));
    let identical = rep.divergence().is_none()
        && replayed.end == recorded.end
        && rep.finish().encode() == trace.encode();
    println!(
        "  divergence={:?}  end {} vs {}  identical={identical}",
        rep.divergence().map(|d| d.round),
        replayed.end,
        recorded.end
    );
    assert!(identical, "faithful replay must be bit-identical");

    section("fig_trace: divergence localization");
    let mut round = 0u64;
    let mut hit = None;
    for (i, e) in trace.events().iter().enumerate() {
        match e {
            TraceEvent::RoundStart { round: r, .. } => round = *r,
            // Perturb a draw from the middle third of the stream so there
            // is a healthy replayed prefix before the flip.
            TraceEvent::DmaDraw { .. } if hit.is_none() && i > trace.events().len() / 3 => {
                hit = Some((i, round))
            }
            _ => {}
        }
    }
    let (pos, injected_round) = hit.expect("workload injected no DMA draws");
    let mut bad = trace.clone();
    let TraceEvent::DmaDraw { fault } = bad.events()[pos] else {
        unreachable!()
    };
    bad.events_mut()[pos] = TraceEvent::DmaDraw {
        fault: if fault == 0 { 1 } else { 0 },
    };
    let rep2 = Tracer::replay(bad);
    run_once(ncopies, len, seed, Some(Rc::clone(&rep2)));
    let d = rep2.divergence().expect("perturbed replay must diverge");
    println!(
        "  injected at round {injected_round} (event {pos}), detected at round {} (event {})",
        d.round, d.pos
    );
    assert!(d.pos > pos, "checker fired before the perturbation");
    assert!(
        d.round >= injected_round,
        "checker fired before the bad round"
    );
    if !smoke {
        // Acceptance bar (full mode only; smoke runs are too short for a
        // stable wall-clock ratio): recording costs at most 10%.
        assert!(
            overhead <= 0.10,
            "record overhead {:.1}% exceeds the 10% bar",
            overhead * 100.0
        );
    }

    let suite_ms = t0.elapsed().as_secs_f64() * 1e3;
    let json = Json::obj([
        ("bench", Json::Str("fig_trace".into())),
        ("smoke", Json::Bool(smoke)),
        ("suite_ms", Json::Num(suite_ms)),
        (
            "record",
            Json::obj([
                ("base_ms", Json::Num(base_ms)),
                ("traced_ms", Json::Num(traced_ms)),
                ("overhead_frac", Json::Num(overhead)),
                ("events", Json::Int(recorded.events as u64)),
                ("trace_bytes", Json::Int(trace_bytes as u64)),
                ("workload_bytes", Json::Int(bytes)),
            ]),
        ),
        (
            "replay",
            Json::obj([
                ("identical", Json::Bool(identical)),
                ("rounds", Json::Int(trace.rounds() as u64)),
                ("events", Json::Int(trace.events().len() as u64)),
            ]),
        ),
        (
            "divergence",
            Json::obj([
                ("injected_round", Json::Int(injected_round)),
                ("detected_round", Json::Int(d.round)),
            ]),
        ),
        (
            "summary",
            Json::Arr(vec![
                Json::summary("record_overhead", "frac_max", 0.10, overhead),
                Json::summary(
                    "replay_identical",
                    "flag_min",
                    1.0,
                    if identical { 1.0 } else { 0.0 },
                ),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    json.write_file(path).expect("write BENCH_trace.json");
    println!("\n  wrote {path} (suite {suite_ms:.0} ms)");
    let _ = Trace::decode(&trace.encode()).expect("wire format self-check");
}
