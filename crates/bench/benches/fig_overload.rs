//! fig_overload: open-loop multi-tenant overload — admission control,
//! credit backpressure, and memory-pressure graceful degradation.
//!
//! Extends §6.3's saturation study past the knee: four tenants submit on
//! an open loop (arrivals do not slow down when the service does) at a
//! configurable multiple of the single service core's copy bandwidth.
//! Desired shape: goodput holds near peak as offered load doubles past
//! saturation (no congestion collapse), excess work is rejected with
//! typed errors instead of queued without bound, and no tenant is starved
//! below its fair share. A second section pins the memory high-watermark
//! below the working set so every copy takes the degraded unpinned
//! synchronous path (§4.6 break-even fallback).

use std::cell::Cell;
use std::rc::Rc;

use copier_bench::{row, section};
use copier_client::{AmemcpyOpts, CopierHandle};
use copier_core::{AdmissionConfig, Copier, CopierConfig, CopierStats};
use copier_hw::CostModel;
use copier_mem::{AddressSpace, AllocPolicy, PhysMem, Prot, VirtAddr};
use copier_sim::{Machine, Nanos, Sim, WorkloadConfig, WorkloadPlan};

const TENANTS: usize = 4;
const HORIZON: Nanos = Nanos::from_millis(2);
/// Uniform copy lengths in [16 KiB, 64 KiB] — mean 40 KiB.
const LEN_MIN: usize = 16 * 1024;
const LEN_MAX: usize = 64 * 1024;
/// Nominal single-core service copy bandwidth (AVX2 ≈ 10–11 B/ns); load
/// factors below are multiples of this.
const SAT_RATE: f64 = 10.0;
/// Distinct reusable buffer pairs per tenant.
const POOL: usize = 8;

/// Quotas tight enough that overload actually trips them at small scale:
/// 64 in-flight tasks / 4 MiB per tenant, 8 MiB global window.
fn tight_admission() -> AdmissionConfig {
    AdmissionConfig {
        max_client_tasks: 64,
        max_client_bytes: 4 * 1024 * 1024,
        max_client_pinned: 4096,
        global_high_bytes: 8 * 1024 * 1024,
        global_low_bytes: 6 * 1024 * 1024,
    }
}

pub struct Out {
    /// Offered load, bytes/ns (all tenants).
    pub offered: f64,
    /// Delivered copy bytes/ns over the whole run (incl. drain tail).
    pub goodput: f64,
    /// Bytes actually served per tenant.
    pub per_tenant: Vec<u64>,
    /// Submissions rejected client-side (no credit / ring full).
    pub client_rejected: u64,
    /// End-of-run service stats.
    pub stats: CopierStats,
    /// Frames still pinned after the drain (must be 0).
    pub pinned: usize,
    /// Virtual end time.
    pub end: Nanos,
}

pub fn run(load: f64, seed: u64, pressured: bool) -> Out {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, TENANTS + 1);
    let pm = Rc::new(PhysMem::new(8192, AllocPolicy::Scattered));
    let cost = Rc::new(CostModel::default());
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(TENANTS)],
        cost,
        CopierConfig {
            admission: tight_admission(),
            ..CopierConfig::default()
        },
    );
    svc.start();

    let mean_len = (LEN_MIN + LEN_MAX) as f64 / 2.0;
    let gap = (mean_len * TENANTS as f64 / (load * SAT_RATE)) as u64;
    let plan = WorkloadPlan::new(WorkloadConfig {
        seed,
        tenants: TENANTS,
        mean_gap: Nanos(gap.max(1)),
        len_min: LEN_MIN,
        len_max: LEN_MAX,
        horizon: HORIZON,
        ..Default::default()
    });

    // Buffers are pre-populated so physical allocation is static during
    // the run (the pressure latch then depends only on the watermarks).
    let mut tenants = Vec::new();
    for t in 0..TENANTS {
        let space = AddressSpace::new(t as u32 + 1, Rc::clone(&pm));
        let lib = CopierHandle::new(&svc, Rc::clone(&space));
        let pool: Vec<(VirtAddr, VirtAddr)> = (0..POOL)
            .map(|_| {
                (
                    space.mmap(LEN_MAX, Prot::RW, true).unwrap(),
                    space.mmap(LEN_MAX, Prot::RW, true).unwrap(),
                )
            })
            .collect();
        tenants.push((lib, pool));
    }
    if pressured {
        // High watermark at (below) the current working set: pressure
        // latches on the service's first check and never clears.
        let hi = pm.allocated().max(2);
        pm.set_watermarks(hi - 1, hi);
    }

    let client_rejected = Rc::new(Cell::new(0u64));
    let done = Rc::new(Cell::new(0usize));
    for (t, (lib, pool)) in tenants.iter().enumerate() {
        let lib = Rc::clone(lib);
        let pool = pool.clone();
        let arrivals = plan.tenant(t).to_vec();
        let core = machine.core(t);
        let h2 = h.clone();
        let rej = Rc::clone(&client_rejected);
        let done2 = Rc::clone(&done);
        sim.spawn("tenant", async move {
            for (i, a) in arrivals.iter().enumerate() {
                let now = h2.now();
                if a.at > now {
                    h2.sleep(a.at - now).await;
                }
                let (src, dst) = pool[i % POOL];
                if lib
                    .try_amemcpy(&core, dst, src, a.len, AmemcpyOpts::default())
                    .await
                    .is_err()
                {
                    rej.set(rej.get() + 1);
                }
            }
            done2.set(done2.get() + 1);
        });
    }

    // Driver: wait for every tenant, then drain the admitted window.
    let svc2 = Rc::clone(&svc);
    let h2 = h.clone();
    let done2 = Rc::clone(&done);
    let end = Rc::new(Cell::new(Nanos::ZERO));
    let end2 = Rc::clone(&end);
    sim.spawn("driver", async move {
        while done2.get() < TENANTS {
            h2.sleep(Nanos::from_micros(20)).await;
        }
        let mut stable = 0;
        while stable < 3 {
            h2.sleep(Nanos::from_micros(10)).await;
            // Rings drain into the window every service round; three
            // consecutive empty polls mean both are empty.
            stable = if svc2.admitted_bytes() == 0 {
                stable + 1
            } else {
                0
            };
        }
        end2.set(h2.now());
        svc2.stop();
    });
    sim.run();

    let per_tenant: Vec<u64> = tenants
        .iter()
        .map(|(lib, _)| lib.client.copied_total.get())
        .collect();
    let served: u64 = per_tenant.iter().sum();
    Out {
        offered: plan.offered_rate(),
        goodput: served as f64 / end.get().as_nanos() as f64,
        per_tenant,
        client_rejected: client_rejected.get(),
        stats: svc.stats(),
        pinned: pm.pinned_frames(),
        end: end.get(),
    }
}

fn main() {
    section("fig_overload: 4 open-loop tenants vs 1 service core (tight quotas)");
    println!("  load = multiple of nominal service bandwidth ({SAT_RATE:.0} B/ns)");
    for &load in &[0.5, 1.0, 2.0, 4.0, 8.0] {
        let o = run(load, 42, false);
        let min = *o.per_tenant.iter().min().unwrap();
        let max = *o.per_tenant.iter().max().unwrap();
        row(&[
            ("load", format!("{load:.1}x")),
            ("offered-GB/s", format!("{:.1}", o.offered)),
            ("goodput-GB/s", format!("{:.1}", o.goodput)),
            ("client-rej", format!("{}", o.client_rejected)),
            ("svc-rej", format!("{}", o.stats.admission_rejected)),
            (
                "shed-MiB",
                format!("{:.1}", o.stats.shed_bytes as f64 / (1 << 20) as f64),
            ),
            (
                "tenant-min/max",
                format!("{:.2}", min as f64 / max.max(1) as f64),
            ),
        ]);
    }

    section("graceful degradation: high watermark pinned below the working set");
    for &load in &[1.0, 2.0] {
        let o = run(load, 42, true);
        row(&[
            ("load", format!("{load:.1}x")),
            ("goodput-GB/s", format!("{:.1}", o.goodput)),
            ("degraded", format!("{}", o.stats.degraded_sync_copies)),
            ("pressure-events", format!("{}", o.stats.pressure_events)),
            ("pinned-now", format!("{}", o.pinned)),
        ]);
    }
}
