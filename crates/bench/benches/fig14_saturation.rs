//! Fig. 14: whole-system resource utilization — 4 cores total, rising
//! Redis instance count until saturation.
//!
//! Paper shape: with idle cores Copier improves latency and throughput;
//! at full utilization it still cuts latency (≈ −18%) but costs a few
//! percent of throughput to submission/polling cycles.
//!
//! Our miniature Redis diverges at saturation — dedicating 1 of 4 cores
//! costs ≈ a core of throughput instead of the paper's −4–6% (see
//! EXPERIMENTS.md). `BENCH_saturation.json` pins both halves of that
//! story: the idle-core wins must hold, and the saturation loss may not
//! regress below the measured floor.

use std::cell::RefCell;
use std::rc::Rc;

use copier_bench::json::Json;

use copier_apps::redis::{run_client, Op, RedisMode, RedisServer};
use copier_bench::{delta, ratio, row, section, stats};
use copier_os::{NetStack, Os};
use copier_sim::{Machine, Nanos, Sim, SimRng};

const REQS: u64 = 20;
const CORES: usize = 4;

/// Runs `instances` Redis servers (one per core, wrapping) on a 4-core
/// machine; Copier takes one of the 4 cores when enabled.
fn run(instances: usize, use_copier: bool, value: usize) -> (Nanos, f64) {
    let mut sim = Sim::new();
    let h = sim.handle();
    // 4 machine cores + client cores (clients modeled outside the box).
    let machine = Machine::new(&h, CORES + instances);
    let os = Os::boot(&h, machine, 128 * 1024);
    let app_cores = if use_copier {
        os.install_copier(vec![os.machine.core(CORES - 1)], Default::default());
        CORES - 1
    } else {
        CORES
    };
    let net = NetStack::new(&os);
    let samples: Rc<RefCell<Vec<Nanos>>> = Rc::new(RefCell::new(Vec::new()));
    let dur = Rc::new(std::cell::Cell::new(Nanos::ZERO));
    let done = Rc::new(std::cell::Cell::new(0usize));
    let mode = if use_copier {
        RedisMode::Copier
    } else {
        RedisMode::Baseline
    };
    for i in 0..instances {
        let server = RedisServer::new(&os, &net, mode.clone(), 512 * 1024).unwrap();
        let (cs, ss) = net.socket_pair();
        // Instances share the app cores (time-sliced when oversubscribed).
        let score = os.machine.core(i % app_cores);
        let server2 = Rc::clone(&server);
        sim.spawn("server", async move {
            server2.serve(&score, ss, REQS + 1).await;
        });
        let os2 = Rc::clone(&os);
        let net2 = Rc::clone(&net);
        let ccore = os.machine.core(CORES + i);
        let samples2 = Rc::clone(&samples);
        let dur2 = Rc::clone(&dur);
        let done2 = Rc::clone(&done);
        let h2 = h.clone();
        sim.spawn("client", async move {
            let rng = Rc::new(SimRng::new(55 + i as u64));
            let t0 = h2.now();
            let s = run_client(
                Rc::clone(&os2),
                net2,
                ccore,
                cs,
                Op::Set,
                i as u32,
                value,
                REQS,
                rng,
            )
            .await;
            samples2.borrow_mut().extend(s.iter().map(|x| x.latency));
            dur2.set(dur2.get().max(h2.now() - t0));
            done2.set(done2.get() + 1);
            if done2.get() == instances {
                if let Some(svc) = os2.copier.borrow().as_ref() {
                    svc.stop();
                }
            }
        });
    }
    sim.run();
    let mut v = samples.borrow_mut();
    let st = stats(&mut v);
    let tput = (REQS as f64 * instances as f64) / dur.get().as_secs_f64() / 1000.0;
    (st.avg, tput)
}

fn main() {
    section("Fig 14: Redis SET on a 4-core budget (Copier uses 1 of 4)");
    // (value, instances, base_lat_ns, cop_lat_ns, base_kreqs, cop_kreqs)
    let mut points: Vec<(usize, usize, u64, u64, f64, f64)> = Vec::new();
    for value in [8 * 1024usize, 16 * 1024] {
        println!("\n  value = {}", copier_bench::kb(value));
        for instances in [1usize, 2, 3, 4] {
            let (bl, bt) = run(instances, false, value);
            let (cl, ct) = run(instances, true, value);
            row(&[
                ("instances", format!("{instances}")),
                ("base-lat", format!("{bl}")),
                ("cop-lat", format!("{cl}")),
                ("lat", delta(bl, cl)),
                ("base-kreq/s", format!("{bt:.1}")),
                ("cop-kreq/s", format!("{ct:.1}")),
                ("tput", ratio(ct, bt)),
            ]);
            points.push((value, instances, bl.as_nanos(), cl.as_nanos(), bt, ct));
        }
    }

    // Idle-core wins (1 instance): Copier must beat the baseline on both
    // latency and throughput, at both value sizes — the paper-confirming
    // half of the figure. Saturation (4 instances): the documented
    // divergence may not deepen past the measured floor.
    let idle_tput = points
        .iter()
        .filter(|p| p.1 == 1)
        .map(|p| p.5 / p.4)
        .fold(f64::INFINITY, f64::min);
    let idle_lat = points
        .iter()
        .filter(|p| p.1 == 1)
        .map(|p| p.3 as f64 / p.2 as f64)
        .fold(0.0, f64::max);
    let sat_tput = points
        .iter()
        .filter(|p| p.1 == 4)
        .map(|p| p.5 / p.4)
        .fold(f64::INFINITY, f64::min);
    let json = Json::obj([
        ("bench", Json::Str("fig14_saturation".into())),
        ("smoke", Json::Bool(false)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|&(value, instances, bl, cl, bt, ct)| {
                        Json::obj([
                            ("value", Json::Int(value as u64)),
                            ("instances", Json::Int(instances as u64)),
                            ("base_lat_ns", Json::Int(bl)),
                            ("copier_lat_ns", Json::Int(cl)),
                            ("base_kreqs", Json::Num(bt)),
                            ("copier_kreqs", Json::Num(ct)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "summary",
            Json::Arr(vec![
                Json::summary("idle_tput_gain", "ratio_min", 1.0, idle_tput),
                Json::summary("idle_lat_ratio", "ratio_max", 1.0, idle_lat),
                Json::summary("saturation_tput_floor", "ratio_min", 0.70, sat_tput),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_saturation.json");
    json.write_file(path).expect("write BENCH_saturation.json");
    println!("\n  wrote {path}");
}
