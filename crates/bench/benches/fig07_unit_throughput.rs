//! Fig. 7-a: throughput of the copy units versus transfer size.
//!
//! Prints the modeled AVX2 / ERMS / byte-loop / DMA curves and verifies
//! the two structural claims: DMA trails AVX2 (badly for small sizes),
//! and one DMA submission costs about a 1.4 KB AVX2 copy.

use copier_bench::{kb, row, section};
use copier_hw::{CostModel, CpuCopyKind};

fn main() {
    let m = CostModel::default();
    section("Fig 7-a: copy-unit throughput (GB/s) vs size");
    for size in [
        256,
        512,
        1024,
        2048,
        4096,
        8192,
        16384,
        65536,
        262144,
        1 << 20,
    ] {
        let tp = |ns: u64| format!("{:.2}", size as f64 / ns as f64);
        row(&[
            ("size", kb(size)),
            ("avx2", tp(m.cpu_copy(CpuCopyKind::Avx2, size).as_nanos())),
            ("erms", tp(m.cpu_copy(CpuCopyKind::Erms, size).as_nanos())),
            (
                "byteloop",
                tp(m.cpu_copy(CpuCopyKind::ByteLoop, size).as_nanos()),
            ),
            ("dma", tp(m.dma_transfer(size).as_nanos())),
            (
                "dma+submit",
                tp((m.dma_transfer(size) + m.dma_submit).as_nanos()),
            ),
        ]);
    }
    println!(
        "\n  dma submission cost = {} (== AVX2 copy of 1.4KB: {})",
        m.dma_submit,
        m.cpu_copy(CpuCopyKind::Avx2, 1434)
    );
    assert!(m.dma_transfer(512) > m.cpu_copy(CpuCopyKind::Avx2, 512));
    println!("  shape check: DMA slower than AVX2 at small sizes ✓");
}
