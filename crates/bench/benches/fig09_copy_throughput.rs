//! Fig. 9: end-to-end copy throughput of the Copier service versus the
//! kernel (ERMS) and userspace (AVX2) methods, with 0% and 75% buffer
//! repetition, and the ATCache contribution.
//!
//! Paper shape: Copier up to +158% over ERMS and +38% over AVX2 (no
//! repetition); +63%/+32% at 75% repetition with the ATCache adding
//! 2–11%.

use std::rc::Rc;

use copier_bench::{kb, ratio, row, section};
use copier_client::{sync_copy, CopierHandle};
use copier_core::{Copier, CopierConfig};
use copier_hw::{CostModel, CpuCopyKind};
use copier_mem::{AddressSpace, AllocPolicy, PhysMem, Prot, VirtAddr};
use copier_sim::{Machine, Nanos, Sim, SimRng};

const TASKS: usize = 120;

/// Sustained service throughput in bytes/ns for `size`-byte tasks.
fn copier_tput(size: usize, repeat_pct: u64, atcache: bool) -> f64 {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let pm = Rc::new(PhysMem::new(40960, AllocPolicy::Scattered));
    let cost = Rc::new(CostModel::default());
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        cost,
        CopierConfig {
            atcache_capacity: if atcache { 256 } else { 0 },
            absorption: false, // pure copy throughput, no chains
            ..CopierConfig::default()
        },
    );
    svc.start();
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let out = Rc::new(std::cell::Cell::new(0f64));
    let out2 = Rc::clone(&out);
    let svc2 = Rc::clone(&svc);
    let h2 = h.clone();
    sim.spawn("driver", async move {
        let rng = SimRng::new(42);
        // A pool of distinct buffers; "repetition" draws from a small
        // recycled set (descriptor + translation reuse).
        let nbuf = 16;
        let bufs: Vec<(VirtAddr, VirtAddr)> = (0..nbuf)
            .map(|_| {
                (
                    space.mmap(size, Prot::RW, true).unwrap(),
                    space.mmap(size, Prot::RW, true).unwrap(),
                )
            })
            .collect();
        let fresh: Vec<(VirtAddr, VirtAddr)> = (0..TASKS)
            .map(|_| {
                (
                    space.mmap(size, Prot::RW, true).unwrap(),
                    space.mmap(size, Prot::RW, true).unwrap(),
                )
            })
            .collect();
        let t0 = h2.now();
        for i in 0..TASKS {
            let (dst, src) = if rng.gen_bool(repeat_pct as f64 / 100.0) {
                bufs[i % nbuf]
            } else {
                fresh[i]
            };
            lib.amemcpy(&core, dst, src, size).await.expect("admitted");
        }
        // Sustained throughput: wait until every submitted copy landed.
        lib.csync_all(&core).await.unwrap();
        let el = (h2.now() - t0).as_nanos() as f64;
        out2.set((TASKS * size) as f64 / el);
        svc2.stop();
    });
    sim.run();
    out.get()
}

/// Synchronous-loop throughput with a CPU method.
fn sync_tput(size: usize, kind: CpuCopyKind) -> f64 {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 1);
    let pm = Rc::new(PhysMem::new(40960, AllocPolicy::Scattered));
    let cost = Rc::new(CostModel::default());
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let core = machine.core(0);
    let out = Rc::new(std::cell::Cell::new(0f64));
    let out2 = Rc::clone(&out);
    let h2 = h.clone();
    sim.spawn("driver", async move {
        let src = space.mmap(size, Prot::RW, true).unwrap();
        let dst = space.mmap(size, Prot::RW, true).unwrap();
        let t0 = h2.now();
        for _ in 0..TASKS {
            sync_copy(&core, &cost, kind, &space, dst, &space, src, size)
                .await
                .unwrap();
        }
        out2.set((TASKS * size) as f64 / (h2.now() - t0).as_nanos() as f64);
    });
    sim.run();
    out.get()
}

fn main() {
    section("Fig 9: copy throughput (bytes/ns = GB/s)");
    for repeat in [0u64, 75] {
        println!("\n  buffer repetition = {repeat}%");
        for size in [1024, 4096, 16384, 65536, 262144] {
            let erms = sync_tput(size, CpuCopyKind::Erms);
            let avx = sync_tput(size, CpuCopyKind::Avx2);
            let cop = copier_tput(size, repeat, true);
            let cop_noatc = copier_tput(size, repeat, false);
            row(&[
                ("size", kb(size)),
                ("erms", format!("{erms:.2}")),
                ("avx2", format!("{avx:.2}")),
                ("copier", format!("{cop:.2}")),
                ("vs-erms", ratio(cop, erms)),
                ("vs-avx2", ratio(cop, avx)),
                ("atc-gain", ratio(cop, cop_noatc)),
            ]);
        }
    }
    let _ = Nanos::ZERO;
}
