//! Micro-benchmarks of the real (host-executed) data structures: the
//! lock-free CSH ring, segment descriptors, interval sets, and the
//! ChaCha20 / LZ77 codecs. These measure actual wall-clock cost on the
//! build machine — the only host-time measurements in the suite
//! (everything else is virtual time).
//!
//! Runs on the in-tree `copier-testkit` bench harness (no criterion):
//! per-iteration nanosecond samples feed `copier_bench::stats` so the
//! output matches the fig* harness format.

use copier_bench::{row, section, stats};
use copier_sim::Nanos;
use copier_testkit::{black_box, Bench, BenchResult};

use copier::core::{IntervalSet, Ring, SegDescriptor};

fn report(r: &BenchResult) {
    let mut ns: Vec<Nanos> = r.samples_ns.iter().map(|&n| Nanos(n)).collect();
    let s = stats(&mut ns);
    row(&[
        ("bench", r.name.clone()),
        ("p50_ns", s.p50.as_nanos().to_string()),
        ("min_ns", s.min.as_nanos().to_string()),
        ("max_ns", s.max.as_nanos().to_string()),
        ("samples", s.n.to_string()),
        ("iters", r.iters_per_sample.to_string()),
    ]);
}

fn main() {
    let harness = Bench {
        warmup_ms: 500,
        samples: 20,
        sample_ms: 10,
    };
    section("micro: host-time data-structure costs (testkit harness)");

    let ring: Ring<u64> = Ring::new(1024);
    report(&harness.run("ring_push_pop", || {
        ring.push(black_box(42)).unwrap();
        black_box(ring.pop());
    }));

    let d = SegDescriptor::new(256 * 1024, 1024);
    let mut i = 0;
    report(&harness.run("descriptor_mark_and_check", || {
        d.mark(i % 256);
        black_box(d.range_ready((i % 256) * 1024, 1024));
        i += 1;
    }));

    report(&harness.run("interval_insert_covers", || {
        let mut s = IntervalSet::new();
        for i in 0..32 {
            s.insert(i * 100, i * 100 + 60);
        }
        black_box(s.covers(500, 550));
    }));

    let key = [7u8; 32];
    let nonce = [1u8; 12];
    let mut data = vec![0u8; 4096];
    report(&harness.run("chacha20_4k", || {
        copier::apps::tls::chacha20_xor(&key, &nonce, 0, black_box(&mut data));
    }));

    let lz_data: Vec<u8> = (0..16 * 1024).map(|i| ((i / 48) % 200) as u8).collect();
    report(&harness.run("lz77_compress_16k", || {
        black_box(copier::apps::zlib::lz77_compress(black_box(&lz_data)));
    }));
}
