//! Criterion micro-benchmarks of the real (host-executed) data
//! structures: the lock-free CSH ring, segment descriptors, interval
//! sets, and the ChaCha20 / LZ77 codecs. These measure actual wall-clock
//! cost on the build machine — the only host-time measurements in the
//! suite (everything else is virtual time).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use copier::core::{IntervalSet, Ring, SegDescriptor};

fn ring(c: &mut Criterion) {
    let r: Ring<u64> = Ring::new(1024);
    c.bench_function("ring_push_pop", |b| {
        b.iter(|| {
            r.push(black_box(42)).unwrap();
            black_box(r.pop());
        })
    });
}

fn descriptor(c: &mut Criterion) {
    let d = SegDescriptor::new(256 * 1024, 1024);
    c.bench_function("descriptor_mark_and_check", |b| {
        let mut i = 0;
        b.iter(|| {
            d.mark(i % 256);
            black_box(d.range_ready((i % 256) * 1024, 1024));
            i += 1;
        })
    });
}

fn intervals(c: &mut Criterion) {
    c.bench_function("interval_insert_covers", |b| {
        b.iter(|| {
            let mut s = IntervalSet::new();
            for i in 0..32 {
                s.insert(i * 100, i * 100 + 60);
            }
            black_box(s.covers(500, 550));
        })
    });
}

fn chacha(c: &mut Criterion) {
    let key = [7u8; 32];
    let nonce = [1u8; 12];
    let mut data = vec![0u8; 4096];
    c.bench_function("chacha20_4k", |b| {
        b.iter(|| copier::apps::tls::chacha20_xor(&key, &nonce, 0, black_box(&mut data)))
    });
}

fn lz77(c: &mut Criterion) {
    let data: Vec<u8> = (0..16 * 1024).map(|i| ((i / 48) % 200) as u8).collect();
    c.bench_function("lz77_compress_16k", |b| {
        b.iter(|| black_box(copier::apps::zlib::lz77_compress(black_box(&data))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = ring, descriptor, intervals, chacha, lz77
}
criterion_main!(benches);
