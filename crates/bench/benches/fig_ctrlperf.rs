//! fig_ctrlperf — host wall-clock scaling of the control plane.
//!
//! Like fig_hostperf, this measures the *host* cost of service-side work,
//! not virtual time: the per-round absorption/hazard analysis and the
//! csync waiter lookup over deep pending windows. The linear reference
//! sweeps every earlier window entry per considered task (O(n) per task,
//! O(n²) per round); the address-indexed path (`PendIndex`) answers the
//! same questions with ordered window queries. Plans are asserted
//! identical before timing, so the speedup is pure bookkeeping — see
//! DESIGN.md §13 for why virtual-time outputs cannot change.
//!
//! Windows are built from `copier-sim::workload` multi-tenant open-loop
//! arrivals (8 tenants, seeded): mostly disjoint transfers, with every
//! fourth submission chaining off the previous one (absorption work) and
//! every third producer left half-copied (piece splitting).
//!
//! Measured per depth (64 → 4096 pending entries):
//! - `absorb-sweep` — analyze every window entry against its earlier
//!   entries: the round-poll/absorption path. The ≥5× acceptance bar at
//!   depth 4096 applies here.
//! - `csync-lookup` — latest-unfinished-overlap waiter lookup for 64
//!   synced ranges: the §4.2.2 reverse traversal.
//!
//! Writes `BENCH_ctrlperf.json` at the repo root.
//! Set `CTRLPERF_SMOKE=1` for a fast run (CI smoke; same depths, fewer
//! samples).

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

use copier_bench::json::Json;
use copier_bench::section;
use copier_core::absorb::{self, AbsorbPlan};
use copier_core::interval::ranges_overlap;
use copier_core::{CopyTask, IntervalSet, PendEntry, PendIndex, RangeKind, SegDescriptor};
use copier_mem::{AddressSpace, AllocPolicy, PhysMem, VirtAddr};
use copier_sim::{Nanos, WorkloadConfig, WorkloadPlan};
use copier_testkit::{black_box, Bench};

const TENANTS: usize = 8;
const CSYNC_QUERIES: usize = 64;

/// A synthetic pending window: entries in key order plus the index the
/// service would have maintained.
struct Window {
    entries: Vec<Rc<PendEntry>>,
    index: PendIndex,
}

fn entry(tid: u64, sp: &Rc<AddressSpace>, src: u64, dst: u64, len: usize) -> Rc<PendEntry> {
    Rc::new(PendEntry {
        tid,
        key: (0, 1, tid),
        task: CopyTask {
            dst_space: Rc::clone(sp),
            dst: VirtAddr(dst),
            src_space: Rc::clone(sp),
            src: VirtAddr(src),
            len,
            seg: 4096,
            descr: Rc::new(SegDescriptor::new(len, 4096)),
            func: None,
            lazy: false,
            verify: false,
        },
        copied: RefCell::new(IntervalSet::new()),
        inflight: RefCell::new(IntervalSet::new()),
        deferred: RefCell::new(IntervalSet::new()),
        defer_until: Cell::new(Nanos::ZERO),
        promoted: Cell::new(false),
        aborted: Cell::new(false),
        failed: Cell::new(None),
        submitted_at: Nanos::ZERO,
        pins: RefCell::new(Vec::new()),
        finalized: Cell::new(false),
    })
}

/// Builds a `depth`-entry window from the merged multi-tenant arrival
/// stream. Per tenant: fresh transfers walk disjoint source/destination
/// cursors; every fourth submission instead re-copies the tenant's
/// previous destination (a RAW chain absorption resolves); every third
/// chain producer is left half-copied so layering splits pieces.
fn build_window(depth: usize, seed: u64) -> Window {
    let pm = Rc::new(PhysMem::new(4, AllocPolicy::Sequential));
    let spaces: Vec<Rc<AddressSpace>> = (0..TENANTS)
        .map(|t| AddressSpace::new(100 + t as u32, Rc::clone(&pm)))
        .collect();
    let plan = WorkloadPlan::new(WorkloadConfig {
        seed,
        tenants: TENANTS,
        mean_gap: Nanos::from_micros(2),
        len_min: 4 * 1024,
        len_max: 64 * 1024,
        // Generous horizon; the merged stream is truncated to `depth`.
        horizon: Nanos(2_000 * depth as u64),
        ..Default::default()
    });
    let merged = plan.merged();
    assert!(merged.len() >= depth, "horizon too short for depth {depth}");

    let mut src_cur = vec![0x1000_0000u64; TENANTS];
    let mut dst_cur = vec![0x8000_0000u64; TENANTS];
    let mut prev: Vec<Option<(u64, usize)>> = vec![None; TENANTS];
    let mut count = vec![0usize; TENANTS];
    let index = PendIndex::new();
    let mut entries = Vec::with_capacity(depth);
    for (i, &(t, a)) in merged.iter().take(depth).enumerate() {
        let k = count[t];
        count[t] += 1;
        let (src, len) = match prev[t] {
            Some((pdst, plen)) if k % 4 == 1 => (pdst, plen),
            _ => {
                let s = src_cur[t];
                src_cur[t] += a.len as u64;
                (s, a.len)
            }
        };
        let dst = dst_cur[t];
        dst_cur[t] += len as u64;
        let e = entry(i as u64 + 1, &spaces[t], src, dst, len);
        if k % 3 == 0 {
            e.copied.borrow_mut().insert(0, len / 2);
        }
        prev[t] = Some((dst, len));
        index.insert(&e);
        entries.push(e);
    }
    Window { entries, index }
}

fn norm_plan(p: &AbsorbPlan) -> (bool, Vec<u64>, usize, Vec<(usize, usize, u32, u64, u32)>) {
    (
        p.blocked,
        p.blockers.iter().map(|b| b.tid).collect(),
        p.absorbed_bytes,
        p.pieces
            .iter()
            .map(|x| (x.off, x.len, x.space.id(), x.va.0, x.depth))
            .collect(),
    )
}

/// The csync waiter lookup the service used to run: latest unfinished
/// window entry whose destination overlaps the synced range.
fn csync_linear(entries: &[Rc<PendEntry>], sp: u32, lo: usize, hi: usize) -> Option<usize> {
    entries.iter().rposition(|p| {
        !p.finished()
            && p.task.dst_space.id() == sp
            && ranges_overlap(
                (p.task.dst.0 as usize, p.task.dst.0 as usize + p.task.len),
                (lo, hi),
            )
    })
}

/// The indexed lookup: max key among the window query's matches.
fn csync_indexed(w: &Window, sp: u32, lo: usize, hi: usize) -> Option<usize> {
    let mut best: Option<(u64, u8, u64)> = None;
    w.index
        .for_each_overlap(RangeKind::Dst, sp, lo as u64, hi as u64, |p| {
            if !p.finished() && best.is_none_or(|b| p.key > b) {
                best = Some(p.key);
            }
        });
    best.map(|k| w.entries.partition_point(|p| p.key < k))
}

struct DepthResult {
    depth: usize,
    absorb_linear_ns: u64,
    absorb_indexed_ns: u64,
    csync_linear_ns: u64,
    csync_indexed_ns: u64,
    absorbed_bytes: usize,
    index_records: usize,
}

impl DepthResult {
    fn absorb_speedup(&self) -> f64 {
        self.absorb_linear_ns as f64 / self.absorb_indexed_ns.max(1) as f64
    }
    fn csync_speedup(&self) -> f64 {
        self.csync_linear_ns as f64 / self.csync_indexed_ns.max(1) as f64
    }
}

fn run_depth(bench: &Bench, depth: usize) -> DepthResult {
    let w = build_window(depth, 0xC0FF_EE00 + depth as u64);

    // Differential sanity before timing: both paths must produce the same
    // plan for every window entry (the property test covers adversarial
    // windows; this pins the exact workload being timed).
    let mut absorbed_total = 0usize;
    for (i, e) in w.entries.iter().enumerate() {
        let lin = absorb::analyze(e, &w.entries[..i], true);
        let (idx, _) = absorb::analyze_indexed(e, &w.index, true);
        assert_eq!(norm_plan(&lin), norm_plan(&idx), "plan diverged at {i}");
        absorbed_total += lin.absorbed_bytes;
    }
    assert!(absorbed_total > 0, "workload produced no absorption chains");

    let absorb_linear = bench.run_and_print(&format!("absorb-sweep/{depth}/linear"), || {
        let mut acc = 0usize;
        for (i, e) in w.entries.iter().enumerate() {
            let plan = absorb::analyze(e, &w.entries[..i], true);
            acc += plan.absorbed_bytes + plan.pieces.len();
        }
        black_box(acc);
    });
    let absorb_indexed = bench.run_and_print(&format!("absorb-sweep/{depth}/indexed"), || {
        let mut acc = 0usize;
        for e in &w.entries {
            let (plan, _) = absorb::analyze_indexed(e, &w.index, true);
            acc += plan.absorbed_bytes + plan.pieces.len();
        }
        black_box(acc);
    });

    // csync queries: the destinations of evenly spaced window entries.
    let queries: Vec<(u32, usize, usize)> = (0..CSYNC_QUERIES)
        .map(|q| {
            let e = &w.entries[(q * w.entries.len()) / CSYNC_QUERIES];
            let (sp, lo, hi) = e.task.dst_range();
            (sp, lo as usize, hi as usize)
        })
        .collect();
    for &(sp, lo, hi) in &queries {
        assert_eq!(
            csync_linear(&w.entries, sp, lo, hi),
            csync_indexed(&w, sp, lo, hi),
            "csync lookup diverged"
        );
    }
    let csync_lin = bench.run_and_print(&format!("csync-lookup/{depth}/linear"), || {
        let mut acc = 0usize;
        for &(sp, lo, hi) in &queries {
            acc += csync_linear(&w.entries, sp, lo, hi).unwrap_or(0);
        }
        black_box(acc);
    });
    let csync_idx = bench.run_and_print(&format!("csync-lookup/{depth}/indexed"), || {
        let mut acc = 0usize;
        for &(sp, lo, hi) in &queries {
            acc += csync_indexed(&w, sp, lo, hi).unwrap_or(0);
        }
        black_box(acc);
    });

    DepthResult {
        depth,
        absorb_linear_ns: absorb_linear.median_ns(),
        absorb_indexed_ns: absorb_indexed.median_ns(),
        csync_linear_ns: csync_lin.median_ns(),
        csync_indexed_ns: csync_idx.median_ns(),
        absorbed_bytes: absorbed_total,
        index_records: w.index.len(),
    }
}

fn main() {
    let smoke = std::env::var("CTRLPERF_SMOKE").is_ok_and(|v| v == "1");
    let bench = if smoke {
        Bench::fast()
    } else {
        Bench::default()
    };
    let depths = [64usize, 256, 1024, 4096];
    let t0 = Instant::now();

    section("fig_ctrlperf: control-plane scaling (host wall clock)");
    println!(
        "  mode: {}, tenants: {TENANTS}, csync queries: {CSYNC_QUERIES}",
        if smoke { "smoke" } else { "full" }
    );
    let results: Vec<DepthResult> = depths.iter().map(|&d| run_depth(&bench, d)).collect();
    let suite_ms = t0.elapsed().as_secs_f64() * 1e3;

    section("summary (per round-sweep / per 64-query batch)");
    for r in &results {
        println!(
            "  depth={:>5}  absorb: linear={:>11}ns indexed={:>9}ns speedup={:>6.1}x  \
             csync: linear={:>9}ns indexed={:>7}ns speedup={:>6.1}x",
            r.depth,
            r.absorb_linear_ns,
            r.absorb_indexed_ns,
            r.absorb_speedup(),
            r.csync_linear_ns,
            r.csync_indexed_ns,
            r.csync_speedup(),
        );
    }

    let json = Json::obj([
        ("bench", Json::Str("fig_ctrlperf".into())),
        ("smoke", Json::Bool(smoke)),
        ("tenants", Json::Int(TENANTS as u64)),
        ("suite_ms", Json::Num(suite_ms)),
        (
            "depths",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("depth", Json::Int(r.depth as u64)),
                            ("index_records", Json::Int(r.index_records as u64)),
                            ("absorbed_bytes", Json::Int(r.absorbed_bytes as u64)),
                            ("absorb_linear_ns", Json::Int(r.absorb_linear_ns)),
                            ("absorb_indexed_ns", Json::Int(r.absorb_indexed_ns)),
                            ("absorb_speedup", Json::Num(r.absorb_speedup())),
                            ("csync_linear_ns", Json::Int(r.csync_linear_ns)),
                            ("csync_indexed_ns", Json::Int(r.csync_indexed_ns)),
                            ("csync_speedup", Json::Num(r.csync_speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "summary",
            Json::Arr({
                // The trajectory metric is the deepest point of the sweep:
                // that is where the linear control plane hurts most and the
                // index must pay for itself.
                let deepest = results.last().expect("sweep is non-empty");
                vec![
                    Json::summary(
                        "absorb_speedup_deep",
                        "speedup_min",
                        1.0,
                        deepest.absorb_speedup(),
                    ),
                    Json::summary(
                        "csync_speedup_deep",
                        "speedup_min",
                        1.0,
                        deepest.csync_speedup(),
                    ),
                ]
            }),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ctrlperf.json");
    json.write_file(path).expect("write BENCH_ctrlperf.json");
    println!("\n  wrote {path} (suite {suite_ms:.0} ms)");
}
