//! §6.3.5 micro-architectural impact: the cache-pollution proxy.
//!
//! Inline copies evict the app's hot data; offloading them to Copier's
//! core keeps the app's CPI low. We run compute+copy rounds with the
//! cache-residency model enabled and report the copy-irrelevant compute
//! time with and without Copier (paper: −4–16% CPI).

use std::rc::Rc;

use copier_bench::{delta, kb, row, section};
use copier_client::{sync_memcpy, CopierHandle};
use copier_core::{Copier, CopierConfig};
use copier_hw::CostModel;
use copier_mem::{AddressSpace, AllocPolicy, PhysMem, Prot};
use copier_sim::{Machine, Nanos, Sim};

const ROUNDS: usize = 50;
const COMPUTE: Nanos = Nanos::from_micros(8);

fn run(size: usize, use_copier: bool) -> Nanos {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    machine.core(0).cache.set_enabled(true);
    let pm = Rc::new(PhysMem::new(8192, AllocPolicy::Scattered));
    let cost = Rc::new(CostModel::default());
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        Rc::clone(&cost),
        CopierConfig::default(),
    );
    svc.start();
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let out = Rc::new(std::cell::Cell::new(Nanos::ZERO));
    let out2 = Rc::clone(&out);
    let svc2 = Rc::clone(&svc);
    sim.spawn("driver", async move {
        let src = space.mmap(size, Prot::RW, true).unwrap();
        let dst = space.mmap(size, Prot::RW, true).unwrap();
        let mut compute_time = Nanos::ZERO;
        for _ in 0..ROUNDS {
            if use_copier {
                lib.amemcpy(&core, dst, src, size).await.expect("admitted");
            } else {
                sync_memcpy(&core, &cost, &space, dst, src, size)
                    .await
                    .unwrap();
            }
            // Copy-irrelevant hot-data compute; its CPI reflects how much
            // of the working set the copy evicted.
            let before = core.busy_time();
            core.advance_cached(COMPUTE).await;
            compute_time += core.busy_time() - before;
            if use_copier {
                lib.csync(&core, dst, size).await.unwrap();
            }
        }
        out2.set(Nanos(compute_time.as_nanos() / ROUNDS as u64));
        svc2.stop();
    });
    sim.run();
    out.get()
}

fn main() {
    section("CPI proxy: copy-irrelevant compute time per round (8us nominal)");
    for size in [16 * 1024usize, 64 * 1024, 256 * 1024, 1024 * 1024] {
        let inline = run(size, false);
        let offload = run(size, true);
        row(&[
            ("copy", kb(size)),
            ("inline", format!("{inline}")),
            ("copier", format!("{offload}")),
            ("cpi-change", delta(inline, offload)),
        ]);
    }
}
