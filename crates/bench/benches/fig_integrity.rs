//! fig_integrity — cost and coverage of end-to-end copy verification.
//!
//! Three sections over a fig07-class unit-copy workload (N× amemcpy +
//! csync_all through the full service stack):
//!
//! - `overhead` — host wall-clock of a clean run with `VerifyPolicy::Off`
//!   vs `Full`. Verification digests are host-side only (virtual time is
//!   identical by construction — asserted here), so the overhead is pure
//!   hashing; the acceptance bar is ≤ 5%.
//! - `coverage` — the same workload with silent corruption injected
//!   (DMA bit flips + misdirected writes that still report success), run
//!   under Off / Sampled / Full. Reports the detected fraction per
//!   policy; under Full every injected corruption must be detected (the
//!   task is repaired or poisoned `Corrupted`) with zero escapes — a
//!   copy that completes clean with wrong bytes.
//! - `repair` — of the corruptions Full detects, how many bounded
//!   re-copies healed vs how many were poisoned.
//!
//! Writes `BENCH_integrity.json` at the repo root. `INTEGRITY_SMOKE=1`
//! shrinks the workload for CI.

use std::rc::Rc;
use std::time::Instant;

use copier::client::CopierHandle;
use copier::core::{CopierConfig, CopyFault, VerifyPolicy};
use copier::mem::Prot;
use copier::os::Os;
use copier::sim::{FaultConfig, FaultPlan, Machine, Sim};
use copier_bench::json::Json;
use copier_bench::{kb, section};

struct RunOut {
    end: u64,
    injected: u64,
    detected: u64,
    repairs: u64,
    poisoned: u64,
    escapes: u64,
    corrupted_faults: u64,
}

/// One fig07-class run: `ncopies` unit copies of `len` bytes under the
/// given verification policy; `corrupt` arms the silent-corruption
/// oracle.
fn run_once(ncopies: usize, len: usize, seed: u64, policy: VerifyPolicy, corrupt: bool) -> RunOut {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, (ncopies * len) / 4096 * 4 + 4096);
    let plan = corrupt.then(|| {
        FaultPlan::new(FaultConfig {
            seed,
            dma_flip_prob: 0.3,
            dma_misdirect_prob: 0.15,
            ..Default::default()
        })
    });
    let svc = os.install_copier(
        vec![os.machine.core(1)],
        CopierConfig {
            use_dma: true,
            dma_channels: 2,
            fault_plan: plan.clone(),
            verify: policy,
            // Keep every channel alive for the sweep: quarantine is
            // covered by tests/integrity.rs, here it would starve the
            // injection stream mid-run and skew the coverage fractions.
            corrupt_quarantine_threshold: 0,
            ..Default::default()
        },
    );
    let proc = os.spawn_process();
    let lib: Rc<CopierHandle> = proc.lib();
    let uspace = Rc::clone(&lib.uspace);
    let mut bufs = Vec::new();
    for i in 0..ncopies {
        let src = uspace.mmap(len, Prot::RW, true).unwrap();
        let dst = uspace.mmap(len, Prot::RW, true).unwrap();
        let data: Vec<u8> = (0..len)
            .map(|b| (b as u64 ^ seed.wrapping_mul(i as u64 + 1)) as u8)
            .collect();
        uspace.write_bytes(src, &data).unwrap();
        bufs.push((src, dst, data));
    }
    let lib2 = Rc::clone(&lib);
    let svc2 = Rc::clone(&svc);
    let core = os.machine.core(0);
    let submit: Vec<_> = bufs.iter().map(|&(s, d, _)| (s, d)).collect();
    let descrs = Rc::new(std::cell::RefCell::new(Vec::new()));
    let d2 = Rc::clone(&descrs);
    sim.spawn("client", async move {
        for &(src, dst) in &submit {
            if let Ok(d) = lib2.amemcpy(&core, dst, src, len).await {
                d2.borrow_mut().push(d);
            }
        }
        let _ = lib2.csync_all(&core).await;
        svc2.stop();
    });
    let end = sim.run();
    let stats = svc.stats();
    assert_eq!(
        stats.degraded_sync_copies, 0,
        "workload tripped pressure degradation — grow the frame pool"
    );
    let mut escapes = 0u64;
    let mut corrupted_faults = 0u64;
    for (i, d) in descrs.borrow().iter().enumerate() {
        let (_, dst, expected) = &bufs[i];
        let mut got = vec![0u8; len];
        uspace.read_bytes(*dst, &mut got).unwrap();
        match d.fault() {
            None if d.all_ready() && got != *expected => escapes += 1,
            Some(CopyFault::Corrupted) => corrupted_faults += 1,
            _ => {}
        }
    }
    let log = plan.as_ref().map(|p| p.log());
    RunOut {
        end: end.as_nanos(),
        injected: log.map_or(0, |l| l.dma_flips + l.dma_misdirects),
        detected: stats.dispatch.corruptions,
        repairs: stats.dispatch.repairs,
        poisoned: stats.corrupted_poisoned,
        escapes,
        corrupted_faults,
    }
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn policy_name(p: VerifyPolicy) -> &'static str {
    match p {
        VerifyPolicy::Off => "off",
        VerifyPolicy::Sampled => "sampled",
        VerifyPolicy::Full => "full",
    }
}

fn main() {
    let smoke = std::env::var("INTEGRITY_SMOKE").is_ok_and(|v| v == "1");
    let (ncopies, len, reps) = if smoke {
        (8, 32 * 1024, 3)
    } else {
        (48, 128 * 1024, 9)
    };
    let seed = 0x1DE9_17D1u64;
    let t0 = Instant::now();

    section("fig_integrity: verify overhead (host wall clock, clean run)");
    println!(
        "  mode: {}, workload: {ncopies} x {} (fig07-class)",
        if smoke { "smoke" } else { "full" },
        kb(len)
    );
    let off_ms = median_ms(reps, || {
        run_once(ncopies, len, seed, VerifyPolicy::Off, false);
    });
    let full_ms = median_ms(reps, || {
        run_once(ncopies, len, seed, VerifyPolicy::Full, false);
    });
    let overhead = full_ms / off_ms - 1.0;
    // Digesting is host-side only: a clean run's virtual timeline must be
    // byte-identical across policies.
    let off_run = run_once(ncopies, len, seed, VerifyPolicy::Off, false);
    let full_run = run_once(ncopies, len, seed, VerifyPolicy::Full, false);
    assert_eq!(
        off_run.end, full_run.end,
        "verification perturbed virtual time on a clean run"
    );
    assert_eq!(off_run.escapes + full_run.escapes, 0, "clean run corrupted");
    assert_eq!(full_run.detected, 0, "false positive on a clean run");
    println!(
        "  off={off_ms:.2} ms  full={full_ms:.2} ms  overhead={:.1}%  (virtual end identical: {} ns)",
        overhead * 100.0,
        off_run.end
    );
    if !smoke {
        // Acceptance bar (full mode only; smoke runs are too short for a
        // stable wall-clock ratio): full verification costs at most 5%.
        assert!(
            overhead <= 0.05,
            "verify overhead {:.1}% exceeds the 5% bar",
            overhead * 100.0
        );
    }

    section("fig_integrity: detection coverage under injected corruption");
    let policies = [VerifyPolicy::Off, VerifyPolicy::Sampled, VerifyPolicy::Full];
    let sweep: Vec<(VerifyPolicy, RunOut)> = policies
        .iter()
        .map(|&p| (p, run_once(ncopies, len, seed, p, true)))
        .collect();
    for (p, r) in &sweep {
        let coverage = if r.injected == 0 {
            1.0
        } else {
            (r.detected as f64 / r.injected as f64).min(1.0)
        };
        println!(
            "  {:>7}: injected={} detected={} coverage={:.0}% repairs={} poisoned={} escapes={}",
            policy_name(*p),
            r.injected,
            r.detected,
            coverage * 100.0,
            r.repairs,
            r.poisoned,
            r.escapes
        );
    }
    let full = &sweep
        .iter()
        .find(|(p, _)| *p == VerifyPolicy::Full)
        .unwrap()
        .1;
    assert!(full.injected > 0, "corrupting plan injected nothing");
    assert!(full.detected > 0, "Full verification detected nothing");
    // The end-to-end guarantee: no copy completes clean with wrong bytes.
    // (`detected` can lag `injected` legitimately — a misdirected write
    // may land in memory no client extent covers, and repair re-transfers
    // draw fresh injections — so raw detected/injected is reported but
    // not asserted.)
    assert_eq!(full.escapes, 0, "corruption escaped Full verification");
    let full_coverage = 1.0 - full.escapes as f64 / full.injected as f64;
    let off = &sweep
        .iter()
        .find(|(p, _)| *p == VerifyPolicy::Off)
        .unwrap()
        .1;
    assert_eq!(off.detected, 0, "Off must detect nothing by definition");

    section("fig_integrity: bounded repair outcome (Full)");
    println!(
        "  detected={} healed-by-repair={} poisoned Corrupted={} (surfaced to csync: {})",
        full.detected, full.repairs, full.poisoned, full.corrupted_faults
    );
    assert_eq!(
        full.poisoned, full.corrupted_faults,
        "every poisoned task must surface Corrupted to the client"
    );

    let suite_ms = t0.elapsed().as_secs_f64() * 1e3;
    let json = Json::obj([
        ("bench", Json::Str("fig_integrity".into())),
        ("smoke", Json::Bool(smoke)),
        ("suite_ms", Json::Num(suite_ms)),
        (
            "overhead",
            Json::obj([
                ("off_ms", Json::Num(off_ms)),
                ("full_ms", Json::Num(full_ms)),
                ("overhead_frac", Json::Num(overhead)),
                ("virtual_end_identical", Json::Bool(true)),
                ("workload_bytes", Json::Int((ncopies * len) as u64)),
            ]),
        ),
        (
            "coverage",
            Json::Arr(
                sweep
                    .iter()
                    .map(|(p, r)| {
                        Json::obj([
                            ("policy", Json::Str(policy_name(*p).into())),
                            ("injected", Json::Int(r.injected)),
                            ("detected", Json::Int(r.detected)),
                            ("repairs", Json::Int(r.repairs)),
                            ("poisoned", Json::Int(r.poisoned)),
                            ("escapes", Json::Int(r.escapes)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "summary",
            Json::Arr(vec![
                Json::summary("verify_overhead", "frac_max", 0.05, overhead),
                Json::summary("full_coverage", "frac_min", 1.0, full_coverage),
                Json::summary("full_escapes", "count_max", 0.0, full.escapes as f64),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_integrity.json");
    json.write_file(path).expect("write BENCH_integrity.json");
    println!("\n  wrote {path} (suite {suite_ms:.0} ms)");
}
