//! Fig. 2-a: the cycle proportion of copy in the evaluation applications
//! (baseline, no Copier).
//!
//! We run each miniature on the baseline path and attribute its serving
//! core's busy time between modeled copy work and everything else. The
//! paper measures 10–66% across Redis / zlib / OpenSSL / proxy / libpng
//! at 16 KB and 256 KB operand sizes.

use std::rc::Rc;

use copier_apps::redis::{run_client, Op, RedisMode, RedisServer};
use copier_bench::{kb, row, section};
use copier_hw::{CostModel, CpuCopyKind};
use copier_os::{NetStack, Os};
use copier_sim::{Machine, Sim, SimRng};

/// Redis SET: measures the serving core's busy time and the modeled copy
/// portion (recv ERMS + value AVX + reply ERMS).
fn redis_share(value: usize) -> f64 {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let os = Os::boot(&h, machine, 64 * 1024);
    let net = NetStack::new(&os);
    let server = RedisServer::new(&os, &net, RedisMode::Baseline, 512 * 1024).unwrap();
    let (cs, ss) = net.socket_pair();
    let score = os.machine.core(1);
    let reqs = 20u64;
    let server2 = Rc::clone(&server);
    let score2 = Rc::clone(&score);
    sim.spawn("server", async move {
        server2.serve(&score2, ss, reqs + 1).await;
    });
    let os2 = Rc::clone(&os);
    let net2 = Rc::clone(&net);
    let ccore = os.machine.core(0);
    sim.spawn("client", async move {
        let rng = Rc::new(SimRng::new(1));
        run_client(os2, net2, ccore, cs, Op::Set, 1, value, reqs, rng).await;
    });
    sim.run();
    let busy = score.busy_time().as_nanos() as f64;
    let m = CostModel::default();
    let key = 12usize;
    let per_req = m.cpu_copy(CpuCopyKind::Erms, 9 + key + value).as_nanos()
        + m.cpu_copy(CpuCopyKind::Avx2, value).as_nanos()
        + m.cpu_copy(CpuCopyKind::Erms, 6).as_nanos();
    (per_req * 21) as f64 / busy
}

/// Generic compute-per-KB share: copy cost over copy + compute for a
/// streaming app that copies `size` and then processes it at
/// `ns_per_kb`.
fn stream_share(size: usize, ns_per_kb: u64, per_op: u64) -> f64 {
    let m = CostModel::default();
    let copy = m.cpu_copy(CpuCopyKind::Erms, size).as_nanos() as f64;
    let compute = (size as u64 * ns_per_kb / 1024 + per_op) as f64;
    copy / (copy + compute)
}

fn main() {
    section("Fig 2-a: cycle proportion of copy (baseline)");
    for size in [16 * 1024usize, 256 * 1024] {
        row(&[
            ("operand", kb(size)),
            ("redis-set", format!("{:.0}%", redis_share(size) * 100.0)),
            (
                "zlib",
                format!(
                    "{:.0}%",
                    stream_share(size, copier_apps::zlib::MATCH_NS_PER_KB, 0) * 100.0
                ),
            ),
            (
                "openssl",
                format!(
                    "{:.0}%",
                    stream_share(
                        size.min(16 * 1024),
                        copier_apps::tls::DECRYPT_NS_PER_KB,
                        800
                    ) * 100.0
                ),
            ),
            (
                "proxy",
                // Three copies, almost no compute: the paper's 66% case.
                format!(
                    "{:.0}%",
                    {
                        let m = CostModel::default();
                        let c = 3.0 * m.cpu_copy(CpuCopyKind::Erms, size).as_nanos() as f64;
                        c / (c + 400.0 + 2.0 * 800.0)
                    } * 100.0
                ),
            ),
            (
                "libpng",
                format!(
                    "{:.0}%",
                    stream_share(size, copier_apps::png::UNFILTER_NS_PER_KB, 700) * 100.0
                ),
            ),
        ]);
    }
}
