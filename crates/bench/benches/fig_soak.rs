//! fig_soak: million-tenant soak — O(active) control-plane rounds and
//! latency-percentile observability (DESIGN.md §18).
//!
//! A large open-loop tenant population registers with one service core;
//! only ~1% of tenants are active (heavy-tailed bounded-Pareto
//! inter-arrivals and copy lengths), the rest sit registered but idle —
//! the shape a consolidated host actually sees. Desired shape: per-round
//! control-plane cost tracks the *active* set, not the registered
//! population. The same seed runs twice, once on the fast path and once
//! with `full_sweep: true` (every read recomputed by the legacy
//! O(clients) sweeps); virtual time is bit-identical, so the host
//! wall-clock ratio *is* the per-round cost ratio. The bar: ≥ 20× at
//! 10⁵ registered tenants. A 10⁶-tenant point runs fast-path-only and
//! must complete within a wall-clock budget.
//!
//! Observability: submission-to-settle latency percentiles (p50 / p99 /
//! p999), per-tenant SLO attainment, and peak RSS — the soak's memory
//! footprint — all reported into `BENCH_soak.json`.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use copier_bench::json::Json;
use copier_bench::{row, section};
use copier_client::{AmemcpyOpts, CopierHandle};
use copier_core::{stats_to_vec, AdmissionConfig, Copier, CopierConfig, Handler, PollMode};
use copier_hw::CostModel;
use copier_mem::{AddressSpace, AllocPolicy, PhysMem, Prot, VirtAddr};
use copier_sim::{ArrivalDist, LenDist, Machine, Nanos, Sim, WorkloadConfig, WorkloadPlan};
use copier_testkit::{peak_rss_bytes, LatencyRecorder};

/// Client-side submission cores shared by the active tenants.
const CLIENT_CORES: usize = 4;
/// Heavy-tailed inter-arrival: Pareto tail index and hi/lo spread.
const GAP_ALPHA: f64 = 1.5;
const GAP_SPREAD: f64 = 1000.0;
/// Heavy-tailed copy lengths.
const LEN_ALPHA: f64 = 1.2;

struct Scale {
    /// Registered tenants (the population the legacy sweeps iterate).
    registered: usize,
    /// Tenants that ever submit (~1% of registered).
    active: usize,
    /// Virtual horizon the arrival plan covers.
    horizon: Nanos,
    /// Smallest / largest copy length.
    len_min: usize,
    len_max: usize,
    /// Mean inter-arrival gap per active tenant.
    mean_gap: Nanos,
    /// Physical frames backing the active tenants' buffer pools.
    frames: usize,
}

struct Out {
    /// Virtual end time (bit-identity surface).
    end: Nanos,
    /// Full stats vector (bit-identity surface).
    stats: Vec<u64>,
    /// Raw latency samples (bit-identity surface).
    samples: Vec<(u32, u64)>,
    /// Pooled percentiles over every settled copy.
    pct: copier_testkit::Percentiles,
    /// `(met, total)` tenants meeting the SLO on ≥ 99% of their copies.
    slo: (usize, usize),
    /// Poll rounds the service ran (idle + busy), equal across modes.
    rounds: u64,
    /// Copies settled.
    settled: usize,
    /// Submissions rejected client-side (should be 0 — underloaded).
    rejected: u64,
    /// Host wall time of `sim.run()` (the measured quantity).
    wall: std::time::Duration,
    /// Host wall time of registering every tenant.
    reg_wall: std::time::Duration,
    /// Control-plane observability counters.
    assign_rebuilds: u64,
    activations: u64,
}

/// SLO for per-tenant attainment: a copy should settle within this much
/// virtual time of its submission.
const SLO: Nanos = Nanos::from_micros(500);

fn run(scale: &Scale, full_sweep: bool, seed: u64) -> Out {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, CLIENT_CORES + 1);
    let pm = Rc::new(PhysMem::new(scale.frames, AllocPolicy::Scattered));
    let cost = Rc::new(CostModel::default());
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(CLIENT_CORES)],
        cost,
        CopierConfig {
            use_dma: false,
            // Small rings: a million tenants times the default 1024-slot
            // rings would be pure footprint; the soak's clients are
            // shallow submitters.
            queue_cap: 4,
            polling: PollMode::Napi {
                spin_rounds: 64,
                park_timeout: Nanos::from_micros(50),
            },
            admission: AdmissionConfig {
                max_client_tasks: 16,
                max_client_bytes: 1024 * 1024,
                ..AdmissionConfig::default()
            },
            full_sweep,
            ..CopierConfig::default()
        },
    );
    svc.start();

    // Register the whole population. Only the first `active` tenants get
    // buffers and an arrival plan; the rest are the idle mass the
    // full-sweep mode pays for every round.
    let reg_t0 = Instant::now();
    let mut libs: Vec<Rc<CopierHandle>> = Vec::with_capacity(scale.registered);
    for t in 0..scale.registered {
        let space = AddressSpace::new(t as u32 + 1, Rc::clone(&pm));
        libs.push(CopierHandle::new(&svc, space));
    }
    let reg_wall = reg_t0.elapsed();

    let plan = WorkloadPlan::new(WorkloadConfig {
        seed,
        tenants: scale.active,
        mean_gap: scale.mean_gap,
        len_min: scale.len_min,
        len_max: scale.len_max,
        horizon: scale.horizon,
        arrival: ArrivalDist::BoundedPareto {
            alpha: GAP_ALPHA,
            spread: GAP_SPREAD,
        },
        length: LenDist::BoundedPareto { alpha: LEN_ALPHA },
    });

    let recorder = Rc::new(LatencyRecorder::new());
    let rejected = Rc::new(Cell::new(0u64));
    let done = Rc::new(Cell::new(0usize));
    for t in 0..scale.active {
        let lib = Rc::clone(&libs[t]);
        let space = Rc::clone(&lib.uspace);
        let bufs: (VirtAddr, VirtAddr) = (
            space.mmap(scale.len_max, Prot::RW, true).unwrap(),
            space.mmap(scale.len_max, Prot::RW, true).unwrap(),
        );
        let arrivals = plan.tenant(t).to_vec();
        let core = machine.core(t % CLIENT_CORES);
        let h2 = h.clone();
        let rec = Rc::clone(&recorder);
        let rej = Rc::clone(&rejected);
        let done2 = Rc::clone(&done);
        sim.spawn("tenant", async move {
            for a in &arrivals {
                let now = h2.now();
                if a.at > now {
                    h2.sleep(a.at - now).await;
                }
                let (src, dst) = bufs;
                let submit = h2.now().as_nanos();
                let rec2 = Rc::clone(&rec);
                let h3 = h2.clone();
                let tid = t as u32;
                let opts = AmemcpyOpts {
                    // KFunc: the service thread stamps the settle time the
                    // moment the copy finishes — the submission-to-settle
                    // sample the soak's percentiles are built from.
                    func: Some(Handler::KFunc(Rc::new(move || {
                        rec2.record(tid, submit, h3.now().as_nanos());
                    }))),
                    ..Default::default()
                };
                if lib.try_amemcpy(&core, dst, src, a.len, opts).await.is_err() {
                    rej.set(rej.get() + 1);
                }
            }
            done2.set(done2.get() + 1);
        });
    }

    // Driver: wait for every active tenant, then drain the window.
    let svc2 = Rc::clone(&svc);
    let h2 = h.clone();
    let done2 = Rc::clone(&done);
    let end = Rc::new(Cell::new(Nanos::ZERO));
    let end2 = Rc::clone(&end);
    let nactive = scale.active;
    sim.spawn("driver", async move {
        while done2.get() < nactive {
            h2.sleep(Nanos::from_micros(20)).await;
        }
        let mut stable = 0;
        while stable < 3 {
            h2.sleep(Nanos::from_micros(10)).await;
            stable = if svc2.admitted_bytes() == 0 {
                stable + 1
            } else {
                0
            };
        }
        end2.set(h2.now());
        svc2.stop();
    });

    let t0 = Instant::now();
    sim.run();
    let wall = t0.elapsed();

    svc.audit_aggregates().expect("aggregate audit");
    assert_eq!(pm.pinned_frames(), 0, "pins must drain");
    let s = svc.stats();
    let obs = svc.control_obs();
    let pct = recorder.percentiles().expect("no copy ever settled");
    Out {
        end: end.get(),
        stats: stats_to_vec(&s),
        samples: recorder.samples(),
        pct,
        slo: recorder.tenants_meeting(SLO.as_nanos(), 0.99),
        rounds: s.idle_polls + s.rounds_settled + s.rounds_active,
        settled: recorder.len(),
        rejected: rejected.get(),
        wall,
        reg_wall,
        assign_rebuilds: obs.assign_rebuilds,
        activations: obs.activations,
    }
}

fn point_json(label: &str, scale: &Scale, o: &Out, full: Option<&Out>) -> Json {
    let mut fields = vec![
        ("point", Json::Str(label.into())),
        ("registered", Json::Int(scale.registered as u64)),
        ("active", Json::Int(scale.active as u64)),
        ("settled", Json::Int(o.settled as u64)),
        ("rejected", Json::Int(o.rejected)),
        ("rounds", Json::Int(o.rounds)),
        ("end_ns", Json::Int(o.end.as_nanos())),
        ("wall_ms_fast", Json::Num(o.wall.as_secs_f64() * 1e3)),
        ("reg_wall_ms", Json::Num(o.reg_wall.as_secs_f64() * 1e3)),
        ("p50_ns", Json::Int(o.pct.p50)),
        ("p99_ns", Json::Int(o.pct.p99)),
        ("p999_ns", Json::Int(o.pct.p999)),
        ("max_ns", Json::Int(o.pct.max)),
        ("slo_met", Json::Int(o.slo.0 as u64)),
        ("slo_total", Json::Int(o.slo.1 as u64)),
        ("assign_rebuilds", Json::Int(o.assign_rebuilds)),
        ("activations", Json::Int(o.activations)),
    ];
    if let Some(f) = full {
        fields.push(("wall_ms_full", Json::Num(f.wall.as_secs_f64() * 1e3)));
        fields.push((
            "round_cost_ratio",
            Json::Num(f.wall.as_secs_f64() / o.wall.as_secs_f64()),
        ));
    }
    if let Some(rss) = peak_rss_bytes() {
        fields.push(("peak_rss_bytes", Json::Int(rss)));
    }
    Json::obj(fields)
}

fn print_point(label: &str, o: &Out) {
    row(&[
        ("point", label.to_string()),
        ("settled", format!("{}", o.settled)),
        ("rounds", format!("{}", o.rounds)),
        ("end-us", format!("{}", o.end.as_nanos() / 1000)),
        ("wall-ms", format!("{:.0}", o.wall.as_secs_f64() * 1e3)),
        ("p50-us", format!("{:.1}", o.pct.p50 as f64 / 1e3)),
        ("p99-us", format!("{:.1}", o.pct.p99 as f64 / 1e3)),
        ("p999-us", format!("{:.1}", o.pct.p999 as f64 / 1e3)),
        ("slo", format!("{}/{}", o.slo.0, o.slo.1)),
    ]);
}

fn main() {
    let smoke = std::env::var("SOAK_SMOKE").is_ok_and(|v| v == "1");
    let small = if smoke {
        Scale {
            registered: 5_000,
            active: 50,
            horizon: Nanos::from_micros(400),
            len_min: 512,
            len_max: 16 * 1024,
            mean_gap: Nanos::from_micros(200),
            frames: 4096,
        }
    } else {
        Scale {
            registered: 100_000,
            active: 1_000,
            horizon: Nanos::from_millis(2),
            len_min: 512,
            len_max: 16 * 1024,
            mean_gap: Nanos::from_millis(1),
            frames: 16384,
        }
    };

    section(&format!(
        "fig_soak: {} registered tenants, {} active ({}%), heavy-tailed arrivals",
        small.registered,
        small.active,
        small.active * 100 / small.registered
    ));
    println!(
        "  Pareto gaps (alpha={GAP_ALPHA}, spread={GAP_SPREAD}) and lengths (alpha={LEN_ALPHA}), 1 service core, DMA off"
    );

    let fast = run(&small, false, 42);
    print_point("fast", &fast);
    let full = run(&small, true, 42);
    print_point("full-sweep", &full);

    // Virtual time must be bit-identical between modes — the wall ratio
    // is meaningless otherwise (different runs, not different read
    // paths).
    assert_eq!(fast.end, full.end, "full_sweep changed virtual time");
    assert_eq!(
        fast.stats, full.stats,
        "full_sweep changed the stats vector"
    );
    assert_eq!(fast.samples, full.samples, "full_sweep changed latencies");
    assert_eq!(fast.rounds, full.rounds);
    let ratio = full.wall.as_secs_f64() / fast.wall.as_secs_f64();
    println!("\n  per-round control-plane cost: full-sweep / fast = {ratio:.1}x");

    section("determinism: same seed, bit-identical soak");
    let again = run(&small, false, 42);
    let identical =
        again.end == fast.end && again.stats == fast.stats && again.samples == fast.samples;
    row(&[
        ("identical", format!("{identical}")),
        ("samples", format!("{}", fast.samples.len())),
    ]);
    assert!(identical, "soak must be seed-deterministic");

    // The million-tenant point: fast path only (the legacy sweep at this
    // scale is precisely what the fast path deletes), wall-clock
    // budgeted.
    let big = Scale {
        registered: if smoke { 20_000 } else { 1_000_000 },
        active: if smoke { 200 } else { 10_000 },
        horizon: Nanos::from_millis(1),
        len_min: 512,
        len_max: 8 * 1024,
        mean_gap: Nanos::from_millis(2),
        frames: if smoke { 8192 } else { 65536 },
    };
    section(&format!(
        "soak at {} registered tenants (fast path only)",
        big.registered
    ));
    let big_out = run(&big, false, 43);
    print_point("big", &big_out);
    let big_wall_s = big_out.wall.as_secs_f64() + big_out.reg_wall.as_secs_f64();
    if let Some(rss) = peak_rss_bytes() {
        println!("  peak RSS: {:.2} GiB", rss as f64 / (1u64 << 30) as f64);
    }

    let json = Json::obj([
        ("bench", Json::Str("fig_soak".into())),
        ("smoke", Json::Bool(smoke)),
        ("slo_ns", Json::Int(SLO.as_nanos())),
        (
            "points",
            Json::Arr(vec![
                point_json("small", &small, &fast, Some(&full)),
                point_json("big", &big, &big_out, None),
            ]),
        ),
        (
            "summary",
            Json::Arr(vec![
                // The tentpole bar: ≥ 20× cheaper rounds at 10⁵ tenants
                // with ~1% active.
                Json::summary("round_cost_reduction_1e5", "speedup_min", 20.0, ratio),
                Json::summary(
                    "p999_ms_1e5",
                    "p999_ms_max",
                    1.0,
                    fast.pct.p999 as f64 / 1e6,
                ),
                Json::summary(
                    "slo_attainment_1e5",
                    "fraction_min",
                    0.9,
                    fast.slo.0 as f64 / fast.slo.1.max(1) as f64,
                ),
                Json::summary(
                    "soak_determinism",
                    "identical_min",
                    1.0,
                    if identical { 1.0 } else { 0.0 },
                ),
                Json::summary("tenants_1e6_wall_s", "wall_s_max", 300.0, big_wall_s),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_soak.json");
    json.write_file(path).expect("write BENCH_soak.json");
    println!("\n  wrote {path}");
}
