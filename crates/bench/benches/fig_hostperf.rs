//! fig_hostperf — host wall-clock throughput of the fast-path copy engine.
//!
//! Unlike the fig* targets (which report *virtual-time* results of the
//! simulation), this bench measures how fast the engine itself moves real
//! bytes on the host: batched translation (`resolve_range`) plus
//! run-coalesced arena copies (`copy_run`), against the per-page baseline
//! (`resolve` per page + page-bounded `copy`) that the engine replaced.
//! Virtual-time outputs are unaffected by construction — see DESIGN.md §12.
//!
//! Layouts (all measured in a warm address space with a deep page table —
//! `DEPTH` background pages mapped, as in a long-running system):
//! - `translate-contig` — the gather-path translation stage alone:
//!   `resolve_range` walks the PTE range with one ordered scan, vs. one
//!   BTreeMap lookup per page. This is where the batching wins big; the
//!   ≥3× acceptance bar applies here.
//! - `gather-contig`  — translation + copy of a small hot window; the
//!   copy stage is memcpy-bound, so the end-to-end win is smaller.
//! - `gather-scattered` — same with fragmented frames: extents collapse
//!   to single pages, showing the bounded win without contiguity.
//! - `overlap-move`   — `memmove` within one region (arena `copy_within`
//!   vs. page-tiled moves).
//!
//! Writes `BENCH_hostperf.json` at the repo root (host GB/s per layout
//! plus suite wall-clock) — the seed point of the BENCH perf trajectory.
//! Set `HOSTPERF_SMOKE=1` for a tiny, fast run (CI smoke).

use std::rc::Rc;
use std::time::Instant;

use copier_bench::json::Json;
use copier_bench::{kb, section};
use copier_mem::{frames_of, AddressSpace, AllocPolicy, PhysMem, Prot, VirtAddr, PAGE_SIZE};
use copier_testkit::{black_box, Bench};

/// One measured layout: fast vs. per-page GB/s over the same bytes.
struct LayoutResult {
    name: &'static str,
    bytes: usize,
    fast_gbps: f64,
    paged_gbps: f64,
}

impl LayoutResult {
    fn speedup(&self) -> f64 {
        self.fast_gbps / self.paged_gbps
    }
}

fn gbps(bytes: usize, ns: u64) -> f64 {
    bytes as f64 / ns.max(1) as f64
}

/// A warm address space with `depth` mapped-and-touched background pages,
/// so the page table has the depth of a long-running process rather than
/// a ten-entry toy map.
fn deep_space(pm: &Rc<PhysMem>, depth: usize) -> Rc<AddressSpace> {
    let asp = AddressSpace::new(1, Rc::clone(pm));
    if depth > 0 {
        let bg = asp.mmap(depth * PAGE_SIZE, Prot::RW, true).unwrap();
        for p in 0..depth {
            asp.write_bytes(VirtAddr(bg.0 + (p * PAGE_SIZE) as u64), &[1u8])
                .unwrap();
        }
    }
    asp
}

/// Builds a populated RW mapping of `pages` pages filled with a pattern.
fn mapped(asp: &Rc<AddressSpace>, pages: usize, tag: u8) -> VirtAddr {
    let va = asp.mmap(pages * PAGE_SIZE, Prot::RW, true).unwrap();
    let data: Vec<u8> = (0..pages * PAGE_SIZE)
        .map(|i| (i % 251) as u8 ^ tag)
        .collect();
    asp.write_bytes(va, &data).unwrap();
    va
}

/// The engine fast path: one batched walk per side, then one `copy_run`
/// per extent pair. Extent lists are position-sliced against each other
/// the way the dispatcher's subtask splitter does, so fragmented sides
/// still pair correctly.
fn engine_fast(pm: &PhysMem, asp: &AddressSpace, dst: VirtAddr, src: VirtAddr, len: usize) {
    let (sx, _) = asp.resolve_range(src, len, false).unwrap();
    let (dx, _) = asp.resolve_range(dst, len, true).unwrap();
    let (mut si, mut di) = (0usize, 0usize);
    let (mut s_off, mut d_off) = (0usize, 0usize);
    let mut left = len;
    while left > 0 {
        let s = sx[si];
        let d = dx[di];
        let take = (s.len - s_off).min(d.len - d_off).min(left);
        pm.copy_run(d.frame, d.off + d_off, s.frame, s.off + s_off, take);
        s_off += take;
        d_off += take;
        if s_off == s.len {
            si += 1;
            s_off = 0;
        }
        if d_off == d.len {
            di += 1;
            d_off = 0;
        }
        left -= take;
    }
    asp.reset_fault_stats();
}

/// The per-page baseline the fast path replaced: resolve each page of
/// both sides independently, copy page by page.
fn engine_paged(pm: &PhysMem, asp: &AddressSpace, dst: VirtAddr, src: VirtAddr, len: usize) {
    let mut done = 0usize;
    while done < len {
        let s_va = src.add(done);
        let d_va = dst.add(done);
        let (sf, _) = asp.resolve(s_va, false).unwrap();
        let (df, _) = asp.resolve(d_va, true).unwrap();
        let take = (len - done)
            .min(PAGE_SIZE - s_va.page_off())
            .min(PAGE_SIZE - d_va.page_off());
        pm.copy(df, d_va.page_off(), sf, s_va.page_off(), take);
        done += take;
    }
    asp.reset_fault_stats();
}

/// Translation stage alone: both sides of a transfer, no byte movement.
/// GB/s here is bytes *gathered* per second.
fn run_translate(bench: &Bench, depth: usize, pages: usize) -> LayoutResult {
    let pm = Rc::new(PhysMem::new(
        depth + pages * 2 + 64,
        AllocPolicy::Sequential,
    ));
    let asp = deep_space(&pm, depth);
    let src = mapped(&asp, pages, 0x00);
    let dst = mapped(&asp, pages, 0xFF);
    let len = pages * PAGE_SIZE;

    let fast = bench.run_and_print("translate-contig/fast", || {
        let (sx, _) = asp.resolve_range(src, black_box(len), false).unwrap();
        let (dx, _) = asp.resolve_range(dst, len, true).unwrap();
        black_box((sx, dx));
        asp.reset_fault_stats();
    });
    let paged = bench.run_and_print("translate-contig/paged", || {
        let mut done = 0usize;
        while done < len {
            let (sf, _) = asp.resolve(src.add(done), false).unwrap();
            let (df, _) = asp.resolve(dst.add(done), true).unwrap();
            black_box((sf, df));
            done += PAGE_SIZE;
        }
        asp.reset_fault_stats();
    });
    // Sanity: the batched walk must see the exact frames the per-page
    // walk sees.
    let (sx, _) = asp.resolve_range(src, len, false).unwrap();
    let per_page: Vec<_> = (0..pages)
        .map(|p| asp.resolve(src.add(p * PAGE_SIZE), false).unwrap().0)
        .collect();
    assert_eq!(frames_of(&sx), per_page, "batched vs per-page frames");
    asp.reset_fault_stats();

    LayoutResult {
        name: "translate-contig",
        bytes: len,
        fast_gbps: gbps(len, fast.median_ns()),
        paged_gbps: gbps(len, paged.median_ns()),
    }
}

/// Full gather engine (translate + copy) over a hot window.
fn run_gather(
    bench: &Bench,
    name: &'static str,
    policy: AllocPolicy,
    depth: usize,
    pages: usize,
) -> LayoutResult {
    let pm = Rc::new(PhysMem::new(depth + pages * 2 + 64, policy));
    let asp = deep_space(&pm, depth);
    let src = mapped(&asp, pages, 0x00);
    let dst = mapped(&asp, pages, 0xFF);
    let len = pages * PAGE_SIZE;

    let fast = bench.run_and_print(&format!("{name}/fast"), || {
        engine_fast(&pm, &asp, dst, src, black_box(len));
    });
    let paged = bench.run_and_print(&format!("{name}/paged"), || {
        engine_paged(&pm, &asp, dst, src, black_box(len));
    });
    // Sanity: both paths must have produced identical destination bytes.
    let mut a = vec![0u8; len];
    let mut b = vec![0u8; len];
    asp.read_bytes(src, &mut a).unwrap();
    asp.read_bytes(dst, &mut b).unwrap();
    assert_eq!(a, b, "{name}: dst must equal src after the copy");

    LayoutResult {
        name,
        bytes: len,
        fast_gbps: gbps(len, fast.median_ns()),
        paged_gbps: gbps(len, paged.median_ns()),
    }
}

/// Overlapping in-region move: `memmove` semantics through the arena
/// (single `copy_within`) vs. page-tiled moves (`copy_run_paged`).
fn run_overlapping(bench: &Bench, pages: usize) -> LayoutResult {
    let pm = Rc::new(PhysMem::new(pages + 64, AllocPolicy::Sequential));
    let base = pm.alloc_contiguous(pages).unwrap();
    let shift = 1500usize; // non-page-aligned, heavily overlapping
    let len = (pages - 1) * PAGE_SIZE;
    let data: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
    pm.write_run(base, 0, &data);

    let fast = bench.run_and_print("overlap-move/fast", || {
        pm.copy_run(base, shift, base, 0, black_box(len));
    });
    let paged = bench.run_and_print("overlap-move/paged", || {
        pm.copy_run_paged(base, shift, base, 0, black_box(len));
    });
    // Sanity on a fresh buffer: a single shifted move preserves the data.
    pm.write_run(base, 0, &data);
    pm.copy_run(base, shift, base, 0, len);
    let mut got = vec![0u8; len];
    pm.read_run(base, shift, &mut got);
    assert_eq!(got, data, "overlapping move must have memmove semantics");

    LayoutResult {
        name: "overlap-move",
        bytes: len,
        fast_gbps: gbps(len, fast.median_ns()),
        paged_gbps: gbps(len, paged.median_ns()),
    }
}

fn main() {
    let smoke = std::env::var("HOSTPERF_SMOKE").is_ok_and(|v| v == "1");
    let bench = if smoke {
        Bench::fast()
    } else {
        Bench::default()
    };
    // Background mapping depth: 128 MB full / 8 MB smoke of warm pages.
    let depth = if smoke { 2048 } else { 32768 };
    let t0 = Instant::now();

    section("fig_hostperf: host copy-engine throughput (wall clock)");
    println!(
        "  mode: {}, page-table depth: {depth} pages",
        if smoke { "smoke" } else { "full" }
    );
    let results = vec![
        run_translate(&bench, depth, if smoke { 64 } else { 256 }),
        run_gather(&bench, "gather-contig", AllocPolicy::Sequential, depth, 4),
        run_gather(&bench, "gather-scattered", AllocPolicy::Scattered, depth, 4),
        run_overlapping(&bench, if smoke { 16 } else { 1024 }),
    ];
    let suite_ms = t0.elapsed().as_secs_f64() * 1e3;

    section("summary (GB/s, higher is better)");
    for r in &results {
        println!(
            "  {:<17} {:>6}  fast={:>7.2} GB/s  paged={:>7.2} GB/s  speedup={:.2}x",
            r.name,
            kb(r.bytes),
            r.fast_gbps,
            r.paged_gbps,
            r.speedup()
        );
    }

    let json = Json::obj([
        ("bench", Json::Str("fig_hostperf".into())),
        ("smoke", Json::Bool(smoke)),
        ("depth_pages", Json::Int(depth as u64)),
        ("suite_ms", Json::Num(suite_ms)),
        (
            "layouts",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::Str(r.name.into())),
                            ("bytes", Json::Int(r.bytes as u64)),
                            ("fast_gbps", Json::Num(r.fast_gbps)),
                            ("paged_gbps", Json::Num(r.paged_gbps)),
                            ("speedup", Json::Num(r.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "summary",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        // overlap-move is memmove-bound either way: parity
                        // is the honest expectation, so its bar is only a
                        // no-regression check. The translate/gather paths
                        // must actually win.
                        let bar = if r.name == "overlap-move" { 0.8 } else { 1.0 };
                        Json::summary(
                            &format!("speedup_{}", r.name),
                            "speedup_min",
                            bar,
                            r.speedup(),
                        )
                    })
                    .collect(),
            ),
        ),
    ]);
    // The bench binary runs with the package root as cwd; anchor the
    // output at the repo root so every BENCH_*.json lands in one place.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hostperf.json");
    json.write_file(path).expect("write BENCH_hostperf.json");
    println!("\n  wrote {path} (suite {suite_ms:.0} ms)");
}
