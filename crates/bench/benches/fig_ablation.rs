//! Ablations beyond the paper's figures (DESIGN.md §9):
//!
//! * **segment-size sensitivity** — the descriptor granularity trades
//!   update overhead against pipeline latency (§4.1);
//! * **hardware-primitive bound** (§7 discussion) — what a zero-cost
//!   submission/csync primitive would buy, bounding the polling tax.

use std::rc::Rc;

use copier_bench::{kb, row, section};
use copier_client::CopierHandle;
use copier_core::{Copier, CopierConfig};
use copier_hw::CostModel;
use copier_mem::{AddressSpace, AllocPolicy, PhysMem, Prot};
use copier_sim::{Machine, Nanos, Sim};

/// Latency of a 64 KB copy-use pipeline csync'ing every `chunk` bytes,
/// at descriptor granularity `segment`.
fn pipeline(segment: usize, chunk: usize, submit_cost: Option<Nanos>) -> Nanos {
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, 2);
    let pm = Rc::new(PhysMem::new(4096, AllocPolicy::Scattered));
    let mut cost = CostModel::default();
    if let Some(c) = submit_cost {
        cost.task_submit = c;
        cost.csync_hit = c;
    }
    let svc = Copier::new(
        &h,
        Rc::clone(&pm),
        vec![machine.core(1)],
        Rc::new(cost),
        CopierConfig {
            segment,
            ..Default::default()
        },
    );
    svc.start();
    let space = AddressSpace::new(1, Rc::clone(&pm));
    let lib = CopierHandle::new(&svc, Rc::clone(&space));
    let core = machine.core(0);
    let out = Rc::new(std::cell::Cell::new(Nanos::ZERO));
    let out2 = Rc::clone(&out);
    let svc2 = Rc::clone(&svc);
    let h2 = h.clone();
    sim.spawn("driver", async move {
        let len = 64 * 1024;
        let src = space.mmap(len, Prot::RW, true).unwrap();
        let dst = space.mmap(len, Prot::RW, true).unwrap();
        // Warm the service.
        lib.amemcpy(&core, dst, src, len).await.expect("admitted");
        lib.csync(&core, dst, len).await.unwrap();
        let t0 = h2.now();
        for _ in 0..8 {
            lib.amemcpy(&core, dst, src, len).await.expect("admitted");
            let mut off = 0;
            while off < len {
                lib.csync(&core, dst.add(off), chunk.min(len - off))
                    .await
                    .unwrap();
                // Per-chunk processing.
                core.advance(Nanos(chunk as u64 / 12)).await;
                off += chunk;
            }
        }
        out2.set(Nanos((h2.now() - t0).as_nanos() / 8));
        svc2.stop();
    });
    sim.run();
    out.get()
}

fn main() {
    section("Ablation: descriptor segment size (64KB copy, 2KB-chunk pipeline)");
    for segment in [256usize, 1024, 4096, 16384, 65536] {
        let t = pipeline(segment, 2048, None);
        row(&[
            ("segment", kb(segment)),
            ("pipeline-latency", format!("{t}")),
        ]);
    }

    section("Ablation: §7 hardware-primitive bound (submission/csync cost → 5ns)");
    let sw = pipeline(1024, 2048, None);
    let hw = pipeline(1024, 2048, Some(Nanos(5)));
    row(&[
        ("software", format!("{sw}")),
        ("hw-primitive", format!("{hw}")),
        ("bound", copier_bench::delta(sw, hw)),
    ]);
}
