//! Fig. 11: Redis GET/SET latency (avg, P99) and throughput across value
//! sizes, for baseline / Copier / zIO / UB / zero-copy send.
//!
//! Paper shape: Copier −2.7–43.4% avg SET latency and −4.2–42.5% GET;
//! zIO only helps large SETs (input-buffer reuse faults); UB only ≤4 KB;
//! zero-copy send only ≥32 KB values.

use std::cell::RefCell;
use std::rc::Rc;

use copier_apps::redis::{run_client, Op, RedisMode, RedisServer};
use copier_baselines::Zio;
use copier_bench::{delta, kb, row, section, stats, Stats};
use copier_os::{NetStack, Os};
use copier_sim::{Machine, Nanos, Sim, SimRng};

const REQS: u64 = 24;
const CLIENTS: usize = 2;

fn run(mode: RedisMode, with_copier: bool, op: Op, value_len: usize) -> (Stats, f64) {
    let mut sim = Sim::new();
    let h = sim.handle();
    // Client cores + server core + copier core.
    let machine = Machine::new(&h, CLIENTS + 2);
    let os = Os::boot(&h, machine, 64 * 1024);
    if with_copier {
        os.install_copier(vec![os.machine.core(CLIENTS + 1)], Default::default());
    }
    let net = NetStack::new(&os);
    let server = RedisServer::new(&os, &net, mode, 512 * 1024).unwrap();
    let score = os.machine.core(CLIENTS);
    let total = (REQS + 1) * CLIENTS as u64;
    let samples: Rc<RefCell<Vec<Nanos>>> = Rc::new(RefCell::new(Vec::new()));
    let t_all = Rc::new(std::cell::Cell::new((Nanos::ZERO, Nanos::ZERO)));
    let done = Rc::new(std::cell::Cell::new(0usize));
    for c in 0..CLIENTS {
        let (cs, ss) = net.socket_pair();
        let server2 = Rc::clone(&server);
        let score2 = Rc::clone(&score);
        sim.spawn("server-conn", async move {
            server2.serve(&score2, ss, REQS + 1).await;
        });
        let os2 = Rc::clone(&os);
        let net2 = Rc::clone(&net);
        let core = os.machine.core(c);
        let samples2 = Rc::clone(&samples);
        let done2 = Rc::clone(&done);
        let t_all2 = Rc::clone(&t_all);
        let h2 = h.clone();
        sim.spawn("client", async move {
            let rng = Rc::new(SimRng::new(100 + c as u64));
            let t0 = h2.now();
            let s = run_client(
                Rc::clone(&os2),
                net2,
                core,
                cs,
                op,
                c as u32,
                value_len,
                REQS,
                rng,
            )
            .await;
            samples2.borrow_mut().extend(s.iter().map(|x| x.latency));
            let (start, dur) = t_all2.get();
            t_all2.set((start, dur.max(h2.now() - t0)));
            done2.set(done2.get() + 1);
            if done2.get() == CLIENTS {
                if let Some(svc) = os2.copier.borrow().as_ref() {
                    svc.stop();
                }
            }
        });
    }
    sim.run();
    assert_eq!(server.served.get(), total, "all requests served");
    let mut v = samples.borrow_mut();
    let st = stats(&mut v);
    let (_, dur) = t_all.get();
    let tput = (REQS as f64 * CLIENTS as f64) / dur.as_secs_f64() / 1000.0; // kreq/s
    (st, tput)
}

fn main() {
    section("Fig 11: Redis GET/SET latency and throughput");
    for op in [Op::Set, Op::Get] {
        for value in [1024usize, 4 * 1024, 16 * 1024, 64 * 1024] {
            println!("\n  {op:?} value = {}", kb(value));
            let (base, base_t) = run(RedisMode::Baseline, false, op, value);
            let systems: Vec<(&str, RedisMode, bool)> = vec![
                ("baseline", RedisMode::Baseline, false),
                ("copier", RedisMode::Copier, true),
                (
                    "zio",
                    RedisMode::Zio(Zio::new(Rc::new(copier_hw::CostModel::default()))),
                    false,
                ),
                ("ub", RedisMode::Ub, false),
                ("zc-send", RedisMode::ZeroCopySend, false),
            ];
            for (name, mode, cop) in systems {
                let (st, tput) = run(mode, cop, op, value);
                row(&[
                    ("sys", name.to_string()),
                    ("avg", format!("{}", st.avg)),
                    ("p99", format!("{}", st.p99)),
                    ("kreq/s", format!("{tput:.1}")),
                    ("avg-vs-base", delta(base.avg, st.avg)),
                    ("tput-vs-base", copier_bench::ratio(tput, base_t)),
                ]);
            }
        }
    }
}
