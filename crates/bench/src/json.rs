//! Minimal JSON emission for machine-readable bench output.
//!
//! The workspace is hermetic (no external crates), so the `BENCH_*.json`
//! perf-trajectory files are written through this hand-rolled value tree
//! rather than a serialization framework. Only what the bench targets
//! need: objects, arrays, strings, numbers, booleans.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A float, printed with enough precision to round-trip typical
    /// GB/s / milliseconds magnitudes. Non-finite values render as `null`
    /// (JSON has no NaN/Inf).
    Num(f64),
    /// An integer, printed exactly.
    Int(u64),
    /// A string (escaped on output).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Writes the value to `path` with a trailing newline.
    pub fn write_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{self}")
    }

    /// One normalized perf-trajectory row. Every `BENCH_*.json` carries a
    /// top-level `summary` array of these so `scripts/bench_summary.sh`
    /// can print the whole trajectory uniformly without knowing each
    /// bench's bespoke layout. `bar` is the acceptance threshold the
    /// bench asserts against (the direction is implied by the metric).
    pub fn summary(name: &str, metric: &str, bar: f64, value: f64) -> Json {
        Json::obj([
            ("name", Json::Str(name.into())),
            ("metric", Json::Str(metric.into())),
            ("bar", Json::Num(bar)),
            ("value", Json::Num(value)),
        ])
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Int(x) => write!(f, "{x}"),
            Json::Str(s) => escape(s, f),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = Json::obj([
            ("name", Json::Str("fig_hostperf".into())),
            ("gbps", Json::Num(12.5)),
            ("iters", Json::Int(3)),
            ("ok", Json::Bool(true)),
            (
                "layouts",
                Json::Arr(vec![Json::Str("contiguous".into()), Json::Num(0.25)]),
            ),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"fig_hostperf","gbps":12.5,"iters":3,"ok":true,"layouts":["contiguous",0.25]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
