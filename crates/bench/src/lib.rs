//! # copier-bench — experiment harness support
//!
//! Shared statistics and table printing for the per-figure bench targets
//! (`benches/fig*.rs`, each with `harness = false`). Every target
//! regenerates one table or figure of the paper; EXPERIMENTS.md records
//! paper-vs-measured for each.

pub mod json;

use copier_sim::Nanos;

/// Summary statistics over a latency sample set.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Arithmetic mean.
    pub avg: Nanos,
    /// Median.
    pub p50: Nanos,
    /// 99th percentile.
    pub p99: Nanos,
    /// 99.9th percentile (the soak benchmark's tail metric; equals the
    /// maximum below 1000 samples under the ceiling-rank definition).
    pub p999: Nanos,
    /// Minimum.
    pub min: Nanos,
    /// Maximum.
    pub max: Nanos,
    /// Sample count.
    pub n: usize,
}

/// Computes summary statistics (sorts the input).
///
/// Percentiles use the nearest-rank (ceiling) definition: the p-th
/// percentile is the smallest sample with at least `⌈p·n⌉` samples at or
/// below it. Rounding the rank instead (the classic off-by-one) reports
/// a sample *below* the true p99 for small n — e.g. the 66th of 67
/// samples instead of the 67th.
pub fn stats(samples: &mut [Nanos]) -> Stats {
    assert!(!samples.is_empty());
    samples.sort();
    let n = samples.len();
    let sum: u64 = samples.iter().map(|s| s.as_nanos()).sum();
    let pct = |p: f64| {
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        samples[rank - 1]
    };
    Stats {
        avg: Nanos(sum / n as u64),
        p50: pct(0.50),
        p99: pct(0.99),
        p999: pct(0.999),
        min: samples[0],
        max: samples[n - 1],
        n,
    }
}

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints one row of `key = value` pairs, aligned.
pub fn row(cells: &[(&str, String)]) {
    let line: Vec<String> = cells.iter().map(|(k, v)| format!("{k}={v:>10}")).collect();
    println!("  {}", line.join("  "));
}

/// Formats a speedup/change versus a baseline.
pub fn delta(baseline: Nanos, other: Nanos) -> String {
    let b = baseline.as_nanos() as f64;
    let o = other.as_nanos() as f64;
    format!("{:+.1}%", (o - b) / b * 100.0)
}

/// Formats a throughput ratio.
pub fn ratio(new: f64, old: f64) -> String {
    format!("{:.2}x", new / old)
}

/// Human-readable byte size.
pub fn kb(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{}MB", bytes / 1024 / 1024)
    } else if bytes >= 1024 {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_percentiles() {
        let mut v: Vec<Nanos> = (1..=100).map(Nanos).collect();
        let s = stats(&mut v);
        assert_eq!(s.avg, Nanos(50));
        assert_eq!(s.p50, Nanos(50)); // rank ⌈100·0.5⌉ = 50 → value 50
        assert_eq!(s.p99, Nanos(99)); // rank ⌈100·0.99⌉ = 99
        assert_eq!(s.p999, Nanos(100)); // rank ⌈100·0.999⌉ = 100
        assert_eq!(s.min, Nanos(1));
        assert_eq!(s.max, Nanos(100));
    }

    #[test]
    fn stats_p999_needs_a_thousand_samples_to_leave_the_max() {
        let mut v: Vec<Nanos> = (1..=2000).map(Nanos).collect();
        let s = stats(&mut v);
        assert_eq!(s.p999, Nanos(1998)); // rank ⌈2000·0.999⌉ = 1998
        assert_eq!(s.max, Nanos(2000));
    }

    #[test]
    fn stats_percentiles_small_n_use_ceil_rank() {
        // With 67 samples, ⌈0.99·67⌉ = 67: p99 must be the maximum. The
        // old round((n-1)·p) rank gave index 65 → value 66 (an
        // underestimate).
        let mut v: Vec<Nanos> = (1..=67).map(Nanos).collect();
        let s = stats(&mut v);
        assert_eq!(s.p99, Nanos(67));
        assert_eq!(s.p50, Nanos(34)); // ⌈33.5⌉ = 34

        let mut v: Vec<Nanos> = [10, 20, 30, 40].map(Nanos).to_vec();
        let s = stats(&mut v);
        assert_eq!(s.p50, Nanos(20)); // ⌈2.0⌉ = 2 → second sample
        assert_eq!(s.p99, Nanos(40));

        let mut v = vec![Nanos(7)];
        let s = stats(&mut v);
        assert_eq!(s.p50, Nanos(7));
        assert_eq!(s.p99, Nanos(7));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(kb(512), "512B");
        assert_eq!(kb(16 * 1024), "16KB");
        assert_eq!(kb(2 * 1024 * 1024), "2MB");
        assert_eq!(delta(Nanos(100), Nanos(80)), "-20.0%");
        assert_eq!(ratio(3.0, 2.0), "1.50x");
    }
}
