//! Scratch probe for multi-threaded proxy debugging.
use copier_apps::proxy::{echo_server, Proxy, ProxyMode};
use copier_mem::Prot;
use copier_os::{IoMode, NetStack, Os};
use copier_sim::{Machine, Nanos, Sim};
use std::cell::Cell;
use std::rc::Rc;

fn main() {
    let threads = 2usize;
    let len = 16 * 1024;
    let msgs = 5u64;
    let mut sim = Sim::new();
    let h = sim.handle();
    let machine = Machine::new(&h, threads * 2 + 2);
    let os = Os::boot(&h, machine, 128 * 1024);
    os.install_copier(vec![os.machine.core(threads * 2 + 1)], Default::default());
    let net = NetStack::new(&os);
    let shared = os.spawn_process();
    let done = Rc::new(Cell::new(0usize));
    for t in 0..threads {
        let (ctx, prx) = net.socket_pair();
        let (ptx, urx) = net.socket_pair();
        let fd = if t == 0 {
            0
        } else {
            shared.lib().create_queue(1024)
        };
        let proxy = Proxy::with_process(
            &os,
            &net,
            ProxyMode::Copier,
            512 * 1024,
            Rc::clone(&shared),
            fd,
        )
        .unwrap();
        let pcore = os.machine.core(threads + t);
        let h4 = h.clone();
        sim.spawn("proxy", async move {
            proxy.pump(&pcore, prx, ptx, msgs).await;
            eprintln!("proxy {t} done at {}", h4.now());
        });
        let os2 = Rc::clone(&os);
        let net2 = Rc::clone(&net);
        let ucore = os.machine.core(threads * 2);
        let h3 = h.clone();
        let done2 = Rc::clone(&done);
        sim.spawn("up", async move {
            echo_server(Rc::clone(&os2), net2, ucore, urx, msgs, None).await;
            eprintln!("upstream {t} done at {}", h3.now());
            done2.set(done2.get() + 1);
            if done2.get() == threads {
                os2.copier().stop();
            }
        });
        let os3 = Rc::clone(&os);
        let net3 = Rc::clone(&net);
        let ccore = os.machine.core(t);
        sim.spawn("client", async move {
            let p = os3.spawn_process();
            let buf = p.space.mmap(len, Prot::RW, true).unwrap();
            p.space.write_bytes(buf, &vec![1u8; len]).unwrap();
            for _ in 0..msgs {
                net3.send(&ccore, &p, &ctx, buf, len, IoMode::Sync)
                    .await
                    .unwrap();
            }
            eprintln!("client {t} sent all");
        });
    }
    let end = sim.run_until(Nanos::from_millis(50));
    eprintln!("end {end}, live: {:?}", sim.live_task_names());
    eprintln!("stats {:?}", os.copier().stats());
}
