//! Mini-Redis: a RESP-style key-value server over the simulated netstack.
//!
//! Reproduces the five copies the paper optimizes (§6.2.1):
//! 1. request: kernel → I/O buffer in `recv()`;
//! 2. SET: value from the I/O buffer → the value's buffer;
//! 3. GET: value from the value's buffer → the output buffer;
//! 4. reply: output buffer → kernel in `send()`;
//! 5. internal bookkeeping copies during processing.
//!
//! The I/O buffer is fixed and reused across requests — the address
//! recurrence that feeds the ATCache (§4.3) and, under zIO, the CoW
//! faults that erode its elision (§6.2.1).
//!
//! Wire format: `[op u8][klen u32][vlen u32][key][value]`; replies are
//! `[len u32][payload]`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use copier_baselines::Zio;
use copier_client::{sync_memcpy, AmemcpyOpts};
use copier_core::SegDescriptor;
use copier_mem::{MemError, Prot, VirtAddr};
use copier_os::{IoMode, NetStack, Os, Process, Socket};
use copier_sim::{Core, Nanos, SimRng};

/// Request parse cost (protocol scan, separators).
pub const PARSE_COST: Nanos = Nanos(250);
/// Hash + table op cost per SET/GET.
pub const TABLE_COST: Nanos = Nanos(300);

/// Which system the server runs on.
#[derive(Clone)]
pub enum RedisMode {
    /// Plain syscalls + synchronous userspace memcpy.
    Baseline,
    /// Copier for all five copies.
    Copier,
    /// zIO interposing on the userspace copies (syscalls stay plain).
    Zio(Rc<Zio>),
    /// Userspace Bypass for the syscalls (userspace copies stay plain).
    Ub,
    /// Linux zero-copy send for replies (everything else plain).
    ZeroCopySend,
}

impl RedisMode {
    fn recv_mode(&self) -> IoMode {
        match self {
            RedisMode::Copier => IoMode::Copier,
            RedisMode::Ub => IoMode::Ub,
            _ => IoMode::Sync,
        }
    }

    fn send_mode(&self) -> IoMode {
        match self {
            RedisMode::Copier => IoMode::Copier,
            RedisMode::Ub => IoMode::Ub,
            RedisMode::ZeroCopySend => IoMode::ZeroCopy,
            _ => IoMode::Sync,
        }
    }
}

/// SET or GET.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Store a value.
    Set,
    /// Fetch a value.
    Get,
}

struct DbValue {
    va: VirtAddr,
    len: usize,
    cap: usize,
}

/// The server state.
/// Deferred cleanup: the guard descriptor to wait on, plus the
/// intermediate copies to abort once it lands.
type PrevCleanup = Option<(Rc<SegDescriptor>, Vec<Rc<SegDescriptor>>)>;

pub struct RedisServer {
    os: Rc<Os>,
    net: Rc<NetStack>,
    /// The server process.
    pub proc: Rc<Process>,
    mode: RedisMode,
    io_buf: VirtAddr,
    out_buf: VirtAddr,
    cap: usize,
    db: RefCell<HashMap<Vec<u8>, DbValue>>,
    /// Recycled value buffers by capacity (address recurrence).
    pool: RefCell<Vec<(usize, VirtAddr)>>,
    /// Requests served.
    pub served: std::cell::Cell<u64>,
    /// Cleanup owed from the previous request (Copier mode): wait for the
    /// guard descriptor, then abort the listed intermediate copies — the
    /// paper's lazy+abort reuse pattern (§4.4, §5.1 low-level APIs).
    prev: RefCell<PrevCleanup>,
    /// Descriptor of the last recv task (abort target on SET).
    last_recv: RefCell<Option<Rc<SegDescriptor>>>,
    /// Descriptor of the pending GET output-mediator copy.
    out_pending: RefCell<Option<Rc<SegDescriptor>>>,
}

impl RedisServer {
    /// Creates a server process with fixed I/O buffers of `cap` bytes.
    pub fn new(
        os: &Rc<Os>,
        net: &Rc<NetStack>,
        mode: RedisMode,
        cap: usize,
    ) -> Result<Rc<Self>, MemError> {
        let proc = os.spawn_process();
        let io_buf = proc.space.mmap(cap, Prot::RW, true)?;
        let out_buf = proc.space.mmap(cap, Prot::RW, true)?;
        Ok(Rc::new(RedisServer {
            os: Rc::clone(os),
            net: Rc::clone(net),
            proc,
            mode,
            io_buf,
            out_buf,
            cap,
            db: RefCell::new(HashMap::new()),
            pool: RefCell::new(Vec::new()),
            served: std::cell::Cell::new(0),
            prev: RefCell::new(None),
            last_recv: RefCell::new(None),
            out_pending: RefCell::new(None),
        }))
    }

    fn alloc_value(&self, len: usize) -> Result<VirtAddr, MemError> {
        let mut pool = self.pool.borrow_mut();
        if let Some(i) = pool.iter().position(|&(c, _)| c >= len) {
            return Ok(pool.remove(i).1);
        }
        drop(pool);
        self.proc.space.mmap(len.max(64), Prot::RW, true)
    }

    /// Serves requests on `sock` until `limit` requests are handled.
    pub async fn serve(self: &Rc<Self>, core: &Rc<Core>, sock: Rc<Socket>, limit: u64) {
        let mode = self.mode.clone();
        let copier = matches!(mode, RedisMode::Copier);
        for _ in 0..limit {
            if copier {
                self.cleanup_previous(core).await;
            }
            let (n, descr) = match self
                .net
                .recv_opts(
                    core,
                    &self.proc,
                    &sock,
                    self.io_buf,
                    self.cap,
                    mode.recv_mode(),
                    copier, // recv copies are mediators: header/key synced, value absorbed
                    0,
                )
                .await
            {
                Ok(r) => r,
                Err(_) => return,
            };
            *self.last_recv.borrow_mut() = descr;
            self.handle_request(core, &sock, n).await.expect("request");
            self.served.set(self.served.get() + 1);
        }
        if copier {
            self.cleanup_previous(core).await;
        }
    }

    /// Waits for the previous request's dependent copy to land, then
    /// aborts the intermediate-buffer obligations so buffer reuse does not
    /// re-materialize absorbed copies.
    async fn cleanup_previous(self: &Rc<Self>, core: &Rc<Core>) {
        let Some((guard, aborts)) = self.prev.borrow_mut().take() else {
            return;
        };
        let lib = self.proc.lib();
        while !guard.all_ready() && guard.fault().is_none() {
            core.advance(Nanos(100)).await;
        }
        for d in aborts {
            lib.abort_task(core, &d, 0).await;
        }
    }

    async fn handle_request(
        self: &Rc<Self>,
        core: &Rc<Core>,
        sock: &Rc<Socket>,
        n: usize,
    ) -> Result<(), MemError> {
        let space = &self.proc.space;
        let copier = matches!(self.mode, RedisMode::Copier);
        let lib = copier.then(|| self.proc.lib());

        // Parse the header — with Copier, sync only the bytes used so the
        // value keeps streaming (copy-use pipeline).
        if let Some(lib) = &lib {
            lib.csync(core, self.io_buf, 9).await.expect("hdr");
        }
        core.advance(PARSE_COST).await;
        let mut hdr = [0u8; 9];
        space.read_bytes(self.io_buf, &mut hdr)?;
        let op = if hdr[0] == 0 { Op::Set } else { Op::Get };
        let klen = u32::from_le_bytes(hdr[1..5].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(hdr[5..9].try_into().unwrap()) as usize;
        assert_eq!(n, 9 + klen + if op == Op::Set { vlen } else { 0 });

        if let Some(lib) = &lib {
            lib.csync(core, self.io_buf.add(9), klen)
                .await
                .expect("key");
        }
        let mut key = vec![0u8; klen];
        space.read_bytes(self.io_buf.add(9), &mut key)?;
        core.advance(TABLE_COST).await;

        match op {
            Op::Set => {
                let src = self.io_buf.add(9 + klen);
                // Reclaim any previous buffer for this key.
                if let Some(old) = self.db.borrow_mut().remove(&key) {
                    self.pool.borrow_mut().push((old.cap, old.va));
                }
                // Copy 2: I/O buffer → value buffer.
                let dst = match &self.mode {
                    RedisMode::Zio(zio) => {
                        // zIO needs page congruence to elide; give it a
                        // congruent target like its allocator-aware mode.
                        let raw = self.alloc_value(vlen + src.page_off())?;
                        let dst = raw.add(src.page_off());
                        zio.memcpy(core, &self.proc, dst, src, vlen).await?;
                        dst
                    }
                    RedisMode::Copier => {
                        let dst = self.alloc_value(vlen)?;
                        // Absorbs against the pending (lazy) recv() task:
                        // the service short-circuits kernel → value buffer.
                        match lib.as_ref().unwrap().amemcpy(core, dst, src, vlen).await {
                            Ok(d) => {
                                // Once this copy lands, the recv task's value
                                // segments are pure dead weight — abort them
                                // before the I/O buffer is reused.
                                let aborts = self.last_recv.borrow().iter().cloned().collect();
                                *self.prev.borrow_mut() = Some((d, aborts));
                            }
                            Err(_) => {
                                // Overloaded: materialize the lazy recv bytes,
                                // then copy the value synchronously (§4.6).
                                lib.as_ref()
                                    .unwrap()
                                    .csync(core, src, vlen)
                                    .await
                                    .expect("value");
                                sync_memcpy(core, &self.os.cost, space, dst, src, vlen).await?;
                            }
                        }
                        dst
                    }
                    _ => {
                        let dst = self.alloc_value(vlen)?;
                        sync_memcpy(core, &self.os.cost, space, dst, src, vlen).await?;
                        dst
                    }
                };
                self.db.borrow_mut().insert(
                    key,
                    DbValue {
                        va: dst,
                        len: vlen,
                        cap: vlen,
                    },
                );
                // Reply "+OK".
                space.write_bytes(self.out_buf, &2u32.to_le_bytes())?;
                space.write_bytes(self.out_buf.add(4), b"OK")?;
                self.net
                    .send(
                        core,
                        &self.proc,
                        sock,
                        self.out_buf,
                        6,
                        self.mode.send_mode(),
                    )
                    .await?;
            }
            Op::Get => {
                let (vva, vl) = {
                    let db = self.db.borrow();
                    let v = db.get(&key).expect("key exists");
                    (v.va, v.len)
                };
                space.write_bytes(self.out_buf, &(vl as u32).to_le_bytes())?;
                // Copy 3: value buffer → output buffer.
                match &self.mode {
                    RedisMode::Zio(zio) => {
                        zio.memcpy(core, &self.proc, self.out_buf.add(4), vva, vl)
                            .await?;
                    }
                    RedisMode::Copier => {
                        // The send()'s kernel copy will absorb this one —
                        // value buffer → kernel, skipping the output buffer
                        // entirely (lazy: the server never reads it).
                        let od = lib
                            .as_ref()
                            .unwrap()
                            ._amemcpy(
                                core,
                                self.out_buf.add(4),
                                vva,
                                vl,
                                AmemcpyOpts {
                                    lazy: true,
                                    ..Default::default()
                                },
                            )
                            .await;
                        match od {
                            Ok(od) => *self.out_pending.borrow_mut() = Some(od),
                            Err(_) => {
                                // Overloaded: no mediator to absorb; produce
                                // the reply bytes synchronously (§4.6).
                                *self.out_pending.borrow_mut() = None;
                                sync_memcpy(
                                    core,
                                    &self.os.cost,
                                    space,
                                    self.out_buf.add(4),
                                    vva,
                                    vl,
                                )
                                .await?;
                            }
                        }
                    }
                    _ => {
                        sync_memcpy(core, &self.os.cost, space, self.out_buf.add(4), vva, vl)
                            .await?;
                    }
                }
                // Copy 4: output buffer → kernel in send().
                let h = self
                    .net
                    .send_opts(
                        core,
                        &self.proc,
                        sock,
                        self.out_buf,
                        4 + vl,
                        self.mode.send_mode(),
                        0,
                    )
                    .await?;
                if let Some(d) = h.descriptor() {
                    // After the reply is assembled in the kernel, the
                    // value → output-buffer mediator (and the recv task's
                    // remainder) can be discarded.
                    let mut aborts: Vec<Rc<SegDescriptor>> =
                        self.last_recv.borrow().iter().cloned().collect();
                    if let Some(od) = &*self.out_pending.borrow() {
                        aborts.push(Rc::clone(od));
                    }
                    *self.prev.borrow_mut() = Some((d, aborts));
                }
            }
        }
        Ok(())
    }
}

/// One measured request from a closed-loop client.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// End-to-end request latency.
    pub latency: Nanos,
    /// SET or GET.
    pub op: Op,
}

/// Drives `requests` alternating-or-fixed ops from one client; returns
/// per-request samples. The caller spawns one task per closed-loop client.
#[allow(clippy::too_many_arguments)]
pub async fn run_client(
    os: Rc<Os>,
    net: Rc<NetStack>,
    core: Rc<Core>,
    sock: Rc<Socket>,
    op: Op,
    key_id: u32,
    value_len: usize,
    requests: u64,
    rng: Rc<SimRng>,
) -> Vec<Sample> {
    let proc = os.spawn_process();
    let cap = 9 + 16 + value_len + 64;
    let tx = proc.space.mmap(cap, Prot::RW, true).expect("tx");
    let rx = proc.space.mmap(cap, Prot::RW, true).expect("rx");
    let key = format!("key:{key_id:08}");
    let mut samples = Vec::with_capacity(requests as usize);
    // Always seed the key with one SET first.
    let mut value = vec![0u8; value_len];
    rng.fill_bytes(&mut value);
    for i in 0..requests + 1 {
        let this_op = if i == 0 { Op::Set } else { op };
        let req_len = encode_request(&proc, tx, this_op, key.as_bytes(), &value).expect("enc");
        let t0 = os.h.now();
        net.send(&core, &proc, &sock, tx, req_len, IoMode::Sync)
            .await
            .expect("send");
        let (n, _) = net
            .recv(&core, &proc, &sock, rx, cap, IoMode::Sync)
            .await
            .expect("recv");
        let lat = os.h.now() - t0;
        if this_op == Op::Get {
            // Verify the payload end to end.
            let mut got = vec![0u8; n - 4];
            proc.space.read_bytes(rx.add(4), &mut got).expect("read");
            assert_eq!(got, value, "GET returned corrupted data");
        }
        if i > 0 {
            samples.push(Sample {
                latency: lat,
                op: this_op,
            });
        }
    }
    samples
}

/// Encodes a request into `tx`; returns its length.
pub fn encode_request(
    proc: &Rc<Process>,
    tx: VirtAddr,
    op: Op,
    key: &[u8],
    value: &[u8],
) -> Result<usize, MemError> {
    let space = &proc.space;
    space.write_bytes(tx, &[if op == Op::Set { 0u8 } else { 1u8 }])?;
    space.write_bytes(tx.add(1), &(key.len() as u32).to_le_bytes())?;
    let vlen = if op == Op::Set { value.len() } else { 0 };
    space.write_bytes(tx.add(5), &(vlen as u32).to_le_bytes())?;
    space.write_bytes(tx.add(9), key)?;
    if op == Op::Set {
        space.write_bytes(tx.add(9 + key.len()), value)?;
    }
    Ok(9 + key.len() + vlen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_sim::{Machine, Sim};

    fn run(mode: RedisMode, with_copier: bool, value_len: usize, reqs: u64) -> (Nanos, u64) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 3);
        let os = Os::boot(&h, machine, 16 * 1024);
        if with_copier {
            os.install_copier(vec![os.machine.core(2)], Default::default());
        }
        let net = NetStack::new(&os);
        let server = RedisServer::new(&os, &net, mode, 512 * 1024).unwrap();
        let (c_sock, s_sock) = net.socket_pair();
        let score = os.machine.core(1);
        let server2 = Rc::clone(&server);
        sim.spawn("server", async move {
            server2.serve(&score, s_sock, reqs * 2 + 2).await;
        });
        let ccore = os.machine.core(0);
        let os2 = Rc::clone(&os);
        let net2 = Rc::clone(&net);
        let rng = Rc::new(SimRng::new(7));
        let out = Rc::new(RefCell::new(Vec::new()));
        let out2 = Rc::clone(&out);
        sim.spawn("client", async move {
            // A SET phase then a GET phase, both verified.
            let s = run_client(
                Rc::clone(&os2),
                Rc::clone(&net2),
                Rc::clone(&ccore),
                Rc::clone(&c_sock),
                Op::Set,
                1,
                value_len,
                reqs,
                Rc::clone(&rng),
            )
            .await;
            let g = run_client(
                os2.clone(),
                net2,
                ccore,
                c_sock,
                Op::Get,
                1,
                value_len,
                reqs,
                rng,
            )
            .await;
            out2.borrow_mut().extend(s);
            out2.borrow_mut().extend(g);
            if let Some(svc) = os2.copier.borrow().as_ref() {
                svc.stop();
            }
        });
        sim.run();
        let samples = out.borrow();
        let total: u64 = samples.iter().map(|s| s.latency.as_nanos()).sum();
        (Nanos(total / samples.len() as u64), samples.len() as u64)
    }

    #[test]
    fn baseline_serves_correct_data() {
        let (avg, n) = run(RedisMode::Baseline, false, 4096, 4);
        assert_eq!(n, 8);
        assert!(avg > Nanos::ZERO);
    }

    #[test]
    fn copier_mode_correct_and_faster_for_16k() {
        let (base, _) = run(RedisMode::Baseline, false, 16 * 1024, 6);
        let (cop, _) = run(RedisMode::Copier, true, 16 * 1024, 6);
        assert!(cop < base, "copier {cop} should beat baseline {base}");
    }

    #[test]
    fn zio_mode_correct() {
        let zio = Zio::new(Rc::new(copier_hw::CostModel::default()));
        let (avg, n) = run(RedisMode::Zio(zio), false, 64 * 1024, 3);
        assert_eq!(n, 6);
        assert!(avg > Nanos::ZERO);
    }

    #[test]
    fn ub_mode_correct() {
        let (avg, _) = run(RedisMode::Ub, false, 2048, 3);
        assert!(avg > Nanos::ZERO);
    }

    #[test]
    fn zerocopy_send_mode_correct() {
        let (avg, _) = run(RedisMode::ZeroCopySend, false, 64 * 1024, 3);
        assert!(avg > Nanos::ZERO);
    }
}
