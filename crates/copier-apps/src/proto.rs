//! Mini-Protobuf: length-delimited deserialization over recv (Fig. 13-a).
//!
//! Messages are a sequence of `[tag u8][varint len][bytes]` fields. The
//! application receives a serialized message and deserializes it into an
//! owned structure; with Copier the recv copy streams in parallel with
//! deserialization, `csync`ing one field ahead of the cursor (the
//! copy-use pipeline of §4.1 — the paper instruments exactly this window
//! in Fig. 3).

use std::rc::Rc;

use copier_mem::{MemError, VirtAddr};
use copier_os::{IoMode, NetStack, Os, Process, Socket};
use copier_sim::{Core, Nanos};

/// Per-field decode overhead (tag dispatch, varint decode, vec setup).
pub const FIELD_COST: Nanos = Nanos(100);
/// Per-byte deserialize cost (≈1 GB/s — Protobuf-class parsing with
/// bounds checks and allocation).
pub const BYTE_COST_X100: u64 = 100; // 1 ns/byte

/// A decoded message: the field payloads.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Message {
    /// `(tag, payload)` pairs in wire order.
    pub fields: Vec<(u8, Vec<u8>)>,
}

/// Encodes `fields` into `buf` inside `proc`; returns the wire length.
pub fn encode(
    proc: &Rc<Process>,
    buf: VirtAddr,
    fields: &[(u8, Vec<u8>)],
) -> Result<usize, MemError> {
    let mut off = 0usize;
    for (tag, payload) in fields {
        proc.space.write_bytes(buf.add(off), &[*tag])?;
        off += 1;
        let mut l = payload.len();
        loop {
            let mut b = (l & 0x7f) as u8;
            l >>= 7;
            if l > 0 {
                b |= 0x80;
            }
            proc.space.write_bytes(buf.add(off), &[b])?;
            off += 1;
            if l == 0 {
                break;
            }
        }
        proc.space.write_bytes(buf.add(off), payload)?;
        off += payload.len();
    }
    Ok(off)
}

/// Receives one serialized message on `sock` and deserializes it.
///
/// Returns the decoded message and the end-to-end latency (recv entry to
/// last field decoded).
#[allow(clippy::too_many_arguments)]
pub async fn recv_and_decode(
    os: &Rc<Os>,
    net: &Rc<NetStack>,
    core: &Rc<Core>,
    proc: &Rc<Process>,
    sock: &Rc<Socket>,
    buf: VirtAddr,
    cap: usize,
    use_copier: bool,
) -> Result<(Message, Nanos), MemError> {
    let t0 = os.h.now();
    let mode = if use_copier {
        IoMode::Copier
    } else {
        IoMode::Sync
    };
    let (n, _d) = net.recv(core, proc, sock, buf, cap, mode).await?;
    let lib = use_copier.then(|| proc.lib());
    let mut msg = Message::default();
    let mut off = 0usize;
    while off < n {
        // Sync the header bytes of the next field (tag + varint ≤ 6 B),
        // then the payload range, before touching them.
        if let Some(lib) = &lib {
            lib.csync(core, buf.add(off), 6.min(n - off))
                .await
                .expect("field hdr");
        }
        let mut hdr = [0u8; 6];
        let take = 6.min(n - off);
        proc.space.read_bytes(buf.add(off), &mut hdr[..take])?;
        let tag = hdr[0];
        let mut len = 0usize;
        let mut shift = 0;
        let mut used = 1;
        loop {
            let b = hdr[used];
            used += 1;
            len |= ((b & 0x7f) as usize) << shift;
            shift += 7;
            if b & 0x80 == 0 {
                break;
            }
        }
        core.advance(FIELD_COST).await;
        let payload_off = off + used;
        if let Some(lib) = &lib {
            lib.csync(core, buf.add(payload_off), len)
                .await
                .expect("field payload");
        }
        let mut payload = vec![0u8; len];
        proc.space.read_bytes(buf.add(payload_off), &mut payload)?;
        core.advance(Nanos(len as u64 * BYTE_COST_X100 / 100)).await;
        msg.fields.push((tag, payload));
        off = payload_off + len;
    }
    Ok((msg, os.h.now() - t0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_mem::Prot;
    use copier_sim::{Machine, Sim, SimRng};
    use std::cell::RefCell;

    fn run(use_copier: bool, field_len: usize, nfields: usize) -> (Nanos, bool) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 3);
        let os = Os::boot(&h, machine, 8192);
        if use_copier {
            os.install_copier(vec![os.machine.core(2)], Default::default());
        }
        let net = NetStack::new(&os);
        let (tx_sock, rx_sock) = net.socket_pair();
        let rng = SimRng::new(11);
        let fields: Vec<(u8, Vec<u8>)> = (0..nfields)
            .map(|i| {
                let mut p = vec![0u8; field_len];
                rng.fill_bytes(&mut p);
                (i as u8 + 1, p)
            })
            .collect();

        let sender = os.spawn_process();
        let cap = (field_len + 8) * nfields + 64;
        let net2 = Rc::clone(&net);
        let os2 = Rc::clone(&os);
        let score = os.machine.core(0);
        let fields2: Vec<(u8, Vec<u8>)> = fields.iter().cloned().collect();
        sim.spawn("sender", async move {
            let buf = sender.space.mmap(cap, Prot::RW, true).unwrap();
            let len = encode(&sender, buf, &fields2).unwrap();
            net2.send(&score, &sender, &tx_sock, buf, len, IoMode::Sync)
                .await
                .unwrap();
            let _ = os2;
        });

        let receiver = os.spawn_process();
        let rcore = os.machine.core(1);
        let os3 = Rc::clone(&os);
        let out = Rc::new(RefCell::new((Nanos::ZERO, false)));
        let out2 = Rc::clone(&out);
        sim.spawn("receiver", async move {
            let buf = receiver.space.mmap(cap, Prot::RW, true).unwrap();
            let (msg, lat) = recv_and_decode(
                &os3, &net, &rcore, &receiver, &rx_sock, buf, cap, use_copier,
            )
            .await
            .unwrap();
            let ok = msg.fields == fields;
            *out2.borrow_mut() = (lat, ok);
            if let Some(svc) = os3.copier.borrow().as_ref() {
                svc.stop();
            }
        });
        sim.run();
        let o = out.borrow();
        (o.0, o.1)
    }

    #[test]
    fn baseline_decodes_correctly() {
        let (lat, ok) = run(false, 2048, 8);
        assert!(ok);
        assert!(lat > Nanos::ZERO);
    }

    #[test]
    fn copier_pipeline_decodes_correctly_and_faster() {
        let (base, ok1) = run(false, 2048, 8); // 16 KB message
        let (cop, ok2) = run(true, 2048, 8);
        assert!(ok1 && ok2);
        assert!(cop < base, "copier {cop} vs baseline {base}");
    }
}
