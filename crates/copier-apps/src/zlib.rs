//! Mini-zlib: LZ77 `deflate_fast`-style compression with a sliding window
//! (§6.2.3).
//!
//! The compressor keeps a 32 KB history window; refilling the window from
//! the input is a copy, and with Copier that copy runs in parallel with
//! pattern matching over already-resident bytes, csync'ing block by block
//! (the paper's zlib case: "copying data to the sliding window executed
//! in parallel with pattern matching").
//!
//! The format is a real, self-contained LZ77 stream — a decompressor
//! verifies round trips through the async window fill.

use std::rc::Rc;

use copier_client::sync_memcpy;
use copier_mem::{MemError, VirtAddr};
use copier_os::{Os, Process};
use copier_sim::{Core, Nanos};

/// Window (and block) size for the fast path.
pub const BLOCK: usize = 16 * 1024;
/// Modeled match-search cost ≈ 0.9 ns/byte (deflate_fast class).
pub const MATCH_NS_PER_KB: u64 = 920;
/// csync stride within a block.
pub const SYNC_CHUNK: usize = 2048;

/// Compresses `data` (host-side reference codec, no simulation).
pub fn lz77_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut head = vec![u32::MAX; 1 << 15];
    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + 4 <= data.len() {
            let h = (u32::from_le_bytes([data[i], data[i + 1], data[i + 2], 0])
                .wrapping_mul(2654435761)
                >> 17) as usize
                & 0x7fff;
            let cand = head[h];
            head[h] = i as u32;
            if cand != u32::MAX {
                let c = cand as usize;
                let dist = i - c;
                if dist > 0 && dist <= 32 * 1024 {
                    let mut l = 0;
                    while i + l < data.len() && data[c + l] == data[i + l] && l < 258 {
                        l += 1;
                    }
                    if l >= 4 {
                        best_len = l;
                        best_dist = dist;
                    }
                }
            }
        }
        if best_len >= 4 {
            out.push(1u8);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            out.extend_from_slice(&(best_len as u16).to_le_bytes());
            i += best_len;
        } else {
            out.push(0u8);
            out.push(data[i]);
            i += 1;
        }
    }
    out
}

/// Decompresses an [`lz77_compress`] stream.
pub fn lz77_decompress(mut s: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    while !s.is_empty() {
        match s[0] {
            0 => {
                out.push(s[1]);
                s = &s[2..];
            }
            _ => {
                let dist = u16::from_le_bytes([s[1], s[2]]) as usize;
                let len = u16::from_le_bytes([s[3], s[4]]) as usize;
                let start = out.len() - dist;
                for k in 0..len {
                    out.push(out[start + k]);
                }
                s = &s[5..];
            }
        }
    }
    out
}

/// Compresses `len` bytes at `input` inside the simulation, block by
/// block: each block is copied into the window buffer (sync or async) and
/// matched. Returns `(compressed, deflate_latency)`.
pub async fn deflate(
    os: &Rc<Os>,
    core: &Rc<Core>,
    proc: &Rc<Process>,
    input: VirtAddr,
    len: usize,
    window: VirtAddr,
    use_copier: bool,
) -> Result<(Vec<u8>, Nanos), MemError> {
    let t0 = os.h.now();
    let lib = use_copier.then(|| proc.lib());
    let mut raw = vec![0u8; len];
    // Double-buffered window halves: block i+1 streams into one half
    // while block i is matched out of the other — the window-slide copy
    // disappears behind pattern matching.
    let wslot = |i: usize| window.add((i % 2) * BLOCK);
    let nblk = len.div_ceil(BLOCK);
    // Prefill block 0.
    let blk0 = BLOCK.min(len);
    if let Some(lib) = &lib {
        if lib.amemcpy(core, wslot(0), input, blk0).await.is_err() {
            // Overloaded: prefill synchronously (§4.6 fallback).
            sync_memcpy(core, &os.cost, &proc.space, wslot(0), input, blk0).await?;
        }
    } else {
        sync_memcpy(core, &os.cost, &proc.space, wslot(0), input, blk0).await?;
    }
    for b in 0..nblk {
        let off = b * BLOCK;
        let blk = BLOCK.min(len - off);
        // Kick off the next block's refill before matching this one.
        if b + 1 < nblk {
            let noff = (b + 1) * BLOCK;
            let nblk_len = BLOCK.min(len - noff);
            if let Some(lib) = &lib {
                if lib
                    .amemcpy(core, wslot(b + 1), input.add(noff), nblk_len)
                    .await
                    .is_err()
                {
                    // Overloaded: refill synchronously (§4.6 fallback).
                    sync_memcpy(
                        core,
                        &os.cost,
                        &proc.space,
                        wslot(b + 1),
                        input.add(noff),
                        nblk_len,
                    )
                    .await?;
                }
            } else {
                sync_memcpy(
                    core,
                    &os.cost,
                    &proc.space,
                    wslot(b + 1),
                    input.add(noff),
                    nblk_len,
                )
                .await?;
            }
        }
        // Match over the current window half, chunk by chunk.
        let w = wslot(b);
        let mut done = 0usize;
        while done < blk {
            let take = SYNC_CHUNK.min(blk - done);
            if let Some(lib) = &lib {
                lib.csync(core, w.add(done), take).await.expect("win");
            }
            proc.space
                .read_bytes(w.add(done), &mut raw[off + done..off + done + take])?;
            core.advance(Nanos(take as u64 * MATCH_NS_PER_KB / 1024))
                .await;
            done += take;
        }
    }
    // The host-side codec produces the actual bit stream from the bytes
    // that really flowed through the simulated window.
    Ok((lz77_compress(&raw), os.h.now() - t0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_mem::Prot;
    use copier_sim::{Machine, Sim, SimRng};
    use std::cell::RefCell;

    #[test]
    fn codec_round_trips() {
        let rng = SimRng::new(9);
        // Compressible data: repeated phrases with noise.
        let mut data = Vec::new();
        for i in 0..2000 {
            data.extend_from_slice(b"the quick brown fox ");
            data.push((rng.next_u64() % 251) as u8);
            data.push((i % 256) as u8);
        }
        let c = lz77_compress(&data);
        assert!(c.len() < data.len(), "should compress repeated text");
        assert_eq!(lz77_decompress(&c), data);
    }

    fn run(use_copier: bool, len: usize) -> (Nanos, bool) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let os = Os::boot(&h, machine, 8192);
        if use_copier {
            os.install_copier(vec![os.machine.core(1)], Default::default());
        }
        let proc = os.spawn_process();
        let core = os.machine.core(0);
        let os2 = Rc::clone(&os);
        let out = Rc::new(RefCell::new((Nanos::ZERO, false)));
        let out2 = Rc::clone(&out);
        sim.spawn("deflate", async move {
            let input = proc.space.mmap(len, Prot::RW, true).unwrap();
            let window = proc.space.mmap(2 * BLOCK, Prot::RW, true).unwrap();
            // Compressible pattern.
            let data: Vec<u8> = (0..len).map(|i| ((i / 64) % 200) as u8).collect();
            proc.space.write_bytes(input, &data).unwrap();
            let (compressed, lat) = deflate(&os2, &core, &proc, input, len, window, use_copier)
                .await
                .unwrap();
            let ok = lz77_decompress(&compressed) == data;
            *out2.borrow_mut() = (lat, ok);
            if let Some(svc) = os2.copier.borrow().as_ref() {
                svc.stop();
            }
        });
        sim.run();
        let o = out.borrow();
        (o.0, o.1)
    }

    #[test]
    fn baseline_deflate_round_trips() {
        let (lat, ok) = run(false, 64 * 1024);
        assert!(ok, "round trip failed");
        assert!(lat > Nanos::ZERO);
    }

    #[test]
    fn copier_deflate_correct_and_faster() {
        let (base, ok1) = run(false, 128 * 1024);
        let (cop, ok2) = run(true, 128 * 1024);
        assert!(ok1 && ok2);
        assert!(cop < base, "copier {cop} vs baseline {base}");
    }
}
