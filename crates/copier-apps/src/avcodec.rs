//! Avcodec-style video decode pipeline (HarmonyOS case, Fig. 13-c).
//!
//! Per frame: the decoder produces a frame in its inner buffer (modeled
//! decode compute + real bytes), the framework copies it to the frame
//! buffer handed to rendering, and the renderer samples the frame. With
//! Copier the frame-buffer copy overlaps the decoder's post-processing
//! and the renderer `csync`s before sampling. The service runs in
//! **scenario-driven** polling (§4.5.1): activated for the playback
//! scenario, asleep otherwise, so the energy cost stays negligible.

use std::rc::Rc;

use copier_client::sync_memcpy;
use copier_mem::{MemError, Prot};
use copier_os::{Os, Process};
use copier_sim::{Core, Nanos};

/// Target display interval (30 fps).
pub const FRAME_INTERVAL: Nanos = Nanos::from_millis(33);
/// Decode compute per KB of frame (entropy decode + IDCT-ish).
pub const DECODE_NS_PER_KB: u64 = 2600;
/// Post-decode bookkeeping that overlaps the copy (reorder queue, pts).
pub const POST_COST: Nanos = Nanos::from_micros(120);
/// Renderer sampling cost per frame.
pub const RENDER_COST: Nanos = Nanos::from_micros(40);

/// Result of a playback run.
#[derive(Debug, Clone, Copy)]
pub struct PlaybackReport {
    /// Mean per-frame decode-to-render-ready latency.
    pub avg_latency: Nanos,
    /// Frames that missed the display interval.
    pub dropped: u64,
    /// Frames played.
    pub frames: u64,
    /// Checksum over rendered pixels (correctness witness).
    pub checksum: u64,
}

/// Plays `frames` frames of `frame_len` bytes; returns the report.
#[allow(clippy::too_many_arguments)]
pub async fn play(
    os: Rc<Os>,
    core: Rc<Core>,
    proc: Rc<Process>,
    frame_len: usize,
    frames: u64,
    use_copier: bool,
    // Extra decode jitter in permille, to stress frame-drop behavior.
    jitter_permille: u64,
) -> Result<PlaybackReport, MemError> {
    let inner = proc.space.mmap(frame_len, Prot::RW, true)?;
    let fbuf = proc.space.mmap(frame_len, Prot::RW, true)?;
    let lib = use_copier.then(|| proc.lib());
    if use_copier {
        os.copier().set_scenario_active(true);
    }
    let mut total = Nanos::ZERO;
    let mut dropped = 0u64;
    let mut checksum = 0u64;
    let mut row = vec![0u8; frame_len.min(4096)];
    for f in 0..frames {
        let deadline = os.h.now() + FRAME_INTERVAL;
        let t0 = os.h.now();
        // Decode: modeled compute + real frame bytes in the inner buffer.
        let jitter = 1000 + (f * 37 % 200) * jitter_permille / 100;
        core.advance(
            Nanos(frame_len as u64 * DECODE_NS_PER_KB / 1024).mul_f64(jitter as f64 / 1000.0),
        )
        .await;
        let pixel = (f as u8).wrapping_mul(31).wrapping_add(7);
        for off in (0..frame_len).step_by(row.len()) {
            let take = row.len().min(frame_len - off);
            row[..take].fill(pixel);
            proc.space.write_bytes(inner.add(off), &row[..take])?;
        }
        // Frame-buffer copy (the optimized copy).
        if let Some(lib) = &lib {
            if lib.amemcpy(&core, fbuf, inner, frame_len).await.is_err() {
                // Overloaded: decode falls back to the synchronous
                // frame copy (§4.6); the later csync finds nothing pending.
                sync_memcpy(&core, &os.cost, &proc.space, fbuf, inner, frame_len).await?;
            }
        } else {
            sync_memcpy(&core, &os.cost, &proc.space, fbuf, inner, frame_len).await?;
        }
        // Post-decode logic overlaps the copy.
        core.advance(POST_COST).await;
        // Render: sync, then sample the frame.
        if let Some(lib) = &lib {
            lib.csync(&core, fbuf, frame_len).await.expect("frame");
        }
        core.advance(RENDER_COST).await;
        let mut sample = [0u8; 16];
        proc.space
            .read_bytes(fbuf.add(frame_len / 2), &mut sample)?;
        assert!(sample.iter().all(|&b| b == pixel), "torn frame");
        checksum = checksum
            .wrapping_mul(1099511628211)
            .wrapping_add(pixel as u64);
        let done = os.h.now();
        total += done - t0;
        if done > deadline {
            dropped += 1;
        } else {
            os.h.sleep(deadline - done).await;
        }
    }
    if use_copier {
        // Scenario over: the Copier thread goes back to sleep.
        os.copier().set_scenario_active(false);
    }
    Ok(PlaybackReport {
        avg_latency: Nanos(total.as_nanos() / frames.max(1)),
        dropped,
        frames,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_core::{CopierConfig, PollMode};
    use copier_sim::{Machine, PowerModel, Sim};

    fn run(use_copier: bool, frames: u64, jitter: u64) -> (PlaybackReport, f64) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let os = Os::boot(&h, machine, 8192);
        if use_copier {
            os.install_copier(
                vec![os.machine.core(1)],
                CopierConfig {
                    polling: PollMode::ScenarioDriven,
                    ..Default::default()
                },
            );
            os.copier().set_scenario_active(false);
        }
        let core = os.machine.core(0);
        let proc = os.spawn_process();
        let os2 = Rc::clone(&os);
        let out = Rc::new(std::cell::RefCell::new(None));
        let out2 = Rc::clone(&out);
        sim.spawn("playback", async move {
            let r = play(
                Rc::clone(&os2),
                core,
                proc,
                256 * 1024,
                frames,
                use_copier,
                jitter,
            )
            .await
            .unwrap();
            *out2.borrow_mut() = Some(r);
            if let Some(svc) = os2.copier.borrow().as_ref() {
                svc.stop();
            }
        });
        let end = sim.run();
        let energy = os.machine.energy_joules(PowerModel::default(), end);
        let report = out.borrow().unwrap();
        (report, energy)
    }

    #[test]
    fn baseline_playback_renders_frames() {
        let (r, _) = run(false, 10, 0);
        assert_eq!(r.frames, 10);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn copier_reduces_frame_latency_with_tiny_energy_cost() {
        let (base, e_base) = run(false, 20, 0);
        let (cop, e_cop) = run(true, 20, 0);
        assert_eq!(base.checksum, cop.checksum, "same pixels");
        assert!(
            cop.avg_latency < base.avg_latency,
            "copier {} vs baseline {}",
            cop.avg_latency,
            base.avg_latency
        );
        // Scenario-driven polling keeps the energy increase small
        // (paper: +0.07–0.29%).
        let overhead = (e_cop - e_base) / e_base;
        assert!(overhead < 0.05, "energy overhead {overhead:.4}");
    }
}
