//! # copier-apps — application workloads from the evaluation
//!
//! Faithful miniatures of the paper's benchmark applications (§6): each
//! keeps the same copy sites and the same compute inside the Copy-Use
//! window, switchable between the baseline, Copier, and competing systems.
//!
//! * [`redis`] — RESP-style KV server with the five optimized copies;
//! * [`proxy`] — TinyProxy-style forwarder with lazy copy + absorption;
//! * [`proto`] — length-delimited deserialization (Protobuf stand-in);
//! * [`tls`] — recv + real-ChaCha20 decrypt (OpenSSL stand-in);
//! * [`zlib`] — LZ77 `deflate_fast` with a sliding window;
//! * [`png`] — file read + scanline unfiltering (libpng stand-in);
//! * [`avcodec`] — video decode pipeline with scenario-driven polling.

pub mod avcodec;
pub mod png;
pub mod proto;
pub mod proxy;
pub mod redis;
pub mod tls;
pub mod zlib;
