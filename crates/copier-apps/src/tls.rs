//! Mini-TLS: receive + decrypt with a real ChaCha20 keystream (Fig. 13-b).
//!
//! Stands in for OpenSSL's `SSL_read()` with AES-GCM (documented
//! substitution in DESIGN.md §1): the receive path copies the record to
//! userspace and then decrypts it — the decryption compute *is* the
//! Copy-Use window, so with Copier the record streams into the buffer
//! while earlier blocks are already being decrypted, csync'ed one 1 KB
//! chunk ahead. TLS records cap at 16 KB, so larger application reads
//! decompose into multiple records (why the paper's speedup flattens
//! beyond 16 KB).
//!
//! The cipher is a real RFC 8439 ChaCha20 — data integrity through the
//! whole async pipeline is checked by decrypting to known plaintext.

use std::rc::Rc;

use copier_mem::{MemError, VirtAddr};
use copier_os::{IoMode, NetStack, Os, Process, Socket};
use copier_sim::{Core, Nanos};

/// Maximum TLS record payload.
pub const RECORD_MAX: usize = 16 * 1024;
/// Modeled decrypt throughput ≈ 2 GB/s (AES-GCM with AES-NI class).
pub const DECRYPT_NS_PER_KB: u64 = 500;
/// Per-record overhead (MAC check, record parsing, state updates).
pub const RECORD_COST: Nanos = Nanos(800);
/// csync stride while decrypting.
pub const SYNC_CHUNK: usize = 1024;

fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12], out: &mut [u8; 64]) {
    let mut s = [0u32; 16];
    s[0] = 0x6170_7865;
    s[1] = 0x3320_646e;
    s[2] = 0x7962_2d32;
    s[3] = 0x6b20_6574;
    for i in 0..8 {
        s[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    s[12] = counter;
    for i in 0..3 {
        s[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
    }
    let init = s;
    for _ in 0..10 {
        quarter(&mut s, 0, 4, 8, 12);
        quarter(&mut s, 1, 5, 9, 13);
        quarter(&mut s, 2, 6, 10, 14);
        quarter(&mut s, 3, 7, 11, 15);
        quarter(&mut s, 0, 5, 10, 15);
        quarter(&mut s, 1, 6, 11, 12);
        quarter(&mut s, 2, 7, 8, 13);
        quarter(&mut s, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[4 * i..4 * i + 4].copy_from_slice(&s[i].wrapping_add(init[i]).to_le_bytes());
    }
}

/// XORs the ChaCha20 keystream over `data` in place (encrypt = decrypt).
pub fn chacha20_xor(key: &[u8; 32], nonce: &[u8; 12], start_counter: u32, data: &mut [u8]) {
    let mut block = [0u8; 64];
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        chacha20_block(key, start_counter + i as u32, nonce, &mut block);
        for (b, k) in chunk.iter_mut().zip(block.iter()) {
            *b ^= k;
        }
    }
}

/// A TLS-like session endpoint.
pub struct TlsSession {
    /// Symmetric key.
    pub key: [u8; 32],
    /// Session nonce.
    pub nonce: [u8; 12],
}

impl TlsSession {
    /// Receives one encrypted record into `buf`, decrypts it in place, and
    /// returns `(plaintext_len, ssl_read_latency)`.
    #[allow(clippy::too_many_arguments)]
    pub async fn ssl_read(
        &self,
        os: &Rc<Os>,
        net: &Rc<NetStack>,
        core: &Rc<Core>,
        proc: &Rc<Process>,
        sock: &Rc<Socket>,
        buf: VirtAddr,
        cap: usize,
        use_copier: bool,
    ) -> Result<(usize, Nanos), MemError> {
        let t0 = os.h.now();
        let mode = if use_copier {
            IoMode::Copier
        } else {
            IoMode::Sync
        };
        let (n, _) = net.recv(core, proc, sock, buf, cap, mode).await?;
        assert!(n <= RECORD_MAX, "record too large");
        core.advance(RECORD_COST).await;
        let lib = use_copier.then(|| proc.lib());
        let mut off = 0usize;
        let mut chunk = vec![0u8; SYNC_CHUNK];
        while off < n {
            let take = SYNC_CHUNK.min(n - off);
            if let Some(lib) = &lib {
                // Decrypt-ahead pipeline: only the chunk about to be
                // processed needs to be resident.
                lib.csync(core, buf.add(off), take).await.expect("record");
            }
            proc.space.read_bytes(buf.add(off), &mut chunk[..take])?;
            // Real decryption of real bytes (ChaCha20 keystream XOR),
            // charged at the modeled AES-GCM rate. The counter is the
            // 64-byte block index at this offset.
            chacha20_xor(
                &self.key,
                &self.nonce,
                (off / 64) as u32,
                &mut chunk[..take],
            );
            core.advance(Nanos(take as u64 * DECRYPT_NS_PER_KB / 1024))
                .await;
            proc.space.write_bytes(buf.add(off), &chunk[..take])?;
            off += take;
        }
        Ok((n, os.h.now() - t0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_mem::Prot;
    use copier_sim::{Machine, Sim, SimRng};
    use std::cell::RefCell;

    #[test]
    fn chacha20_rfc8439_test_vector() {
        // RFC 8439 §2.4.2 keystream check via known ciphertext prefix.
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(
            &data[..16],
            &[
                0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
                0x69, 0x81
            ]
        );
        // And it round-trips.
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(&data[..6], b"Ladies");
    }

    fn run(use_copier: bool, len: usize) -> (Nanos, bool) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 3);
        let os = Os::boot(&h, machine, 8192);
        if use_copier {
            os.install_copier(vec![os.machine.core(2)], Default::default());
        }
        let net = NetStack::new(&os);
        let (tx_sock, rx_sock) = net.socket_pair();
        let session = Rc::new(TlsSession {
            key: [7u8; 32],
            nonce: [3u8; 12],
        });
        let rng = SimRng::new(5);
        let mut plain = vec![0u8; len];
        rng.fill_bytes(&mut plain);

        let sender = os.spawn_process();
        let score = os.machine.core(0);
        let net2 = Rc::clone(&net);
        let session2 = Rc::clone(&session);
        let mut cipher = plain.clone();
        sim.spawn("sender", async move {
            chacha20_xor(&session2.key, &session2.nonce, 0, &mut cipher);
            let buf = sender.space.mmap(len.max(4096), Prot::RW, true).unwrap();
            sender.space.write_bytes(buf, &cipher).unwrap();
            net2.send(&score, &sender, &tx_sock, buf, len, IoMode::Sync)
                .await
                .unwrap();
        });

        let receiver = os.spawn_process();
        let rcore = os.machine.core(1);
        let os2 = Rc::clone(&os);
        let out = Rc::new(RefCell::new((Nanos::ZERO, false)));
        let out2 = Rc::clone(&out);
        sim.spawn("receiver", async move {
            let buf = receiver.space.mmap(len.max(4096), Prot::RW, true).unwrap();
            let (n, lat) = session
                .ssl_read(
                    &os2, &net, &rcore, &receiver, &rx_sock, buf, len, use_copier,
                )
                .await
                .unwrap();
            let mut got = vec![0u8; n];
            receiver.space.read_bytes(buf, &mut got).unwrap();
            *out2.borrow_mut() = (lat, got == plain);
            if let Some(svc) = os2.copier.borrow().as_ref() {
                svc.stop();
            }
        });
        sim.run();
        let o = out.borrow();
        (o.0, o.1)
    }

    #[test]
    fn baseline_decrypts_correctly() {
        let (lat, ok) = run(false, 16 * 1024);
        assert!(ok, "plaintext mismatch");
        assert!(lat > Nanos::ZERO);
    }

    #[test]
    fn copier_pipeline_decrypts_correctly_and_faster() {
        let (base, ok1) = run(false, 16 * 1024);
        let (cop, ok2) = run(true, 16 * 1024);
        assert!(ok1 && ok2, "plaintext mismatch");
        assert!(cop < base, "copier {cop} vs baseline {base}");
    }
}
