//! Mini-PNG: scanline-filtered image decode after a file read (Fig. 2/3's
//! libpng workload).
//!
//! The "file" lives in kernel page-cache buffers; `read()` copies it to
//! userspace (the copy Copier optimizes) and the decoder then unfilters
//! scanlines (real Sub/Up/Paeth arithmetic on real bytes) — sequential
//! access with a wide Copy-Use window, csync'ed one scanline ahead.

use std::rc::Rc;

use copier_client::sync_copy;
use copier_hw::CpuCopyKind;
use copier_mem::{FrameId, MemError, Prot, VirtAddr, PAGE_SIZE};
use copier_os::{Os, Process};
use copier_sim::{Core, Nanos};

/// Unfilter cost ≈ 1.1 ns per byte (per-pixel predictor arithmetic).
pub const UNFILTER_NS_PER_KB: u64 = 1100;
/// File-read syscall bookkeeping beyond the trap (page-cache lookup).
pub const READ_OVERHEAD: Nanos = Nanos(400);

/// Applies PNG filters per scanline (host-side reference encoder).
pub fn filter_image(rows: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    let zero = vec![0u8; rows.first().map_or(0, Vec::len)];
    for (r, row) in rows.iter().enumerate() {
        let prev = if r == 0 { &zero } else { &rows[r - 1] };
        let ftype = (r % 3) as u8; // cycle Sub/Up/Paeth-ish
        out.push(ftype);
        for (i, &b) in row.iter().enumerate() {
            let left = if i == 0 { 0 } else { row[i - 1] };
            let up = prev[i];
            let pred = match ftype {
                0 => left,
                1 => up,
                _ => ((left as u16 + up as u16) / 2) as u8,
            };
            out.push(b.wrapping_sub(pred));
        }
    }
    out
}

/// A decoded image: unfiltered rows.
pub fn unfilter_rows(filtered: &[u8], width: usize) -> Vec<Vec<u8>> {
    let stride = width + 1;
    let nrows = filtered.len() / stride;
    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(nrows);
    for r in 0..nrows {
        let ftype = filtered[r * stride];
        let _src = &filtered[r * stride + 1..(r + 1) * stride];
        let mut row = vec![0u8; width];
        for i in 0..width {
            let left = if i == 0 { 0 } else { row[i - 1] };
            let up = if r == 0 { 0 } else { rows[r - 1][i] };
            let pred = match ftype {
                0 => left,
                1 => up,
                _ => ((left as u16 + up as u16) / 2) as u8,
            };
            row[i] = filtered[r * stride + 1 + i].wrapping_add(pred);
        }
        rows.push(row);
    }
    rows
}

/// A "file" resident in the kernel page cache.
pub struct CachedFile {
    /// Kernel VA of the contents.
    pub kva: VirtAddr,
    /// File length.
    pub len: usize,
}

impl CachedFile {
    /// Stores `data` into fresh page-cache pages.
    pub fn create(os: &Rc<Os>, data: &[u8]) -> Result<CachedFile, MemError> {
        let pages = data.len().div_ceil(PAGE_SIZE).max(1);
        let first = os.pm.alloc_contiguous(pages)?;
        let frames: Vec<FrameId> = (0..pages).map(|i| FrameId(first.0 + i as u32)).collect();
        let kva = os.kspace.map_shared(&frames, Prot::RW)?;
        for &f in &frames {
            os.pm.decref(f);
        }
        os.kspace.write_bytes(kva, data)?;
        Ok(CachedFile {
            kva,
            len: data.len(),
        })
    }

    /// `read()`: copies the file into `[buf, buf+len)` — synchronously or
    /// as a kernel Copy Task.
    pub async fn read(
        &self,
        os: &Rc<Os>,
        core: &Rc<Core>,
        proc: &Rc<Process>,
        buf: VirtAddr,
        use_copier: bool,
    ) -> Result<usize, MemError> {
        os.trap(core).await;
        core.advance(READ_OVERHEAD).await;
        if use_copier {
            let lib = proc.lib();
            let sect = lib.kernel_section(0);
            let submitted = sect
                .submit(
                    core,
                    &proc.space,
                    buf,
                    &os.kspace,
                    self.kva,
                    self.len,
                    None,
                    false,
                )
                .await;
            sect.close(core).await;
            if submitted.is_err() {
                // Overloaded: the page-cache read degrades to a
                // synchronous kernel→user copy (§4.6 fallback).
                sync_copy(
                    core,
                    &os.cost,
                    CpuCopyKind::Erms,
                    &proc.space,
                    buf,
                    &os.kspace,
                    self.kva,
                    self.len,
                )
                .await?;
            }
        } else {
            sync_copy(
                core,
                &os.cost,
                CpuCopyKind::Erms,
                &proc.space,
                buf,
                &os.kspace,
                self.kva,
                self.len,
            )
            .await?;
        }
        Ok(self.len)
    }
}

/// Reads and decodes a filtered image of `width`-byte rows; returns the
/// decoded rows and the decode latency.
pub async fn decode_png(
    os: &Rc<Os>,
    core: &Rc<Core>,
    proc: &Rc<Process>,
    file: &CachedFile,
    buf: VirtAddr,
    width: usize,
    use_copier: bool,
) -> Result<(Vec<Vec<u8>>, Nanos), MemError> {
    let t0 = os.h.now();
    let n = file.read(os, core, proc, buf, use_copier).await?;
    let lib = use_copier.then(|| proc.lib());
    let stride = width + 1;
    let nrows = n / stride;
    let mut filtered = vec![0u8; n];
    for r in 0..nrows {
        let off = r * stride;
        if let Some(lib) = &lib {
            lib.csync(core, buf.add(off), stride).await.expect("row");
        }
        proc.space
            .read_bytes(buf.add(off), &mut filtered[off..off + stride])?;
        core.advance(Nanos(stride as u64 * UNFILTER_NS_PER_KB / 1024))
            .await;
    }
    Ok((unfilter_rows(&filtered, width), os.h.now() - t0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_sim::{Machine, Sim, SimRng};
    use std::cell::RefCell;

    #[test]
    fn filter_unfilter_round_trips() {
        let rng = SimRng::new(21);
        let rows: Vec<Vec<u8>> = (0..20)
            .map(|_| {
                let mut r = vec![0u8; 100];
                rng.fill_bytes(&mut r);
                r
            })
            .collect();
        let f = filter_image(&rows);
        assert_eq!(unfilter_rows(&f, 100), rows);
    }

    fn run(use_copier: bool, width: usize, nrows: usize) -> (Nanos, bool) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let os = Os::boot(&h, machine, 8192);
        if use_copier {
            os.install_copier(vec![os.machine.core(1)], Default::default());
        }
        let proc = os.spawn_process();
        let core = os.machine.core(0);
        let rng = SimRng::new(2);
        let rows: Vec<Vec<u8>> = (0..nrows)
            .map(|_| {
                let mut r = vec![0u8; width];
                rng.fill_bytes(&mut r);
                r
            })
            .collect();
        let filtered = filter_image(&rows);
        let os2 = Rc::clone(&os);
        let out = Rc::new(RefCell::new((Nanos::ZERO, false)));
        let out2 = Rc::clone(&out);
        sim.spawn("decode", async move {
            let file = CachedFile::create(&os2, &filtered).unwrap();
            let buf = proc.space.mmap(file.len, Prot::RW, true).unwrap();
            let (decoded, lat) = decode_png(&os2, &core, &proc, &file, buf, width, use_copier)
                .await
                .unwrap();
            *out2.borrow_mut() = (lat, decoded == rows);
            if let Some(svc) = os2.copier.borrow().as_ref() {
                svc.stop();
            }
        });
        sim.run();
        let o = out.borrow();
        (o.0, o.1)
    }

    #[test]
    fn baseline_decodes_correctly() {
        let (lat, ok) = run(false, 512, 32); // ~16 KB image
        assert!(ok);
        assert!(lat > Nanos::ZERO);
    }

    #[test]
    fn copier_pipeline_decodes_correctly_and_faster() {
        let (base, ok1) = run(false, 512, 32);
        let (cop, ok2) = run(true, 512, 32);
        assert!(ok1 && ok2);
        assert!(cop < base, "copier {cop} vs baseline {base}");
    }
}
