//! TinyProxy-style forwarding proxy (§6.2.2, Fig. 12).
//!
//! The proxy reads a message, inspects only the request line / headers to
//! pick an upstream, rewrites the header, reorganizes the message into an
//! output buffer, and sends it on — three copies of which only the header
//! bytes are ever touched. With Copier the recv copy is marked *lazy*, the
//! reorganize copy is async, and the send's kernel copy absorbs the whole
//! chain into a single kernel→kernel short-circuit; the lazy tasks are
//! `abort`ed once the forward completes (§4.4).

use std::rc::Rc;

use copier_baselines::Zio;
use copier_client::sync_memcpy;
use copier_mem::{MemError, Prot, VirtAddr};
use copier_os::{IoMode, NetStack, Os, Process, Socket};
use copier_sim::{Core, Nanos};

/// Header scan + routing decision cost.
pub const ROUTE_COST: Nanos = Nanos(400);
/// Bytes of header the proxy reads and rewrites.
pub const HEADER_LEN: usize = 64;

/// Proxy data-path variants.
#[derive(Clone)]
pub enum ProxyMode {
    /// Plain syscalls + two synchronous userspace copies.
    Baseline,
    /// Copier with lazy recv, async reorganize, absorption, and abort.
    Copier,
    /// zIO interposing on the userspace reorganize copy.
    Zio(Rc<Zio>),
}

/// A running proxy between one client socket and one upstream socket.
pub struct Proxy {
    os: Rc<Os>,
    net: Rc<NetStack>,
    /// The proxy process.
    pub proc: Rc<Process>,
    mode: ProxyMode,
    ubuf: VirtAddr,
    obuf: VirtAddr,
    cap: usize,
    /// Messages forwarded.
    pub forwarded: std::cell::Cell<u64>,
    /// Per-thread queue fd for multi-threaded runs (§6.3.2).
    fd: usize,
}

impl Proxy {
    /// Creates a proxy with `cap`-byte reusable buffers.
    pub fn new(
        os: &Rc<Os>,
        net: &Rc<NetStack>,
        mode: ProxyMode,
        cap: usize,
    ) -> Result<Rc<Self>, MemError> {
        let proc = os.spawn_process();
        Self::with_process(os, net, mode, cap, proc, 0)
    }

    /// Creates a proxy worker sharing `proc` but using its own per-thread
    /// queue set (Fig. 12-b scalability).
    pub fn with_process(
        os: &Rc<Os>,
        net: &Rc<NetStack>,
        mode: ProxyMode,
        cap: usize,
        proc: Rc<Process>,
        fd: usize,
    ) -> Result<Rc<Self>, MemError> {
        let ubuf = proc.space.mmap(cap, Prot::RW, true)?;
        let obuf = proc.space.mmap(cap, Prot::RW, true)?;
        Ok(Rc::new(Proxy {
            os: Rc::clone(os),
            net: Rc::clone(net),
            proc,
            mode,
            ubuf,
            obuf,
            cap,
            forwarded: std::cell::Cell::new(0),
            fd,
        }))
    }

    /// Forwards `limit` messages from `downstream` to `upstream`.
    pub async fn pump(
        self: &Rc<Self>,
        core: &Rc<Core>,
        downstream: Rc<Socket>,
        upstream: Rc<Socket>,
        limit: u64,
    ) {
        for _ in 0..limit {
            self.forward_one(core, &downstream, &upstream)
                .await
                .expect("forward");
            self.forwarded.set(self.forwarded.get() + 1);
        }
    }

    async fn forward_one(
        self: &Rc<Self>,
        core: &Rc<Core>,
        downstream: &Rc<Socket>,
        upstream: &Rc<Socket>,
    ) -> Result<(), MemError> {
        let space = &self.proc.space;
        match &self.mode {
            ProxyMode::Baseline | ProxyMode::Zio(_) => {
                let (n, _) = self
                    .net
                    .recv(
                        core,
                        &self.proc,
                        downstream,
                        self.ubuf,
                        self.cap,
                        IoMode::Sync,
                    )
                    .await?;
                core.advance(ROUTE_COST).await;
                // Rewrite the header in place (routing metadata).
                let mut hdr = [0u8; 8];
                space.read_bytes(self.ubuf, &mut hdr)?;
                hdr[0] ^= 0x80;
                space.write_bytes(self.ubuf, &hdr)?;
                // Reorganize into the output buffer.
                match &self.mode {
                    ProxyMode::Zio(zio) => {
                        zio.memcpy(core, &self.proc, self.obuf, self.ubuf, n)
                            .await?;
                    }
                    _ => {
                        sync_memcpy(core, &self.os.cost, space, self.obuf, self.ubuf, n).await?;
                    }
                }
                self.net
                    .send(core, &self.proc, upstream, self.obuf, n, IoMode::Sync)
                    .await?;
            }
            ProxyMode::Copier => {
                let lib = self.proc.lib();
                // Lazy recv: the kernel→user copy is a mediator only.
                let (n, recv_d) = self
                    .net
                    .recv_opts(
                        core,
                        &self.proc,
                        downstream,
                        self.ubuf,
                        self.cap,
                        IoMode::Copier,
                        true,
                        self.fd,
                    )
                    .await?;
                core.advance(ROUTE_COST).await;
                // Header bytes are actually used: sync just those segments
                // (Fig. 8's "modified part" then flows from U, the rest
                // short-circuits from the kernel source).
                lib.csync_in(core, space.id(), self.ubuf, HEADER_LEN, self.fd)
                    .await
                    .expect("hdr");
                let mut hdr = [0u8; 8];
                space.read_bytes(self.ubuf, &mut hdr)?;
                hdr[0] ^= 0x80;
                space.write_bytes(self.ubuf, &hdr)?;
                // Async reorganize (also never executed thanks to
                // absorption into the send). Under overload the lazy
                // reorganize is simply skipped — it is an optimization
                // copy, and the send below still carries the bytes.
                let reorg_d = lib
                    ._amemcpy(
                        core,
                        self.obuf,
                        self.ubuf,
                        n,
                        copier_client::AmemcpyOpts {
                            fd: self.fd,
                            lazy: true,
                            ..Default::default()
                        },
                    )
                    .await
                    .ok();
                let done = self
                    .net
                    .send_opts(
                        core,
                        &self.proc,
                        upstream,
                        self.obuf,
                        n,
                        IoMode::Copier,
                        self.fd,
                    )
                    .await?;
                // Once the NIC confirms the forward, discard the two
                // intermediate lazy copies (§4.4 abort).
                if let Some(d) = done.descriptor() {
                    while !d.all_ready() {
                        core.advance(Nanos(200)).await;
                    }
                }
                if let Some(d) = &recv_d {
                    lib.abort_task(core, d, self.fd).await;
                }
                if let Some(d) = &reorg_d {
                    lib.abort_task(core, d, self.fd).await;
                }
            }
        }
        Ok(())
    }
}

/// A trivial echo peer: receives `limit` messages and replies nothing
/// (sink) or echoes (when `echo` is set).
pub async fn echo_server(
    os: Rc<Os>,
    net: Rc<NetStack>,
    core: Rc<Core>,
    sock: Rc<Socket>,
    limit: u64,
    reply: Option<Rc<Socket>>,
) {
    let proc = os.spawn_process();
    let cap = 512 * 1024;
    let buf = proc.space.mmap(cap, Prot::RW, true).expect("buf");
    for _ in 0..limit {
        let Ok((n, _)) = net.recv(&core, &proc, &sock, buf, cap, IoMode::Sync).await else {
            return;
        };
        if let Some(r) = &reply {
            net.send(&core, &proc, r, buf, n, IoMode::Sync)
                .await
                .expect("echo");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_sim::{Machine, Sim};

    fn run(mode: ProxyMode, with_copier: bool, len: usize, msgs: u64) -> (Nanos, bool) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 4);
        let os = Os::boot(&h, machine, 16 * 1024);
        if with_copier {
            os.install_copier(vec![os.machine.core(3)], Default::default());
        }
        let net = NetStack::new(&os);
        let proxy = Proxy::new(&os, &net, mode, 512 * 1024).unwrap();
        let (client_tx, proxy_rx) = net.socket_pair();
        let (proxy_tx, upstream_rx) = net.socket_pair();

        let pcore = os.machine.core(1);
        let proxy2 = Rc::clone(&proxy);
        sim.spawn("proxy", async move {
            proxy2.pump(&pcore, proxy_rx, proxy_tx, msgs).await;
        });

        // Upstream verifies every received message.
        let os2 = Rc::clone(&os);
        let net2 = Rc::clone(&net);
        let ucore = os.machine.core(2);
        let ok = Rc::new(std::cell::Cell::new(true));
        let ok2 = Rc::clone(&ok);
        sim.spawn("upstream", async move {
            let proc = os2.spawn_process();
            let buf = proc.space.mmap(512 * 1024, Prot::RW, true).unwrap();
            for i in 0..msgs {
                let (n, _) = net2
                    .recv(&ucore, &proc, &upstream_rx, buf, 512 * 1024, IoMode::Sync)
                    .await
                    .unwrap();
                let mut data = vec![0u8; n];
                proc.space.read_bytes(buf, &mut data).unwrap();
                // Byte 0 rewritten; rest must match the pattern.
                let exp0 = ((i as u8).wrapping_add(1)) ^ 0x80;
                if data[0] != exp0
                    || !data[1..]
                        .iter()
                        .enumerate()
                        .all(|(j, &b)| b == (((j + 1) as u8) ^ (i as u8)))
                {
                    ok2.set(false);
                }
            }
        });

        let os3 = Rc::clone(&os);
        let net3 = Rc::clone(&net);
        let ccore = os.machine.core(0);
        let h2 = h.clone();
        let elapsed = Rc::new(std::cell::Cell::new(Nanos::ZERO));
        let elapsed2 = Rc::clone(&elapsed);
        sim.spawn("client", async move {
            let proc = os3.spawn_process();
            let buf = proc.space.mmap(512 * 1024, Prot::RW, true).unwrap();
            let t0 = h2.now();
            for i in 0..msgs {
                let data: Vec<u8> = std::iter::once((i as u8).wrapping_add(1))
                    .chain((1..len).map(|j| (j as u8) ^ (i as u8)))
                    .collect();
                proc.space.write_bytes(buf, &data).unwrap();
                net3.send(&ccore, &proc, &client_tx, buf, len, IoMode::Sync)
                    .await
                    .unwrap();
            }
            // Let the pipeline drain.
            h2.sleep(Nanos::from_millis(2)).await;
            elapsed2.set(h2.now() - t0);
            if let Some(svc) = os3.copier.borrow().as_ref() {
                svc.stop();
            }
        });
        sim.run();
        (elapsed.get(), ok.get())
    }

    #[test]
    fn baseline_forwards_correctly() {
        let (t, ok) = run(ProxyMode::Baseline, false, 16 * 1024, 8);
        assert!(ok, "payload corrupted");
        assert!(t > Nanos::ZERO);
    }

    #[test]
    fn copier_forwards_correctly_with_absorption() {
        let (_, ok) = run(ProxyMode::Copier, true, 16 * 1024, 8);
        assert!(ok, "payload corrupted through the absorbed chain");
    }

    #[test]
    fn zio_forwards_correctly() {
        let zio = Zio::new(Rc::new(copier_hw::CostModel::default()));
        let (_, ok) = run(ProxyMode::Zio(Rc::clone(&zio)), false, 32 * 1024, 4);
        assert!(ok);
        assert!(zio.stats().remaps > 0, "aligned forward should remap");
    }
}
