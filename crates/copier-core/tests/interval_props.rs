//! Differential properties for `IntervalSet` against a naive bit-vector
//! model, with shrinking: a failing op sequence minimizes to the shortest
//! prefix (and smallest coordinates) that still disagrees.
//!
//! The set's fast paths (partition-point window search in `insert` /
//! `remove` / `covers` / `intersects`, splice-based removal) must be
//! behaviorally identical to "paint bits in an array" — every op is
//! followed by a full behavioral comparison, so any divergence is caught
//! at the op that introduced it.

use copier_core::interval::IntervalSet;
use copier_testkit::{check_with, shrink_vec, Config, PropResult, TestRng};
use copier_testkit::{prop_assert, prop_assert_eq};

/// Model universe size. Ops and queries stay inside `[0, N)`.
const N: usize = 256;

/// One operation on both the set and the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Op {
    insert: bool,
    lo: usize,
    hi: usize,
}

fn gen_op(rng: &mut TestRng) -> Op {
    let lo = rng.range_usize(0, N);
    // Mostly short ranges (the common DMA-progress shape), occasionally
    // long ones that span many stored ranges.
    let max_len = if rng.gen_bool(0.2) {
        N - lo
    } else {
        24.min(N - lo)
    };
    let hi = lo + rng.range_usize(0, max_len + 1);
    Op {
        insert: rng.gen_bool(0.65),
        lo,
        hi,
    }
}

fn shrink_op(op: &Op) -> Vec<Op> {
    let mut out = Vec::new();
    if op.hi > op.lo {
        out.push(Op { hi: op.lo, ..*op }); // empty range
        out.push(Op {
            hi: op.lo + (op.hi - op.lo) / 2,
            ..*op
        });
    }
    if op.lo > 0 {
        out.push(Op {
            lo: op.lo / 2,
            ..*op
        });
        out.push(Op {
            lo: op.lo - 1,
            ..*op
        });
    }
    if !op.insert {
        out.push(Op {
            insert: true,
            ..*op
        });
    }
    out.retain(|c| c != op);
    out
}

/// Derives the covered runs of `[0, N)` from the model bits.
fn model_runs(bits: &[bool]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < bits.len() {
        if bits[i] {
            let s = i;
            while i < bits.len() && bits[i] {
                i += 1;
            }
            out.push((s, i));
        } else {
            i += 1;
        }
    }
    out
}

fn check_against_model(s: &IntervalSet, bits: &[bool], step: usize) -> PropResult {
    // Structural invariant: sorted, disjoint, non-adjacent, non-empty.
    let stored: Vec<_> = s.iter().collect();
    for w in stored.windows(2) {
        prop_assert!(
            w[0].1 < w[1].0,
            "step {step}: ranges not disjoint/merged: {stored:?}"
        );
    }
    for &(a, b) in &stored {
        prop_assert!(a < b, "step {step}: empty stored range in {stored:?}");
    }
    // Exact content equality via the runs of the model.
    prop_assert_eq!(stored, model_runs(bits), "step {step}: content");
    prop_assert_eq!(
        s.total(),
        bits.iter().filter(|&&b| b).count(),
        "step {step}: total"
    );
    prop_assert_eq!(s.is_empty(), bits.iter().all(|&b| !b), "step {step}");
    Ok(())
}

fn check_queries(s: &IntervalSet, bits: &[bool], lo: usize, hi: usize) -> PropResult {
    let window = &bits[lo..hi];
    prop_assert_eq!(
        s.covers(lo, hi),
        window.iter().all(|&b| b),
        "covers({lo},{hi})"
    );
    prop_assert_eq!(
        s.intersects(lo, hi),
        window.iter().any(|&b| b),
        "intersects({lo},{hi})"
    );
    let uncovered: Vec<(usize, usize)> = model_runs(&bits.iter().map(|&b| !b).collect::<Vec<_>>())
        .into_iter()
        .filter_map(|(a, b)| {
            let (a, b) = (a.max(lo), b.min(hi));
            (a < b).then_some((a, b))
        })
        .collect();
    prop_assert_eq!(s.gaps(lo, hi), uncovered, "gaps({lo},{hi})");
    let covered: Vec<(usize, usize)> = model_runs(bits)
        .into_iter()
        .filter_map(|(a, b)| {
            let (a, b) = (a.max(lo), b.min(hi));
            (a < b).then_some((a, b))
        })
        .collect();
    prop_assert_eq!(s.overlaps(lo, hi), covered, "overlaps({lo},{hi})");
    Ok(())
}

#[test]
fn interval_set_matches_bitvec_model() {
    check_with(
        &Config::from_env(),
        |rng| {
            let n_ops = rng.range_usize(1, 40);
            (0..n_ops).map(|_| gen_op(rng)).collect::<Vec<_>>()
        },
        |ops| shrink_vec(ops, shrink_op),
        |ops| {
            let mut s = IntervalSet::new();
            let mut bits = vec![false; N];
            for (step, op) in ops.iter().enumerate() {
                if op.insert {
                    s.insert(op.lo, op.hi);
                    bits[op.lo..op.hi].iter_mut().for_each(|b| *b = true);
                } else {
                    s.remove(op.lo, op.hi);
                    bits[op.lo..op.hi].iter_mut().for_each(|b| *b = false);
                }
                check_against_model(&s, &bits, step)?;
                // Query windows anchored at the op's own coordinates plus
                // the full universe — deterministic, so shrinking is stable.
                check_queries(&s, &bits, 0, N)?;
                check_queries(&s, &bits, op.lo, op.hi.max(op.lo))?;
                let mid = (op.lo + op.hi) / 2;
                check_queries(&s, &bits, op.lo / 2, mid.max(op.lo / 2))?;
            }
            Ok(())
        },
    );
}

#[test]
fn from_range_equals_insert() {
    check_with(
        &Config::from_env(),
        |rng| {
            let lo = rng.range_usize(0, N);
            (lo, lo + rng.range_usize(0, N - lo + 1))
        },
        |_| Vec::new(),
        |&(lo, hi)| {
            let mut a = IntervalSet::new();
            a.insert(lo, hi);
            prop_assert_eq!(IntervalSet::from_range(lo, hi), a);
            Ok(())
        },
    );
}
