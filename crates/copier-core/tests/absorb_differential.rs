//! Differential property suite: index-backed hazard/absorption analysis
//! (`absorb::analyze_indexed` over a [`PendIndex`]) against the linear
//! reference sweep (`absorb::analyze`) on seeded multi-tenant windows.
//!
//! Each case generates a window of tasks over a handful of small address
//! spaces on a page grid (so overlaps, chains, hazards, and partially
//! copied producers are all common), builds the address index the way the
//! service does on submit, and checks that both analyses agree entry by
//! entry on the *plan*: blocked flag, blockers (in window order), pieces
//! (offset, length, space, address, depth), absorbed byte total, and the
//! defer set (order-normalized — its application is commutative). A
//! failing case shrinks to a locally minimal window and prints a
//! `TESTKIT_REPRO` seed.
//!
//! A second property exercises index *maintenance*: removing entries (as
//! finalize does, including re-removal of already-gone records) must keep
//! the index an exact mirror of the surviving window.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use copier_core::absorb::{analyze, analyze_indexed, AbsorbPlan};
use copier_core::client::PendEntry;
use copier_core::descriptor::{CopyFault, SegDescriptor};
use copier_core::interval::IntervalSet;
use copier_core::pendindex::PendIndex;
use copier_core::task::CopyTask;
use copier_mem::{AddressSpace, AllocPolicy, PhysMem, VirtAddr};
use copier_sim::Nanos;
use copier_testkit::{check_with, prop_assert, prop_assert_eq, shrink_vec, Config, TestRng};

const PAGE: usize = 4096;
/// Length table: sub-page, page, multi-page, and unaligned variants.
const LENS: [usize; 5] = [1, 1024, PAGE, PAGE + 2048, 2 * PAGE];
const SPACES: usize = 3;
const PAGES: u8 = 12;

/// One generated task, in shrink-friendly small-integer coordinates.
#[derive(Debug, Clone, Copy)]
struct TaskSpec {
    src_space: u8,
    src_page: u8,
    dst_space: u8,
    dst_page: u8,
    /// Index into [`LENS`].
    len_sel: u8,
    /// Copied-so-far shape: 0 none, 1 prefix, 2 middle, 3 full, 4 chunks.
    copied_sel: u8,
    /// 0 live, 1 aborted, 2 failed.
    state_sel: u8,
}

#[derive(Debug, Clone)]
struct Case {
    specs: Vec<TaskSpec>,
    /// Absorption enabled, or hazard-detection-only (Fig 12-c ablation).
    enabled: bool,
}

fn gen_spec(rng: &mut TestRng) -> TaskSpec {
    // Bias toward live entries; finished/aborted/failed ones must be
    // transparent to both analyses but need not dominate the window.
    let state = match rng.gen_range(8) {
        0 => 1,
        1 => 2,
        _ => 0,
    };
    TaskSpec {
        src_space: rng.gen_range(SPACES as u64) as u8,
        src_page: rng.gen_range(PAGES as u64) as u8,
        dst_space: rng.gen_range(SPACES as u64) as u8,
        dst_page: rng.gen_range(PAGES as u64) as u8,
        len_sel: rng.gen_range(LENS.len() as u64) as u8,
        copied_sel: rng.gen_range(5) as u8,
        state_sel: state,
    }
}

fn gen_case(rng: &mut TestRng) -> Case {
    let n = rng.range_usize(0, 25);
    Case {
        specs: (0..n).map(|_| gen_spec(rng)).collect(),
        enabled: rng.gen_bool(0.8),
    }
}

/// Integer ladder on every field (halve, decrement).
fn shrink_spec(s: &TaskSpec) -> Vec<TaskSpec> {
    let mut out = Vec::new();
    macro_rules! ladder {
        ($f:ident) => {
            if s.$f != 0 {
                let mut half = *s;
                half.$f /= 2;
                out.push(half);
                if s.$f > 1 {
                    let mut dec = *s;
                    dec.$f -= 1;
                    out.push(dec);
                }
            }
        };
    }
    ladder!(src_space);
    ladder!(src_page);
    ladder!(dst_space);
    ladder!(dst_page);
    ladder!(len_sel);
    ladder!(copied_sel);
    ladder!(state_sel);
    out
}

fn shrink_case(c: &Case) -> Vec<Case> {
    let mut out: Vec<Case> = shrink_vec(&c.specs, shrink_spec)
        .into_iter()
        .map(|specs| Case {
            specs,
            enabled: c.enabled,
        })
        .collect();
    if c.enabled {
        out.push(Case {
            specs: c.specs.clone(),
            enabled: false,
        });
    }
    out
}

/// Materializes the window: ascending keys in vector order (so slice
/// order == window order == key order, as in the service).
fn build(specs: &[TaskSpec]) -> Vec<Rc<PendEntry>> {
    let pm = Rc::new(PhysMem::new(4, AllocPolicy::Sequential));
    let spaces: Vec<Rc<AddressSpace>> = (0..SPACES as u32)
        .map(|id| AddressSpace::new(id + 1, Rc::clone(&pm)))
        .collect();
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let tid = i as u64 + 1;
            let len = LENS[s.len_sel as usize % LENS.len()];
            let src = VirtAddr(((s.src_page as usize + 1) * PAGE) as u64);
            let dst = VirtAddr(((s.dst_page as usize + 1) * PAGE) as u64);
            let e = Rc::new(PendEntry {
                tid,
                key: (0, 1, tid),
                task: CopyTask {
                    dst_space: Rc::clone(&spaces[s.dst_space as usize % SPACES]),
                    dst,
                    src_space: Rc::clone(&spaces[s.src_space as usize % SPACES]),
                    src,
                    len,
                    seg: 1024,
                    descr: Rc::new(SegDescriptor::new(len, 1024)),
                    func: None,
                    lazy: false,
                    verify: false,
                },
                copied: RefCell::new(IntervalSet::new()),
                inflight: RefCell::new(IntervalSet::new()),
                deferred: RefCell::new(IntervalSet::new()),
                defer_until: Cell::new(Nanos::ZERO),
                promoted: Cell::new(false),
                aborted: Cell::new(false),
                failed: Cell::new(None),
                submitted_at: Nanos::ZERO,
                pins: RefCell::new(Vec::new()),
                finalized: Cell::new(false),
            });
            {
                let mut copied = e.copied.borrow_mut();
                match s.copied_sel % 5 {
                    0 => {}
                    1 => {
                        copied.insert(0, (len / 3).max(1));
                    }
                    2 => {
                        let lo = len / 4;
                        let hi = (3 * len / 4).max(lo + 1).min(len);
                        copied.insert(lo, hi);
                    }
                    3 => {
                        copied.insert(0, len);
                    }
                    _ => {
                        let chunk = (len / 8).max(1).min(len);
                        copied.insert(0, chunk);
                        let lo = len / 2;
                        let hi = (lo + chunk).min(len);
                        if lo > chunk && lo < hi {
                            copied.insert(lo, hi);
                        }
                    }
                }
            }
            match s.state_sel % 3 {
                1 => e.aborted.set(true),
                2 => e.failed.set(Some(CopyFault::Segv)),
                _ => {}
            }
            e
        })
        .collect()
}

/// Plan fingerprint. Blockers keep their order (both paths must produce
/// window order); defers are sorted — the linear backward sweep and the
/// indexed worklist discover the same set in different orders, and
/// applying a defer is commutative (interval insert + same `defer_until`).
type Norm = (
    bool,
    Vec<u64>,
    usize,
    Vec<(usize, usize, u32, u64, u32)>,
    Vec<(u64, usize, usize)>,
);

fn norm(p: &AbsorbPlan) -> Norm {
    let mut defers: Vec<(u64, usize, usize)> =
        p.defers.iter().map(|(e, s, t)| (e.tid, *s, *t)).collect();
    defers.sort_unstable();
    (
        p.blocked,
        p.blockers.iter().map(|b| b.tid).collect(),
        p.absorbed_bytes,
        p.pieces
            .iter()
            .map(|x| (x.off, x.len, x.space.id(), x.va.0, x.depth))
            .collect(),
        defers,
    )
}

/// `TESTKIT_CASES` still overrides, but the differential suite defaults
/// to well past 1000 seeded windows.
fn cfg() -> Config {
    let mut cfg = Config::from_env();
    if std::env::var("TESTKIT_CASES").is_err() {
        cfg.cases = cfg.cases.max(1024);
    }
    cfg
}

#[test]
fn indexed_analysis_matches_linear_reference() {
    check_with(&cfg(), gen_case, shrink_case, |case| {
        let entries = build(&case.specs);
        // The index holds the whole window — including each analyzed
        // entry and everything after it — exactly as in the service;
        // `analyze_indexed` must ignore keys >= the entry's own.
        let index = PendIndex::new();
        for e in &entries {
            index.insert(e);
        }
        for (i, e) in entries.iter().enumerate() {
            let linear = analyze(e, &entries[..i], case.enabled);
            let (indexed, _hits) = analyze_indexed(e, &index, case.enabled);
            prop_assert_eq!(
                norm(&linear),
                norm(&indexed),
                "entry {} (tid {}) diverged, enabled={}",
                i,
                e.tid,
                case.enabled
            );
        }
        Ok(())
    });
}

#[test]
fn index_mirrors_window_across_removals() {
    check_with(&cfg(), gen_case, shrink_case, |case| {
        let entries = build(&case.specs);
        let index = PendIndex::new();
        for e in &entries {
            index.insert(e);
        }
        prop_assert!(
            index.check_against(entries.iter()).is_ok(),
            "index inconsistent right after build"
        );
        // Finalize-style removal of the fully-copied entries; removing a
        // record twice must be a no-op (finalize is idempotent).
        let gone = |s: &TaskSpec| s.copied_sel % 5 == 3;
        for (e, s) in entries.iter().zip(&case.specs) {
            if gone(s) {
                index.remove(e);
                index.remove(e);
            }
        }
        let survivors: Vec<Rc<PendEntry>> = entries
            .iter()
            .zip(&case.specs)
            .filter(|(_, s)| !gone(s))
            .map(|(e, _)| Rc::clone(e))
            .collect();
        if let Err(msg) = index.check_against(survivors.iter()) {
            return Err(format!("index diverged after removals: {msg}"));
        }
        for e in &survivors {
            index.remove(e);
        }
        prop_assert!(index.is_empty(), "records left after removing all");
        Ok(())
    });
}
