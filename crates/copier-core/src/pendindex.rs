//! Address-indexed pending-copy store (control-plane index).
//!
//! Every unfinished task in a [`QueueSet`]'s window owns two indexed
//! records — its source range and its destination range — keyed by
//! `(space id, range kind, start VA, task id)` in an ordered map. The four
//! hot control-plane consumers (absorption hazard + layering scans, the
//! csync waiter lookup, taint cascades, and reap invalidation) run window
//! queries against it instead of sweeping the whole pending list, turning
//! per-submission O(n) scans into O(log n + k) for k overlapping records.
//!
//! The interval-query trick: records are ordered by their *start* address,
//! and the index keeps a monotone high-water mark of the longest range it
//! has ever held. A query for `[lo, hi)` only needs to inspect keys in
//! `[lo - max_len, hi)` — anything starting earlier cannot reach `lo`.
//! The mark never shrinks on removal, which keeps removal O(log n) and is
//! merely conservative (a slightly wider scan window), never wrong.
//!
//! The index is pure bookkeeping over host data structures: it changes
//! which entries the service *looks at*, never what it decides, so
//! virtual-time behaviour is untouched (see DESIGN.md §13).
//!
//! [`QueueSet`]: crate::client::QueueSet

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::client::PendEntry;

/// Which of a task's two ranges a record covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeKind {
    /// The task's source range.
    Src,
    /// The task's destination range.
    Dst,
}

/// Record key: `(space id, kind, start VA, task id)`. The task id breaks
/// ties between same-address records; the kind dimension keeps src and dst
/// records in separate subtrees so a query never wades through the other
/// population.
type RecKey = (u32, u8, u64, u64);

/// The per-set address index over pending source/destination ranges.
#[derive(Default)]
pub struct PendIndex {
    /// `key -> (end VA, entry)`.
    map: RefCell<BTreeMap<RecKey, (u64, Rc<PendEntry>)>>,
    /// High-water mark of indexed range length (bounds query windows).
    max_len: Cell<u64>,
    /// High-water mark of resident record count.
    peak: Cell<usize>,
}

impl PendIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    fn records(e: &Rc<PendEntry>) -> [(RangeKind, (u32, u64, u64)); 2] {
        [
            (RangeKind::Src, e.task.src_range()),
            (RangeKind::Dst, e.task.dst_range()),
        ]
    }

    /// Indexes both ranges of a window entry.
    pub fn insert(&self, e: &Rc<PendEntry>) {
        let mut map = self.map.borrow_mut();
        for (kind, (sp, lo, hi)) in Self::records(e) {
            map.insert((sp, kind as u8, lo, e.tid), (hi, Rc::clone(e)));
            let len = hi - lo;
            if len > self.max_len.get() {
                self.max_len.set(len);
            }
        }
        let n = map.len();
        if n > self.peak.get() {
            self.peak.set(n);
        }
    }

    /// Drops a window entry's records (idempotent).
    pub fn remove(&self, e: &Rc<PendEntry>) {
        let mut map = self.map.borrow_mut();
        for (kind, (sp, lo, _)) in Self::records(e) {
            map.remove(&(sp, kind as u8, lo, e.tid));
        }
    }

    /// Resident record count (two per pending entry).
    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    /// Whether no records are resident.
    pub fn is_empty(&self) -> bool {
        self.map.borrow().is_empty()
    }

    /// High-water mark of resident record count.
    pub fn peak(&self) -> usize {
        self.peak.get()
    }

    /// Visits every record of `kind` in `space` whose range overlaps
    /// `[lo, hi)` under the same asymmetric test as
    /// [`ranges_overlap`](crate::interval::ranges_overlap)
    /// (`rec.lo < hi && lo < rec.hi`). Returns the number of records
    /// visited (the query's hit count). Visit order is by start address,
    /// not window order — callers reduce by key where order matters.
    ///
    /// Zero-length audit (ISSUE 6): the `lo - max_len` scan bound stays
    /// correct at `len == 0` on both sides. A zero-length *record* at
    /// `p` never raises `max_len`, yet is still found by exactly the
    /// queries with `lo < p < hi` — such a `p` satisfies `p ≥ scan_lo`
    /// for any `max_len` because `p > lo ≥ lo - max_len`. A zero-length
    /// *query* `[p, p)` behaves as the point `p` strictly inside a
    /// record, and `scan_lo = p - max_len` bounds exactly the records
    /// that can reach `p`. Both match `ranges_overlap`; covered by the
    /// tests below.
    pub fn for_each_overlap(
        &self,
        kind: RangeKind,
        space: u32,
        lo: u64,
        hi: u64,
        mut f: impl FnMut(&Rc<PendEntry>),
    ) -> u64 {
        let map = self.map.borrow();
        let scan_lo = lo.saturating_sub(self.max_len.get());
        let k = kind as u8;
        let mut hits = 0u64;
        for (&(_, _, rlo, _), &(rhi, ref e)) in map.range((space, k, scan_lo, 0)..(space, k, hi, 0))
        {
            // `rlo < hi` is implied by the range bound; the other half of
            // the overlap test filters the conservative scan window.
            debug_assert!(rlo < hi);
            if lo < rhi {
                hits += 1;
                f(e);
            }
        }
        hits
    }

    /// Order-deterministic FNV-1a digest of every resident record
    /// `(space, kind, lo, tid, hi)` — the PendIndex component of the
    /// record/replay round hash (DESIGN.md §14). BTreeMap iteration
    /// order makes it independent of insertion history.
    pub fn digest(&self) -> u64 {
        use copier_sim::trace::{fnv_fold, FNV_OFFSET};
        let map = self.map.borrow();
        let mut h = FNV_OFFSET;
        for (&(sp, k, lo, tid), &(hi, _)) in map.iter() {
            h = fnv_fold(h, sp as u64);
            h = fnv_fold(h, k as u64);
            h = fnv_fold(h, lo);
            h = fnv_fold(h, tid);
            h = fnv_fold(h, hi);
        }
        h
    }

    /// Verifies the index exactly mirrors `pending` (both records per
    /// entry, correct end addresses, no extras) and that the scan-window
    /// invariant holds. Used by chaos teardown and the differential tests.
    pub fn check_against<'a>(
        &self,
        pending: impl Iterator<Item = &'a Rc<PendEntry>>,
    ) -> Result<(), String> {
        let map = self.map.borrow();
        let mut expect: BTreeMap<RecKey, u64> = BTreeMap::new();
        for e in pending {
            for (kind, (sp, lo, hi)) in Self::records(e) {
                if expect.insert((sp, kind as u8, lo, e.tid), hi).is_some() {
                    return Err(format!("duplicate window record for tid {}", e.tid));
                }
            }
        }
        if map.len() != expect.len() {
            return Err(format!(
                "index holds {} records, window implies {}",
                map.len(),
                expect.len()
            ));
        }
        for (k, (hi, e)) in map.iter() {
            match expect.get(k) {
                Some(&h) if h == *hi => {}
                Some(&h) => {
                    return Err(format!(
                        "record {k:?} ends at {hi}, window entry tid {} implies {h}",
                        e.tid
                    ));
                }
                None => return Err(format!("stale index record {k:?} (tid {})", e.tid)),
            }
            if hi - k.2 > self.max_len.get() {
                return Err(format!(
                    "record {k:?} longer than the max_len high-water mark"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PendEntry;
    use crate::descriptor::SegDescriptor;
    use crate::interval::{ranges_overlap, IntervalSet};
    use crate::task::CopyTask;
    use copier_mem::{AddressSpace, AllocPolicy, PhysMem, VirtAddr};
    use copier_sim::Nanos;
    use std::cell::{Cell, RefCell};

    fn space(id: u32) -> Rc<AddressSpace> {
        let pm = Rc::new(PhysMem::new(4, AllocPolicy::Sequential));
        AddressSpace::new(id, pm)
    }

    fn entry(tid: u64, sp: &Rc<AddressSpace>, src: u64, dst: u64, len: usize) -> Rc<PendEntry> {
        Rc::new(PendEntry {
            tid,
            key: (0, 1, tid),
            task: CopyTask {
                dst_space: Rc::clone(sp),
                dst: VirtAddr(dst),
                src_space: Rc::clone(sp),
                src: VirtAddr(src),
                len,
                seg: 1024,
                descr: Rc::new(SegDescriptor::new(len, 1024)),
                func: None,
                lazy: false,
                verify: false,
            },
            copied: RefCell::new(IntervalSet::new()),
            inflight: RefCell::new(IntervalSet::new()),
            deferred: RefCell::new(IntervalSet::new()),
            defer_until: Cell::new(Nanos::ZERO),
            promoted: Cell::new(false),
            aborted: Cell::new(false),
            failed: Cell::new(None),
            submitted_at: Nanos::ZERO,
            pins: RefCell::new(Vec::new()),
            finalized: Cell::new(false),
        })
    }

    fn dst_tids(ix: &PendIndex, sp: u32, lo: u64, hi: u64) -> Vec<u64> {
        let mut out = Vec::new();
        ix.for_each_overlap(RangeKind::Dst, sp, lo, hi, |e| out.push(e.tid));
        out.sort_unstable();
        out
    }

    #[test]
    fn window_queries_find_exact_overlaps() {
        let s = space(1);
        let ix = PendIndex::new();
        let a = entry(1, &s, 0x1000, 0x8000, 0x1000); // dst [0x8000,0x9000)
        let b = entry(2, &s, 0x2000, 0x9000, 0x1000); // dst [0x9000,0xa000)
        let c = entry(3, &s, 0x3000, 0x20000, 0x400);
        for e in [&a, &b, &c] {
            ix.insert(e);
        }
        assert_eq!(ix.len(), 6);
        assert_eq!(dst_tids(&ix, 1, 0x8800, 0x9800), vec![1, 2]);
        assert_eq!(dst_tids(&ix, 1, 0x9000, 0x9001), vec![2]);
        assert_eq!(dst_tids(&ix, 1, 0xa000, 0xb000), vec![]);
        assert_eq!(dst_tids(&ix, 2, 0x8800, 0x9800), vec![], "wrong space");
        ix.remove(&b);
        assert_eq!(dst_tids(&ix, 1, 0x8800, 0x9800), vec![1]);
        ix.remove(&b); // idempotent
        assert_eq!(ix.len(), 4);
        assert_eq!(ix.peak(), 6);
    }

    #[test]
    fn queries_match_linear_overlap_semantics() {
        // Randomized cross-check, including empty query ranges (which the
        // asymmetric `ranges_overlap` treats as points inside ranges).
        let s = space(3);
        let ix = PendIndex::new();
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut entries = Vec::new();
        for tid in 1..=64 {
            let src = rnd() % 4096;
            let dst = rnd() % 4096;
            // Force a spread of zero-length records (every 8th entry) on
            // top of whatever the stream draws, so the len == 0 edge is
            // always exercised, not just hit with probability 1/256.
            let len = if tid % 8 == 0 {
                0
            } else {
                (rnd() % 256) as usize
            };
            let e = entry(tid, &s, src, dst, len);
            ix.insert(&e);
            entries.push(e);
        }
        for _ in 0..512 {
            let lo = rnd() % 4400;
            let hi = lo + rnd() % 128; // sometimes empty
            for kind in [RangeKind::Src, RangeKind::Dst] {
                let mut got = Vec::new();
                ix.for_each_overlap(kind, 3, lo, hi, |e| got.push(e.tid));
                got.sort_unstable();
                let mut want: Vec<u64> = entries
                    .iter()
                    .filter(|e| {
                        let (sp, rlo, rhi) = match kind {
                            RangeKind::Src => e.task.src_range(),
                            RangeKind::Dst => e.task.dst_range(),
                        };
                        sp == 3
                            && ranges_overlap(
                                (rlo as usize, rhi as usize),
                                (lo as usize, hi as usize),
                            )
                    })
                    .map(|e| e.tid)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "kind {kind:?} query [{lo},{hi})");
            }
        }
        ix.check_against(entries.iter()).unwrap();
    }

    #[test]
    fn zero_length_records_and_queries() {
        let s = space(1);
        let ix = PendIndex::new();
        // A zero-length record at 0x9000 (dst [0x9000, 0x9000)).
        let z = entry(1, &s, 0x1000, 0x9000, 0);
        ix.insert(&z);
        // Found by queries strictly containing the point...
        assert_eq!(dst_tids(&ix, 1, 0x8000, 0xa000), vec![1]);
        // ...but not by ranges merely touching it (half-open semantics).
        assert_eq!(dst_tids(&ix, 1, 0x9000, 0xa000), vec![]);
        assert_eq!(dst_tids(&ix, 1, 0x8000, 0x9000), vec![]);
        // A zero-length query is a point strictly inside a record.
        let r = entry(2, &s, 0x2000, 0xb000, 0x1000);
        ix.insert(&r);
        assert_eq!(dst_tids(&ix, 1, 0xb800, 0xb800), vec![2]);
        assert_eq!(dst_tids(&ix, 1, 0xb000, 0xb000), vec![], "at the edge");
        // Empty query against the zero-length record: no strict interior.
        assert_eq!(dst_tids(&ix, 1, 0x9000, 0x9000), vec![]);
        ix.check_against([&z, &r].into_iter()).unwrap();
        ix.remove(&z);
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn digest_is_order_independent_and_content_sensitive() {
        let s = space(1);
        let a = entry(1, &s, 0x1000, 0x8000, 64);
        let b = entry(2, &s, 0x2000, 0x9000, 64);
        let ab = PendIndex::new();
        ab.insert(&a);
        ab.insert(&b);
        let ba = PendIndex::new();
        ba.insert(&b);
        ba.insert(&a);
        assert_eq!(ab.digest(), ba.digest(), "insertion order is invisible");
        ba.remove(&b);
        assert_ne!(ab.digest(), ba.digest(), "content changes the digest");
        let empty = PendIndex::new();
        assert_ne!(ba.digest(), empty.digest());
    }

    #[test]
    fn check_against_catches_divergence() {
        let s = space(1);
        let ix = PendIndex::new();
        let a = entry(1, &s, 0x1000, 0x8000, 64);
        let b = entry(2, &s, 0x2000, 0x9000, 64);
        ix.insert(&a);
        assert!(ix.check_against([&a].into_iter()).is_ok());
        assert!(ix.check_against([&a, &b].into_iter()).is_err(), "missing");
        ix.insert(&b);
        assert!(ix.check_against([&a].into_iter()).is_err(), "stale");
    }
}
