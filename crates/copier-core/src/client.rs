//! Client registration state and the service-side in-flight window.
//!
//! Each client (a user process, or an OS service with a standalone context)
//! owns one *default* [`QueueSet`] — a paired u-mode and k-mode set of CSH
//! queues (§4.2.1) — and may create extra per-thread sets (§5.1 multi-queue
//! support; dependencies are only tracked within a set).
//!
//! The service drains queue entries into the set's *pending window*, a list
//! of [`PendEntry`] ordered by the merged cross-privilege key computed from
//! barrier tasks.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use copier_mem::{AddressSpace, FrameId};
use copier_sim::Nanos;

use crate::descriptor::CopyFault;
use crate::interval::IntervalSet;
use crate::pendindex::PendIndex;
use crate::ring::Ring;
use crate::task::{CopyTask, Handler, Privilege, QueueEntry, SyncTask, TaskId};

/// Client identifier.
pub type ClientId = u32;

/// Default capacity (slots) of each CSH queue.
pub const DEFAULT_QUEUE_CAP: usize = 1024;

/// One privilege level's CSH queues.
pub struct QueuePair {
    /// Copy Queue — `QueueEntry::Copy` and `QueueEntry::Barrier`.
    pub copy: Ring<QueueEntry>,
    /// Sync Queue — promotion and abort requests.
    pub sync: Ring<SyncTask>,
    /// Handler Queue — completed UFUNCs for `post_handlers()` (u-mode only;
    /// unused on the k-mode pair).
    pub handler: Ring<Handler>,
}

impl QueuePair {
    /// Creates a queue pair with `cap` slots per ring.
    pub fn new(cap: usize) -> Rc<Self> {
        Rc::new(QueuePair {
            copy: Ring::new(cap),
            sync: Ring::new(cap),
            handler: Ring::new(cap),
        })
    }
}

/// Merge key: `(barrier_key, privilege, drain_seq)`; see §4.2.1.
pub type OrderKey = (u64, u8, u64);

/// A task in the service's in-flight window.
pub struct PendEntry {
    /// Service-wide id.
    pub tid: TaskId,
    /// Merged execution-order key.
    pub key: OrderKey,
    /// The request itself.
    pub task: CopyTask,
    /// Byte ranges physically copied so far.
    pub copied: RefCell<IntervalSet>,
    /// Byte ranges currently handed to the dispatcher (in flight).
    pub inflight: RefCell<IntervalSet>,
    /// Byte ranges deferred by copy absorption (§4.4) — still owed, but
    /// intentionally off the fast path.
    pub deferred: RefCell<IntervalSet>,
    /// Don't execute deferred/lazy bytes before this virtual instant.
    pub defer_until: Cell<Nanos>,
    /// Raised by a Sync Task; promoted tasks run ahead of the FIFO.
    pub promoted: Cell<bool>,
    /// Abort requested (§4.4): discard the remaining work.
    pub aborted: Cell<bool>,
    /// Planning failed (fault); the descriptor has been poisoned.
    pub failed: Cell<Option<CopyFault>>,
    /// When the task entered the window (drives lazy expiry).
    pub submitted_at: Nanos,
    /// Pinned frames to release at completion: `(space, frames)`.
    pub pins: RefCell<Vec<(Rc<AddressSpace>, Vec<FrameId>)>>,
    /// Set by the first finalizer — makes completion idempotent even if
    /// two service threads transiently share a client during auto-scale
    /// rebalancing.
    pub finalized: Cell<bool>,
}

impl PendEntry {
    /// Bytes not yet copied, aborted, or in flight.
    pub fn remaining(&self) -> usize {
        let done = self.copied.borrow().total() + self.inflight.borrow().total();
        self.task.len.saturating_sub(done)
    }

    /// Whether every byte has landed (or the task was cancelled).
    pub fn finished(&self) -> bool {
        self.aborted.get()
            || self.failed.get().is_some()
            || self.copied.borrow().covers(0, self.task.len)
    }

    /// Whether any executable gap exists — the allocation-free form of
    /// `!executable_gaps(force).is_empty()` used on the poll fast path.
    /// Walks the task range skipping covered prefixes instead of
    /// materializing the gap list.
    pub fn has_executable_gaps(&self, force: bool) -> bool {
        let copied = self.copied.borrow();
        let inflight = self.inflight.borrow();
        let deferred = self.deferred.borrow();
        let mut cur = 0;
        while cur < self.task.len {
            if let Some(e) = copied.end_of_covering_range(cur) {
                cur = e;
                continue;
            }
            if let Some(e) = inflight.end_of_covering_range(cur) {
                cur = e;
                continue;
            }
            if !force {
                if let Some(e) = deferred.end_of_covering_range(cur) {
                    cur = e;
                    continue;
                }
            }
            return true;
        }
        false
    }

    /// The gaps still to copy, excluding deferred ranges unless `force`.
    pub fn executable_gaps(&self, force: bool) -> Vec<(usize, usize)> {
        let copied = self.copied.borrow();
        let inflight = self.inflight.borrow();
        let deferred = self.deferred.borrow();
        let mut out = Vec::new();
        for (s, e) in copied.gaps(0, self.task.len) {
            // Subtract in-flight pieces.
            for (s2, e2) in inflight.gaps(s, e) {
                if force {
                    out.push((s2, e2));
                } else {
                    for g in deferred.gaps(s2, e2) {
                        out.push(g);
                    }
                }
            }
        }
        out
    }
}

/// A destination range a faulted copy never (fully) wrote. Remembered on
/// the owning set so that later-submitted tasks sourcing from the range
/// are failed in dependency order (§4.4) instead of silently reading
/// stale bytes; a fresh copy that fully overwrites the range clears it.
#[derive(Debug, Clone, Copy)]
pub struct TaintRange {
    /// Address-space id of the garbaged destination.
    pub space: u32,
    /// Start virtual address (inclusive).
    pub lo: u64,
    /// End virtual address (exclusive).
    pub hi: u64,
    /// The fault to propagate to dependents.
    pub fault: CopyFault,
}

/// A paired u-mode/k-mode queue set with its merge and window state.
pub struct QueueSet {
    /// u-mode queues (mapped into the client).
    pub uq: Rc<QueuePair>,
    /// k-mode queues (used by kernel services in this process context).
    pub kq: Rc<QueuePair>,
    /// Current k-mode barrier key (peer u-queue position at last barrier).
    pub cur_k_key: Cell<u64>,
    /// Count of u-mode copy tasks drained so far (the u key).
    pub u_index: Cell<u64>,
    /// Monotone drain sequence for stable ties.
    pub seq: Cell<u64>,
    /// The in-flight window, sorted by `key`.
    pub pending: RefCell<VecDeque<Rc<PendEntry>>>,
    /// Address index over the window's src/dst ranges, kept in lockstep
    /// with `pending` by the service (submit / finalize / reap).
    pub index: PendIndex,
    /// Destinations garbaged by faulted copies (bounded; oldest evicted).
    pub tainted: RefCell<Vec<TaintRange>>,
    /// Handlers that did not fit the (bounded) handler ring; drained by
    /// `post_handlers` before the ring so delivery order is preserved.
    /// Never dropped silently.
    pub handler_overflow: RefCell<VecDeque<Handler>>,
}

impl QueueSet {
    /// Creates an empty set with the given per-ring capacity.
    pub fn new(cap: usize) -> Rc<Self> {
        Rc::new(QueueSet {
            uq: QueuePair::new(cap),
            kq: QueuePair::new(cap),
            cur_k_key: Cell::new(0),
            u_index: Cell::new(0),
            seq: Cell::new(0),
            pending: RefCell::new(VecDeque::new()),
            index: PendIndex::new(),
            tainted: RefCell::new(Vec::new()),
            handler_overflow: RefCell::new(VecDeque::new()),
        })
    }

    /// Whether the address index exactly mirrors the pending window
    /// (invariant checked after chaos teardown).
    pub fn index_consistent(&self) -> Result<(), String> {
        self.index.check_against(self.pending.borrow().iter())
    }

    /// The queue pair for a privilege level.
    pub fn pair(&self, p: Privilege) -> &Rc<QueuePair> {
        match p {
            Privilege::K => &self.kq,
            Privilege::U => &self.uq,
        }
    }

    /// Total bytes waiting in the window.
    pub fn pending_bytes(&self) -> usize {
        self.pending.borrow().iter().map(|p| p.remaining()).sum()
    }
}

/// A registered client.
pub struct Client {
    /// Identifier (also used to match Sync Tasks to spaces).
    pub id: ClientId,
    /// The client's user address space.
    pub uspace: Rc<AddressSpace>,
    /// Queue sets; index 0 is the default per-process set.
    pub sets: RefCell<Vec<Rc<QueueSet>>>,
    /// Scheduler state: total copied length (the CFS vruntime analogue).
    pub copied_total: Cell<u64>,
    /// The cgroup this client is charged to.
    pub cgroup: Cell<usize>,
    /// Signals delivered on unrecoverable faults (simulated SIGSEGV).
    pub signals: RefCell<Vec<CopyFault>>,
    /// Set by orphan reclamation when the owning process died; the library
    /// side must stop submitting and waiting.
    pub dead: Cell<bool>,
    /// Submission credits (the quota the service has granted this client).
    /// libCopier consumes one per copy submission; the service returns one
    /// on the completion path of each finished task. Shared state mapped
    /// into the client, like the CSH rings.
    pub credits: Cell<u64>,
    /// Credit-pool capacity (== the per-client in-flight task quota).
    pub credit_cap: Cell<u64>,
    /// Tasks currently in the service window (admission accounting).
    pub inflight_tasks: Cell<u64>,
    /// Bytes currently in the service window (admission accounting).
    pub inflight_bytes: Cell<u64>,
    /// Frames currently pinned on this client's behalf.
    pub pinned: Cell<u64>,
    /// Epoch of the service incarnation the client is attached to —
    /// stamped at registration and re-attach; the rings' epoch tag. A
    /// mismatch against the live service tells the library its rings
    /// predate a restart.
    pub epoch: Cell<u64>,
    /// Control-plane shard owning this client (DESIGN.md §17). Stamped by
    /// the service at registration/adoption from the deterministic hash of
    /// the client's address-space id; 0 on unsharded services. Every
    /// drain/schedule/finalize touch of this client happens on its shard.
    pub shard: Cell<usize>,
    /// Registration sequence number (DESIGN.md §18): stamped by the
    /// service at registration *and* adoption from a monotone counter, so
    /// iterating clients in `reg_seq` order is exactly the clients-vec
    /// (registration) order the legacy full sweep used — scheduler
    /// tie-breaks stay identical under active-set iteration.
    pub reg_seq: Cell<u64>,
    /// Membership flag for the per-shard active set (O(1) idempotent
    /// doorbell). Maintained only on the O(active) fast path.
    pub active: Cell<bool>,
    /// Cached per-client trace-hash contribution `(hp, hx)` plus a dirty
    /// flag, for the delta-folded multi-shard trace hashes (§18). Only
    /// meaningful while the service runs with a tracer, `shards > 1`, and
    /// the fast path enabled.
    pub hash_cache: Cell<(u64, u64)>,
    /// Whether `hash_cache` is stale (client was touched since the last
    /// fold). Guards duplicate entries in the shard's dirty list.
    pub hash_dirty: Cell<bool>,
}

impl Client {
    /// Creates a client with one default queue set.
    pub fn new(id: ClientId, uspace: Rc<AddressSpace>, cap: usize) -> Rc<Self> {
        Rc::new(Client {
            id,
            uspace,
            sets: RefCell::new(vec![QueueSet::new(cap)]),
            copied_total: Cell::new(0),
            cgroup: Cell::new(0),
            signals: RefCell::new(Vec::new()),
            dead: Cell::new(false),
            credits: Cell::new(cap as u64),
            credit_cap: Cell::new(cap as u64),
            inflight_tasks: Cell::new(0),
            inflight_bytes: Cell::new(0),
            pinned: Cell::new(0),
            epoch: Cell::new(0),
            shard: Cell::new(0),
            reg_seq: Cell::new(0),
            active: Cell::new(false),
            hash_cache: Cell::new((0, 0)),
            hash_dirty: Cell::new(false),
        })
    }

    /// Resizes the credit pool (set by the service at registration from
    /// its admission quota). Outstanding credits are topped up to the cap.
    pub fn set_credit_cap(&self, cap: u64) {
        self.credit_cap.set(cap);
        self.credits.set(cap);
    }

    /// Consumes one submission credit; `false` means the pool is empty
    /// (the client is at its in-flight quota and must back off).
    pub fn take_credit(&self) -> bool {
        let c = self.credits.get();
        if c == 0 {
            return false;
        }
        self.credits.set(c - 1);
        true
    }

    /// Returns one credit to the pool, saturating at the cap. Called by
    /// the service on the completion path (and by the library when a
    /// submission it took a credit for never reached the ring).
    pub fn grant_credit(&self) {
        let c = self.credits.get();
        if c < self.credit_cap.get() {
            self.credits.set(c + 1);
        }
    }

    /// The default queue set.
    pub fn default_set(&self) -> Rc<QueueSet> {
        Rc::clone(&self.sets.borrow()[0])
    }

    /// Creates an additional per-thread queue set, returning its index
    /// (the `fd` of `copier_create_queue`).
    pub fn create_queue_set(&self, cap: usize) -> usize {
        let mut sets = self.sets.borrow_mut();
        sets.push(QueueSet::new(cap));
        sets.len() - 1
    }

    /// Queue set by index.
    pub fn set(&self, idx: usize) -> Rc<QueueSet> {
        Rc::clone(&self.sets.borrow()[idx])
    }

    /// Queue set by index, or `None` past the end — lets the service walk
    /// sets without snapshot-cloning the whole list each poll.
    pub fn set_at(&self, idx: usize) -> Option<Rc<QueueSet>> {
        self.sets.borrow().get(idx).map(Rc::clone)
    }

    /// Whether any set has queued or windowed work runnable at `now`
    /// (mirrors the service's batch-selection rules).
    pub fn has_work(&self, now: Nanos, lazy_period: Nanos) -> bool {
        if self.dead.get() {
            return false;
        }
        self.sets.borrow().iter().any(|s| {
            !s.uq.copy.is_empty()
                || !s.kq.copy.is_empty()
                || !s.uq.sync.is_empty()
                || !s.kq.sync.is_empty()
                || s.pending.borrow().iter().any(|p| {
                    if p.finished() {
                        return false;
                    }
                    if p.promoted.get() {
                        return true;
                    }
                    if p.task.lazy && now < p.submitted_at + lazy_period {
                        return false;
                    }
                    if p.has_executable_gaps(false) {
                        return true;
                    }
                    // Deferred obligations become runnable at expiry.
                    p.defer_until.get() <= now && p.has_executable_gaps(true)
                })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::SegDescriptor;
    use copier_mem::{AllocPolicy, PhysMem, VirtAddr};

    fn dummy_task(len: usize) -> CopyTask {
        let pm = Rc::new(PhysMem::new(4, AllocPolicy::Sequential));
        let space = AddressSpace::new(1, pm);
        CopyTask {
            dst_space: Rc::clone(&space),
            dst: VirtAddr(0x1000),
            src_space: space,
            src: VirtAddr(0x9000),
            len,
            seg: 1024,
            descr: Rc::new(SegDescriptor::new(len, 1024)),
            func: None,
            lazy: false,
            verify: false,
        }
    }

    fn entry(len: usize) -> PendEntry {
        PendEntry {
            tid: 1,
            key: (0, 1, 0),
            task: dummy_task(len),
            copied: RefCell::new(IntervalSet::new()),
            inflight: RefCell::new(IntervalSet::new()),
            deferred: RefCell::new(IntervalSet::new()),
            defer_until: Cell::new(Nanos::ZERO),
            promoted: Cell::new(false),
            aborted: Cell::new(false),
            failed: Cell::new(None),
            submitted_at: Nanos::ZERO,
            pins: RefCell::new(Vec::new()),
            finalized: Cell::new(false),
        }
    }

    #[test]
    fn executable_gaps_subtract_copied_inflight_deferred() {
        let e = entry(4096);
        e.copied.borrow_mut().insert(0, 1024);
        e.inflight.borrow_mut().insert(1024, 2048);
        e.deferred.borrow_mut().insert(3000, 4096);
        assert_eq!(e.executable_gaps(false), vec![(2048, 3000)]);
        assert_eq!(e.executable_gaps(true), vec![(2048, 4096)]);
        assert_eq!(e.remaining(), 4096 - 2048);
        assert!(!e.finished());
    }

    #[test]
    fn finished_via_copied_or_abort() {
        let e = entry(100);
        assert!(!e.finished());
        e.copied.borrow_mut().insert(0, 100);
        assert!(e.finished());
        let e2 = entry(100);
        e2.aborted.set(true);
        assert!(e2.finished());
    }

    #[test]
    fn client_work_detection() {
        let pm = Rc::new(PhysMem::new(4, AllocPolicy::Sequential));
        let space = AddressSpace::new(7, pm);
        let c = Client::new(7, space, 16);
        assert!(!c.has_work(Nanos::ZERO, Nanos::ZERO));
        let set = c.default_set();
        set.uq.copy.push(QueueEntry::Copy(dummy_task(64))).unwrap();
        assert!(c.has_work(Nanos::ZERO, Nanos::ZERO));
    }

    #[test]
    fn extra_queue_sets_are_independent() {
        let pm = Rc::new(PhysMem::new(4, AllocPolicy::Sequential));
        let space = AddressSpace::new(7, pm);
        let c = Client::new(7, space, 16);
        let fd = c.create_queue_set(16);
        assert_eq!(fd, 1);
        let s1 = c.set(1);
        s1.uq.copy.push(QueueEntry::Copy(dummy_task(64))).unwrap();
        assert!(c.set(0).uq.copy.is_empty());
        assert!(!c.set(1).uq.copy.is_empty());
    }
}
