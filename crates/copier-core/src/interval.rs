//! Byte-interval bookkeeping for partially completed copies.
//!
//! Copy progress arrives out of order (DMA tails can land before AVX
//! middles), so each in-flight task tracks the set of copied byte ranges
//! and derives which fixed-size *segments* are fully covered — those are
//! the bits set in the task's descriptor (§4.1).

/// A set of disjoint half-open byte intervals, kept sorted and merged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// Disjoint, sorted, non-adjacent `(start, end)` pairs.
    ranges: Vec<(usize, usize)>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        IntervalSet { ranges: Vec::new() }
    }

    /// A set containing one interval.
    pub fn from_range(start: usize, end: usize) -> Self {
        let mut s = Self::new();
        s.insert(start, end);
        s
    }

    /// Inserts `[start, end)`, merging neighbours.
    pub fn insert(&mut self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        // Find insertion window: all ranges overlapping or adjacent.
        let mut new_start = start;
        let mut new_end = end;
        let mut i = 0;
        let mut remove_from = None;
        let mut remove_to = 0;
        while i < self.ranges.len() {
            let (s, e) = self.ranges[i];
            if e < start {
                i += 1;
                continue;
            }
            if s > end {
                break;
            }
            // Overlapping or touching.
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            if remove_from.is_none() {
                remove_from = Some(i);
            }
            remove_to = i + 1;
            i += 1;
        }
        match remove_from {
            Some(from) => {
                self.ranges.drain(from..remove_to);
                self.ranges.insert(from, (new_start, new_end));
            }
            None => {
                let pos = self
                    .ranges
                    .iter()
                    .position(|&(s, _)| s > start)
                    .unwrap_or(self.ranges.len());
                self.ranges.insert(pos, (new_start, new_end));
            }
        }
    }

    /// Removes `[start, end)` from the set.
    pub fn remove(&mut self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        for &(s, e) in &self.ranges {
            if e <= start || s >= end {
                out.push((s, e));
                continue;
            }
            if s < start {
                out.push((s, start));
            }
            if e > end {
                out.push((end, e));
            }
        }
        self.ranges = out;
    }

    /// Whether `[start, end)` is fully contained.
    pub fn covers(&self, start: usize, end: usize) -> bool {
        if start >= end {
            return true;
        }
        self.ranges.iter().any(|&(s, e)| s <= start && end <= e)
    }

    /// Whether `[start, end)` intersects the set at all.
    pub fn intersects(&self, start: usize, end: usize) -> bool {
        if start >= end {
            return false;
        }
        self.ranges.iter().any(|&(s, e)| s < end && e > start)
    }

    /// Total bytes covered.
    pub fn total(&self) -> usize {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The parts of `[start, end)` *not* covered by the set, in order.
    pub fn gaps(&self, start: usize, end: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut cur = start;
        for &(s, e) in &self.ranges {
            if e <= cur {
                continue;
            }
            if s >= end {
                break;
            }
            if s > cur {
                out.push((cur, s.min(end)));
            }
            cur = cur.max(e);
            if cur >= end {
                break;
            }
        }
        if cur < end {
            out.push((cur, end));
        }
        out
    }

    /// The parts of `[start, end)` covered by the set, in order.
    pub fn overlaps(&self, start: usize, end: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for &(s, e) in &self.ranges {
            let lo = s.max(start);
            let hi = e.min(end);
            if lo < hi {
                out.push((lo, hi));
            }
        }
        out
    }

    /// Iterates the stored ranges.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ranges.iter().copied()
    }
}

/// Do two half-open ranges overlap?
pub fn ranges_overlap(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merges_overlapping_and_adjacent() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        s.insert(20, 30); // bridges the two
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(10, 40)]);
        s.insert(5, 12);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(5, 40)]);
        assert_eq!(s.total(), 35);
    }

    #[test]
    fn covers_and_intersects() {
        let mut s = IntervalSet::new();
        s.insert(0, 100);
        s.insert(200, 300);
        assert!(s.covers(0, 100));
        assert!(s.covers(10, 90));
        assert!(!s.covers(50, 150));
        assert!(!s.covers(100, 200));
        assert!(s.intersects(90, 110));
        assert!(!s.intersects(100, 200));
        assert!(s.covers(5, 5), "empty range always covered");
    }

    #[test]
    fn gaps_enumerates_missing_parts() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.gaps(0, 50), vec![(0, 10), (20, 30), (40, 50)]);
        assert_eq!(s.gaps(12, 18), vec![]);
        assert_eq!(s.gaps(15, 35), vec![(20, 30)]);
        assert_eq!(IntervalSet::new().gaps(3, 7), vec![(3, 7)]);
    }

    #[test]
    fn overlaps_enumerates_present_parts() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.overlaps(15, 35), vec![(15, 20), (30, 35)]);
        assert_eq!(s.overlaps(0, 5), vec![]);
    }

    #[test]
    fn remove_splits_ranges() {
        let mut s = IntervalSet::from_range(0, 100);
        s.remove(40, 60);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 40), (60, 100)]);
        s.remove(0, 10);
        s.remove(90, 200);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(10, 40), (60, 90)]);
        assert_eq!(s.total(), 60);
    }

    #[test]
    fn random_ops_match_bitset_model() {
        // Cross-check against a naive bit vector.
        let mut s = IntervalSet::new();
        let mut model = vec![false; 512];
        let mut seed = 0xDEADBEEFu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..300 {
            let a = (rnd() % 512) as usize;
            let b = (rnd() % 512) as usize;
            let (lo, hi) = (a.min(b), a.max(b));
            if rnd() % 3 == 0 {
                s.remove(lo, hi);
                model[lo..hi].iter_mut().for_each(|x| *x = false);
            } else {
                s.insert(lo, hi);
                model[lo..hi].iter_mut().for_each(|x| *x = true);
            }
            let total_model = model.iter().filter(|&&b| b).count();
            assert_eq!(s.total(), total_model);
            let q = (rnd() % 512) as usize;
            let r = ((q + (rnd() % 64) as usize).min(512)).max(q);
            let cov_model = model[q..r].iter().all(|&b| b);
            assert_eq!(s.covers(q, r), cov_model, "covers({q},{r})");
        }
    }
}
