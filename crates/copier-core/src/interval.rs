//! Byte-interval bookkeeping for partially completed copies.
//!
//! Copy progress arrives out of order (DMA tails can land before AVX
//! middles), so each in-flight task tracks the set of copied byte ranges
//! and derives which fixed-size *segments* are fully covered — those are
//! the bits set in the task's descriptor (§4.1).

/// A set of disjoint half-open byte intervals, kept sorted and merged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// Disjoint, sorted, non-adjacent `(start, end)` pairs.
    ranges: Vec<(usize, usize)>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        IntervalSet { ranges: Vec::new() }
    }

    /// A set containing one interval.
    pub fn from_range(start: usize, end: usize) -> Self {
        let mut s = Self::new();
        s.insert(start, end);
        s
    }

    /// Inserts `[start, end)`, merging neighbours. Returns the number of
    /// bytes newly covered (0 if the range was already fully present) so
    /// callers can maintain incremental byte aggregates without a rescan.
    ///
    /// Binary-searches the touched window (the ranges overlapping or
    /// adjacent to the insertion), so progress bookkeeping on a task with
    /// many disjoint landed pieces costs O(log n) plus the size of that
    /// window — not a scan of every piece.
    pub fn insert(&mut self, start: usize, end: usize) -> usize {
        if start >= end {
            return 0;
        }
        // First range that can merge: end >= start (adjacency included).
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        // Window of mergeable ranges: they begin at or before `end`. The
        // window is almost always 0–2 ranges, so a linear walk from `lo`
        // beats a second binary search.
        let mut hi = lo;
        while hi < self.ranges.len() && self.ranges[hi].0 <= end {
            hi += 1;
        }
        if lo == hi {
            self.ranges.insert(lo, (start, end));
            return end - start;
        }
        let absorbed: usize = self.ranges[lo..hi].iter().map(|&(s, e)| e - s).sum();
        let merged = (start.min(self.ranges[lo].0), end.max(self.ranges[hi - 1].1));
        self.ranges[lo] = merged;
        if hi - lo > 1 {
            self.ranges.drain(lo + 1..hi);
        }
        (merged.1 - merged.0) - absorbed
    }

    /// Removes `[start, end)` from the set. Returns the number of bytes
    /// actually removed (0 if the range was disjoint from the set).
    pub fn remove(&mut self, start: usize, end: usize) -> usize {
        if start >= end {
            return 0;
        }
        // Window of ranges intersecting the removal (strict overlap only).
        let lo = self.ranges.partition_point(|&(_, e)| e <= start);
        let mut hi = lo;
        while hi < self.ranges.len() && self.ranges[hi].0 < end {
            hi += 1;
        }
        if lo == hi {
            return 0;
        }
        let removed: usize = self.ranges[lo..hi]
            .iter()
            .map(|&(s, e)| e.min(end) - s.max(start))
            .sum();
        // Up to two boundary slivers survive; splice them over the window
        // in place instead of rebuilding the whole vector.
        let (s_first, _) = self.ranges[lo];
        let (_, e_last) = self.ranges[hi - 1];
        let left = (s_first < start).then_some((s_first, start));
        let right = (e_last > end).then_some((end, e_last));
        self.ranges.splice(lo..hi, left.into_iter().chain(right));
        removed
    }

    /// Whether `[start, end)` is fully contained.
    pub fn covers(&self, start: usize, end: usize) -> bool {
        if start >= end {
            return true;
        }
        // Only the last range starting at or before `start` can contain
        // the query (ranges are disjoint and sorted).
        let i = self.ranges.partition_point(|&(s, _)| s <= start);
        i > 0 && self.ranges[i - 1].1 >= end
    }

    /// Whether `[start, end)` intersects the set at all.
    pub fn intersects(&self, start: usize, end: usize) -> bool {
        if start >= end {
            return false;
        }
        // First range ending after `start` is the only candidate.
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        i < self.ranges.len() && self.ranges[i].0 < end
    }

    /// Total bytes covered.
    pub fn total(&self) -> usize {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The parts of `[start, end)` *not* covered by the set, in order.
    pub fn gaps(&self, start: usize, end: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut cur = start;
        // Skip straight to the first range that can affect the query.
        let lo = self.ranges.partition_point(|&(_, e)| e <= start);
        for &(s, e) in &self.ranges[lo..] {
            if s >= end {
                break;
            }
            if s > cur {
                out.push((cur, s.min(end)));
            }
            cur = cur.max(e);
            if cur >= end {
                break;
            }
        }
        if cur < end {
            out.push((cur, end));
        }
        out
    }

    /// The parts of `[start, end)` covered by the set, in order.
    pub fn overlaps(&self, start: usize, end: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let first = self.ranges.partition_point(|&(_, e)| e <= start);
        for &(s, e) in &self.ranges[first..] {
            if s >= end {
                break;
            }
            let lo = s.max(start);
            let hi = e.min(end);
            if lo < hi {
                out.push((lo, hi));
            }
        }
        out
    }

    /// The end of the stored range containing `pos`, if any. Lets callers
    /// skip covered prefixes without materializing gap lists.
    pub fn end_of_covering_range(&self, pos: usize) -> Option<usize> {
        let i = self.ranges.partition_point(|&(s, _)| s <= pos);
        (i > 0 && self.ranges[i - 1].1 > pos).then(|| self.ranges[i - 1].1)
    }

    /// Iterates the stored ranges.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ranges.iter().copied()
    }
}

/// Do two half-open ranges overlap?
pub fn ranges_overlap(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merges_overlapping_and_adjacent() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        s.insert(20, 30); // bridges the two
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(10, 40)]);
        s.insert(5, 12);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(5, 40)]);
        assert_eq!(s.total(), 35);
    }

    #[test]
    fn covers_and_intersects() {
        let mut s = IntervalSet::new();
        s.insert(0, 100);
        s.insert(200, 300);
        assert!(s.covers(0, 100));
        assert!(s.covers(10, 90));
        assert!(!s.covers(50, 150));
        assert!(!s.covers(100, 200));
        assert!(s.intersects(90, 110));
        assert!(!s.intersects(100, 200));
        assert!(s.covers(5, 5), "empty range always covered");
    }

    #[test]
    fn gaps_enumerates_missing_parts() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.gaps(0, 50), vec![(0, 10), (20, 30), (40, 50)]);
        assert_eq!(s.gaps(12, 18), vec![]);
        assert_eq!(s.gaps(15, 35), vec![(20, 30)]);
        assert_eq!(IntervalSet::new().gaps(3, 7), vec![(3, 7)]);
    }

    #[test]
    fn overlaps_enumerates_present_parts() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.overlaps(15, 35), vec![(15, 20), (30, 35)]);
        assert_eq!(s.overlaps(0, 5), vec![]);
    }

    #[test]
    fn remove_splits_ranges() {
        let mut s = IntervalSet::from_range(0, 100);
        s.remove(40, 60);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 40), (60, 100)]);
        s.remove(0, 10);
        s.remove(90, 200);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(10, 40), (60, 90)]);
        assert_eq!(s.total(), 60);
    }

    #[test]
    fn random_ops_match_bitset_model() {
        // Cross-check against a naive bit vector.
        let mut s = IntervalSet::new();
        let mut model = vec![false; 512];
        let mut seed = 0xDEADBEEFu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..300 {
            let a = (rnd() % 512) as usize;
            let b = (rnd() % 512) as usize;
            let (lo, hi) = (a.min(b), a.max(b));
            if rnd() % 3 == 0 {
                let delta = s.remove(lo, hi);
                let expect = model[lo..hi].iter().filter(|&&b| b).count();
                assert_eq!(delta, expect, "remove({lo},{hi}) delta");
                model[lo..hi].iter_mut().for_each(|x| *x = false);
            } else {
                let delta = s.insert(lo, hi);
                let expect = model[lo..hi].iter().filter(|&&b| !b).count();
                assert_eq!(delta, expect, "insert({lo},{hi}) delta");
                model[lo..hi].iter_mut().for_each(|x| *x = true);
            }
            let total_model = model.iter().filter(|&&b| b).count();
            assert_eq!(s.total(), total_model);
            let q = (rnd() % 512) as usize;
            let r = ((q + (rnd() % 64) as usize).min(512)).max(q);
            let cov_model = model[q..r].iter().all(|&b| b);
            assert_eq!(s.covers(q, r), cov_model, "covers({q},{r})");
        }
    }
}
