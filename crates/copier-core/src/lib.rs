//! # copier-core — the Copier service
//!
//! The paper's primary contribution (§4): coordinated asynchronous memory
//! copy as a first-class OS service. This crate provides:
//!
//! * the queue-based **CSH abstractions** — Copy/Sync/Handler rings with
//!   the lock-free slot-acquisition protocol of §5.1 ([`ring::Ring`]);
//! * **segment descriptors** for fine-grained copy-use pipelining
//!   ([`descriptor::SegDescriptor`]);
//! * **order dependency** across privilege levels via barrier keys and
//!   **data dependency** with promotion ([`client`], [`service`]);
//! * **layered copy absorption** with lazy tasks and abort ([`absorb`]);
//! * the **copy-length scheduler** and `copier` cgroup controller
//!   ([`sched`]);
//! * **proactive fault handling** and pinning during planning
//!   ([`service::Copier`]).
//!
//! Client-facing ergonomics (`amemcpy`/`csync`) live in `copier-client`.

pub mod absorb;
pub mod client;
pub mod config;
pub mod descriptor;
pub mod interval;
pub mod journal;
pub mod pendindex;
pub mod ring;
pub mod sched;
pub mod service;
pub mod task;

pub use absorb::{AbsorbPlan, SrcPiece, MAX_ABSORB_DEPTH};
pub use client::{
    Client, ClientId, OrderKey, PendEntry, QueuePair, QueueSet, TaintRange, DEFAULT_QUEUE_CAP,
};
pub use config::{AdmissionConfig, CopierConfig, PollMode};
pub use copier_hw::VerifyPolicy;
pub use descriptor::{CopyFault, SegDescriptor, DEFAULT_SEGMENT};
pub use interval::IntervalSet;
pub use journal::{AdmitRec, Journal, JournalStats, JournalStore, Recovered, TaintRec};
pub use pendindex::{PendIndex, RangeKind};
pub use ring::{Ring, RingFull};
pub use sched::min_live_vruntime;
pub use sched::{CGroup, Scheduler, DEFAULT_COPY_SLICE};
pub use service::{stats_from_vec, stats_layout, stats_to_vec, ControlObs, Copier, CopierStats};
pub use task::{CopyTask, Handler, Privilege, QueueEntry, SyncTask, TaskId};
