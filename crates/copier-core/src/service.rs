//! The Copier service: polling threads, planning, and execution (§4).
//!
//! Each Copier thread runs on a dedicated simulated core and loops:
//!
//! 1. **Drain** client CSH queues into per-set pending windows, merging
//!    u-mode and k-mode order via barrier keys (§4.2.1);
//! 2. **Serve Sync Tasks** (k-mode first): promotion with dependency
//!    closure, or `abort` (§4.2.2, §4.4);
//! 3. **Schedule** a client (CFS-by-copy-length within cgroups, §4.5.3);
//! 4. **Select** a batch of runnable, mutually independent tasks, applying
//!    layered copy absorption (§4.4) and deferring absorbed obligations;
//! 5. **Plan** each task: proactive fault handling — resolve + pin every
//!    page, via the ATCache when possible (§4.5.4, §4.3);
//! 6. **Dispatch** the batch to the piggybacked AVX+DMA units (§4.3),
//!    marking descriptor segments as bytes land;
//! 7. **Complete**: run `KFUNC`s, queue `UFUNC`s, unpin, release.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use copier_hw::{
    slice_extents, split_subtasks, ATCache, CostModel, CpuCopyKind, DispatchReport, Dispatcher,
    DmaEngine, PlannedCopy, ProgressFn,
};
use copier_mem::{
    frames_of, AddressSpace, Extent, FrameId, MemError, PhysMem, VirtAddr, PAGE_SIZE,
};
use copier_sim::trace::{fnv_fold, TraceEvent, FNV_OFFSET};
use copier_sim::{Core, CrashPoint, Nanos, Notify, SimHandle};

use crate::absorb::{self, AbsorbPlan};
use crate::client::{Client, ClientId, PendEntry, QueueSet, TaintRange};
use crate::config::{CopierConfig, PollMode};
use crate::descriptor::{CopyFault, SegDescriptor};
use crate::interval::IntervalSet;
use crate::journal::{AdmitRec, Journal, JournalStats, Recovered, TaintRec};
use crate::sched::{vruntime_before, Scheduler};
use crate::task::{CopyTask, Handler, QueueEntry, SyncTask, TaskId};

/// Per-thread dispatch progress map, reused across rounds (cleared, not
/// reallocated — host-only optimization).
type ByTidMap = Rc<RefCell<BTreeMap<TaskId, Rc<PendEntry>>>>;

/// Per-thread round scratch, reused across polls so a settled round
/// allocates nothing: the assigned-client list is refilled in place and
/// the dispatch progress map is cleared, not rebuilt.
struct RoundScratch {
    clients: Vec<Rc<Client>>,
    by_tid: ByTidMap,
}

/// Aggregate service statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CopierStats {
    /// Copy tasks fully completed.
    pub tasks_completed: u64,
    /// Bytes physically copied by the service.
    pub bytes_copied: u64,
    /// Bytes whose source was short-circuited by absorption.
    pub bytes_absorbed: u64,
    /// Bytes of deferred obligations eventually executed.
    pub bytes_deferred_executed: u64,
    /// Sync tasks processed.
    pub syncs: u64,
    /// Promotions performed.
    pub promotions: u64,
    /// Tasks aborted.
    pub aborts: u64,
    /// Tasks failed by faults.
    pub faults: u64,
    /// Idle poll sweeps.
    pub idle_polls: u64,
    /// Scheduling rounds that executed work.
    pub busy_rounds: u64,
    /// Dispatcher aggregate.
    pub dispatch: DispatchReport,
    /// Page faults proactively resolved during planning.
    pub proactive_faults: u64,
    /// Transient-failed DMA descriptors resubmitted.
    pub retries: u64,
    /// Bytes rescued by the CPU after DMA gave up on them.
    pub fallback_bytes: u64,
    /// DMA channels currently quarantined (point-in-time, not cumulative).
    pub quarantined_channels: u64,
    /// Orphaned tasks reclaimed from dead clients.
    pub orphans_reclaimed: u64,
    /// Dependent tasks aborted in dependency order after a fault (§4.4).
    pub dependents_aborted: u64,
    /// Submissions rejected by admission control (quota or watermark).
    pub admission_rejected: u64,
    /// Bytes of rejected submissions (the shed offered load).
    pub shed_bytes: u64,
    /// Submission credits returned to clients on the completion path.
    pub credits_granted: u64,
    /// Tasks served via the degraded synchronous path under memory
    /// pressure (§4.6 break-even fallback; no pinning, no absorption).
    pub degraded_sync_copies: u64,
    /// Transitions of the physical pool into the pressured state.
    pub pressure_events: u64,
    /// Hazard/absorption analyses performed (one per considered task).
    pub hazard_scans: u64,
    /// Records visited by address-index window queries (analysis, csync
    /// lookup, and taint cascades) — the work the index did instead of
    /// full window sweeps.
    pub index_hits: u64,
    /// High-water mark of resident index records across all queue sets.
    pub index_entries_peak: u64,
    /// Poll rounds that found no batch to execute (the settled fast path).
    pub rounds_settled: u64,
    /// Poll rounds that selected and executed a batch.
    pub rounds_active: u64,
    /// Injected crashes taken by this incarnation (DESIGN.md §15).
    pub crashes: u64,
    /// Unfinished window entries re-adopted from the journal after a
    /// restart; execution continues where the dead service stopped.
    pub recovered_tasks: u64,
    /// Journaled entries found already finished at adoption (the crash
    /// hit between the bytes landing and finalization) and settled then.
    pub recovered_finalized: u64,
    /// Window entries whose admission never became durable, dropped
    /// undelivered at adoption — recovered via client resubmission.
    pub dropped_unjournaled: u64,
    /// Journaled tasks whose destination was found torn at recovery and
    /// poisoned [`CopyFault::Torn`].
    pub torn_poisoned: u64,
    /// Tasks whose verification mismatch survived bounded repair and were
    /// poisoned [`CopyFault::Corrupted`].
    pub corrupted_poisoned: u64,
    /// Scrub chunks re-digested by the background walker.
    pub scrub_chunks: u64,
    /// Rotted scrub chunks healed from an intact replica.
    pub scrub_heals: u64,
    /// Rotted scrub chunks with no intact replica (taint remembered).
    pub scrub_unrepairable: u64,
    /// DMA channels quarantined by corruption strikes (point-in-time,
    /// disjoint from hard-death `quarantined_channels`).
    pub corrupt_quarantined: u64,
}

struct Selected {
    set: Rc<QueueSet>,
    entry: Rc<PendEntry>,
    plan: AbsorbPlan,
    /// Per-round byte budget for this task (copy-slice partial execution).
    cap: usize,
}

/// A long-lived region registered for background integrity scrubbing
/// (pinned I/O buffers, journaled state): the walker re-digests one chunk
/// per `scrub_period` rounds against the golden digests taken at
/// registration and heals rot from the replica.
struct ScrubRegion {
    client: ClientId,
    space: Rc<AddressSpace>,
    /// The guarded range.
    primary: VirtAddr,
    /// Known-good copy of the same bytes; heal tasks source from it.
    replica: VirtAddr,
    len: usize,
    chunk: usize,
    /// Full-coverage (stride-1) digest per chunk, taken at registration.
    golden: Vec<u64>,
    /// Chunk found rotted with no intact replica: taint remembered once,
    /// chunk retired from the walk.
    dead: Vec<Cell<bool>>,
    /// A heal copy for this chunk is queued or in flight; the walker
    /// skips it until the task settles (the handler clears the flag).
    healing: Vec<Rc<Cell<bool>>>,
}

/// The asynchronous-copy OS service.
pub struct Copier {
    h: SimHandle,
    pm: Rc<PhysMem>,
    cost: Rc<CostModel>,
    cfg: CopierConfig,
    dispatcher: Rc<Dispatcher>,
    atcache: Rc<ATCache>,
    /// The copy-length scheduler and cgroup controller.
    pub sched: Scheduler,
    clients: RefCell<Vec<Rc<Client>>>,
    cores: Vec<Rc<Core>>,
    active_threads: Cell<usize>,
    scenario_active: Cell<bool>,
    wake: Rc<Notify>,
    parked: Cell<usize>,
    next_tid: Cell<TaskId>,
    next_client: Cell<ClientId>,
    stats: RefCell<CopierStats>,
    stopping: Cell<bool>,
    /// Bytes currently admitted into service windows (all clients).
    global_bytes: Cell<u64>,
    /// Latched global-watermark shedding state (hysteresis).
    shedding: Cell<bool>,
    /// Monotone round counter feeding the record/replay trace (round
    /// identity in the event log; counts every poll round, active or
    /// idle — idle rounds emit nothing thanks to lazy headers).
    round_no: Cell<u64>,
    /// Set when an injected crash killed this incarnation: threads exit
    /// immediately and the control plane survives only in the journal
    /// store and client-owned memory.
    crashed: Cell<bool>,
    /// Service incarnation epoch (journal-derived; 0 when unjournaled).
    epoch: Cell<u64>,
    /// This incarnation's journal writer, if journaling is on.
    journal: Option<Journal>,
    /// What journal replay reconstructed at construction; consumed by
    /// [`Copier::adopt_client`] for digest reconciliation.
    recovered: RefCell<Option<Recovered>>,
    /// Regions under background scrub (§integrity).
    scrub: RefCell<Vec<ScrubRegion>>,
    /// Scrub cadence counter. Deliberately not `round_no`: that one only
    /// advances when tracing is on, and the walker must pace identically
    /// either way.
    scrub_tick: Cell<u64>,
    /// Walk resume position (chunk index across all regions).
    scrub_pos: Cell<usize>,
}

impl Copier {
    /// Creates the service over dedicated `cores`.
    pub fn new(
        h: &SimHandle,
        pm: Rc<PhysMem>,
        cores: Vec<Rc<Core>>,
        cost: Rc<CostModel>,
        cfg: CopierConfig,
    ) -> Rc<Self> {
        assert!(!cores.is_empty(), "Copier needs at least one core");
        let dma = cfg.use_dma.then(|| {
            let d = DmaEngine::with_channels(
                h,
                Rc::clone(&pm),
                Rc::clone(&cost),
                cfg.dma_channels.max(1),
                cfg.fault_plan.clone(),
            );
            d.set_corruption_threshold(cfg.corrupt_quarantine_threshold);
            d
        });
        let dispatcher = Rc::new(Dispatcher::new(Rc::clone(&pm), Rc::clone(&cost), dma));
        dispatcher.set_verify(cfg.verify, cfg.repair_limit);
        let atcache = Rc::new(ATCache::new(cfg.atcache_capacity.max(1)));
        atcache.set_enabled(cfg.atcache_capacity > 0);
        let threads = if cfg.auto_scale { 1 } else { cores.len() };
        // Journal attach: replay whatever a previous incarnation left in
        // the store (truncating a torn tail) and open a new epoch. The
        // tid high-water mark carries forward so task ids never collide
        // across incarnations, and a checkpointed stats vector restores
        // the cumulative counters.
        let (journal, recovered) = match &cfg.journal {
            Some(store) => {
                let (j, r) = Journal::attach(store);
                (Some(j), Some(r))
            }
            None => (None, None),
        };
        let epoch = journal.as_ref().map_or(0, |j| j.epoch());
        let next_tid = recovered.as_ref().map_or(1, |r| r.next_tid.max(1));
        let stats = recovered
            .as_ref()
            .and_then(|r| r.stats.as_deref())
            .map(stats_from_vec)
            .unwrap_or_default();
        Rc::new(Copier {
            h: h.clone(),
            pm,
            cost,
            dispatcher,
            atcache,
            sched: {
                let s = Scheduler::new();
                s.set_copy_slice(cfg.copy_slice);
                s
            },
            cfg,
            clients: RefCell::new(Vec::new()),
            cores,
            active_threads: Cell::new(threads),
            scenario_active: Cell::new(true),
            wake: Rc::new(Notify::new()),
            parked: Cell::new(0),
            next_tid: Cell::new(next_tid),
            next_client: Cell::new(1),
            stats: RefCell::new(stats),
            stopping: Cell::new(false),
            global_bytes: Cell::new(0),
            shedding: Cell::new(false),
            round_no: Cell::new(0),
            crashed: Cell::new(false),
            epoch: Cell::new(epoch),
            journal,
            recovered: RefCell::new(recovered),
            scrub: RefCell::new(Vec::new()),
            scrub_tick: Cell::new(0),
            scrub_pos: Cell::new(0),
        })
    }

    /// The cost model shared with clients.
    pub fn cost_model(&self) -> &Rc<CostModel> {
        &self.cost
    }

    /// The simulation handle (clients use it for yield-waits).
    pub fn sim_handle(&self) -> SimHandle {
        self.h.clone()
    }

    /// The physical pool.
    pub fn phys(&self) -> &Rc<PhysMem> {
        &self.pm
    }

    /// The active configuration.
    pub fn config(&self) -> &CopierConfig {
        &self.cfg
    }

    /// The ATCache (for experiment counters).
    pub fn atcache(&self) -> &Rc<ATCache> {
        &self.atcache
    }

    /// Snapshot of the service statistics.
    pub fn stats(&self) -> CopierStats {
        let mut s = *self.stats.borrow();
        s.quarantined_channels = self.dispatcher.dma().map_or(0, |d| d.quarantined() as u64);
        s.pressure_events = self.pm.pressure_events();
        s.corrupt_quarantined = self.dispatcher.dma().map_or(0, |d| d.corrupt_quarantined());
        s
    }

    /// Bytes currently admitted into service windows across all clients
    /// (the quantity the global watermarks gate).
    pub fn admitted_bytes(&self) -> u64 {
        self.global_bytes.get()
    }

    /// The `(pending, index, stats)` state hashes closing an active
    /// traced round (DESIGN.md §14). Every component is iterated in a
    /// deterministic order (registration order for clients and sets,
    /// window-key order for entries, BTreeMap order inside the index),
    /// so equal states hash equal regardless of how they were reached.
    fn trace_hashes(&self) -> (u64, u64, u64) {
        let mut hp = FNV_OFFSET;
        let mut hx = FNV_OFFSET;
        for c in self.clients.borrow().iter() {
            let mut si = 0;
            while let Some(set) = c.set_at(si) {
                si += 1;
                for e in set.pending.borrow().iter() {
                    hp = fnv_fold(hp, e.tid);
                    hp = fnv_fold(hp, e.key.0);
                    hp = fnv_fold(hp, e.key.1 as u64);
                    hp = fnv_fold(hp, e.key.2);
                    hp = fnv_fold(hp, e.task.len as u64);
                    for ivs in [&e.copied, &e.inflight, &e.deferred] {
                        for (lo, hi) in ivs.borrow().iter() {
                            hp = fnv_fold(hp, lo as u64);
                            hp = fnv_fold(hp, hi as u64);
                        }
                        hp = fnv_fold(hp, u64::MAX); // interval-set sentinel
                    }
                    let flags = (e.promoted.get() as u64)
                        | (e.aborted.get() as u64) << 1
                        | (e.failed.get().map_or(0, |f| copy_fault_code(f) as u64)) << 2;
                    hp = fnv_fold(hp, flags);
                }
                hx = fnv_fold(hx, set.index.digest());
            }
        }
        (hp, hx, self.stats_digest())
    }

    /// Canonical flattening of [`CopierStats`] (field order is the
    /// struct's declaration order; append-only like `stats_key` in the
    /// chaos suite) — the single shape both the trace state hash and the
    /// journal checkpoint use.
    fn stats_vec(&self) -> Vec<u64> {
        let s = self.stats();
        vec![
            s.tasks_completed,
            s.bytes_copied,
            s.bytes_absorbed,
            s.bytes_deferred_executed,
            s.syncs,
            s.promotions,
            s.aborts,
            s.faults,
            s.idle_polls,
            s.busy_rounds,
            s.dispatch.cpu_bytes as u64,
            s.dispatch.dma_bytes as u64,
            s.dispatch.dma_descriptors as u64,
            s.dispatch.dma_wait.as_nanos(),
            s.dispatch.retries,
            s.dispatch.fallback_bytes as u64,
            s.proactive_faults,
            s.retries,
            s.fallback_bytes,
            s.quarantined_channels,
            s.orphans_reclaimed,
            s.dependents_aborted,
            s.admission_rejected,
            s.shed_bytes,
            s.credits_granted,
            s.degraded_sync_copies,
            s.pressure_events,
            s.hazard_scans,
            s.index_hits,
            s.index_entries_peak,
            s.rounds_settled,
            s.rounds_active,
            s.crashes,
            s.recovered_tasks,
            s.recovered_finalized,
            s.dropped_unjournaled,
            s.torn_poisoned,
            s.dispatch.corruptions,
            s.dispatch.repairs,
            s.corrupted_poisoned,
            s.scrub_chunks,
            s.scrub_heals,
            s.scrub_unrepairable,
            s.corrupt_quarantined,
        ]
    }

    /// FNV-1a fold of [`Copier::stats_vec`].
    fn stats_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for v in self.stats_vec() {
            h = fnv_fold(h, v);
        }
        h
    }

    /// Resets the statistics.
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = CopierStats::default();
    }

    /// Registers a client with its user address space
    /// (`copier_create_mapped_queue`).
    pub fn register_client(&self, uspace: Rc<AddressSpace>) -> Rc<Client> {
        let id = self.next_client.get();
        self.next_client.set(id + 1);
        let c = Client::new(id, uspace, self.cfg.queue_cap);
        // The credit pool is the client-visible face of the in-flight task
        // quota: libCopier consumes one credit per submission, the service
        // returns one per completion.
        c.set_credit_cap(self.cfg.admission.max_client_tasks);
        c.epoch.set(self.epoch.get());
        self.clients.borrow_mut().push(Rc::clone(&c));
        c
    }

    /// Wakes parked Copier threads (`copier_awaken`).
    pub fn awaken(&self) {
        if self.parked.get() > 0 {
            self.wake.notify_all();
        }
    }

    /// Scenario-driven gate (§5.3): when inactive, threads sleep.
    pub fn set_scenario_active(&self, on: bool) {
        self.scenario_active.set(on);
        if on {
            self.wake.notify_all();
        }
    }

    /// Stops all service threads (test teardown). An orderly stop flushes
    /// staged journal records first — unlike a crash, nothing is lost.
    pub fn stop(&self) {
        if let Some(j) = &self.journal {
            j.flush();
        }
        self.stopping.set(true);
        self.wake.notify_all();
    }

    /// Whether an injected crash killed this incarnation. The library
    /// treats a crashed service as down: it falls back to synchronous
    /// copies until re-attached to a successor (§4.6-style fallback).
    pub fn has_crashed(&self) -> bool {
        self.crashed.get()
    }

    /// This incarnation's epoch (0 when journaling is off).
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Journal activity counters, if journaling is on.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.journal.as_ref().map(|j| j.stats())
    }

    /// What journal replay reconstructed at construction (`None` when
    /// journaling is off).
    pub fn recovered(&self) -> Option<Recovered> {
        self.recovered.borrow().clone()
    }

    /// Consults the crash oracle at `point`; on fire, this incarnation
    /// dies on the spot: every thread exits at its next check, no further
    /// journal flush happens (beyond what the point itself implies), and
    /// recovery is left to a successor service over the same store.
    fn maybe_crash(&self, point: CrashPoint) -> bool {
        let Some(plan) = &self.cfg.fault_plan else {
            return false;
        };
        if !plan.decide_crash(point) {
            return false;
        }
        self.crashed.set(true);
        self.stopping.set(true);
        self.stats.borrow_mut().crashes += 1;
        self.wake.notify_all();
        true
    }

    /// Flushes staged journal records; compacts against a checkpoint of
    /// the stats vector when the store outgrew its threshold.
    fn journal_flush(&self) {
        if let Some(j) = &self.journal {
            if j.flush() {
                j.compact(&self.stats_vec());
            }
        }
    }

    /// Currently active thread count (auto-scaling observable).
    pub fn active_threads(&self) -> usize {
        self.active_threads.get()
    }

    /// Starts one service task per core.
    pub fn start(self: &Rc<Self>) {
        for i in 0..self.cores.len() {
            let me = Rc::clone(self);
            self.h.spawn(
                &format!("copier-{i}"),
                async move { me.thread_loop(i).await },
            );
        }
    }

    async fn thread_loop(self: Rc<Self>, idx: usize) {
        let core = Rc::clone(&self.cores[idx]);
        let mut idle_streak = 0u32;
        // Per-thread round scratch: the dispatch progress map is cleared
        // and refilled each round instead of reallocated. Each thread owns
        // its own, and a round's DMA callbacks all settle before
        // `execute_batch` returns, so clearing at the next round is safe.
        let mut scratch = RoundScratch {
            clients: Vec::new(),
            by_tid: Rc::new(RefCell::new(BTreeMap::new())),
        };
        loop {
            if self.stopping.get() {
                // Closing memory checkpoint: the trace ends with a full
                // physical digest so replay fidelity is checked even when
                // the run stopped between periodic checkpoints. A crashed
                // incarnation writes nothing more — like a real crash,
                // its trace just ends mid-stream.
                if idx == 0 && !self.crashed.get() {
                    if let Some(t) = &self.cfg.tracer {
                        t.record_mem(self.pm.digest());
                    }
                }
                return;
            }
            // Auto-scaling park: threads beyond the active count sleep.
            if idx >= self.active_threads.get() {
                self.parked.set(self.parked.get() + 1);
                self.wake.wait_timeout(&self.h, Nanos::from_millis(1)).await;
                self.parked.set(self.parked.get() - 1);
                continue;
            }
            // Scenario gate.
            if self.cfg.polling == PollMode::ScenarioDriven && !self.scenario_active.get() {
                self.parked.set(self.parked.get() + 1);
                self.wake.notified().await;
                self.parked.set(self.parked.get() - 1);
                core.advance(self.cfg.wake_latency).await;
                continue;
            }
            let did = self.round(idx, &core, &mut scratch).await;
            if idx == 0 && self.cfg.auto_scale {
                self.autoscale();
            }
            if did {
                idle_streak = 0;
                self.stats.borrow_mut().busy_rounds += 1;
                continue;
            }
            self.stats.borrow_mut().idle_polls += 1;
            core.advance(self.cost.poll_idle).await;
            idle_streak += 1;
            match self.cfg.polling {
                PollMode::Napi {
                    spin_rounds,
                    park_timeout,
                } => {
                    if idle_streak > spin_rounds {
                        self.parked.set(self.parked.get() + 1);
                        let notified = self.wake.wait_timeout(&self.h, park_timeout).await;
                        self.parked.set(self.parked.get() - 1);
                        if notified {
                            // Kthread wakeup latency before the next sweep.
                            core.advance(self.cfg.wake_latency).await;
                        }
                        idle_streak = 0;
                    }
                }
                PollMode::ScenarioDriven => {
                    // Even inside an active scenario the thread sleeps when
                    // queues run empty (§6.2.4: "sleeps when queues are
                    // empty") — submissions call copier_awaken.
                    if idle_streak > 4 {
                        self.parked.set(self.parked.get() + 1);
                        let notified = self.wake.wait_timeout(&self.h, Nanos::from_millis(5)).await;
                        self.parked.set(self.parked.get() - 1);
                        if notified {
                            core.advance(self.cfg.wake_latency).await;
                        }
                        idle_streak = 0;
                    }
                }
            }
        }
    }

    fn autoscale(&self) {
        let mut load = 0usize;
        for c in self.clients.borrow().iter() {
            for s in c.sets.borrow().iter() {
                load += s.pending_bytes();
            }
        }
        let active = self.active_threads.get();
        if load > self.cfg.high_load && active < self.cores.len() {
            self.active_threads.set(active + 1);
            self.wake.notify_all();
        } else if load < self.cfg.low_load && active > 1 {
            self.active_threads.set(active - 1);
        }
    }

    /// Refills `out` with this thread's client assignment. The buffer is
    /// per-thread scratch, so a settled poll reuses its capacity instead
    /// of allocating a fresh snapshot.
    fn assigned_into(&self, idx: usize, out: &mut Vec<Rc<Client>>) {
        out.clear();
        let n = self.active_threads.get().max(1);
        for (i, c) in self.clients.borrow().iter().enumerate() {
            if i % n == idx {
                out.push(Rc::clone(c));
            }
        }
    }

    /// Drains every set of every assigned client, walking sets by index
    /// (no snapshot clone; sets are never removed, only appended).
    fn drain_assigned(&self, clients: &[Rc<Client>]) -> usize {
        let mut n = 0usize;
        for c in clients {
            let mut si = 0;
            while let Some(set) = c.set_at(si) {
                n += self.drain_set(c, &set, si as u32);
                si += 1;
            }
        }
        n
    }

    /// One service round. Returns whether any work was done.
    ///
    /// With a tracer configured this wraps the round in `begin_round` /
    /// `end_round` so every event the round emits carries its round
    /// identity, closes active rounds with the `(pending, index, stats)`
    /// state hashes, and appends periodic physical-memory digests. The
    /// tracer is host-side bookkeeping only — no virtual time is charged,
    /// so traced and untraced runs have identical timelines. Round
    /// attribution is per-service (one counter), which is exact for the
    /// single-core service configs the record/replay fixtures use.
    async fn round(
        self: &Rc<Self>,
        idx: usize,
        core: &Rc<Core>,
        scratch: &mut RoundScratch,
    ) -> bool {
        let Some(tracer) = self.cfg.tracer.clone() else {
            return self.round_inner(idx, core, scratch).await;
        };
        let round_no = self.round_no.get() + 1;
        self.round_no.set(round_no);
        tracer.begin_round(round_no, self.h.now().as_nanos());
        let did = self.round_inner(idx, core, scratch).await;
        let mem_due = tracer.end_round(|| self.trace_hashes());
        if mem_due {
            tracer.record_mem(self.pm.digest());
        }
        did
    }

    async fn round_inner(
        self: &Rc<Self>,
        idx: usize,
        core: &Rc<Core>,
        scratch: &mut RoundScratch,
    ) -> bool {
        self.assigned_into(idx, &mut scratch.clients);
        let clients = &scratch.clients;
        // 0. Background integrity (§integrity): one oracle rot draw per
        // round (zero PRNG draws unless `rot_prob` is enabled, so
        // rot-free runs are byte-identical), then the scrub walker. Both
        // are host-side — no virtual time is charged; heal copies enter
        // the ordinary queues and pace like any other submission.
        if idx == 0 {
            if let Some(plan) = &self.cfg.fault_plan {
                if let Some(p) = plan.decide_rot() {
                    self.inject_rot(p);
                }
            }
            if self.cfg.scrub_period > 0 && !self.scrub.borrow().is_empty() {
                let t = self.scrub_tick.get() + 1;
                self.scrub_tick.set(t);
                if t.is_multiple_of(self.cfg.scrub_period) {
                    self.scrub_walk();
                }
            }
        }
        // 1. Drain queues into windows.
        let mut drained = self.drain_assigned(clients);
        if drained > 0 {
            core.advance(Nanos(self.cfg.drain_cost.as_nanos() * drained as u64))
                .await;
            // Settle window: submissions arrive in bursts (a syscall path
            // or an app loop submits several copies back to back); a short
            // pause lets the burst land so absorption and e-piggyback see
            // adjacent tasks together.
            if self.cfg.aggregation_delay > Nanos::ZERO {
                core.advance(self.cfg.aggregation_delay).await;
                let more = self.drain_assigned(clients);
                if more > 0 {
                    core.advance(Nanos(self.cfg.drain_cost.as_nanos() * more as u64))
                        .await;
                    drained += more;
                }
            }
        }
        // 2. Sync queues (k-mode before u-mode, §4.2.2).
        let mut synced = 0usize;
        for c in clients {
            let mut si = 0;
            while let Some(set) = c.set_at(si) {
                si += 1;
                while let Some(st) = set.kq.sync.pop() {
                    self.handle_sync(&set, st);
                    synced += 1;
                }
                while let Some(st) = set.uq.sync.pop() {
                    self.handle_sync(&set, st);
                    synced += 1;
                }
            }
        }
        if synced > 0 {
            core.advance(Nanos(self.cfg.drain_cost.as_nanos() * synced as u64))
                .await;
        }
        if drained + synced > 0 {
            if let Some(t) = &self.cfg.tracer {
                t.emit(TraceEvent::Drained {
                    copies: drained as u64,
                    syncs: synced as u64,
                });
            }
            // Crash point: after draining, before the admissions became
            // durable — the staged Admit records die with this
            // incarnation, so adoption drops the entries undelivered and
            // the library resubmits them.
            if self.maybe_crash(CrashPoint::MidDrain) {
                return true;
            }
            // Crash point: mid-journal-flush — staged records reach the
            // store but the final one is torn halfway, exercising the
            // replayer's torn-tail truncation.
            if self.maybe_crash(CrashPoint::MidJournalFlush) {
                if let Some(j) = &self.journal {
                    j.flush_torn();
                }
                return true;
            }
            // Durability boundary: this round's admissions flush before
            // any of their bytes can move, so a journaled-but-absent task
            // is never one with partial undigested progress.
            self.journal_flush();
        }
        // 3. Schedule a client.
        let now = self.h.now();
        let Some(client) = self.sched.pick(clients, now, self.cfg.lazy_period) else {
            self.stats.borrow_mut().rounds_settled += 1;
            return drained + synced > 0;
        };
        if let Some(t) = &self.cfg.tracer {
            t.emit(TraceEvent::SchedPick { client: client.id });
        }
        // 4. Select a batch.
        let selected = self.select_batch(&client, now);
        if selected.is_empty() {
            self.stats.borrow_mut().rounds_settled += 1;
            return drained + synced > 0;
        }
        self.stats.borrow_mut().rounds_active += 1;
        // 5–7. Plan, dispatch, complete.
        self.execute(core, &client, selected, &scratch.by_tid).await;
        // Completion records staged by finalize become durable at round
        // end; a crash inside `execute` loses them and the tasks replay
        // as live, to be reconciled by digest at adoption.
        if !self.crashed.get() {
            self.journal_flush();
        }
        true
    }

    /// Drains one queue set's copy queues into its pending window,
    /// applying admission control to every copy task at the drain
    /// boundary — the backstop for submitters that bypass the library's
    /// credit pool.
    fn drain_set(&self, client: &Rc<Client>, set: &Rc<QueueSet>, set_idx: u32) -> usize {
        let mut n = 0;
        // k-mode first so barrier keys are in place before u entries drain.
        while let Some(e) = set.kq.copy.pop() {
            n += 1;
            match e {
                QueueEntry::Barrier { peer_pos } => set.cur_k_key.set(peer_pos),
                QueueEntry::Copy(t) => {
                    if !self.admit_traced(client, &t) {
                        self.shed(client, set, t);
                        continue;
                    }
                    let key = (set.cur_k_key.get(), 0u8, bump(&set.seq));
                    self.push_pending(client, set, set_idx, key, t);
                }
            }
        }
        while let Some(e) = set.uq.copy.pop() {
            n += 1;
            match e {
                QueueEntry::Barrier { .. } => {}
                QueueEntry::Copy(t) => {
                    if !self.admit_traced(client, &t) {
                        self.shed(client, set, t);
                        continue;
                    }
                    let key = (bump(&set.u_index), 1u8, bump(&set.seq));
                    self.push_pending(client, set, set_idx, key, t);
                }
            }
        }
        n
    }

    /// [`Self::admit`] plus the record/replay emission of the decision —
    /// one `Admit` event per copy submission at the drain boundary.
    fn admit_traced(&self, client: &Rc<Client>, t: &CopyTask) -> bool {
        let admitted = self.admit(client, t);
        if let Some(tr) = &self.cfg.tracer {
            tr.emit(TraceEvent::Admit {
                client: client.id,
                len: t.len as u64,
                admitted,
            });
        }
        admitted
    }

    /// Admission decision for one submission. Per-client quotas are
    /// unconditional. The global byte watermark sheds with hysteresis
    /// (latched above `global_high_bytes`, released below
    /// `global_low_bytes`) and is priority-aware: the least-served live
    /// client — the one the copied-length scheduler would favor — is
    /// exempt, so overload never starves a light tenant.
    fn admit(&self, client: &Rc<Client>, t: &CopyTask) -> bool {
        let q = &self.cfg.admission;
        if client.inflight_tasks.get() >= q.max_client_tasks {
            return false;
        }
        if client.inflight_bytes.get().saturating_add(t.len as u64) > q.max_client_bytes {
            return false;
        }
        let g = self.global_bytes.get();
        if self.shedding.get() {
            if g <= q.global_low_bytes {
                self.shedding.set(false);
            }
        } else if g >= q.global_high_bytes {
            self.shedding.set(true);
        }
        !self.shedding.get() || self.least_served(client)
    }

    /// Whether `client` is (tied for) the least-served live client — the
    /// same yardstick as [`Scheduler::pick`]'s fairness order. The
    /// exemption is strict: under a symmetric overload every tenant takes
    /// its turn at the minimum, so shedding rotates fairly instead of
    /// exempting the whole band and never shedding at all.
    fn least_served(&self, client: &Rc<Client>) -> bool {
        // Wrap-safe minimum: a client is least-served iff no live client
        // is strictly before it in vruntime order. A plain `min()` would
        // misrank a freshly wrapped accumulator (see `vruntime_before`).
        let cur = client.copied_total.get();
        !self
            .clients
            .borrow()
            .iter()
            .filter(|c| !c.dead.get())
            .any(|c| vruntime_before(c.copied_total.get(), cur))
    }

    /// Rejects a submission: the descriptor is poisoned `Overloaded` (a
    /// typed, observable outcome — never a silent drop), the completion
    /// handler still runs, and the client's submission credit returns so
    /// its pool reflects true in-flight depth.
    fn shed(&self, client: &Rc<Client>, set: &Rc<QueueSet>, t: CopyTask) {
        t.descr.poison(CopyFault::Overloaded);
        // The delivery claim keeps shedding exactly-once too: a
        // crash-resubmitted duplicate that gets shed does not run the
        // handler or mint a second credit.
        if t.descr.claim_delivery() {
            self.deliver_handler(set, &t);
            client.grant_credit();
        }
        let mut st = self.stats.borrow_mut();
        st.admission_rejected += 1;
        st.shed_bytes += t.len as u64;
    }

    fn push_pending(
        &self,
        client: &Rc<Client>,
        set: &Rc<QueueSet>,
        set_idx: u32,
        key: (u64, u8, u64),
        t: CopyTask,
    ) {
        // Dependency cascade across rounds (§4.4): a task sourcing from a
        // range a faulted producer never wrote would read garbage — fail it
        // up front with the producer's fault instead of letting absorption
        // or a raw copy forward stale bytes.
        let (ssp, slo, shi) = t.src_range();
        let hit = set
            .tainted
            .borrow()
            .iter()
            .find(|x| x.space == ssp && x.lo < shi && slo < x.hi)
            .map(|x| x.fault);
        if let Some(fault) = hit {
            t.descr.poison(fault);
            if t.descr.claim_delivery() {
                self.deliver_handler(set, &t);
                // No window entry exists to finalize, so the submission
                // credit comes back here instead of on the completion path.
                client.grant_credit();
            }
            let (dsp, dlo, dhi) = t.dst_range();
            self.remember_taint(client, set, dsp, dlo, dhi, fault);
            let mut st = self.stats.borrow_mut();
            st.faults += 1;
            st.dependents_aborted += 1;
            return;
        }
        // A fresh copy that fully overwrites a tainted range heals it.
        let (dsp, dlo, dhi) = t.dst_range();
        set.tainted
            .borrow_mut()
            .retain(|x| !(x.space == dsp && dlo <= x.lo && x.hi <= dhi));
        // Zero-length copies (legal, like `memcpy(d, s, 0)`) complete
        // immediately at the drain boundary: their descriptor is born
        // all-ready, so a window entry would never be selected — and
        // therefore never finalized, leaking its handler and credit
        // forever. (The taint check above can never hit an empty source
        // range, which is right: a zero-length read forwards nothing.)
        if t.len == 0 {
            if t.descr.claim_delivery() {
                self.deliver_handler(set, &t);
                client.grant_credit();
                let mut st = self.stats.borrow_mut();
                st.credits_granted += 1;
                st.tasks_completed += 1;
            }
            return;
        }
        let tid = self.next_tid.get();
        self.next_tid.set(tid + 1);
        let entry = Rc::new(PendEntry {
            tid,
            key,
            task: t,
            copied: RefCell::new(IntervalSet::new()),
            inflight: RefCell::new(IntervalSet::new()),
            deferred: RefCell::new(IntervalSet::new()),
            defer_until: Cell::new(Nanos::ZERO),
            promoted: Cell::new(false),
            aborted: Cell::new(false),
            failed: Cell::new(None),
            submitted_at: self.h.now(),
            pins: RefCell::new(Vec::new()),
            finalized: Cell::new(false),
        });
        let len = entry.task.len as u64;
        // Journal the admission before it becomes visible to scheduling:
        // the pre-copy extent digests of both ranges are what recovery
        // reconciles a journaled-but-vanished task against. Sampling is
        // host-side only — no virtual time, no PRNG draw. The stride
        // (`admit_digest_stride`) sets the coverage/cost point: 0 = legacy
        // head+tail (blind to mid-extent damage), 1 = every page, k =
        // every k-th page — torn-write detection at recovery can only see
        // what these digests sampled.
        if let Some(j) = &self.journal {
            let t = &entry.task;
            let stride = self.cfg.admit_digest_stride;
            j.record_admit(AdmitRec {
                tid,
                client: client.id,
                set_idx,
                key,
                dst_space: t.dst_space.id(),
                dst: t.dst.0,
                src_space: t.src_space.id(),
                src: t.src.0,
                len: t.len as u64,
                seg: t.seg as u64,
                dst_digest: t.dst_space.extent_digest_stride(t.dst, t.len, stride),
                src_digest: t.src_space.extent_digest_stride(t.src, t.len, stride),
            });
        }
        set.index.insert(&entry);
        {
            let mut st = self.stats.borrow_mut();
            let n = set.index.len() as u64;
            if n > st.index_entries_peak {
                st.index_entries_peak = n;
            }
        }
        let mut pending = set.pending.borrow_mut();
        // Insert sorted by key (binary search; keys are unique per set).
        let pos = pending.partition_point(|p| p.key <= entry.key);
        pending.insert(pos, entry);
        // Admission accounting: the task now occupies window capacity.
        client.inflight_tasks.set(client.inflight_tasks.get() + 1);
        client.inflight_bytes.set(client.inflight_bytes.get() + len);
        self.global_bytes.set(self.global_bytes.get() + len);
    }

    /// Serves one Sync Task: promotion (with dependency closure) or abort.
    fn handle_sync(&self, set: &Rc<QueueSet>, st: SyncTask) {
        self.stats.borrow_mut().syncs += 1;
        let pending = set.pending.borrow();
        let lo = st.addr.0 as usize;
        let hi = lo + st.len;
        // Latest matching task wins (§4.2.2 reverse traversal); an abort
        // with an explicit descriptor matches by identity instead (those
        // carry no address, so the scan stays linear — they are rare).
        let target_idx = if let Some(d) = &st.target {
            pending
                .iter()
                .rposition(|p| !p.finished() && Rc::ptr_eq(&p.task.descr, d))
        } else {
            // Address-indexed lookup: the latest unfinished entry whose
            // destination overlaps the synced range. Window position order
            // equals key order (keys are unique), so "latest" is the max
            // key among the window query's matches.
            let mut best: Option<crate::client::OrderKey> = None;
            let hits = set.index.for_each_overlap(
                crate::pendindex::RangeKind::Dst,
                st.space_id,
                lo as u64,
                hi as u64,
                |p| {
                    if !p.finished() && best.is_none_or(|b| p.key > b) {
                        best = Some(p.key);
                    }
                },
            );
            self.stats.borrow_mut().index_hits += hits;
            best.map(|k| pending.partition_point(|p| p.key < k))
        };
        let Some(ti) = target_idx else {
            return;
        };
        if st.abort {
            let e = Rc::clone(&pending[ti]);
            drop(pending);
            e.aborted.set(true);
            e.task.descr.poison(CopyFault::Aborted);
            self.stats.borrow_mut().aborts += 1;
            return;
        }
        // Promote the target and its dependency closure (§4.2.2). Reads
        // (RAW) from a still-pending producer do *not* force the producer
        // when absorption is on — layering will source the bytes directly.
        // Write hazards (WAW on the destination, WAR against a pending
        // reader's source) always force the earlier task ahead.
        let overlap = |ranges: &[(u32, usize, usize)], sp: u32, lo: usize, hi: usize| {
            ranges.iter().any(|&(s, l, h)| s == sp && l < hi && lo < h)
        };
        let mut needed_src: Vec<(u32, usize, usize)> = Vec::new();
        let mut needed_dst: Vec<(u32, usize, usize)> = Vec::new();
        {
            let t = &pending[ti].task;
            needed_src.push((t.src_space.id(), t.src.0 as usize, t.src.0 as usize + t.len));
            needed_dst.push((t.dst_space.id(), t.dst.0 as usize, t.dst.0 as usize + t.len));
            pending[ti].promoted.set(true);
            pending[ti].defer_until.set(Nanos::ZERO);
        }
        self.stats.borrow_mut().promotions += 1;
        for i in (0..ti).rev() {
            let p = &pending[i];
            if p.finished() {
                continue;
            }
            let d = p.task.dst_range();
            let sr = p.task.src_range();
            let waw = overlap(&needed_dst, d.0, d.1 as usize, d.2 as usize);
            let war = overlap(&needed_dst, sr.0, sr.1 as usize, sr.2 as usize);
            let raw = overlap(&needed_src, d.0, d.1 as usize, d.2 as usize);
            let dep = waw || war || (raw && !self.cfg.absorption);
            if dep {
                p.promoted.set(true);
                p.defer_until.set(Nanos::ZERO);
                needed_src.push((sr.0, sr.1 as usize, sr.2 as usize));
                needed_dst.push((d.0, d.1 as usize, d.2 as usize));
                self.stats.borrow_mut().promotions += 1;
            } else if raw {
                // The promoted reader will layer over this producer's
                // source; make sure the producer's own source ranges are
                // also protected transitively.
                needed_src.push((sr.0, sr.1 as usize, sr.2 as usize));
            }
        }
    }

    /// Selects a batch of runnable, mutually independent tasks.
    fn select_batch(&self, client: &Rc<Client>, now: Nanos) -> Vec<Selected> {
        // Pinned-frame quota: past it the client's work is *deferred*
        // (left in the window for a later round), not shed — completions
        // release pins and the backlog drains without failing anything.
        if client.pinned.get() >= self.cfg.admission.max_client_pinned {
            return Vec::new();
        }
        // Under memory pressure absorption is off: absorbed obligations
        // hold their producer's window entry (and pins) alive longer,
        // exactly what a pressured pool cannot afford (§4.6 fallback).
        let absorption = self.cfg.absorption && !self.pm.pressure();
        let budget = self.sched.copy_slice();
        let mut out: Vec<Selected> = Vec::new();
        let mut bytes = 0usize;
        let mut hazard_scans = 0u64;
        let mut index_hits = 0u64;
        let mut si = 0;
        while let Some(set) = client.set_at(si) {
            si += 1;
            if bytes >= budget {
                break;
            }
            // Iterate the window in place; the analysis runs against the
            // set's address index, so no `earlier` snapshot is needed —
            // "earlier" is exactly the index records with a smaller key.
            let pending = set.pending.borrow();
            let any_promoted = pending.iter().any(|p| p.promoted.get() && !p.finished());
            for e in pending.iter() {
                if e.finished() {
                    continue;
                }
                let promoted = e.promoted.get();
                let skip = if any_promoted && !promoted {
                    true
                } else if promoted {
                    false
                } else if e.task.lazy && now < e.submitted_at + self.cfg.lazy_period {
                    true
                } else {
                    e.defer_until.get() > now && !e.has_executable_gaps(false)
                };
                if skip {
                    continue;
                }
                let (plan, hits) = absorb::analyze_indexed(e, &set.index, absorption);
                hazard_scans += 1;
                index_hits += hits;
                if plan.blocked {
                    // Push the blockers through first; retry next round. A
                    // promoted entry transfers its priority to its blockers
                    // (otherwise promoted-only rounds would starve them).
                    for b in &plan.blockers {
                        b.defer_until.set(Nanos::ZERO);
                        *b.deferred.borrow_mut() = IntervalSet::new();
                        if b.task.lazy || promoted {
                            b.promoted.set(true);
                        }
                    }
                    break;
                }
                let cap = (budget - bytes).min(e.remaining()).max(1);
                bytes += e.remaining().min(cap);
                out.push(Selected {
                    set: Rc::clone(&set),
                    entry: Rc::clone(e),
                    plan,
                    cap,
                });
                if bytes >= budget {
                    break;
                }
            }
        }
        // Apply deferrals from all plans (after selection so every plan saw
        // the pre-round state).
        let now_defer = now + self.cfg.lazy_period;
        let mut absorbed = 0u64;
        for s in &out {
            for (tgt, lo, hi) in &s.plan.defers {
                tgt.deferred.borrow_mut().insert(*lo, *hi);
                tgt.defer_until.set(now_defer);
            }
            absorbed += s.plan.absorbed_bytes as u64;
        }
        let mut st = self.stats.borrow_mut();
        st.bytes_absorbed += absorbed;
        st.hazard_scans += hazard_scans;
        st.index_hits += index_hits;
        out
    }

    /// Translates and pins a range, via the ATCache when possible.
    /// Returns the extents plus the fault work performed.
    async fn translate_pin(
        &self,
        core: &Rc<Core>,
        space: &Rc<AddressSpace>,
        va: VirtAddr,
        len: usize,
        write: bool,
    ) -> Result<(Vec<Extent>, Vec<FrameId>), CopyFault> {
        if let Some(extents) = self.atcache.lookup(space, va, len) {
            core.advance(self.cost.atc_hit).await;
            let stale = self
                .cfg
                .fault_plan
                .as_ref()
                .is_some_and(|p| p.decide_atc_stale());
            if !stale {
                let frames = frames_of(&extents);
                for &f in &frames {
                    self.pm.pin(f);
                }
                return Ok((extents, frames));
            }
            // Injected stale hit: the cached translation cannot be trusted;
            // pay the hit, fall through to a full walk (which re-validates
            // and refreshes the entry).
        }
        let pages = len.div_ceil(PAGE_SIZE).max(1) as u64;
        // Sequential walks over one range share PT cache lines (8 PTEs per
        // line): the first walk pays full price, the rest a quarter.
        let walk_cost =
            Nanos(self.cost.pte_walk.as_nanos() + (pages - 1) * self.cost.pte_walk.as_nanos() / 4);
        // Batched gather path: one page-table walk resolves, pins, and
        // emits the extents. Fault accounting — and therefore every charged
        // duration below — is identical to the per-page reference path.
        match space.resolve_and_pin_range_extents(va, len, write) {
            Ok((extents, frames, work)) => {
                // Charge the walk and any proactive fault handling.
                let mut cost = walk_cost;
                let faults = (work.demand_zero + work.cow_remap + work.cow_copy) as u64;
                cost += Nanos(self.cost.page_fault.as_nanos() * faults);
                if work.bytes_copied > 0 {
                    cost += self.cost.cpu_copy(CpuCopyKind::Avx2, work.bytes_copied);
                }
                core.advance(cost).await;
                self.stats.borrow_mut().proactive_faults += faults;
                self.atcache.insert(space, va, len, extents.clone());
                Ok((extents, frames))
            }
            Err(e) => {
                core.advance(walk_cost).await;
                Err(match e {
                    MemError::OutOfMemory | MemError::Fragmented => CopyFault::OutOfMemory,
                    _ => CopyFault::Segv,
                })
            }
        }
    }

    /// Plans, dispatches, and completes a selected batch.
    async fn execute(
        self: &Rc<Self>,
        core: &Rc<Core>,
        client: &Rc<Client>,
        sel: Vec<Selected>,
        by_tid: &ByTidMap,
    ) {
        let now = self.h.now();
        if self.pm.pressure() {
            self.execute_degraded(core, client, &sel, now).await;
            return;
        }
        let mut planned: Vec<PlannedCopy> = Vec::new();
        by_tid.borrow_mut().clear();
        let mut planned_bytes = 0usize;

        for s in &sel {
            let e = &s.entry;
            if e.finished() {
                continue;
            }
            let force = e.promoted.get() || now >= e.defer_until.get();
            let gaps = truncate_gaps(e.executable_gaps(force), s.cap);
            if gaps.is_empty() {
                continue;
            }
            match self.plan_entry(core, client, e, &s.plan, &gaps).await {
                Ok(pc) => {
                    let deferred_exec: usize = {
                        let d = e.deferred.borrow();
                        gaps.iter()
                            .map(|&(lo, hi)| {
                                d.overlaps(lo, hi).iter().map(|(a, b)| b - a).sum::<usize>()
                            })
                            .sum()
                    };
                    self.stats.borrow_mut().bytes_deferred_executed += deferred_exec as u64;
                    planned_bytes += pc.subtasks.iter().map(|st| st.len()).sum::<usize>();
                    for &(lo, hi) in &gaps {
                        e.inflight.borrow_mut().insert(lo, hi);
                        e.deferred.borrow_mut().remove(lo, hi);
                    }
                    by_tid.borrow_mut().insert(e.tid, Rc::clone(e));
                    planned.push(pc);
                }
                Err(fault) => {
                    // Mid-copy fault: poison only this descriptor (partial
                    // progress already marked stays marked), then abort its
                    // dependents in dependency order (§4.4).
                    e.failed.set(Some(fault));
                    e.task.descr.poison(fault);
                    client.signals.borrow_mut().push(fault);
                    self.stats.borrow_mut().faults += 1;
                    self.finalize(client, &s.set, e);
                    self.cascade_fault(&s.set, client, e, fault);
                }
            }
        }

        // Crash point: planned and pinned, nothing dispatched yet. Pins
        // are recorded on the window entries (client-owned memory), so
        // adoption can release every one of them.
        if self.maybe_crash(CrashPoint::MidDispatch) {
            return;
        }
        if !planned.is_empty() {
            let map = Rc::clone(by_tid);
            let progress: ProgressFn = Rc::new(move |tid, off, len| {
                // Clone out of the map before marking: the short borrow
                // never outlives the callback's own bookkeeping.
                let entry = map.borrow().get(&tid).cloned();
                if let Some(e) = entry {
                    mark_progress(&e, off, len);
                }
            });
            let report = self
                .dispatcher
                .execute_batch(core, &planned, progress)
                .await;
            {
                let mut st = self.stats.borrow_mut();
                st.bytes_copied += (report.cpu_bytes + report.dma_bytes) as u64;
                st.retries += report.retries;
                st.fallback_bytes += report.fallback_bytes as u64;
                st.dispatch.cpu_bytes += report.cpu_bytes;
                st.dispatch.dma_bytes += report.dma_bytes;
                st.dispatch.dma_descriptors += report.dma_descriptors;
                st.dispatch.dma_wait += report.dma_wait;
                st.dispatch.retries += report.retries;
                st.dispatch.fallback_bytes += report.fallback_bytes;
                st.dispatch.corruptions += report.corruptions;
                st.dispatch.repairs += report.repairs;
            }
            // Verification failures that exhausted bounded repair: the
            // destination bytes are wrong even though every segment was
            // marked, so the descriptor is poisoned `Corrupted` and the
            // taint cascades exactly like a mid-copy fault — nothing
            // downstream may consume the range.
            for tid in self.dispatcher.take_corrupted() {
                let Some(s) = sel.iter().find(|s| s.entry.tid == tid) else {
                    continue;
                };
                let e = &s.entry;
                if e.failed.get().is_some() {
                    continue;
                }
                let fault = CopyFault::Corrupted;
                e.failed.set(Some(fault));
                e.task.descr.poison(fault);
                client.signals.borrow_mut().push(fault);
                {
                    let mut st = self.stats.borrow_mut();
                    st.faults += 1;
                    st.corrupted_poisoned += 1;
                }
                self.finalize(client, &s.set, e);
                self.cascade_fault(&s.set, client, e, fault);
            }
            self.sched.charge(client, planned_bytes);
        }

        // Crash point: bytes landed (descriptor segments are marked, the
        // copied intervals recorded) but nothing finalized — no handler,
        // no credit, no Complete record. Adoption finds these entries
        // finished and settles them exactly once.
        if self.maybe_crash(CrashPoint::PreFinalize) {
            return;
        }
        // Completion pass.
        for s in sel.iter() {
            if s.entry.finished() {
                self.finalize(client, &s.set, &s.entry);
            }
        }
    }

    /// Executes a selected batch synchronously under memory pressure —
    /// the §4.6 break-even fallback. No pinning, no ATCache refill, no
    /// DMA: each gap is resolved and copied page by page with the kernel
    /// ERMS copier, so a pressured pool is never asked to hold more
    /// frames. Recovery is automatic: once allocations fall below the low
    /// watermark, [`PhysMem::pressure`] clears and the next round takes
    /// the pinned asynchronous path again.
    async fn execute_degraded(
        self: &Rc<Self>,
        core: &Rc<Core>,
        client: &Rc<Client>,
        sel: &[Selected],
        now: Nanos,
    ) {
        let mut degraded_bytes = 0usize;
        for s in sel {
            let e = &s.entry;
            if e.finished() {
                continue;
            }
            let force = e.promoted.get() || now >= e.defer_until.get();
            let gaps = truncate_gaps(e.executable_gaps(force), s.cap);
            if gaps.is_empty() {
                continue;
            }
            match self.degraded_copy(core, e, &s.plan, &gaps).await {
                Ok(copied) => {
                    degraded_bytes += copied;
                    let mut st = self.stats.borrow_mut();
                    st.degraded_sync_copies += 1;
                    st.bytes_copied += copied as u64;
                }
                Err(fault) => {
                    e.failed.set(Some(fault));
                    e.task.descr.poison(fault);
                    client.signals.borrow_mut().push(fault);
                    self.stats.borrow_mut().faults += 1;
                    self.finalize(client, &s.set, e);
                    self.cascade_fault(&s.set, client, e, fault);
                }
            }
        }
        if degraded_bytes > 0 {
            self.sched.charge(client, degraded_bytes);
        }
        for s in sel {
            if s.entry.finished() {
                self.finalize(client, &s.set, &s.entry);
            }
        }
    }

    /// One entry's gaps, copied synchronously page by page. Pages are
    /// resolved (faulting on demand, cost-charged) but never pinned, and
    /// the data moves through [`PhysMem::copy`] under the ERMS cost curve
    /// — slower per byte and paying per-page startup, which is exactly
    /// the break-even trade the paper's §4.6 fallback makes.
    async fn degraded_copy(
        &self,
        core: &Rc<Core>,
        e: &Rc<PendEntry>,
        plan: &AbsorbPlan,
        gaps: &[(usize, usize)],
    ) -> Result<usize, CopyFault> {
        let t = &e.task;
        let mut copied = 0usize;
        for &(glo, ghi) in gaps {
            e.deferred.borrow_mut().remove(glo, ghi);
            for p in &plan.pieces {
                let lo = glo.max(p.off);
                let hi = ghi.min(p.off + p.len);
                if lo >= hi {
                    continue;
                }
                let mut off = lo;
                while off < hi {
                    let dst_va = t.dst.add(off);
                    let src_va = p.va.add(off - p.off);
                    let take = (hi - off)
                        .min(PAGE_SIZE - dst_va.page_off())
                        .min(PAGE_SIZE - src_va.page_off());
                    let (df, dw) = t.dst_space.resolve(dst_va, true).map_err(mem_fault)?;
                    let (sf, sw) = p.space.resolve(src_va, false).map_err(mem_fault)?;
                    let faults = (dw.demand_zero
                        + dw.cow_remap
                        + dw.cow_copy
                        + sw.demand_zero
                        + sw.cow_remap
                        + sw.cow_copy) as u64;
                    let mut cost = self.cost.cpu_copy(CpuCopyKind::Erms, take);
                    cost += Nanos(self.cost.pte_walk.as_nanos() * (dw.walks + sw.walks) as u64);
                    cost += Nanos(self.cost.page_fault.as_nanos() * faults);
                    if dw.bytes_copied + sw.bytes_copied > 0 {
                        cost += self
                            .cost
                            .cpu_copy(CpuCopyKind::Avx2, dw.bytes_copied + sw.bytes_copied);
                    }
                    core.advance(cost).await;
                    self.pm
                        .copy(df, dst_va.page_off(), sf, src_va.page_off(), take);
                    mark_progress(e, off, take);
                    copied += take;
                    off += take;
                }
            }
        }
        Ok(copied)
    }

    /// Builds the hardware plan for one entry's executable gaps.
    async fn plan_entry(
        &self,
        core: &Rc<Core>,
        client: &Rc<Client>,
        e: &Rc<PendEntry>,
        plan: &AbsorbPlan,
        gaps: &[(usize, usize)],
    ) -> Result<PlannedCopy, CopyFault> {
        let t = &e.task;
        let (dst_ex, dst_frames) = self
            .translate_pin(core, &t.dst_space, t.dst, t.len, true)
            .await?;
        client
            .pinned
            .set(client.pinned.get() + dst_frames.len() as u64);
        e.pins
            .borrow_mut()
            .push((Rc::clone(&t.dst_space), dst_frames));
        let mut subtasks = Vec::new();
        for &(glo, ghi) in gaps {
            for p in &plan.pieces {
                let lo = glo.max(p.off);
                let hi = ghi.min(p.off + p.len);
                if lo >= hi {
                    continue;
                }
                let src_va = p.va.add(lo - p.off);
                let (src_ex, src_frames) = self
                    .translate_pin(core, &p.space, src_va, hi - lo, false)
                    .await?;
                client
                    .pinned
                    .set(client.pinned.get() + src_frames.len() as u64);
                e.pins.borrow_mut().push((Rc::clone(&p.space), src_frames));
                let dst_slice = slice_extents(&dst_ex, lo, hi - lo);
                for mut st in split_subtasks(&dst_slice, &src_ex) {
                    st.task_off += lo;
                    subtasks.push(st);
                }
            }
        }
        subtasks.sort_by_key(|st| st.task_off);
        Ok(PlannedCopy {
            task_id: e.tid,
            len: t.len,
            subtasks,
            verify: t.verify,
        })
    }

    /// Completes a task: handlers, unpinning, window removal. Idempotent:
    /// only the first caller runs the handler; pins drain on every call
    /// (a planner racing an orphan sweep may append pins to an
    /// already-finalized entry, and those must still be released).
    fn finalize(&self, client: &Rc<Client>, set: &Rc<QueueSet>, e: &Rc<PendEntry>) {
        let mut unpinned = 0u64;
        for (space, frames) in e.pins.borrow_mut().drain(..) {
            unpinned += frames.len() as u64;
            space.unpin_frames(&frames);
        }
        client
            .pinned
            .set(client.pinned.get().saturating_sub(unpinned));
        if e.finalized.replace(true) {
            return;
        }
        let fault_code = match (e.aborted.get(), e.failed.get()) {
            (_, Some(f)) => copy_fault_code(f),
            (true, None) => copy_fault_code(CopyFault::Aborted),
            (false, None) => 0,
        };
        // Descriptor state transition for the record/replay trace: one
        // TaskDone per window entry, in finalization order.
        if let Some(tr) = &self.cfg.tracer {
            tr.emit(TraceEvent::TaskDone {
                tid: e.tid,
                fault: fault_code,
            });
        }
        // The completion becomes durable at the next journal flush; until
        // then the task replays as live and is digest-reconciled at
        // adoption.
        if let Some(j) = &self.journal {
            j.record_complete(e.tid, fault_code);
        }
        // Return the task's admission share and its submission credit —
        // the completion ring is where backpressure unwinds.
        client
            .inflight_tasks
            .set(client.inflight_tasks.get().saturating_sub(1));
        client.inflight_bytes.set(
            client
                .inflight_bytes
                .get()
                .saturating_sub(e.task.len as u64),
        );
        self.global_bytes
            .set(self.global_bytes.get().saturating_sub(e.task.len as u64));
        // The delivery claim (client memory, survives a crash) is the
        // exactly-once gate: handler and credit fire for the first
        // settlement of this submission across all service incarnations.
        if e.task.descr.claim_delivery() {
            client.grant_credit();
            self.stats.borrow_mut().credits_granted += 1;
            // Handlers run for failed and aborted tasks too: the
            // completion callback observes the outcome through the
            // poisoned descriptor instead of being silently dropped.
            self.deliver_handler(set, &e.task);
        }
        if !e.aborted.get() && e.failed.get().is_none() {
            self.stats.borrow_mut().tasks_completed += 1;
        }
        // Window and index removal by key (the window is sorted by unique
        // key, so this replaces the O(n) retain sweep). Runs after the
        // handler: a KFunc may submit, which needs the pending borrow.
        set.index.remove(e);
        let mut pending = set.pending.borrow_mut();
        let pos = pending.partition_point(|p| p.key < e.key);
        if pos < pending.len() && Rc::ptr_eq(&pending[pos], e) {
            pending.remove(pos);
        }
    }

    /// Runs a task's KFUNC inline or queues its UFUNC for post_handlers().
    fn deliver_handler(&self, set: &Rc<QueueSet>, t: &CopyTask) {
        if let Some(h) = &t.func {
            match h {
                Handler::KFunc(f) => f(),
                Handler::UFunc(f) => {
                    // Deliver to the client's handler queue; libCopier
                    // runs it in post_handlers(). A full ring spills into
                    // the unbounded overflow list (drained first by
                    // post_handlers) — handlers are never dropped.
                    if let Err(rejected) = set.uq.handler.push(Handler::UFunc(Rc::clone(f))) {
                        set.handler_overflow.borrow_mut().push_back(rejected.0);
                    }
                }
            }
        }
    }

    /// Records a garbaged destination range on the set (bounded list)
    /// and mirrors it into the journal so the §4.4 dependency wall
    /// survives a service restart.
    fn remember_taint(
        &self,
        client: &Rc<Client>,
        set: &Rc<QueueSet>,
        space: u32,
        lo: u64,
        hi: u64,
        fault: CopyFault,
    ) {
        if let Some(j) = &self.journal {
            let set_idx = client
                .sets
                .borrow()
                .iter()
                .position(|s| Rc::ptr_eq(s, set))
                .unwrap_or(0) as u32;
            j.record_taint(TaintRec {
                client: client.id,
                set_idx,
                space,
                lo,
                hi,
                fault: copy_fault_code(fault),
            });
        }
        let mut t = set.tainted.borrow_mut();
        if t.len() >= 64 {
            t.remove(0);
        }
        t.push(TaintRange {
            space,
            lo,
            hi,
            fault,
        });
    }

    /// §4.4 dependency-ordered cleanup after a fault: the failed task's
    /// destination was never (fully) written, so any later window entry
    /// sourcing from it — directly or through a chain — is poisoned with
    /// the parent fault, in window-key order. Absorption never sees the
    /// dependents (they are finalized out of the window), so it can never
    /// forward from a poisoned source. The garbaged ranges are remembered
    /// on the set so copies submitted in later rounds hit the same wall
    /// until a fresh write fully overwrites the range.
    fn cascade_fault(
        &self,
        set: &Rc<QueueSet>,
        client: &Rc<Client>,
        failed: &Rc<PendEntry>,
        fault: CopyFault,
    ) {
        // Reachability closure over the index instead of a window sweep: a
        // later entry dies iff its source overlaps the destination of an
        // already-dead entry with a *smaller* key (the linear sweep records
        // a victim's taint before checking entries after it, and only
        // them). BFS over garbaged destination ranges computes the same
        // fixed point; victims are then poisoned in window-key order, so
        // signals, handlers, and remembered taints land exactly as the
        // sweep would have produced them.
        let mut killed: BTreeMap<crate::client::OrderKey, Rc<PendEntry>> = BTreeMap::new();
        let mut frontier: Vec<(crate::client::OrderKey, (u32, u64, u64))> =
            vec![(failed.key, failed.task.dst_range())];
        let mut hits = 0u64;
        let mut found: Vec<Rc<PendEntry>> = Vec::new();
        while let Some((bound, (sp, lo, hi))) = frontier.pop() {
            found.clear();
            hits += set
                .index
                .for_each_overlap(crate::pendindex::RangeKind::Src, sp, lo, hi, |p| {
                    if p.key > bound && !p.finished() && !killed.contains_key(&p.key) {
                        found.push(Rc::clone(p));
                    }
                });
            for p in found.drain(..) {
                frontier.push((p.key, p.task.dst_range()));
                killed.insert(p.key, p);
            }
        }
        self.stats.borrow_mut().index_hits += hits;
        for p in killed.values() {
            p.failed.set(Some(fault));
            p.task.descr.poison(fault);
            client.signals.borrow_mut().push(fault);
            let mut st = self.stats.borrow_mut();
            st.faults += 1;
            st.dependents_aborted += 1;
        }
        for p in killed.values() {
            self.finalize(client, set, p);
        }
        let (fsp, flo, fhi) = failed.task.dst_range();
        self.remember_taint(client, set, fsp, flo, fhi, fault);
        for p in killed.values() {
            let (sp, lo, hi) = p.task.dst_range();
            self.remember_taint(client, set, sp, lo, hi, fault);
        }
    }

    /// Orphan reclamation: reclaims everything a dead client left behind
    /// (`exit` with queued or in-flight copies). Queued-but-undrained
    /// descriptors are poisoned `Aborted` so library waiters unblock,
    /// window entries — including deferred absorption obligations — are
    /// aborted and finalized (releasing their pins), CSH rings are
    /// drained, and the client is unregistered. Returns the number of
    /// orphaned tasks reclaimed.
    pub fn reap_client(&self, client: &Rc<Client>) -> u64 {
        client.dead.set(true);
        let mut reclaimed = 0u64;
        let mut si = 0;
        while let Some(set) = client.set_at(si) {
            si += 1;
            for pair in [&set.uq, &set.kq] {
                while let Some(entry) = pair.copy.pop() {
                    if let QueueEntry::Copy(t) = entry {
                        t.descr.poison(CopyFault::Aborted);
                        reclaimed += 1;
                    }
                }
                while pair.sync.pop().is_some() {}
                while pair.handler.pop().is_some() {}
            }
            // Drain the window front-to-back instead of snapshot-cloning
            // it; `finalize` drops each popped entry's index records. The
            // count is latched up front so a completion handler submitting
            // mid-reap cannot extend the sweep (matching the snapshot
            // semantics this replaces).
            let n = set.pending.borrow().len();
            for _ in 0..n {
                let Some(p) = set.pending.borrow_mut().pop_front() else {
                    break;
                };
                if !p.finished() {
                    p.aborted.set(true);
                    p.task.descr.poison(CopyFault::Aborted);
                    reclaimed += 1;
                }
                self.finalize(client, &set, &p);
            }
            set.tainted.borrow_mut().clear();
            set.handler_overflow.borrow_mut().clear();
        }
        // Return every admission resource the client still held: quota
        // bytes leave the global window, counters zero, and the credit
        // pool refills so nothing leaks across client generations.
        self.global_bytes.set(
            self.global_bytes
                .get()
                .saturating_sub(client.inflight_bytes.get()),
        );
        client.inflight_tasks.set(0);
        client.inflight_bytes.set(0);
        client.pinned.set(0);
        client.credits.set(client.credit_cap.get());
        self.clients.borrow_mut().retain(|c| !Rc::ptr_eq(c, client));
        // The dead client's scrub registrations go with it: any queued
        // heal task was just reaped above (poisoned `Aborted`, pins
        // released through finalize), and the walker must not keep
        // digesting — or re-healing — memory nobody owns anymore.
        self.scrub.borrow_mut().retain(|r| r.client != client.id);
        self.stats.borrow_mut().orphans_reclaimed += reclaimed;
        // The reaped client's Complete records become durable right away
        // so a crash after the reap never resurrects its tasks.
        self.journal_flush();
        reclaimed
    }

    /// Registers a long-lived region for background scrubbing
    /// (§integrity). `primary` is the guarded range; `replica` holds the
    /// same bytes and is what heal copies source from when the walker
    /// finds rot. Golden per-chunk digests are taken now, full-coverage
    /// (stride 1) — the whole point of the scrubber is catching damage
    /// anywhere in the extent. Digesting is host-side only.
    pub fn register_scrub_region(
        &self,
        client: &Rc<Client>,
        space: &Rc<AddressSpace>,
        primary: VirtAddr,
        replica: VirtAddr,
        len: usize,
        chunk: usize,
    ) {
        let chunk = chunk.max(1).min(len.max(1));
        let n = len.div_ceil(chunk).max(1);
        let mut golden = Vec::with_capacity(n);
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            golden.push(space.extent_digest_stride(primary.add(off), clen, 1));
        }
        self.scrub.borrow_mut().push(ScrubRegion {
            client: client.id,
            space: Rc::clone(space),
            primary,
            replica,
            len,
            chunk,
            golden,
            dead: (0..n).map(|_| Cell::new(false)).collect(),
            healing: (0..n).map(|_| Rc::new(Cell::new(false))).collect(),
        });
    }

    /// Applies one oracle-drawn bit-rot event: `pos` selects a bit
    /// uniformly across all registered primaries. The draw was already
    /// consumed (and traced) by the oracle, so the event lands — or
    /// no-ops, when nothing is registered or the page is unmapped —
    /// without touching determinism.
    fn inject_rot(&self, pos: u64) {
        let regions = self.scrub.borrow();
        let total_bits: u64 = regions.iter().map(|r| r.len as u64 * 8).sum();
        if total_bits == 0 {
            return;
        }
        let mut bit = pos % total_bits;
        for r in regions.iter() {
            let rbits = r.len as u64 * 8;
            if bit >= rbits {
                bit -= rbits;
                continue;
            }
            let va = r.primary.add((bit / 8) as usize);
            // Pure translate: rot strikes resident frames; an unmapped
            // page has no bytes to rot. No fault work, no virtual time.
            if let Some(pte) = r.space.translate(va) {
                let pm = r.space.phys();
                let mut b = [0u8];
                pm.read(pte.frame, va.page_off(), &mut b);
                b[0] ^= 1 << (bit % 8);
                pm.write(pte.frame, va.page_off(), &b);
            }
            return;
        }
    }

    /// One scrubber step: re-digests the next live chunk and, on
    /// mismatch, queues a heal copy from the replica through the
    /// ordinary k-queue — the heal is an absorbable, admission-controlled,
    /// shed-able copy task like any other, not a privileged side channel.
    /// A rotted chunk whose replica is also damaged is unrepairable: its
    /// range is remembered as `Corrupted` taint and retired.
    fn scrub_walk(self: &Rc<Self>) {
        let regions = self.scrub.borrow();
        let total: usize = regions.iter().map(|r| r.golden.len()).sum();
        if total == 0 {
            return;
        }
        let mut pos = self.scrub_pos.get() % total;
        for _ in 0..total {
            let (ri, ci) = {
                let mut p = pos;
                let mut found = (0, 0);
                for (i, r) in regions.iter().enumerate() {
                    if p < r.golden.len() {
                        found = (i, p);
                        break;
                    }
                    p -= r.golden.len();
                }
                found
            };
            pos = (pos + 1) % total;
            let r = &regions[ri];
            if r.dead[ci].get() || r.healing[ci].get() {
                continue;
            }
            self.scrub_pos.set(pos);
            let off = ci * r.chunk;
            let clen = r.chunk.min(r.len - off);
            self.stats.borrow_mut().scrub_chunks += 1;
            if r.space.extent_digest_stride(r.primary.add(off), clen, 1) == r.golden[ci] {
                return;
            }
            // Rot found. Heal from the replica if it is still intact.
            let client = {
                let cs = self.clients.borrow();
                cs.iter().find(|c| c.id == r.client).cloned()
            };
            let Some(client) = client else {
                return;
            };
            let Some(set) = client.set_at(0) else {
                return;
            };
            if r.space.extent_digest_stride(r.replica.add(off), clen, 1) != r.golden[ci] {
                self.stats.borrow_mut().scrub_unrepairable += 1;
                r.dead[ci].set(true);
                let lo = r.primary.add(off).0;
                self.remember_taint(
                    &client,
                    &set,
                    r.space.id(),
                    lo,
                    lo + clen as u64,
                    CopyFault::Corrupted,
                );
                return;
            }
            let descr = Rc::new(SegDescriptor::new(clen, self.cfg.segment));
            r.healing[ci].set(true);
            let healing = Rc::clone(&r.healing[ci]);
            let me = Rc::downgrade(self);
            let d2 = Rc::clone(&descr);
            let func = Handler::KFunc(Rc::new(move || {
                healing.set(false);
                if d2.fault().is_none() {
                    if let Some(svc) = me.upgrade() {
                        svc.stats.borrow_mut().scrub_heals += 1;
                    }
                }
            }));
            let task = CopyTask {
                dst_space: Rc::clone(&r.space),
                dst: r.primary.add(off),
                src_space: Rc::clone(&r.space),
                src: r.replica.add(off),
                len: clen,
                seg: self.cfg.segment,
                descr,
                func: Some(func),
                lazy: false,
                // Heal copies are themselves fully verified end to end: a
                // corrupt heal must not silently re-poison the region.
                verify: true,
            };
            if set.kq.copy.push(QueueEntry::Copy(task)).is_err() {
                // Ring full: the heal is shed-able by design; the chunk
                // stays live and the walker retries next period.
                r.healing[ci].set(false);
            }
            return;
        }
    }

    /// Re-attaches a client that survived a service crash — the recovery
    /// protocol (DESIGN.md §15). The client's QueueSets — rings, pending
    /// window, address index, credits, taints — live in client-owned
    /// memory and survived; what died is the service-private control
    /// state. Reconciling the two against the replayed journal:
    ///
    /// * every window entry's **pins are released** and its in-flight
    ///   ranges cleared — the dead service's dispatch state is gone
    ///   (copied ranges stay: those bytes physically landed);
    /// * entries whose admission never became durable are **dropped
    ///   undelivered** and handed back to the caller for client-side
    ///   resubmission — safe because admissions flush before any of
    ///   their bytes move, so a dropped entry never has partial
    ///   progress;
    /// * journaled entries found finished are **finalized now** (the
    ///   crash hit between landing and finalization); unfinished ones
    ///   are re-adopted and simply continue under the new incarnation;
    /// * journaled-live tasks absent from every window finalized just
    ///   before the crash with their Complete record lost: the
    ///   destination is checked against the journaled extent digests
    ///   and **poisoned [`CopyFault::Torn`]** when it matches neither
    ///   side (neither untouched nor fully copied);
    /// * journaled **taints are re-installed** (deduplicated) so the
    ///   §4.4 dependency wall outlives the restart.
    ///
    /// Exactly-once handler delivery and credit return across all of
    /// this rest on the descriptor's delivery claim, which lives in
    /// client memory and therefore survives the crash.
    ///
    /// Returns the dropped (never-durable) tasks as `(set_idx, task)`
    /// pairs; the library pushes them back into its rings — still
    /// holding their original submission credits — so they run under
    /// the new incarnation.
    pub fn adopt_client(&self, client: &Rc<Client>) -> Vec<(u32, CopyTask)> {
        assert!(!client.dead.get(), "cannot adopt a reaped client");
        if client.id >= self.next_client.get() {
            self.next_client.set(client.id + 1);
        }
        self.clients.borrow_mut().push(Rc::clone(client));
        let recovered = self.recovered.borrow();
        let empty = BTreeMap::new();
        let live = recovered.as_ref().map_or(&empty, |r| &r.live);
        let mut present = std::collections::BTreeSet::new();
        let mut finish: Vec<(Rc<QueueSet>, Rc<PendEntry>)> = Vec::new();
        let mut dropped_tasks: Vec<(u32, CopyTask)> = Vec::new();
        let mut readopted = 0u64;
        let mut si = 0;
        while let Some(set) = client.set_at(si) {
            si += 1;
            let entries: Vec<Rc<PendEntry>> = set.pending.borrow().iter().cloned().collect();
            for e in entries {
                // The dead service's dispatch state is gone: release its
                // pins and clear in-flight ranges. Landed bytes stay.
                let mut unpinned = 0u64;
                for (space, frames) in e.pins.borrow_mut().drain(..) {
                    unpinned += frames.len() as u64;
                    space.unpin_frames(&frames);
                }
                client
                    .pinned
                    .set(client.pinned.get().saturating_sub(unpinned));
                *e.inflight.borrow_mut() = IntervalSet::new();
                if !live.contains_key(&e.tid) {
                    // Admission never became durable: drop undelivered.
                    set.index.remove(&e);
                    {
                        let mut pending = set.pending.borrow_mut();
                        let pos = pending.partition_point(|p| p.key < e.key);
                        if pos < pending.len() && Rc::ptr_eq(&pending[pos], &e) {
                            pending.remove(pos);
                        }
                    }
                    client
                        .inflight_tasks
                        .set(client.inflight_tasks.get().saturating_sub(1));
                    client.inflight_bytes.set(
                        client
                            .inflight_bytes
                            .get()
                            .saturating_sub(e.task.len as u64),
                    );
                    dropped_tasks.push((si as u32 - 1, e.task.clone()));
                    continue;
                }
                present.insert(e.tid);
                if e.finished() {
                    finish.push((Rc::clone(&set), e));
                } else {
                    readopted += 1;
                }
            }
        }
        // Adopt the client's admitted bytes into this incarnation's
        // global window *before* finalizing, so the subtraction on the
        // finalize path balances.
        self.global_bytes
            .set(self.global_bytes.get() + client.inflight_bytes.get());
        let refinalized = finish.len() as u64;
        for (set, e) in &finish {
            self.finalize(client, set, e);
        }
        // Digest reconciliation: journaled-live tasks absent from every
        // window. Their entry was removed by the dead service's finalize
        // (handler delivered, pins released) but the Complete record was
        // lost; the destination must now look either untouched or fully
        // copied. Anything else is a torn write — poison it.
        for a in live.values().filter(|a| a.client == client.id) {
            if present.contains(&a.tid) {
                continue;
            }
            if a.dst_space != client.uspace.id() {
                // Not sampleable through this client's space (k-space
                // destination); the §4.4 cascade settled it pre-crash.
                if let Some(j) = &self.journal {
                    j.record_complete(a.tid, 0);
                }
                continue;
            }
            // Arbitration digest must sample the same lattice the admit
            // record did, or equal bytes would compare unequal.
            let cur = client.uspace.extent_digest_stride(
                VirtAddr(a.dst),
                a.len as usize,
                self.cfg.admit_digest_stride,
            );
            if cur == a.src_digest || cur == a.dst_digest {
                // Fully copied (Complete record lost) or never started:
                // either way the range is consistent; release it.
                if let Some(j) = &self.journal {
                    j.record_complete(a.tid, 0);
                }
                continue;
            }
            let set = client
                .set_at(a.set_idx as usize)
                .unwrap_or_else(|| client.default_set());
            self.remember_taint(
                client,
                &set,
                a.dst_space,
                a.dst,
                a.dst + a.len,
                CopyFault::Torn,
            );
            if let Some(j) = &self.journal {
                j.record_complete(a.tid, copy_fault_code(CopyFault::Torn));
            }
            self.stats.borrow_mut().torn_poisoned += 1;
        }
        // Re-install journaled taints (the in-memory list also survived —
        // this is the belt for a client whose sets were recreated).
        if let Some(r) = recovered.as_ref() {
            for t in r.taints.iter().filter(|t| t.client == client.id) {
                if let Some(set) = client.set_at(t.set_idx as usize) {
                    let mut list = set.tainted.borrow_mut();
                    let dup = list
                        .iter()
                        .any(|x| x.space == t.space && x.lo == t.lo && x.hi == t.hi);
                    if !dup {
                        if list.len() >= 64 {
                            list.remove(0);
                        }
                        list.push(TaintRange {
                            space: t.space,
                            lo: t.lo,
                            hi: t.hi,
                            fault: copy_fault_from_code(t.fault),
                        });
                    }
                }
            }
        }
        drop(recovered);
        {
            let mut st = self.stats.borrow_mut();
            st.dropped_unjournaled += dropped_tasks.len() as u64;
            st.recovered_tasks += readopted;
            st.recovered_finalized += refinalized;
        }
        client.epoch.set(self.epoch.get());
        // Make the recovery itself durable immediately.
        self.journal_flush();
        dropped_tasks
    }
}

/// Cuts a gap list down to at most `cap` total bytes (copy-slice rounds).
fn truncate_gaps(gaps: Vec<(usize, usize)>, cap: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(gaps.len());
    let mut left = cap;
    for (lo, hi) in gaps {
        if left == 0 {
            break;
        }
        let take = (hi - lo).min(left);
        out.push((lo, lo + take));
        left -= take;
    }
    out
}

fn bump(c: &Cell<u64>) -> u64 {
    let v = c.get();
    c.set(v + 1);
    v
}

/// Maps a memory-subsystem error to the fault surfaced through `csync`.
fn mem_fault(e: MemError) -> CopyFault {
    match e {
        MemError::OutOfMemory | MemError::Fragmented => CopyFault::OutOfMemory,
        _ => CopyFault::Segv,
    }
}

/// Records landed bytes and flips fully covered descriptor segments.
///
/// Zero-length progress (`len == 0`, or `off` at/past the task's end) is
/// a no-op: the old `(end - 1) / seg` then `num_segments() - 1` span math
/// underflowed for empty ranges — debug builds panicked, release builds
/// wrapped to a huge segment index and tripped the `mark` bounds assert.
fn mark_progress(e: &Rc<PendEntry>, off: usize, len: usize) {
    let end = (off + len).min(e.task.len);
    if end <= off {
        return;
    }
    e.copied.borrow_mut().insert(off, end);
    e.inflight.borrow_mut().remove(off, end);
    let d = &e.task.descr;
    let nsegs = d.num_segments();
    if nsegs == 0 {
        return;
    }
    let seg = d.segment_size();
    let first = off / seg;
    let last = ((end - 1) / seg).min(nsegs - 1);
    let copied = e.copied.borrow();
    for i in first..=last {
        let (s, t) = d.segment_range(i);
        if copied.covers(s, t) {
            d.mark(i);
        }
    }
}

/// Wire encoding of a `CopyFault` for trace and journal records
/// (0 = no fault).
fn copy_fault_code(f: CopyFault) -> u8 {
    match f {
        CopyFault::Segv => 1,
        CopyFault::OutOfMemory => 2,
        CopyFault::Aborted => 3,
        CopyFault::Overloaded => 4,
        CopyFault::Torn => 5,
        CopyFault::Corrupted => 6,
    }
}

/// Inverse of [`copy_fault_code`] for journaled taints. Unknown codes
/// decode as `Torn` — the conservative "do not consume these bytes".
fn copy_fault_from_code(code: u8) -> CopyFault {
    match code {
        1 => CopyFault::Segv,
        2 => CopyFault::OutOfMemory,
        3 => CopyFault::Aborted,
        4 => CopyFault::Overloaded,
        6 => CopyFault::Corrupted,
        _ => CopyFault::Torn,
    }
}

/// Inverse of `Copier::stats_vec` for checkpoint restore. Fields missing
/// from an older (shorter) checkpoint read as zero, so the vector stays
/// append-only like the digest it feeds.
fn stats_from_vec(v: &[u64]) -> CopierStats {
    let g = |i: usize| v.get(i).copied().unwrap_or(0);
    CopierStats {
        tasks_completed: g(0),
        bytes_copied: g(1),
        bytes_absorbed: g(2),
        bytes_deferred_executed: g(3),
        syncs: g(4),
        promotions: g(5),
        aborts: g(6),
        faults: g(7),
        idle_polls: g(8),
        busy_rounds: g(9),
        dispatch: DispatchReport {
            cpu_bytes: g(10) as usize,
            dma_bytes: g(11) as usize,
            dma_descriptors: g(12) as usize,
            dma_wait: Nanos(g(13)),
            retries: g(14),
            fallback_bytes: g(15) as usize,
            corruptions: g(37),
            repairs: g(38),
        },
        proactive_faults: g(16),
        retries: g(17),
        fallback_bytes: g(18),
        quarantined_channels: g(19),
        orphans_reclaimed: g(20),
        dependents_aborted: g(21),
        admission_rejected: g(22),
        shed_bytes: g(23),
        credits_granted: g(24),
        degraded_sync_copies: g(25),
        pressure_events: g(26),
        hazard_scans: g(27),
        index_hits: g(28),
        index_entries_peak: g(29),
        rounds_settled: g(30),
        rounds_active: g(31),
        crashes: g(32),
        recovered_tasks: g(33),
        recovered_finalized: g(34),
        dropped_unjournaled: g(35),
        torn_poisoned: g(36),
        corrupted_poisoned: g(39),
        scrub_chunks: g(40),
        scrub_heals: g(41),
        scrub_unrepairable: g(42),
        corrupt_quarantined: g(43),
    }
}
