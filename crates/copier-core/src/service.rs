//! The Copier service: polling threads, planning, and execution (§4).
//!
//! Each Copier thread runs on a dedicated simulated core and loops:
//!
//! 1. **Drain** client CSH queues into per-set pending windows, merging
//!    u-mode and k-mode order via barrier keys (§4.2.1);
//! 2. **Serve Sync Tasks** (k-mode first): promotion with dependency
//!    closure, or `abort` (§4.2.2, §4.4);
//! 3. **Schedule** a client (CFS-by-copy-length within cgroups, §4.5.3);
//! 4. **Select** a batch of runnable, mutually independent tasks, applying
//!    layered copy absorption (§4.4) and deferring absorbed obligations;
//! 5. **Plan** each task: proactive fault handling — resolve + pin every
//!    page, via the ATCache when possible (§4.5.4, §4.3);
//! 6. **Dispatch** the batch to the piggybacked AVX+DMA units (§4.3),
//!    marking descriptor segments as bytes land;
//! 7. **Complete**: run `KFUNC`s, queue `UFUNC`s, unpin, release.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use copier_hw::{
    slice_extents, split_subtasks, ATCache, CostModel, CpuCopyKind, DispatchReport, Dispatcher,
    DmaEngine, PlannedCopy, ProgressFn,
};
use copier_mem::{
    frames_of, AddressSpace, Extent, FrameId, MemError, PhysMem, VirtAddr, PAGE_SIZE,
};
use copier_sim::trace::{fnv_fold, TraceEvent, FNV_OFFSET};
use copier_sim::{stream_seed, Core, CrashPoint, Nanos, Notify, SimHandle};

use crate::absorb::{self, AbsorbPlan};
use crate::client::{Client, ClientId, PendEntry, QueueSet, TaintRange};
use crate::config::{CopierConfig, PollMode};
use crate::descriptor::{CopyFault, SegDescriptor};
use crate::interval::IntervalSet;
use crate::journal::{AdmitRec, Journal, JournalStats, Recovered, TaintRec};
use crate::sched::{min_live_vruntime, vruntime_before, Scheduler};
use crate::task::{CopyTask, Handler, QueueEntry, SyncTask, TaskId};

/// Per-thread dispatch progress map, reused across rounds (cleared, not
/// reallocated — host-only optimization).
type ByTidMap = Rc<RefCell<BTreeMap<TaskId, Rc<PendEntry>>>>;

/// Per-thread round scratch, reused across polls so a settled round
/// allocates nothing: the assigned-client list is refilled in place and
/// the dispatch progress map is cleared, not rebuilt.
struct RoundScratch {
    clients: Vec<Rc<Client>>,
    /// Assignment epoch the `clients` buffer was built at. While the
    /// service-wide [`Copier::assign_epoch`] matches, the buffer is
    /// reused as-is — a settled poll over a stable client population
    /// costs O(1) list maintenance instead of an O(clients) rebuild.
    epoch: u64,
    /// Registration watermark latched at round start: the fast path only
    /// admits clients with `reg_seq < watermark` into this round's lists,
    /// mirroring the legacy snapshot semantics (a client registered
    /// mid-round was absent from the round-start snapshot).
    reg_watermark: u64,
    by_tid: ByTidMap,
}

impl RoundScratch {
    fn new() -> Self {
        RoundScratch {
            clients: Vec::new(),
            epoch: u64::MAX,
            reg_watermark: u64::MAX,
            by_tid: Rc::new(RefCell::new(BTreeMap::new())),
        }
    }
}

/// Host-side control-plane cost observables (DESIGN.md §18) — how much
/// per-round work the service actually did, exposed so the soak bench
/// and the differential suite can prove O(active) scaling instead of
/// inferring it from wall clock. Not part of [`CopierStats`]: that
/// vector's layout is frozen (journal checkpoints + trace state hashes),
/// so new counters live here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlObs {
    /// Clients entering a shard's active set (submission doorbell,
    /// scrub heal, adoption).
    pub activations: u64,
    /// Clients leaving a shard's active set (fully settled at round end).
    pub deactivations: u64,
    /// Assignment-list rebuilds (epoch misses). Every legacy round paid
    /// one; the fast path pays one per membership change.
    pub assign_rebuilds: u64,
    /// O(shard-clients) min-vruntime rescans (cache invalidations hit by
    /// a read). The legacy path paid one per barrier and admission scan.
    pub minvr_recomputes: u64,
    /// `autoscale` invocations (must stay 0 on sharded services).
    pub autoscale_calls: u64,
    /// `autoscale` invocations that paid the O(clients × sets) load sweep
    /// (full-sweep mode only; the fast path reads the pending aggregate).
    pub autoscale_sweeps: u64,
    /// Per-client trace-hash contributions re-folded (dirty clients at a
    /// traced round close). The legacy path re-folded every client.
    pub hash_refolds: u64,
}

#[derive(Default)]
struct ObsCells {
    activations: Cell<u64>,
    deactivations: Cell<u64>,
    assign_rebuilds: Cell<u64>,
    minvr_recomputes: Cell<u64>,
    autoscale_calls: Cell<u64>,
    autoscale_sweeps: Cell<u64>,
    hash_refolds: Cell<u64>,
}

/// Aggregate service statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CopierStats {
    /// Copy tasks fully completed.
    pub tasks_completed: u64,
    /// Bytes physically copied by the service.
    pub bytes_copied: u64,
    /// Bytes whose source was short-circuited by absorption.
    pub bytes_absorbed: u64,
    /// Bytes of deferred obligations eventually executed.
    pub bytes_deferred_executed: u64,
    /// Sync tasks processed.
    pub syncs: u64,
    /// Promotions performed.
    pub promotions: u64,
    /// Tasks aborted.
    pub aborts: u64,
    /// Tasks failed by faults.
    pub faults: u64,
    /// Idle poll sweeps.
    pub idle_polls: u64,
    /// Scheduling rounds that executed work.
    pub busy_rounds: u64,
    /// Dispatcher aggregate.
    pub dispatch: DispatchReport,
    /// Page faults proactively resolved during planning.
    pub proactive_faults: u64,
    /// Transient-failed DMA descriptors resubmitted.
    pub retries: u64,
    /// Bytes rescued by the CPU after DMA gave up on them.
    pub fallback_bytes: u64,
    /// DMA channels currently quarantined (point-in-time, not cumulative).
    pub quarantined_channels: u64,
    /// Orphaned tasks reclaimed from dead clients.
    pub orphans_reclaimed: u64,
    /// Dependent tasks aborted in dependency order after a fault (§4.4).
    pub dependents_aborted: u64,
    /// Submissions rejected by admission control (quota or watermark).
    pub admission_rejected: u64,
    /// Bytes of rejected submissions (the shed offered load).
    pub shed_bytes: u64,
    /// Submission credits returned to clients on the completion path.
    pub credits_granted: u64,
    /// Tasks served via the degraded synchronous path under memory
    /// pressure (§4.6 break-even fallback; no pinning, no absorption).
    pub degraded_sync_copies: u64,
    /// Transitions of the physical pool into the pressured state.
    pub pressure_events: u64,
    /// Hazard/absorption analyses performed (one per considered task).
    pub hazard_scans: u64,
    /// Records visited by address-index window queries (analysis, csync
    /// lookup, and taint cascades) — the work the index did instead of
    /// full window sweeps.
    pub index_hits: u64,
    /// High-water mark of resident index records across all queue sets.
    pub index_entries_peak: u64,
    /// Poll rounds that found no batch to execute (the settled fast path).
    pub rounds_settled: u64,
    /// Poll rounds that selected and executed a batch.
    pub rounds_active: u64,
    /// Injected crashes taken by this incarnation (DESIGN.md §15).
    pub crashes: u64,
    /// Unfinished window entries re-adopted from the journal after a
    /// restart; execution continues where the dead service stopped.
    pub recovered_tasks: u64,
    /// Journaled entries found already finished at adoption (the crash
    /// hit between the bytes landing and finalization) and settled then.
    pub recovered_finalized: u64,
    /// Window entries whose admission never became durable, dropped
    /// undelivered at adoption — recovered via client resubmission.
    pub dropped_unjournaled: u64,
    /// Journaled tasks whose destination was found torn at recovery and
    /// poisoned [`CopyFault::Torn`].
    pub torn_poisoned: u64,
    /// Tasks whose verification mismatch survived bounded repair and were
    /// poisoned [`CopyFault::Corrupted`].
    pub corrupted_poisoned: u64,
    /// Scrub chunks re-digested by the background walker.
    pub scrub_chunks: u64,
    /// Rotted scrub chunks healed from an intact replica.
    pub scrub_heals: u64,
    /// Rotted scrub chunks with no intact replica (taint remembered).
    pub scrub_unrepairable: u64,
    /// DMA channels quarantined by corruption strikes (point-in-time,
    /// disjoint from hard-death `quarantined_channels`).
    pub corrupt_quarantined: u64,
}

struct Selected {
    set: Rc<QueueSet>,
    entry: Rc<PendEntry>,
    plan: AbsorbPlan,
    /// Per-round byte budget for this task (copy-slice partial execution).
    cap: usize,
}

/// A long-lived region registered for background integrity scrubbing
/// (pinned I/O buffers, journaled state): the walker re-digests one chunk
/// per `scrub_period` rounds against the golden digests taken at
/// registration and heals rot from the replica.
struct ScrubRegion {
    client: ClientId,
    space: Rc<AddressSpace>,
    /// The guarded range.
    primary: VirtAddr,
    /// Known-good copy of the same bytes; heal tasks source from it.
    replica: VirtAddr,
    len: usize,
    chunk: usize,
    /// Full-coverage (stride-1) digest per chunk, taken at registration.
    golden: Vec<u64>,
    /// Chunk found rotted with no intact replica: taint remembered once,
    /// chunk retired from the walk.
    dead: Vec<Cell<bool>>,
    /// A heal copy for this chunk is queued or in flight; the walker
    /// skips it until the task settles (the handler clears the flag).
    healing: Vec<Rc<Cell<bool>>>,
}

/// One control-plane shard's private state (DESIGN.md §17). The hot
/// counters (`bytes`, the stats deltas) are written only by the owning
/// shard during its round; the `peer_*` mirrors are rewritten for every
/// shard by the last arriver at the round barrier, from one snapshot
/// taken in shard-id order — the deterministic "message round". Reads of
/// cross-shard state therefore never observe a peer mid-round, which is
/// what keeps N-shard runs bit-reproducible from a seed.
#[derive(Default)]
struct ShardState {
    /// Bytes currently admitted by this shard's clients — this shard's
    /// slice of `global_bytes`.
    bytes: Cell<u64>,
    /// Sum of every *other* shard's `bytes` as of the last barrier.
    peer_bytes: Cell<u64>,
    /// Wrap-safe minimum live vruntime across every *other* shard as of
    /// the last barrier (`None`: peers have no live clients). Keeps the
    /// least-served admission exemption global without scanning peer
    /// client tables mid-round.
    peer_min_vr: Cell<Option<u64>>,
    /// Latched watermark-shedding state (per-shard hysteresis latch over
    /// the shared watermarks).
    shedding: Cell<bool>,
    /// Monotone per-shard round counter (trace round identity).
    round_no: Cell<u64>,
    /// Bytes physically copied by this shard (stats delta).
    bytes_copied: Cell<u64>,
    /// Tasks completed by this shard (stats delta).
    tasks_completed: Cell<u64>,
    /// Rounds in which this shard executed a batch (stats delta).
    rounds_active: Cell<u64>,
    /// Deterministic active set (DESIGN.md §18): the shard's clients with
    /// unsettled state, keyed by `reg_seq` so iteration order equals the
    /// legacy clients-vec (registration) order. Clients enter on the
    /// submission doorbell (or scrub heal / adoption) and leave when
    /// fully settled at round end. Maintained only on the fast path.
    active: RefCell<BTreeMap<u64, Rc<Client>>>,
    /// Incrementally maintained Σ `remaining()` over this shard's window
    /// entries — the pending-byte load `autoscale` used to sweep for.
    /// Maintained at every shard count and in both sweep modes.
    pending: Cell<u64>,
    /// Cached wrap-safe minimum live vruntime over this shard's clients,
    /// with the count of clients sitting at that minimum. `min_valid`
    /// false means stale (recomputed lazily on the next read); valid with
    /// `min_count == 0` means "no live clients".
    min_vr: Cell<u64>,
    min_count: Cell<u64>,
    min_valid: Cell<bool>,
    /// Commutative per-shard trace-hash accumulators: wrapping sums of
    /// every shard client's cached `(hp, hx)` contribution. Maintained
    /// only while delta-folded hashing is on (tracer + `shards > 1` +
    /// fast path).
    hp_sum: Cell<u64>,
    hx_sum: Cell<u64>,
    /// Clients whose hash contribution went stale since the last fold.
    hash_dirty: RefCell<Vec<Rc<Client>>>,
}

/// The asynchronous-copy OS service.
pub struct Copier {
    h: SimHandle,
    pm: Rc<PhysMem>,
    cost: Rc<CostModel>,
    cfg: CopierConfig,
    dispatcher: Rc<Dispatcher>,
    atcache: Rc<ATCache>,
    /// The copy-length scheduler and cgroup controller.
    pub sched: Scheduler,
    clients: RefCell<Vec<Rc<Client>>>,
    cores: Vec<Rc<Core>>,
    active_threads: Cell<usize>,
    scenario_active: Cell<bool>,
    wake: Rc<Notify>,
    parked: Cell<usize>,
    next_tid: Cell<TaskId>,
    next_client: Cell<ClientId>,
    stats: RefCell<CopierStats>,
    stopping: Cell<bool>,
    /// Bytes currently admitted into service windows (all clients).
    global_bytes: Cell<u64>,
    /// Latched global-watermark shedding state (hysteresis).
    shedding: Cell<bool>,
    /// Per-shard control planes; `len() == cfg.shards.max(1)`. At one
    /// shard the slot exists but every legacy code path stays in force —
    /// the per-shard counters are maintained unconditionally (host-side
    /// `Cell` writes, no virtual time), the sharded decision paths are
    /// not taken.
    shards: Vec<ShardState>,
    /// Round-barrier generation (bumped by the last arriver).
    barrier_gen: Cell<u64>,
    /// Shards arrived at the current barrier generation.
    barrier_arrived: Cell<usize>,
    /// OR-accumulator of `did_work` across the current generation's
    /// arrivals; folded into `barrier_any` at release.
    barrier_acc: Cell<bool>,
    /// Whether any shard did work in the last completed generation — the
    /// barrier-agreed idleness fact: shards park only when this is
    /// false, so they spin down (and wake) together.
    barrier_any: Cell<bool>,
    /// Wakes shards parked at the round barrier. Distinct from `wake`:
    /// submission wakeups must not release a barrier early.
    barrier_wake: Rc<Notify>,
    /// Monotone round counter feeding the record/replay trace (round
    /// identity in the event log; counts every poll round, active or
    /// idle — idle rounds emit nothing thanks to lazy headers).
    round_no: Cell<u64>,
    /// Set when an injected crash killed this incarnation: threads exit
    /// immediately and the control plane survives only in the journal
    /// store and client-owned memory.
    crashed: Cell<bool>,
    /// Service incarnation epoch (journal-derived; 0 when unjournaled).
    epoch: Cell<u64>,
    /// This incarnation's journal writer, if journaling is on.
    journal: Option<Journal>,
    /// What journal replay reconstructed at construction; consumed by
    /// [`Copier::adopt_client`] for digest reconciliation.
    recovered: RefCell<Option<Recovered>>,
    /// Regions under background scrub (§integrity).
    scrub: RefCell<Vec<ScrubRegion>>,
    /// Scrub cadence counter. Deliberately not `round_no`: that one only
    /// advances when tracing is on, and the walker must pace identically
    /// either way.
    scrub_tick: Cell<u64>,
    /// Walk resume position (chunk index across all regions).
    scrub_pos: Cell<usize>,
    /// Assignment epoch (DESIGN.md §18): bumped whenever the per-thread
    /// assignment lists could change — register/reap/adopt, an
    /// `active_threads` change, and active-set membership changes. Round
    /// scratches compare against it to reuse their client lists.
    assign_epoch: Cell<u64>,
    /// Monotone registration sequence feeding [`Client::reg_seq`].
    next_reg: Cell<u64>,
    /// Control-plane cost observables (host-side, not in CopierStats).
    obs: ObsCells,
}

impl Copier {
    /// Creates the service over dedicated `cores`.
    pub fn new(
        h: &SimHandle,
        pm: Rc<PhysMem>,
        cores: Vec<Rc<Core>>,
        cost: Rc<CostModel>,
        cfg: CopierConfig,
    ) -> Rc<Self> {
        assert!(!cores.is_empty(), "Copier needs at least one core");
        let dma = cfg.use_dma.then(|| {
            let d = DmaEngine::with_channels(
                h,
                Rc::clone(&pm),
                Rc::clone(&cost),
                cfg.dma_channels.max(1),
                cfg.fault_plan.clone(),
            );
            d.set_corruption_threshold(cfg.corrupt_quarantine_threshold);
            d
        });
        let dispatcher = Rc::new(Dispatcher::new(Rc::clone(&pm), Rc::clone(&cost), dma));
        dispatcher.set_verify(cfg.verify, cfg.repair_limit);
        let atcache = Rc::new(ATCache::new(cfg.atcache_capacity.max(1)));
        atcache.set_enabled(cfg.atcache_capacity > 0);
        let nshards = cfg.shards.max(1);
        if nshards > 1 {
            assert!(
                cores.len() >= nshards,
                "sharded service needs one dedicated core per shard"
            );
            assert!(
                !cfg.auto_scale,
                "shards and auto_scale are mutually exclusive"
            );
            assert!(
                matches!(cfg.polling, PollMode::Napi { .. }),
                "sharded service requires NAPI polling"
            );
        }
        let threads = if cfg.auto_scale {
            1
        } else if nshards > 1 {
            nshards
        } else {
            cores.len()
        };
        // Journal attach: replay whatever a previous incarnation left in
        // the store (truncating a torn tail) and open a new epoch. The
        // tid high-water mark carries forward so task ids never collide
        // across incarnations, and a checkpointed stats vector restores
        // the cumulative counters.
        let (journal, recovered) = match &cfg.journal {
            Some(store) => {
                let (j, r) = Journal::attach(store);
                (Some(j), Some(r))
            }
            None => (None, None),
        };
        let epoch = journal.as_ref().map_or(0, |j| j.epoch());
        let next_tid = recovered.as_ref().map_or(1, |r| r.next_tid.max(1));
        let stats = recovered
            .as_ref()
            .and_then(|r| r.stats.as_deref())
            .map(stats_from_vec)
            .unwrap_or_default();
        Rc::new(Copier {
            h: h.clone(),
            pm,
            cost,
            dispatcher,
            atcache,
            sched: {
                let s = Scheduler::new();
                s.set_copy_slice(cfg.copy_slice);
                s
            },
            cfg,
            clients: RefCell::new(Vec::new()),
            cores,
            active_threads: Cell::new(threads),
            scenario_active: Cell::new(true),
            wake: Rc::new(Notify::new()),
            parked: Cell::new(0),
            next_tid: Cell::new(next_tid),
            next_client: Cell::new(1),
            stats: RefCell::new(stats),
            stopping: Cell::new(false),
            global_bytes: Cell::new(0),
            shedding: Cell::new(false),
            shards: (0..nshards).map(|_| ShardState::default()).collect(),
            barrier_gen: Cell::new(0),
            barrier_arrived: Cell::new(0),
            barrier_acc: Cell::new(false),
            barrier_any: Cell::new(false),
            barrier_wake: Rc::new(Notify::new()),
            round_no: Cell::new(0),
            crashed: Cell::new(false),
            epoch: Cell::new(epoch),
            journal,
            recovered: RefCell::new(recovered),
            scrub: RefCell::new(Vec::new()),
            scrub_tick: Cell::new(0),
            scrub_pos: Cell::new(0),
            assign_epoch: Cell::new(0),
            next_reg: Cell::new(0),
            obs: ObsCells::default(),
        })
    }

    /// The cost model shared with clients.
    pub fn cost_model(&self) -> &Rc<CostModel> {
        &self.cost
    }

    /// The simulation handle (clients use it for yield-waits).
    pub fn sim_handle(&self) -> SimHandle {
        self.h.clone()
    }

    /// The physical pool.
    pub fn phys(&self) -> &Rc<PhysMem> {
        &self.pm
    }

    /// The active configuration.
    pub fn config(&self) -> &CopierConfig {
        &self.cfg
    }

    /// The ATCache (for experiment counters).
    pub fn atcache(&self) -> &Rc<ATCache> {
        &self.atcache
    }

    /// Snapshot of the service statistics.
    pub fn stats(&self) -> CopierStats {
        let mut s = *self.stats.borrow();
        s.quarantined_channels = self.dispatcher.dma().map_or(0, |d| d.quarantined() as u64);
        s.pressure_events = self.pm.pressure_events();
        s.corrupt_quarantined = self.dispatcher.dma().map_or(0, |d| d.corrupt_quarantined());
        s
    }

    /// Bytes currently admitted into service windows across all clients
    /// (the quantity the global watermarks gate).
    pub fn admitted_bytes(&self) -> u64 {
        self.global_bytes.get()
    }

    /// Number of control-plane shards (1 = the classic single-instance
    /// service).
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic shard owner of an address space: a splitmix-mixed
    /// hash of the space id. Stable across runs, registration order, and
    /// shard count (only the modulus changes), so the same tenant lands
    /// on the same shard in every run of a given configuration.
    pub fn shard_of_space(&self, space_id: u32) -> usize {
        (stream_seed(space_id as u64, 0) % self.shards.len() as u64) as usize
    }

    /// Per-shard `(bytes_copied, tasks_completed, rounds_active)` deltas
    /// — the observables the shard-scaling bench and the differential
    /// suite read. Valid for `idx < nshards()`.
    pub fn shard_stats(&self, idx: usize) -> (u64, u64, u64) {
        let s = &self.shards[idx];
        (
            s.bytes_copied.get(),
            s.tasks_completed.get(),
            s.rounds_active.get(),
        )
    }

    /// Snapshot of the control-plane cost observables (DESIGN.md §18).
    pub fn control_obs(&self) -> ControlObs {
        ControlObs {
            activations: self.obs.activations.get(),
            deactivations: self.obs.deactivations.get(),
            assign_rebuilds: self.obs.assign_rebuilds.get(),
            minvr_recomputes: self.obs.minvr_recomputes.get(),
            autoscale_calls: self.obs.autoscale_calls.get(),
            autoscale_sweeps: self.obs.autoscale_sweeps.get(),
            hash_refolds: self.obs.hash_refolds.get(),
        }
    }

    /// Cross-checks every incrementally maintained aggregate against a
    /// from-scratch recomputation: the per-shard pending-byte total, the
    /// cached min-vruntime (when valid), active-set completeness (on the
    /// fast path every live inactive client must be settled), and —
    /// under delta-folded hashing — the commutative hash sums after a
    /// refold. Test instrumentation for the soak differential suite;
    /// returns the first discrepancy as an error string. Host-side only:
    /// charges no virtual time.
    pub fn audit_aggregates(&self) -> Result<(), String> {
        let clients = self.clients.borrow();
        for (idx, sh) in self.shards.iter().enumerate() {
            let swept: u64 = clients
                .iter()
                .filter(|c| c.shard.get() == idx)
                .map(|c| {
                    let mut total = 0u64;
                    let mut si = 0;
                    while let Some(set) = c.set_at(si) {
                        si += 1;
                        total += set.pending_bytes() as u64;
                    }
                    total
                })
                .sum();
            if swept != sh.pending.get() {
                return Err(format!(
                    "shard {idx}: pending aggregate {} != sweep {swept}",
                    sh.pending.get()
                ));
            }
            if sh.min_valid.get() {
                let live = clients
                    .iter()
                    .filter(|c| c.shard.get() == idx && !c.dead.get());
                match min_live_vruntime(live.clone()) {
                    Some(m) => {
                        let n = live.filter(|c| c.copied_total.get() == m).count() as u64;
                        if sh.min_count.get() != n || sh.min_vr.get() != m {
                            return Err(format!(
                                "shard {idx}: min-vr cache ({}, {}) != sweep ({m}, {n})",
                                sh.min_vr.get(),
                                sh.min_count.get()
                            ));
                        }
                    }
                    None => {
                        if sh.min_count.get() != 0 {
                            return Err(format!(
                                "shard {idx}: min-vr cache claims {} holder(s), none live",
                                sh.min_count.get()
                            ));
                        }
                    }
                }
            }
            if self.fast_path() {
                for c in clients.iter().filter(|c| c.shard.get() == idx) {
                    if !c.dead.get() && !c.active.get() && !self.settled(c) {
                        return Err(format!(
                            "shard {idx}: inactive client {} holds unsettled work",
                            c.id
                        ));
                    }
                }
            }
            if self.hash_cached() {
                self.refold_dirty(idx);
                let (mut hp, mut hx) = (0u64, 0u64);
                for c in clients.iter().filter(|c| c.shard.get() == idx) {
                    let (p, x) = fold_client_commutative(c);
                    hp = hp.wrapping_add(p);
                    hx = hx.wrapping_add(x);
                }
                if (hp, hx) != (sh.hp_sum.get(), sh.hx_sum.get()) {
                    return Err(format!(
                        "shard {idx}: hash sums ({:#x}, {:#x}) != recompute ({hp:#x}, {hx:#x})",
                        sh.hp_sum.get(),
                        sh.hx_sum.get()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Whether rounds iterate per-shard active sets instead of the whole
    /// client table. True for every sharded service and for the
    /// single-service-core unsharded one; the unsharded *multi*-thread
    /// service keeps full iteration (its positional `i % threads`
    /// assignment has no per-shard home for an active set) — epoch-cached
    /// assignment still applies there. `full_sweep` forces the legacy
    /// reference behaviour everywhere.
    fn fast_path(&self) -> bool {
        !self.cfg.full_sweep && (self.nshards() > 1 || self.cores.len() == 1)
    }

    /// Whether per-shard trace hashes are maintained as delta-folded
    /// per-client contributions (multi-shard traced fast path). The
    /// single-shard hash chain keeps the legacy sequential fold — it is
    /// pinned by the committed `.cptr` repro corpus.
    fn hash_cached(&self) -> bool {
        self.cfg.tracer.is_some() && self.nshards() > 1 && !self.cfg.full_sweep
    }

    /// Submission doorbell (DESIGN.md §18): marks `client` active on its
    /// shard and wakes parked service threads. Called by libCopier after
    /// every ring push; service-internal producers (scrub heals,
    /// adoption) call [`Self::activate`] directly.
    pub fn doorbell(&self, client: &Rc<Client>) {
        self.activate(client);
        self.awaken();
    }

    /// Inserts `client` into its shard's active set (fast path) and
    /// marks its trace-hash contribution dirty (delta-folded hashing).
    /// Idempotent and O(log active).
    fn activate(&self, client: &Rc<Client>) {
        if self.hash_cached() {
            self.mark_hash_dirty(client);
        }
        if !self.fast_path() || client.active.get() || client.dead.get() {
            return;
        }
        client.active.set(true);
        self.shards[client.shard.get()]
            .active
            .borrow_mut()
            .insert(client.reg_seq.get(), Rc::clone(client));
        self.bump_assign_epoch();
        self.obs.activations.set(self.obs.activations.get() + 1);
    }

    /// Removes `client` from its shard's active set (round-end settle
    /// pass and reap).
    fn deactivate(&self, client: &Rc<Client>) {
        if !client.active.replace(false) {
            return;
        }
        self.shards[client.shard.get()]
            .active
            .borrow_mut()
            .remove(&client.reg_seq.get());
        self.bump_assign_epoch();
        self.obs.deactivations.set(self.obs.deactivations.get() + 1);
    }

    /// Whether `client` holds no unsettled control-plane state: all four
    /// rings empty and no unfinished window entry. An inactive client in
    /// this state is invisible to drain, sync, and scheduling in the
    /// full-sweep reference too (empty rings drain nothing, `has_work` is
    /// false, finished-but-unfinalized leftovers are never selected), so
    /// skipping it is outcome- and virtual-time-identical.
    fn settled(&self, client: &Client) -> bool {
        let mut si = 0;
        while let Some(set) = client.set_at(si) {
            si += 1;
            if !set.uq.copy.is_empty()
                || !set.kq.copy.is_empty()
                || !set.uq.sync.is_empty()
                || !set.kq.sync.is_empty()
            {
                return false;
            }
            if set.pending.borrow().iter().any(|p| !p.finished()) {
                return false;
            }
        }
        true
    }

    fn bump_assign_epoch(&self) {
        self.assign_epoch
            .set(self.assign_epoch.get().wrapping_add(1));
    }

    /// Marks `client`'s cached trace-hash contribution stale and queues
    /// it for re-folding at the next traced round close.
    fn mark_hash_dirty(&self, client: &Rc<Client>) {
        if client.hash_dirty.replace(true) {
            return;
        }
        self.shards[client.shard.get()]
            .hash_dirty
            .borrow_mut()
            .push(Rc::clone(client));
    }

    /// Adds `len` bytes to the owning shard's pending-load aggregate
    /// (Σ `remaining()` over window entries; maintained unconditionally).
    fn shard_pending_add(&self, client: &Client, len: u64) {
        let sh = &self.shards[client.shard.get()];
        sh.pending.set(sh.pending.get() + len);
    }

    /// Inverse of [`Self::shard_pending_add`].
    fn shard_pending_sub(&self, client: &Client, len: u64) {
        let sh = &self.shards[client.shard.get()];
        sh.pending.set(sh.pending.get().saturating_sub(len));
    }

    /// Folds a newly registered (or adopted) client's vruntime into its
    /// shard's cached minimum. A stale cache stays stale — it recomputes
    /// on the next read.
    fn minvr_register(&self, client: &Client) {
        let sh = &self.shards[client.shard.get()];
        if !sh.min_valid.get() {
            return;
        }
        let v = client.copied_total.get();
        if sh.min_count.get() == 0 || vruntime_before(v, sh.min_vr.get()) {
            sh.min_vr.set(v);
            sh.min_count.set(1);
        } else if v == sh.min_vr.get() {
            sh.min_count.set(sh.min_count.get() + 1);
        }
    }

    /// Removes a reaped client's vruntime from its shard's cached
    /// minimum; losing the last min-holder invalidates (the new minimum
    /// among the survivors is unknown without a scan).
    fn minvr_reap(&self, client: &Client) {
        let sh = &self.shards[client.shard.get()];
        if !sh.min_valid.get() {
            return;
        }
        if client.copied_total.get() == sh.min_vr.get() {
            let n = sh.min_count.get().saturating_sub(1);
            sh.min_count.set(n);
            if n == 0 {
                sh.min_valid.set(false);
            }
        }
    }

    /// Charges `bytes` to `client` through the scheduler while keeping
    /// its shard's cached min-vruntime exact: the only vruntime that ever
    /// *moves* is the charged client's, so the cache updates in O(1) —
    /// idle tenants sitting at the minimum never force a rescan.
    fn charge_client(&self, client: &Rc<Client>, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let old = client.copied_total.get();
        self.sched.charge(client, bytes);
        let sh = &self.shards[client.shard.get()];
        if !sh.min_valid.get() {
            return;
        }
        let new = client.copied_total.get();
        if old == sh.min_vr.get() {
            let n = sh.min_count.get().saturating_sub(1);
            sh.min_count.set(n);
            if n == 0 {
                // The charged client may still be the minimum (nobody
                // else was at it); a scan would be needed to know.
                sh.min_valid.set(false);
            }
            return;
        }
        if new == sh.min_vr.get() {
            sh.min_count.set(sh.min_count.get() + 1);
        } else if vruntime_before(new, sh.min_vr.get()) {
            sh.min_vr.set(new);
            sh.min_count.set(1);
        }
    }

    /// Wrap-safe minimum live vruntime among shard `idx`'s clients —
    /// what the shard publishes at the round barrier and what the
    /// least-served admission exemption compares against. Served from
    /// the incremental cache unless `full_sweep` forces the reference
    /// O(shard-clients) scan; a stale cache recomputes once and stays
    /// warm until the next invalidating event.
    fn shard_min_vr(&self, idx: usize) -> Option<u64> {
        if self.cfg.full_sweep {
            return min_live_vruntime(
                self.clients
                    .borrow()
                    .iter()
                    .filter(|c| c.shard.get() == idx),
            );
        }
        let sh = &self.shards[idx];
        if !sh.min_valid.get() {
            self.obs
                .minvr_recomputes
                .set(self.obs.minvr_recomputes.get() + 1);
            let clients = self.clients.borrow();
            let live = clients
                .iter()
                .filter(|c| c.shard.get() == idx && !c.dead.get());
            match min_live_vruntime(live.clone()) {
                Some(m) => {
                    let n = live.filter(|c| c.copied_total.get() == m).count() as u64;
                    sh.min_vr.set(m);
                    sh.min_count.set(n);
                }
                None => {
                    sh.min_count.set(0);
                }
            }
            sh.min_valid.set(true);
        }
        (sh.min_count.get() > 0).then(|| sh.min_vr.get())
    }

    /// Adds admitted bytes to the owning shard's slice of the global
    /// window (host-side `Cell`; maintained at every shard count).
    fn shard_bytes_add(&self, client: &Client, len: u64) {
        let sh = &self.shards[client.shard.get()];
        sh.bytes.set(sh.bytes.get() + len);
    }

    /// Inverse of [`Self::shard_bytes_add`] for the completion path.
    fn shard_bytes_sub(&self, client: &Client, len: u64) {
        let sh = &self.shards[client.shard.get()];
        sh.bytes.set(sh.bytes.get().saturating_sub(len));
    }

    /// Emits a trace event attributed to `shard`: the legacy anonymous
    /// emit at one shard (wire-identical to every committed trace), the
    /// per-shard lazy-header path otherwise.
    fn temit(&self, shard: usize, ev: TraceEvent) {
        if let Some(t) = &self.cfg.tracer {
            if self.nshards() > 1 {
                t.emit_on(shard as u32, ev);
            } else {
                t.emit(ev);
            }
        }
    }

    /// The `(pending, index, stats)` state hashes closing an active
    /// traced round (DESIGN.md §14). Every component is iterated in a
    /// deterministic order (registration order for clients and sets,
    /// window-key order for entries, BTreeMap order inside the index),
    /// so equal states hash equal regardless of how they were reached.
    fn trace_hashes(&self) -> (u64, u64, u64) {
        let mut hp = FNV_OFFSET;
        let mut hx = FNV_OFFSET;
        for c in self.clients.borrow().iter() {
            fold_client_state(c, &mut hp, &mut hx);
        }
        (hp, hx, self.stats_digest())
    }

    /// [`Self::trace_hashes`] restricted to shard `idx`: its clients'
    /// window/index state plus the shard's private stats deltas. Closing
    /// every shard round with these is what lets replay divergence
    /// localize to a `(shard, round)` pair instead of "somewhere this
    /// generation".
    ///
    /// Multi-shard hashes are *commutative*: each client folds its own
    /// state from a fresh FNV offset and the shard hash is the wrapping
    /// sum of the per-client contributions. That shape admits the §18
    /// delta fold — only clients touched since the last traced round
    /// re-fold; the sums absorb the difference — while staying
    /// order-independent, so the cached and full-recompute forms agree
    /// bit for bit (checked by the soak differential suite). The
    /// single-shard chain keeps the legacy sequential fold in
    /// [`Self::trace_hashes`]: its values are pinned by the committed
    /// `.cptr` repro corpus.
    fn shard_trace_hashes(&self, idx: usize) -> (u64, u64, u64) {
        let (hp, hx) = if self.hash_cached() {
            self.refold_dirty(idx);
            let sh = &self.shards[idx];
            (sh.hp_sum.get(), sh.hx_sum.get())
        } else {
            let mut hp = 0u64;
            let mut hx = 0u64;
            for c in self
                .clients
                .borrow()
                .iter()
                .filter(|c| c.shard.get() == idx)
            {
                let (p, x) = fold_client_commutative(c);
                hp = hp.wrapping_add(p);
                hx = hx.wrapping_add(x);
            }
            (hp, hx)
        };
        let sh = &self.shards[idx];
        let mut hs = FNV_OFFSET;
        for v in [
            sh.bytes.get(),
            sh.bytes_copied.get(),
            sh.tasks_completed.get(),
            sh.rounds_active.get(),
        ] {
            hs = fnv_fold(hs, v);
        }
        (hp, hx, hs)
    }

    /// Re-folds every dirty client on shard `idx` into the commutative
    /// hash sums: subtract the cached contribution, fold the current
    /// state, add it back. Cost is O(touched clients), not O(clients).
    fn refold_dirty(&self, idx: usize) {
        let sh = &self.shards[idx];
        let dirty: Vec<Rc<Client>> = sh.hash_dirty.borrow_mut().drain(..).collect();
        for c in dirty {
            // A reap may have cleared the flag after the client was
            // queued; its contribution is already out of the sums.
            if !c.hash_dirty.replace(false) {
                continue;
            }
            let (ohp, ohx) = c.hash_cache.get();
            let (nhp, nhx) = fold_client_commutative(&c);
            c.hash_cache.set((nhp, nhx));
            sh.hp_sum
                .set(sh.hp_sum.get().wrapping_sub(ohp).wrapping_add(nhp));
            sh.hx_sum
                .set(sh.hx_sum.get().wrapping_sub(ohx).wrapping_add(nhx));
            self.obs.hash_refolds.set(self.obs.hash_refolds.get() + 1);
        }
    }

    /// Canonical flattening of [`CopierStats`] — the single shape both
    /// the trace state hash and the journal checkpoint use. See
    /// [`stats_to_vec`] and [`stats_layout`] for the (append-only)
    /// index assignment.
    fn stats_vec(&self) -> Vec<u64> {
        stats_to_vec(&self.stats())
    }

    /// FNV-1a fold of [`Copier::stats_vec`].
    fn stats_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for v in self.stats_vec() {
            h = fnv_fold(h, v);
        }
        h
    }

    /// Resets the statistics.
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = CopierStats::default();
    }

    /// Registers a client with its user address space
    /// (`copier_create_mapped_queue`).
    pub fn register_client(&self, uspace: Rc<AddressSpace>) -> Rc<Client> {
        let id = self.next_client.get();
        self.next_client.set(id + 1);
        let c = Client::new(id, uspace, self.cfg.queue_cap);
        // The credit pool is the client-visible face of the in-flight task
        // quota: libCopier consumes one credit per submission, the service
        // returns one per completion.
        c.set_credit_cap(self.cfg.admission.max_client_tasks);
        c.epoch.set(self.epoch.get());
        c.shard.set(self.shard_of_space(c.uspace.id()));
        c.reg_seq.set(self.alloc_reg_seq());
        self.clients.borrow_mut().push(Rc::clone(&c));
        self.minvr_register(&c);
        if self.hash_cached() {
            // A fresh client contributes a non-trivial fold (its empty
            // index digests into hx), so the delta-folded sums must pick
            // it up even if it never becomes active.
            self.mark_hash_dirty(&c);
        }
        self.bump_assign_epoch();
        c
    }

    /// Allocates the next registration sequence number (also stamped at
    /// adoption — clients-vec push order equals `reg_seq` order).
    fn alloc_reg_seq(&self) -> u64 {
        let s = self.next_reg.get();
        self.next_reg.set(s + 1);
        s
    }

    /// Wakes parked Copier threads (`copier_awaken`).
    pub fn awaken(&self) {
        if self.parked.get() > 0 {
            self.wake.notify_all();
        }
    }

    /// Scenario-driven gate (§5.3): when inactive, threads sleep.
    pub fn set_scenario_active(&self, on: bool) {
        self.scenario_active.set(on);
        if on {
            self.wake.notify_all();
        }
    }

    /// Stops all service threads (test teardown). An orderly stop flushes
    /// staged journal records first — unlike a crash, nothing is lost.
    pub fn stop(&self) {
        if let Some(j) = &self.journal {
            j.flush();
        }
        self.stopping.set(true);
        self.wake.notify_all();
        self.barrier_wake.notify_all();
    }

    /// Whether an injected crash killed this incarnation. The library
    /// treats a crashed service as down: it falls back to synchronous
    /// copies until re-attached to a successor (§4.6-style fallback).
    pub fn has_crashed(&self) -> bool {
        self.crashed.get()
    }

    /// This incarnation's epoch (0 when journaling is off).
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Journal activity counters, if journaling is on.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.journal.as_ref().map(|j| j.stats())
    }

    /// What journal replay reconstructed at construction (`None` when
    /// journaling is off).
    pub fn recovered(&self) -> Option<Recovered> {
        self.recovered.borrow().clone()
    }

    /// Consults the crash oracle at `point`; on fire, this incarnation
    /// dies on the spot: every thread exits at its next check, no further
    /// journal flush happens (beyond what the point itself implies), and
    /// recovery is left to a successor service over the same store.
    fn maybe_crash(&self, point: CrashPoint) -> bool {
        let Some(plan) = &self.cfg.fault_plan else {
            return false;
        };
        if !plan.decide_crash(point) {
            return false;
        }
        self.crashed.set(true);
        self.stopping.set(true);
        self.stats.borrow_mut().crashes += 1;
        self.wake.notify_all();
        // A crashed shard never reaches its next barrier; peers parked
        // there must be released to observe `stopping` and die too.
        self.barrier_wake.notify_all();
        true
    }

    /// Flushes staged journal records; compacts against a checkpoint of
    /// the stats vector when the store outgrew its threshold.
    fn journal_flush(&self) {
        if let Some(j) = &self.journal {
            if j.flush() {
                j.compact(&self.stats_vec());
            }
        }
    }

    /// Currently active thread count (auto-scaling observable).
    pub fn active_threads(&self) -> usize {
        self.active_threads.get()
    }

    /// Starts one service task per core (per shard when sharded: cores
    /// beyond the shard count stay free for tenants).
    pub fn start(self: &Rc<Self>) {
        let n = if self.nshards() > 1 {
            self.nshards()
        } else {
            self.cores.len()
        };
        for i in 0..n {
            let me = Rc::clone(self);
            self.h.spawn(
                &format!("copier-{i}"),
                async move { me.thread_loop(i).await },
            );
        }
    }

    async fn thread_loop(self: Rc<Self>, idx: usize) {
        if self.nshards() > 1 {
            return self.shard_loop(idx).await;
        }
        let core = Rc::clone(&self.cores[idx]);
        let mut idle_streak = 0u32;
        // Per-thread round scratch: the dispatch progress map is cleared
        // and refilled each round instead of reallocated. Each thread owns
        // its own, and a round's DMA callbacks all settle before
        // `execute_batch` returns, so clearing at the next round is safe.
        let mut scratch = RoundScratch::new();
        loop {
            if self.stopping.get() {
                // Closing memory checkpoint: the trace ends with a full
                // physical digest so replay fidelity is checked even when
                // the run stopped between periodic checkpoints. A crashed
                // incarnation writes nothing more — like a real crash,
                // its trace just ends mid-stream.
                if idx == 0 && !self.crashed.get() {
                    if let Some(t) = &self.cfg.tracer {
                        t.record_mem(self.pm.digest());
                    }
                }
                return;
            }
            // Auto-scaling park: threads beyond the active count sleep. A
            // notified wake must charge the kthread wakeup latency like the
            // NAPI park below — `wake` can hold stored permits (doorbells
            // that landed while every thread was busy), and a zero-cost
            // retry loop here would spin without advancing virtual time,
            // freezing the clock for every timer-bound task in the sim.
            if idx >= self.active_threads.get() {
                self.parked.set(self.parked.get() + 1);
                let notified = self.wake.wait_timeout(&self.h, Nanos::from_millis(1)).await;
                self.parked.set(self.parked.get() - 1);
                if notified {
                    core.advance(self.cfg.wake_latency).await;
                }
                continue;
            }
            // Scenario gate.
            if self.cfg.polling == PollMode::ScenarioDriven && !self.scenario_active.get() {
                self.parked.set(self.parked.get() + 1);
                self.wake.notified().await;
                self.parked.set(self.parked.get() - 1);
                core.advance(self.cfg.wake_latency).await;
                continue;
            }
            let did = self.round(idx, &core, &mut scratch).await;
            if idx == 0 && self.cfg.auto_scale {
                self.autoscale();
            }
            if did {
                idle_streak = 0;
                self.stats.borrow_mut().busy_rounds += 1;
                continue;
            }
            self.stats.borrow_mut().idle_polls += 1;
            core.advance(self.cost.poll_idle).await;
            idle_streak += 1;
            match self.cfg.polling {
                PollMode::Napi {
                    spin_rounds,
                    park_timeout,
                } => {
                    if idle_streak > spin_rounds {
                        self.parked.set(self.parked.get() + 1);
                        let notified = self.wake.wait_timeout(&self.h, park_timeout).await;
                        self.parked.set(self.parked.get() - 1);
                        if notified {
                            // Kthread wakeup latency before the next sweep.
                            core.advance(self.cfg.wake_latency).await;
                        }
                        idle_streak = 0;
                    }
                }
                PollMode::ScenarioDriven => {
                    // Even inside an active scenario the thread sleeps when
                    // queues run empty (§6.2.4: "sleeps when queues are
                    // empty") — submissions call copier_awaken.
                    if idle_streak > 4 {
                        self.parked.set(self.parked.get() + 1);
                        let notified = self.wake.wait_timeout(&self.h, Nanos::from_millis(5)).await;
                        self.parked.set(self.parked.get() - 1);
                        if notified {
                            core.advance(self.cfg.wake_latency).await;
                        }
                        idle_streak = 0;
                    }
                }
            }
        }
    }

    /// Sharded service thread (DESIGN.md §17): shard `idx` owns the
    /// clients hashed to it and runs the classic round loop over them,
    /// then meets every other shard at a deterministic round barrier
    /// where byte counts and fairness minima are exchanged. Rounds are
    /// thus lockstep generations: admission and least-served decisions
    /// in generation g read only peer state published at the end of
    /// generation g-1 — never a peer's mid-round state — which is what
    /// keeps N-shard runs bit-reproducible from a seed.
    async fn shard_loop(self: Rc<Self>, idx: usize) {
        let core = Rc::clone(&self.cores[idx]);
        let mut idle_streak = 0u32;
        let mut scratch = RoundScratch::new();
        let PollMode::Napi {
            spin_rounds,
            park_timeout,
        } = self.cfg.polling
        else {
            unreachable!("sharded service requires NAPI polling (enforced at construction)");
        };
        loop {
            if self.stopping.get() {
                if idx == 0 && !self.crashed.get() {
                    if let Some(t) = &self.cfg.tracer {
                        t.record_mem(self.pm.digest());
                    }
                }
                // Release peers still parked at the barrier: a shard
                // exiting without arriving must not strand them.
                self.barrier_wake.notify_all();
                return;
            }
            let did = self.round(idx, &core, &mut scratch).await;
            if did {
                self.stats.borrow_mut().busy_rounds += 1;
            }
            let any = self.barrier_round(did).await;
            if any {
                // Some shard did work this generation: everyone keeps
                // polling hot, even shards that were themselves idle —
                // idleness is a barrier-agreed global fact, never a local
                // guess, so the shards spin down (and park) in lockstep.
                idle_streak = 0;
                continue;
            }
            self.stats.borrow_mut().idle_polls += 1;
            core.advance(self.cost.poll_idle).await;
            idle_streak += 1;
            if idle_streak > spin_rounds {
                self.parked.set(self.parked.get() + 1);
                let notified = self.wake.wait_timeout(&self.h, park_timeout).await;
                self.parked.set(self.parked.get() - 1);
                if notified {
                    core.advance(self.cfg.wake_latency).await;
                }
                idle_streak = 0;
            }
        }
    }

    /// The deterministic round barrier. Every shard arrives once per
    /// generation; the last arriver runs the cross-shard message round
    /// ([`Self::exchange`]), folds the generation's `did_work` OR into
    /// [`Copier::barrier_any`], bumps the generation, and releases the
    /// waiters. Returns whether *any* shard did work this generation.
    ///
    /// Shutdown safety: `stop()` and `maybe_crash()` notify
    /// `barrier_wake`, and the wait re-checks `stopping`, so no shard is
    /// ever stranded behind a peer that exited without arriving.
    async fn barrier_round(&self, did: bool) -> bool {
        let generation = self.barrier_gen.get();
        if did {
            self.barrier_acc.set(true);
        }
        let arrived = self.barrier_arrived.get() + 1;
        if arrived == self.nshards() {
            self.barrier_arrived.set(0);
            self.exchange();
            self.barrier_any.set(self.barrier_acc.get());
            self.barrier_acc.set(false);
            self.barrier_gen.set(generation + 1);
            self.barrier_wake.notify_all();
        } else {
            self.barrier_arrived.set(arrived);
            // The check-then-await is race-free on the cooperative
            // single-threaded host: no other task runs between the
            // condition read and the waker registration.
            while self.barrier_gen.get() == generation && !self.stopping.get() {
                self.barrier_wake.notified().await;
            }
        }
        self.barrier_any.get()
    }

    /// The cross-shard message round (DESIGN.md §17), executed by the
    /// last barrier arriver: reads each shard's published byte count and
    /// live-vruntime minimum in shard-id order — one deterministic
    /// snapshot — and rewrites every shard's `peer_*` mirrors from it.
    /// Generation g+1 therefore sees one consistent cross-shard view no
    /// matter how the shards' rounds interleaved inside generation g.
    fn exchange(&self) {
        let bytes: Vec<u64> = self.shards.iter().map(|s| s.bytes.get()).collect();
        let minvr: Vec<Option<u64>> = (0..self.nshards()).map(|i| self.shard_min_vr(i)).collect();
        for (i, sh) in self.shards.iter().enumerate() {
            let peer: u64 = bytes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, b)| *b)
                .sum();
            sh.peer_bytes.set(peer);
            let mut pm: Option<u64> = None;
            for v in minvr
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .filter_map(|(_, v)| *v)
            {
                pm = Some(match pm {
                    None => v,
                    Some(m) if vruntime_before(v, m) => v,
                    Some(m) => m,
                });
            }
            sh.peer_min_vr.set(pm);
        }
    }

    /// Thread auto-scaling by pending-byte load. Unsharded-only by
    /// construction (`shards > 1` forbids `auto_scale`, and only the
    /// unsharded `thread_loop` calls this) — sharded rounds must never
    /// pay for it, which `tests/soak_differential.rs` checks through
    /// [`ControlObs::autoscale_calls`]. The load read is the incremental
    /// pending aggregate unless `full_sweep` forces the legacy
    /// O(clients × sets) sweep.
    fn autoscale(&self) {
        debug_assert_eq!(self.nshards(), 1, "autoscale is unsharded-only");
        self.obs
            .autoscale_calls
            .set(self.obs.autoscale_calls.get() + 1);
        let load = if self.cfg.full_sweep {
            self.obs
                .autoscale_sweeps
                .set(self.obs.autoscale_sweeps.get() + 1);
            let mut load = 0usize;
            for c in self.clients.borrow().iter() {
                for s in c.sets.borrow().iter() {
                    load += s.pending_bytes();
                }
            }
            load
        } else {
            self.shards[0].pending.get() as usize
        };
        let active = self.active_threads.get();
        if load > self.cfg.high_load && active < self.cores.len() {
            self.active_threads.set(active + 1);
            self.bump_assign_epoch();
            self.wake.notify_all();
        } else if load < self.cfg.low_load && active > 1 {
            self.active_threads.set(active - 1);
            self.bump_assign_epoch();
        }
    }

    /// Refreshes the thread's client assignment in `scratch` (epoch-
    /// cached: a stable membership reuses the buffer untouched, so a
    /// settled poll pays O(1) instead of an O(clients) rebuild).
    ///
    /// Fast path: the shard's active set, in `reg_seq` (= registration)
    /// order, filtered by the round's registration watermark — exactly
    /// the clients the legacy full snapshot would have found with any
    /// unsettled state, in the same order (see [`Self::settled`] for the
    /// equivalence argument). Legacy path: all clients (sharded: by
    /// space-hash ownership; unsharded: positional round-robin over the
    /// active threads).
    fn assigned_into(&self, idx: usize, scratch: &mut RoundScratch) {
        let ep = self.assign_epoch.get();
        if scratch.epoch == ep {
            return;
        }
        scratch.epoch = ep;
        self.obs
            .assign_rebuilds
            .set(self.obs.assign_rebuilds.get() + 1);
        let out = &mut scratch.clients;
        out.clear();
        if self.fast_path() {
            for (&seq, c) in self.shards[idx].active.borrow().iter() {
                if seq < scratch.reg_watermark {
                    out.push(Rc::clone(c));
                }
            }
            return;
        }
        if self.nshards() > 1 {
            // Sharded ownership is by space hash, not round-robin index:
            // a client's whole QueueSet state lives on exactly one shard
            // for the client's lifetime, so no cross-shard locking or
            // entry migration ever happens.
            for c in self.clients.borrow().iter() {
                if c.shard.get() == idx {
                    out.push(Rc::clone(c));
                }
            }
            return;
        }
        let n = self.active_threads.get().max(1);
        for (i, c) in self.clients.borrow().iter().enumerate() {
            if i % n == idx {
                out.push(Rc::clone(c));
            }
        }
    }

    /// Drains every set of every assigned client, walking sets by index
    /// (no snapshot clone; sets are never removed, only appended).
    fn drain_assigned(&self, clients: &[Rc<Client>]) -> usize {
        let mut n = 0usize;
        for c in clients {
            let mut si = 0;
            while let Some(set) = c.set_at(si) {
                n += self.drain_set(c, &set, si as u32);
                si += 1;
            }
        }
        n
    }

    /// One service round. Returns whether any work was done.
    ///
    /// With a tracer configured this wraps the round in `begin_round` /
    /// `end_round` so every event the round emits carries its round
    /// identity, closes active rounds with the `(pending, index, stats)`
    /// state hashes, and appends periodic physical-memory digests. The
    /// tracer is host-side bookkeeping only — no virtual time is charged,
    /// so traced and untraced runs have identical timelines. Round
    /// attribution is per-service (one counter), which is exact for the
    /// single-core service configs the record/replay fixtures use.
    async fn round(
        self: &Rc<Self>,
        idx: usize,
        core: &Rc<Core>,
        scratch: &mut RoundScratch,
    ) -> bool {
        let Some(tracer) = self.cfg.tracer.clone() else {
            return self.round_inner(idx, core, scratch).await;
        };
        if self.nshards() > 1 {
            // Sharded round identity is the (shard, per-shard round)
            // pair; each shard closes its own active rounds with its own
            // state hashes, so replay divergence names the shard too.
            let sh = &self.shards[idx];
            let round_no = sh.round_no.get() + 1;
            sh.round_no.set(round_no);
            tracer.begin_shard_round(idx as u32, round_no, self.h.now().as_nanos());
            let did = self.round_inner(idx, core, scratch).await;
            let mem_due = tracer.end_shard_round(idx as u32, || self.shard_trace_hashes(idx));
            if mem_due {
                tracer.record_mem(self.pm.digest());
            }
            return did;
        }
        let round_no = self.round_no.get() + 1;
        self.round_no.set(round_no);
        tracer.begin_round(round_no, self.h.now().as_nanos());
        let did = self.round_inner(idx, core, scratch).await;
        let mem_due = tracer.end_round(|| self.trace_hashes());
        if mem_due {
            tracer.record_mem(self.pm.digest());
        }
        did
    }

    async fn round_inner(
        self: &Rc<Self>,
        idx: usize,
        core: &Rc<Core>,
        scratch: &mut RoundScratch,
    ) -> bool {
        // 0. Background integrity (§integrity): one oracle rot draw per
        // round (zero PRNG draws unless `rot_prob` is enabled, so
        // rot-free runs are byte-identical), then the scrub walker. Both
        // are host-side — no virtual time is charged; heal copies enter
        // the ordinary queues and pace like any other submission. The
        // block runs *before* the assignment snapshot so a heal push
        // (which activates its owner) is drained this round on the fast
        // path exactly as the legacy all-clients snapshot would have.
        if idx == 0 {
            if let Some(plan) = &self.cfg.fault_plan {
                if let Some(p) = plan.decide_rot() {
                    self.inject_rot(p);
                }
            }
            if self.cfg.scrub_period > 0 && !self.scrub.borrow().is_empty() {
                let t = self.scrub_tick.get() + 1;
                self.scrub_tick.set(t);
                if t.is_multiple_of(self.cfg.scrub_period) {
                    self.scrub_walk();
                }
            }
        }
        // Snapshot boundary: clients registered after this point are
        // invisible to this round on both paths (the legacy snapshot was
        // taken here too). Stage-boundary refreshes below re-run the
        // epoch check so a client *activated* mid-round (a push landing
        // during an await) is drained by the later stages, matching the
        // legacy snapshot's live ring reads.
        scratch.reg_watermark = self.next_reg.get();
        self.assigned_into(idx, scratch);
        if self.hash_cached() {
            // This round may mutate any assigned client's hashed state;
            // clients activated mid-round are marked by their doorbell.
            for c in scratch.clients.iter() {
                if !c.hash_dirty.replace(true) {
                    self.shards[c.shard.get()]
                        .hash_dirty
                        .borrow_mut()
                        .push(Rc::clone(c));
                }
            }
        }
        // 1. Drain queues into windows.
        let mut drained = self.drain_assigned(&scratch.clients);
        if drained > 0 {
            core.advance(Nanos(self.cfg.drain_cost.as_nanos() * drained as u64))
                .await;
            // Settle window: submissions arrive in bursts (a syscall path
            // or an app loop submits several copies back to back); a short
            // pause lets the burst land so absorption and e-piggyback see
            // adjacent tasks together.
            if self.cfg.aggregation_delay > Nanos::ZERO {
                core.advance(self.cfg.aggregation_delay).await;
                self.assigned_into(idx, scratch);
                let more = self.drain_assigned(&scratch.clients);
                if more > 0 {
                    core.advance(Nanos(self.cfg.drain_cost.as_nanos() * more as u64))
                        .await;
                    drained += more;
                }
            }
        }
        // 2. Sync queues (k-mode before u-mode, §4.2.2).
        self.assigned_into(idx, scratch);
        let mut synced = 0usize;
        for c in scratch.clients.iter() {
            let mut si = 0;
            while let Some(set) = c.set_at(si) {
                si += 1;
                while let Some(st) = set.kq.sync.pop() {
                    self.handle_sync(&set, st);
                    synced += 1;
                }
                while let Some(st) = set.uq.sync.pop() {
                    self.handle_sync(&set, st);
                    synced += 1;
                }
            }
        }
        if synced > 0 {
            core.advance(Nanos(self.cfg.drain_cost.as_nanos() * synced as u64))
                .await;
        }
        if drained + synced > 0 {
            self.temit(
                idx,
                TraceEvent::Drained {
                    copies: drained as u64,
                    syncs: synced as u64,
                },
            );
            // Crash point: after draining, before the admissions became
            // durable — the staged Admit records die with this
            // incarnation, so adoption drops the entries undelivered and
            // the library resubmits them.
            if self.maybe_crash(CrashPoint::MidDrain) {
                return true;
            }
            // Crash point: mid-journal-flush — staged records reach the
            // store but the final one is torn halfway, exercising the
            // replayer's torn-tail truncation.
            if self.maybe_crash(CrashPoint::MidJournalFlush) {
                if let Some(j) = &self.journal {
                    j.flush_torn();
                }
                return true;
            }
            // Durability boundary: this round's admissions flush before
            // any of their bytes can move, so a journaled-but-absent task
            // is never one with partial undigested progress.
            self.journal_flush();
        }
        // 3. Schedule a client.
        let now = self.h.now();
        self.assigned_into(idx, scratch);
        let picked = self.sched.pick(&scratch.clients, now, self.cfg.lazy_period);
        let Some(client) = picked else {
            self.stats.borrow_mut().rounds_settled += 1;
            self.settle_pass(idx, scratch);
            return drained + synced > 0;
        };
        self.temit(
            client.shard.get(),
            TraceEvent::SchedPick { client: client.id },
        );
        // 4. Select a batch.
        let selected = self.select_batch(&client, now);
        if selected.is_empty() {
            self.stats.borrow_mut().rounds_settled += 1;
            self.settle_pass(idx, scratch);
            return drained + synced > 0;
        }
        // 5–7. Plan, dispatch, complete. A batch whose every selected gap
        // is already in flight (a peer thread's open round holds it across
        // an autoscale reassignment) plans nothing and charges nothing —
        // count that round as settled, not active, so the thread takes the
        // idle path and the clock can advance to the peer's completion.
        let acted = self.execute(core, &client, selected, &scratch.by_tid).await;
        if acted {
            self.stats.borrow_mut().rounds_active += 1;
            let sh = &self.shards[client.shard.get()];
            sh.rounds_active.set(sh.rounds_active.get() + 1);
        } else {
            self.stats.borrow_mut().rounds_settled += 1;
        }
        // Completion records staged by finalize become durable at round
        // end; a crash inside `execute` loses them and the tasks replay
        // as live, to be reconciled by digest at adoption.
        if !self.crashed.get() {
            self.journal_flush();
        }
        self.settle_pass(idx, scratch);
        acted || drained + synced > 0
    }

    /// Round-end active-set maintenance (fast path only): every assigned
    /// client that ended the round fully settled leaves the shard's
    /// active set. Aborted-but-unfinalized leftovers are inert (never
    /// selected; reclaimed by reap), so a settled client generates no
    /// control-plane work until its next doorbell.
    fn settle_pass(&self, idx: usize, scratch: &mut RoundScratch) {
        if !self.fast_path() {
            return;
        }
        self.assigned_into(idx, scratch);
        // Collect-then-deactivate: deactivation mutates the active map
        // the scratch list mirrors, and bumps the epoch so the next
        // round rebuilds.
        let settled: Vec<Rc<Client>> = scratch
            .clients
            .iter()
            .filter(|c| self.settled(c))
            .cloned()
            .collect();
        for c in &settled {
            self.deactivate(c);
        }
    }

    /// Drains one queue set's copy queues into its pending window,
    /// applying admission control to every copy task at the drain
    /// boundary — the backstop for submitters that bypass the library's
    /// credit pool.
    fn drain_set(&self, client: &Rc<Client>, set: &Rc<QueueSet>, set_idx: u32) -> usize {
        let mut n = 0;
        // k-mode first so barrier keys are in place before u entries drain.
        while let Some(e) = set.kq.copy.pop() {
            n += 1;
            match e {
                QueueEntry::Barrier { peer_pos } => set.cur_k_key.set(peer_pos),
                QueueEntry::Copy(t) => {
                    if !self.admit_traced(client, &t) {
                        self.shed(client, set, t);
                        continue;
                    }
                    let key = (set.cur_k_key.get(), 0u8, bump(&set.seq));
                    self.push_pending(client, set, set_idx, key, t);
                }
            }
        }
        while let Some(e) = set.uq.copy.pop() {
            n += 1;
            match e {
                QueueEntry::Barrier { .. } => {}
                QueueEntry::Copy(t) => {
                    if !self.admit_traced(client, &t) {
                        self.shed(client, set, t);
                        continue;
                    }
                    let key = (bump(&set.u_index), 1u8, bump(&set.seq));
                    self.push_pending(client, set, set_idx, key, t);
                }
            }
        }
        n
    }

    /// [`Self::admit`] plus the record/replay emission of the decision —
    /// one `Admit` event per copy submission at the drain boundary.
    fn admit_traced(&self, client: &Rc<Client>, t: &CopyTask) -> bool {
        let admitted = self.admit(client, t);
        self.temit(
            client.shard.get(),
            TraceEvent::Admit {
                client: client.id,
                len: t.len as u64,
                admitted,
            },
        );
        admitted
    }

    /// Admission decision for one submission. Per-client quotas are
    /// unconditional. The global byte watermark sheds with hysteresis
    /// (latched above `global_high_bytes`, released below
    /// `global_low_bytes`) and is priority-aware: the least-served live
    /// client — the one the copied-length scheduler would favor — is
    /// exempt, so overload never starves a light tenant.
    fn admit(&self, client: &Rc<Client>, t: &CopyTask) -> bool {
        let q = &self.cfg.admission;
        if client.inflight_tasks.get() >= q.max_client_tasks {
            return false;
        }
        if client.inflight_bytes.get().saturating_add(t.len as u64) > q.max_client_bytes {
            return false;
        }
        if self.nshards() > 1 {
            return self.admit_global_sharded(client);
        }
        let g = self.global_bytes.get();
        if self.shedding.get() {
            if g <= q.global_low_bytes {
                self.shedding.set(false);
            }
        } else if g >= q.global_high_bytes {
            self.shedding.set(true);
        }
        !self.shedding.get() || self.least_served(client)
    }

    /// Sharded global-watermark decision: the shard's live byte count
    /// plus every peer's count as published at the last round barrier.
    /// The peer snapshot only changes at barriers, so the decision is
    /// independent of how rounds interleave inside a generation — the
    /// same hysteresis latch as the legacy path, per shard. Staleness is
    /// bounded by one generation and errs at most `nshards - 1` rounds
    /// of admissions past the high watermark, the price of not taking a
    /// global lock on the hot path.
    fn admit_global_sharded(&self, client: &Rc<Client>) -> bool {
        let q = &self.cfg.admission;
        let sh = &self.shards[client.shard.get()];
        let g = sh.bytes.get().saturating_add(sh.peer_bytes.get());
        if sh.shedding.get() {
            if g <= q.global_low_bytes {
                sh.shedding.set(false);
            }
        } else if g >= q.global_high_bytes {
            sh.shedding.set(true);
        }
        !sh.shedding.get() || self.least_served(client)
    }

    /// Whether `client` is (tied for) the least-served live client — the
    /// same yardstick as [`Scheduler::pick`]'s fairness order. The
    /// exemption is strict: under a symmetric overload every tenant takes
    /// its turn at the minimum, so shedding rotates fairly instead of
    /// exempting the whole band and never shedding at all.
    fn least_served(&self, client: &Rc<Client>) -> bool {
        // Wrap-safe minimum: a client is least-served iff no live client
        // is strictly before it in vruntime order. A plain `min()` would
        // misrank a freshly wrapped accumulator (see `vruntime_before`).
        // "No live client strictly before `cur`" is equivalent to "the
        // live minimum is not strictly before `cur`" (the scan includes
        // `client` itself, and so does the cached minimum), which is what
        // lets the incremental min-vruntime cache answer in O(1).
        let cur = client.copied_total.get();
        if self.nshards() > 1 {
            // The exemption stays *global* under sharding: own-shard
            // clients through the live minimum, peers through the minimum
            // each shard published at the last barrier — deterministic,
            // and stale by at most one generation.
            let sh = &self.shards[client.shard.get()];
            if let Some(pm) = sh.peer_min_vr.get() {
                if vruntime_before(pm, cur) {
                    return false;
                }
            }
            return match self.shard_min_vr(client.shard.get()) {
                Some(m) => !vruntime_before(m, cur),
                None => true,
            };
        }
        if !self.cfg.full_sweep {
            return match self.shard_min_vr(0) {
                Some(m) => !vruntime_before(m, cur),
                None => true,
            };
        }
        !self
            .clients
            .borrow()
            .iter()
            .filter(|c| !c.dead.get())
            .any(|c| vruntime_before(c.copied_total.get(), cur))
    }

    /// Rejects a submission: the descriptor is poisoned `Overloaded` (a
    /// typed, observable outcome — never a silent drop), the completion
    /// handler still runs, and the client's submission credit returns so
    /// its pool reflects true in-flight depth.
    fn shed(&self, client: &Rc<Client>, set: &Rc<QueueSet>, t: CopyTask) {
        t.descr.poison(CopyFault::Overloaded);
        // The delivery claim keeps shedding exactly-once too: a
        // crash-resubmitted duplicate that gets shed does not run the
        // handler or mint a second credit.
        if t.descr.claim_delivery() {
            self.deliver_handler(set, &t);
            client.grant_credit();
        }
        let mut st = self.stats.borrow_mut();
        st.admission_rejected += 1;
        st.shed_bytes += t.len as u64;
    }

    fn push_pending(
        &self,
        client: &Rc<Client>,
        set: &Rc<QueueSet>,
        set_idx: u32,
        key: (u64, u8, u64),
        t: CopyTask,
    ) {
        // Dependency cascade across rounds (§4.4): a task sourcing from a
        // range a faulted producer never wrote would read garbage — fail it
        // up front with the producer's fault instead of letting absorption
        // or a raw copy forward stale bytes.
        let (ssp, slo, shi) = t.src_range();
        let hit = set
            .tainted
            .borrow()
            .iter()
            .find(|x| x.space == ssp && x.lo < shi && slo < x.hi)
            .map(|x| x.fault);
        if let Some(fault) = hit {
            t.descr.poison(fault);
            if t.descr.claim_delivery() {
                self.deliver_handler(set, &t);
                // No window entry exists to finalize, so the submission
                // credit comes back here instead of on the completion path.
                client.grant_credit();
            }
            let (dsp, dlo, dhi) = t.dst_range();
            self.remember_taint(client, set, dsp, dlo, dhi, fault);
            let mut st = self.stats.borrow_mut();
            st.faults += 1;
            st.dependents_aborted += 1;
            return;
        }
        // A fresh copy that fully overwrites a tainted range heals it.
        let (dsp, dlo, dhi) = t.dst_range();
        set.tainted
            .borrow_mut()
            .retain(|x| !(x.space == dsp && dlo <= x.lo && x.hi <= dhi));
        // Zero-length copies (legal, like `memcpy(d, s, 0)`) complete
        // immediately at the drain boundary: their descriptor is born
        // all-ready, so a window entry would never be selected — and
        // therefore never finalized, leaking its handler and credit
        // forever. (The taint check above can never hit an empty source
        // range, which is right: a zero-length read forwards nothing.)
        if t.len == 0 {
            if t.descr.claim_delivery() {
                self.deliver_handler(set, &t);
                client.grant_credit();
                let mut st = self.stats.borrow_mut();
                st.credits_granted += 1;
                st.tasks_completed += 1;
            }
            return;
        }
        let tid = self.next_tid.get();
        self.next_tid.set(tid + 1);
        let entry = Rc::new(PendEntry {
            tid,
            key,
            task: t,
            copied: RefCell::new(IntervalSet::new()),
            inflight: RefCell::new(IntervalSet::new()),
            deferred: RefCell::new(IntervalSet::new()),
            defer_until: Cell::new(Nanos::ZERO),
            promoted: Cell::new(false),
            aborted: Cell::new(false),
            failed: Cell::new(None),
            submitted_at: self.h.now(),
            pins: RefCell::new(Vec::new()),
            finalized: Cell::new(false),
        });
        let len = entry.task.len as u64;
        // Journal the admission before it becomes visible to scheduling:
        // the pre-copy extent digests of both ranges are what recovery
        // reconciles a journaled-but-vanished task against. Sampling is
        // host-side only — no virtual time, no PRNG draw. The stride
        // (`admit_digest_stride`) sets the coverage/cost point: 0 = legacy
        // head+tail (blind to mid-extent damage), 1 = every page, k =
        // every k-th page — torn-write detection at recovery can only see
        // what these digests sampled.
        if let Some(j) = &self.journal {
            let t = &entry.task;
            let stride = self.cfg.admit_digest_stride;
            j.record_admit(AdmitRec {
                tid,
                client: client.id,
                set_idx,
                key,
                dst_space: t.dst_space.id(),
                dst: t.dst.0,
                src_space: t.src_space.id(),
                src: t.src.0,
                len: t.len as u64,
                seg: t.seg as u64,
                dst_digest: t.dst_space.extent_digest_stride(t.dst, t.len, stride),
                src_digest: t.src_space.extent_digest_stride(t.src, t.len, stride),
            });
        }
        set.index.insert(&entry);
        {
            let mut st = self.stats.borrow_mut();
            let n = set.index.len() as u64;
            if n > st.index_entries_peak {
                st.index_entries_peak = n;
            }
        }
        let mut pending = set.pending.borrow_mut();
        // Insert sorted by key (binary search; keys are unique per set).
        let pos = pending.partition_point(|p| p.key <= entry.key);
        pending.insert(pos, entry);
        // Admission accounting: the task now occupies window capacity.
        client.inflight_tasks.set(client.inflight_tasks.get() + 1);
        client.inflight_bytes.set(client.inflight_bytes.get() + len);
        self.global_bytes.set(self.global_bytes.get() + len);
        self.shard_bytes_add(client, len);
        // A fresh entry's remaining() is its full length.
        self.shard_pending_add(client, len);
    }

    /// Serves one Sync Task: promotion (with dependency closure) or abort.
    fn handle_sync(&self, set: &Rc<QueueSet>, st: SyncTask) {
        self.stats.borrow_mut().syncs += 1;
        let pending = set.pending.borrow();
        let lo = st.addr.0 as usize;
        let hi = lo + st.len;
        // Latest matching task wins (§4.2.2 reverse traversal); an abort
        // with an explicit descriptor matches by identity instead (those
        // carry no address, so the scan stays linear — they are rare).
        let target_idx = if let Some(d) = &st.target {
            pending
                .iter()
                .rposition(|p| !p.finished() && Rc::ptr_eq(&p.task.descr, d))
        } else {
            // Address-indexed lookup: the latest unfinished entry whose
            // destination overlaps the synced range. Window position order
            // equals key order (keys are unique), so "latest" is the max
            // key among the window query's matches.
            let mut best: Option<crate::client::OrderKey> = None;
            let hits = set.index.for_each_overlap(
                crate::pendindex::RangeKind::Dst,
                st.space_id,
                lo as u64,
                hi as u64,
                |p| {
                    if !p.finished() && best.is_none_or(|b| p.key > b) {
                        best = Some(p.key);
                    }
                },
            );
            self.stats.borrow_mut().index_hits += hits;
            best.map(|k| pending.partition_point(|p| p.key < k))
        };
        let Some(ti) = target_idx else {
            return;
        };
        if st.abort {
            let e = Rc::clone(&pending[ti]);
            drop(pending);
            e.aborted.set(true);
            e.task.descr.poison(CopyFault::Aborted);
            self.stats.borrow_mut().aborts += 1;
            return;
        }
        // Promote the target and its dependency closure (§4.2.2). Reads
        // (RAW) from a still-pending producer do *not* force the producer
        // when absorption is on — layering will source the bytes directly.
        // Write hazards (WAW on the destination, WAR against a pending
        // reader's source) always force the earlier task ahead.
        let overlap = |ranges: &[(u32, usize, usize)], sp: u32, lo: usize, hi: usize| {
            ranges.iter().any(|&(s, l, h)| s == sp && l < hi && lo < h)
        };
        let mut needed_src: Vec<(u32, usize, usize)> = Vec::new();
        let mut needed_dst: Vec<(u32, usize, usize)> = Vec::new();
        {
            let t = &pending[ti].task;
            needed_src.push((t.src_space.id(), t.src.0 as usize, t.src.0 as usize + t.len));
            needed_dst.push((t.dst_space.id(), t.dst.0 as usize, t.dst.0 as usize + t.len));
            pending[ti].promoted.set(true);
            pending[ti].defer_until.set(Nanos::ZERO);
        }
        self.stats.borrow_mut().promotions += 1;
        for i in (0..ti).rev() {
            let p = &pending[i];
            if p.finished() {
                continue;
            }
            let d = p.task.dst_range();
            let sr = p.task.src_range();
            let waw = overlap(&needed_dst, d.0, d.1 as usize, d.2 as usize);
            let war = overlap(&needed_dst, sr.0, sr.1 as usize, sr.2 as usize);
            let raw = overlap(&needed_src, d.0, d.1 as usize, d.2 as usize);
            let dep = waw || war || (raw && !self.cfg.absorption);
            if dep {
                p.promoted.set(true);
                p.defer_until.set(Nanos::ZERO);
                needed_src.push((sr.0, sr.1 as usize, sr.2 as usize));
                needed_dst.push((d.0, d.1 as usize, d.2 as usize));
                self.stats.borrow_mut().promotions += 1;
            } else if raw {
                // The promoted reader will layer over this producer's
                // source; make sure the producer's own source ranges are
                // also protected transitively.
                needed_src.push((sr.0, sr.1 as usize, sr.2 as usize));
            }
        }
    }

    /// Selects a batch of runnable, mutually independent tasks.
    fn select_batch(&self, client: &Rc<Client>, now: Nanos) -> Vec<Selected> {
        // Pinned-frame quota: past it the client's work is *deferred*
        // (left in the window for a later round), not shed — completions
        // release pins and the backlog drains without failing anything.
        if client.pinned.get() >= self.cfg.admission.max_client_pinned {
            return Vec::new();
        }
        // Under memory pressure absorption is off: absorbed obligations
        // hold their producer's window entry (and pins) alive longer,
        // exactly what a pressured pool cannot afford (§4.6 fallback).
        let absorption = self.cfg.absorption && !self.pm.pressure();
        let budget = self.sched.copy_slice();
        let mut out: Vec<Selected> = Vec::new();
        let mut bytes = 0usize;
        let mut hazard_scans = 0u64;
        let mut index_hits = 0u64;
        let mut si = 0;
        while let Some(set) = client.set_at(si) {
            si += 1;
            if bytes >= budget {
                break;
            }
            // Iterate the window in place; the analysis runs against the
            // set's address index, so no `earlier` snapshot is needed —
            // "earlier" is exactly the index records with a smaller key.
            let pending = set.pending.borrow();
            let any_promoted = pending.iter().any(|p| p.promoted.get() && !p.finished());
            for e in pending.iter() {
                if e.finished() {
                    continue;
                }
                let promoted = e.promoted.get();
                let skip = if any_promoted && !promoted {
                    true
                } else if promoted {
                    false
                } else if e.task.lazy && now < e.submitted_at + self.cfg.lazy_period {
                    true
                } else {
                    e.defer_until.get() > now && !e.has_executable_gaps(false)
                };
                if skip {
                    continue;
                }
                let (plan, hits) = absorb::analyze_indexed(e, &set.index, absorption);
                hazard_scans += 1;
                index_hits += hits;
                if plan.blocked {
                    // Push the blockers through first; retry next round. A
                    // promoted entry transfers its priority to its blockers
                    // (otherwise promoted-only rounds would starve them).
                    for b in &plan.blockers {
                        b.defer_until.set(Nanos::ZERO);
                        *b.deferred.borrow_mut() = IntervalSet::new();
                        if b.task.lazy || promoted {
                            b.promoted.set(true);
                        }
                    }
                    break;
                }
                let cap = (budget - bytes).min(e.remaining()).max(1);
                bytes += e.remaining().min(cap);
                out.push(Selected {
                    set: Rc::clone(&set),
                    entry: Rc::clone(e),
                    plan,
                    cap,
                });
                if bytes >= budget {
                    break;
                }
            }
        }
        // Apply deferrals from all plans (after selection so every plan saw
        // the pre-round state).
        let now_defer = now + self.cfg.lazy_period;
        let mut absorbed = 0u64;
        for s in &out {
            for (tgt, lo, hi) in &s.plan.defers {
                tgt.deferred.borrow_mut().insert(*lo, *hi);
                tgt.defer_until.set(now_defer);
            }
            absorbed += s.plan.absorbed_bytes as u64;
        }
        let mut st = self.stats.borrow_mut();
        st.bytes_absorbed += absorbed;
        st.hazard_scans += hazard_scans;
        st.index_hits += index_hits;
        out
    }

    /// Translates and pins a range, via the ATCache when possible.
    /// Returns the extents plus the fault work performed.
    async fn translate_pin(
        &self,
        core: &Rc<Core>,
        space: &Rc<AddressSpace>,
        va: VirtAddr,
        len: usize,
        write: bool,
    ) -> Result<(Vec<Extent>, Vec<FrameId>), CopyFault> {
        if let Some(extents) = self.atcache.lookup(space, va, len) {
            core.advance(self.cost.atc_hit).await;
            let stale = self
                .cfg
                .fault_plan
                .as_ref()
                .is_some_and(|p| p.decide_atc_stale());
            if !stale {
                let frames = frames_of(&extents);
                for &f in &frames {
                    self.pm.pin(f);
                }
                return Ok((extents, frames));
            }
            // Injected stale hit: the cached translation cannot be trusted;
            // pay the hit, fall through to a full walk (which re-validates
            // and refreshes the entry).
        }
        let pages = len.div_ceil(PAGE_SIZE).max(1) as u64;
        // Sequential walks over one range share PT cache lines (8 PTEs per
        // line): the first walk pays full price, the rest a quarter.
        let walk_cost =
            Nanos(self.cost.pte_walk.as_nanos() + (pages - 1) * self.cost.pte_walk.as_nanos() / 4);
        // Batched gather path: one page-table walk resolves, pins, and
        // emits the extents. Fault accounting — and therefore every charged
        // duration below — is identical to the per-page reference path.
        match space.resolve_and_pin_range_extents(va, len, write) {
            Ok((extents, frames, work)) => {
                // Charge the walk and any proactive fault handling.
                let mut cost = walk_cost;
                let faults = (work.demand_zero + work.cow_remap + work.cow_copy) as u64;
                cost += Nanos(self.cost.page_fault.as_nanos() * faults);
                if work.bytes_copied > 0 {
                    cost += self.cost.cpu_copy(CpuCopyKind::Avx2, work.bytes_copied);
                }
                core.advance(cost).await;
                self.stats.borrow_mut().proactive_faults += faults;
                self.atcache.insert(space, va, len, extents.clone());
                Ok((extents, frames))
            }
            Err(e) => {
                core.advance(walk_cost).await;
                Err(match e {
                    MemError::OutOfMemory | MemError::Fragmented => CopyFault::OutOfMemory,
                    _ => CopyFault::Segv,
                })
            }
        }
    }

    /// Plans, dispatches, and completes a selected batch.
    async fn execute(
        self: &Rc<Self>,
        core: &Rc<Core>,
        client: &Rc<Client>,
        sel: Vec<Selected>,
        by_tid: &ByTidMap,
    ) -> bool {
        let now = self.h.now();
        if self.pm.pressure() {
            return self.execute_degraded(core, client, &sel, now).await;
        }
        let mut planned: Vec<PlannedCopy> = Vec::new();
        by_tid.borrow_mut().clear();
        let mut planned_bytes = 0usize;
        // Whether this call did anything observable (planned bytes, took a
        // fault, crashed). A batch can select entries yet plan nothing —
        // every selected gap already in flight from a peer thread's open
        // round after an autoscale reassignment — and such a call charges
        // no virtual time, so the caller must treat the round as idle or a
        // hot thread could spin at a frozen clock waiting for the peer's
        // completion timer that only an idle park lets fire.
        let mut acted = false;

        for s in &sel {
            let e = &s.entry;
            if e.finished() {
                continue;
            }
            let force = e.promoted.get() || now >= e.defer_until.get();
            let gaps = truncate_gaps(e.executable_gaps(force), s.cap);
            if gaps.is_empty() {
                continue;
            }
            let plan_res = self.plan_entry(core, client, e, &s.plan, &gaps).await;
            if self.crashed.get() {
                // Zombie resume: a peer shard crashed this incarnation
                // while `plan_entry` was suspended in translate/pin. Pins
                // taken after adoption's release sweep would never be
                // drained again (the successor may have finalized the
                // entry already), so release the whole batch now and
                // abandon the round — a crashed kernel dispatches
                // nothing.
                self.drain_batch_pins(client, &sel);
                return true;
            }
            match plan_res {
                Ok(pc) => {
                    let deferred_exec: usize = {
                        let d = e.deferred.borrow();
                        gaps.iter()
                            .map(|&(lo, hi)| {
                                d.overlaps(lo, hi).iter().map(|(a, b)| b - a).sum::<usize>()
                            })
                            .sum()
                    };
                    self.stats.borrow_mut().bytes_deferred_executed += deferred_exec as u64;
                    planned_bytes += pc.subtasks.iter().map(|st| st.len()).sum::<usize>();
                    for &(lo, hi) in &gaps {
                        let inflight = e.inflight.borrow_mut().insert(lo, hi);
                        e.deferred.borrow_mut().remove(lo, hi);
                        // In-flight bytes leave the pending-load aggregate
                        // (remaining() excludes them).
                        self.shard_pending_sub(client, inflight as u64);
                    }
                    by_tid.borrow_mut().insert(e.tid, Rc::clone(e));
                    planned.push(pc);
                }
                Err(fault) => {
                    // Mid-copy fault: poison only this descriptor (partial
                    // progress already marked stays marked), then abort its
                    // dependents in dependency order (§4.4).
                    e.failed.set(Some(fault));
                    e.task.descr.poison(fault);
                    client.signals.borrow_mut().push(fault);
                    self.stats.borrow_mut().faults += 1;
                    self.finalize(client, &s.set, e);
                    self.cascade_fault(&s.set, client, e, fault);
                    acted = true;
                }
            }
        }

        // Crash point: planned and pinned, nothing dispatched yet. The
        // batch's pins are released on the spot — adoption also sweeps
        // window-entry pins, but no successor ever adopts when the crash
        // lands as the run winds down (tenants fail fast on a dead
        // service), and nothing else would unpin these frames.
        if self.maybe_crash(CrashPoint::MidDispatch) {
            self.drain_batch_pins(client, &sel);
            return true;
        }
        if !planned.is_empty() {
            let map = Rc::clone(by_tid);
            let me = Rc::downgrade(self);
            let shard = client.shard.get();
            let progress: ProgressFn = Rc::new(move |tid, off, len| {
                // A dead incarnation processes no completions: once this
                // service has crashed, a late DMA landing must not mark
                // the (shared, adoption-surviving) entry or any segment.
                // The successor re-adds `remaining()` at adoption and
                // re-copies unmarked gaps idempotently; letting the old
                // kernel mark bytes after that point would silently
                // shrink `remaining()` under the successor's aggregate.
                let Some(svc) = me.upgrade() else { return };
                if svc.crashed.get() {
                    return;
                }
                // Clone out of the map before marking: the short borrow
                // never outlives the callback's own bookkeeping.
                let entry = map.borrow().get(&tid).cloned();
                if let Some(e) = entry {
                    let (added, removed) = mark_progress(&e, off, len);
                    // DMA-path progress moves bytes inflight → copied, so
                    // the net pending-load delta is usually zero; the
                    // arithmetic stays exact for partial overlaps.
                    let sh = &svc.shards[shard];
                    let p = sh.pending.get() + removed as u64;
                    sh.pending.set(p.saturating_sub(added as u64));
                }
            });
            let report = self
                .dispatcher
                .execute_batch(core, &planned, progress)
                .await;
            // Peer crash while the batch was in flight: a dead kernel
            // records nothing and completes nothing. Drop the report,
            // release the batch's pins, and abandon the round.
            if self.crashed.get() {
                self.drain_batch_pins(client, &sel);
                return true;
            }
            {
                let mut st = self.stats.borrow_mut();
                st.bytes_copied += (report.cpu_bytes + report.dma_bytes) as u64;
                st.retries += report.retries;
                st.fallback_bytes += report.fallback_bytes as u64;
                st.dispatch.cpu_bytes += report.cpu_bytes;
                st.dispatch.dma_bytes += report.dma_bytes;
                st.dispatch.dma_descriptors += report.dma_descriptors;
                st.dispatch.dma_wait += report.dma_wait;
                st.dispatch.retries += report.retries;
                st.dispatch.fallback_bytes += report.fallback_bytes;
                st.dispatch.corruptions += report.corruptions;
                st.dispatch.repairs += report.repairs;
            }
            {
                let sh = &self.shards[client.shard.get()];
                sh.bytes_copied
                    .set(sh.bytes_copied.get() + (report.cpu_bytes + report.dma_bytes) as u64);
            }
            // Verification failures that exhausted bounded repair: the
            // destination bytes are wrong even though every segment was
            // marked, so the descriptor is poisoned `Corrupted` and the
            // taint cascades exactly like a mid-copy fault — nothing
            // downstream may consume the range.
            for tid in self.dispatcher.take_corrupted() {
                let Some(s) = sel.iter().find(|s| s.entry.tid == tid) else {
                    continue;
                };
                let e = &s.entry;
                if e.failed.get().is_some() {
                    continue;
                }
                let fault = CopyFault::Corrupted;
                e.failed.set(Some(fault));
                e.task.descr.poison(fault);
                client.signals.borrow_mut().push(fault);
                {
                    let mut st = self.stats.borrow_mut();
                    st.faults += 1;
                    st.corrupted_poisoned += 1;
                }
                self.finalize(client, &s.set, e);
                self.cascade_fault(&s.set, client, e, fault);
            }
            self.charge_client(client, planned_bytes);
        }

        // Crash point: bytes landed (descriptor segments are marked, the
        // copied intervals recorded) but nothing finalized — no handler,
        // no credit, no Complete record. Adoption finds these entries
        // finished and settles them exactly once.
        if self.maybe_crash(CrashPoint::PreFinalize) {
            self.drain_batch_pins(client, &sel);
            return true;
        }
        // Completion pass.
        for s in sel.iter() {
            if s.entry.finished() {
                self.finalize(client, &s.set, &s.entry);
            }
        }
        acted || !planned.is_empty()
    }

    /// Executes a selected batch synchronously under memory pressure —
    /// the §4.6 break-even fallback. No pinning, no ATCache refill, no
    /// DMA: each gap is resolved and copied page by page with the kernel
    /// ERMS copier, so a pressured pool is never asked to hold more
    /// frames. Recovery is automatic: once allocations fall below the low
    /// watermark, [`PhysMem::pressure`] clears and the next round takes
    /// the pinned asynchronous path again.
    async fn execute_degraded(
        self: &Rc<Self>,
        core: &Rc<Core>,
        client: &Rc<Client>,
        sel: &[Selected],
        now: Nanos,
    ) -> bool {
        let mut degraded_bytes = 0usize;
        // Same contract as `execute`: report whether anything was done so
        // an all-in-flight batch registers as an idle round.
        let mut acted = false;
        for s in sel {
            let e = &s.entry;
            if e.finished() {
                continue;
            }
            let force = e.promoted.get() || now >= e.defer_until.get();
            let gaps = truncate_gaps(e.executable_gaps(force), s.cap);
            if gaps.is_empty() {
                continue;
            }
            acted = true;
            match self.degraded_copy(core, client, e, &s.plan, &gaps).await {
                Ok(copied) => {
                    degraded_bytes += copied;
                    {
                        let mut st = self.stats.borrow_mut();
                        st.degraded_sync_copies += 1;
                        st.bytes_copied += copied as u64;
                    }
                    let sh = &self.shards[client.shard.get()];
                    sh.bytes_copied.set(sh.bytes_copied.get() + copied as u64);
                }
                Err(fault) => {
                    e.failed.set(Some(fault));
                    e.task.descr.poison(fault);
                    client.signals.borrow_mut().push(fault);
                    self.stats.borrow_mut().faults += 1;
                    self.finalize(client, &s.set, e);
                    self.cascade_fault(&s.set, client, e, fault);
                }
            }
        }
        if degraded_bytes > 0 {
            self.charge_client(client, degraded_bytes);
        }
        for s in sel {
            if s.entry.finished() {
                self.finalize(client, &s.set, &s.entry);
            }
        }
        acted
    }

    /// One entry's gaps, copied synchronously page by page. Pages are
    /// resolved (faulting on demand, cost-charged) but never pinned, and
    /// the data moves through [`PhysMem::copy`] under the ERMS cost curve
    /// — slower per byte and paying per-page startup, which is exactly
    /// the break-even trade the paper's §4.6 fallback makes.
    async fn degraded_copy(
        &self,
        core: &Rc<Core>,
        client: &Rc<Client>,
        e: &Rc<PendEntry>,
        plan: &AbsorbPlan,
        gaps: &[(usize, usize)],
    ) -> Result<usize, CopyFault> {
        let t = &e.task;
        let mut copied = 0usize;
        for &(glo, ghi) in gaps {
            e.deferred.borrow_mut().remove(glo, ghi);
            for p in &plan.pieces {
                let lo = glo.max(p.off);
                let hi = ghi.min(p.off + p.len);
                if lo >= hi {
                    continue;
                }
                let mut off = lo;
                while off < hi {
                    let dst_va = t.dst.add(off);
                    let src_va = p.va.add(off - p.off);
                    let take = (hi - off)
                        .min(PAGE_SIZE - dst_va.page_off())
                        .min(PAGE_SIZE - src_va.page_off());
                    let (df, dw) = t.dst_space.resolve(dst_va, true).map_err(mem_fault)?;
                    let (sf, sw) = p.space.resolve(src_va, false).map_err(mem_fault)?;
                    let faults = (dw.demand_zero
                        + dw.cow_remap
                        + dw.cow_copy
                        + sw.demand_zero
                        + sw.cow_remap
                        + sw.cow_copy) as u64;
                    let mut cost = self.cost.cpu_copy(CpuCopyKind::Erms, take);
                    cost += Nanos(self.cost.pte_walk.as_nanos() * (dw.walks + sw.walks) as u64);
                    cost += Nanos(self.cost.page_fault.as_nanos() * faults);
                    if dw.bytes_copied + sw.bytes_copied > 0 {
                        cost += self
                            .cost
                            .cpu_copy(CpuCopyKind::Avx2, dw.bytes_copied + sw.bytes_copied);
                    }
                    core.advance(cost).await;
                    self.pm
                        .copy(df, dst_va.page_off(), sf, src_va.page_off(), take);
                    let (added, removed) = mark_progress(e, off, take);
                    // Degraded-path bytes were never in flight, so the
                    // pending load drops by what landed.
                    self.shard_pending_add(client, removed as u64);
                    self.shard_pending_sub(client, added as u64);
                    copied += take;
                    off += take;
                }
            }
        }
        Ok(copied)
    }

    /// Builds the hardware plan for one entry's executable gaps.
    async fn plan_entry(
        &self,
        core: &Rc<Core>,
        client: &Rc<Client>,
        e: &Rc<PendEntry>,
        plan: &AbsorbPlan,
        gaps: &[(usize, usize)],
    ) -> Result<PlannedCopy, CopyFault> {
        let t = &e.task;
        let (dst_ex, dst_frames) = self
            .translate_pin(core, &t.dst_space, t.dst, t.len, true)
            .await?;
        client
            .pinned
            .set(client.pinned.get() + dst_frames.len() as u64);
        e.pins
            .borrow_mut()
            .push((Rc::clone(&t.dst_space), dst_frames));
        let mut subtasks = Vec::new();
        for &(glo, ghi) in gaps {
            for p in &plan.pieces {
                let lo = glo.max(p.off);
                let hi = ghi.min(p.off + p.len);
                if lo >= hi {
                    continue;
                }
                let src_va = p.va.add(lo - p.off);
                let (src_ex, src_frames) = self
                    .translate_pin(core, &p.space, src_va, hi - lo, false)
                    .await?;
                client
                    .pinned
                    .set(client.pinned.get() + src_frames.len() as u64);
                e.pins.borrow_mut().push((Rc::clone(&p.space), src_frames));
                let dst_slice = slice_extents(&dst_ex, lo, hi - lo);
                for mut st in split_subtasks(&dst_slice, &src_ex) {
                    st.task_off += lo;
                    subtasks.push(st);
                }
            }
        }
        subtasks.sort_by_key(|st| st.task_off);
        Ok(PlannedCopy {
            task_id: e.tid,
            len: t.len,
            subtasks,
            verify: t.verify,
        })
    }

    /// Releases every pin a crashed round's batch still holds. A crashed
    /// incarnation exits `execute` through one of its crash checks with
    /// planned-but-unfinalized entries; adoption also sweeps window-entry
    /// pins, but when the crash lands as the run winds down no successor
    /// is ever installed, so the round must clean up after itself.
    /// Draining is idempotent against adoption's sweep — whoever runs
    /// second finds the vectors empty.
    fn drain_batch_pins(&self, client: &Rc<Client>, sel: &[Selected]) {
        let mut unpinned = 0u64;
        for s in sel {
            for (space, frames) in s.entry.pins.borrow_mut().drain(..) {
                unpinned += frames.len() as u64;
                space.unpin_frames(&frames);
            }
        }
        client
            .pinned
            .set(client.pinned.get().saturating_sub(unpinned));
    }

    /// Completes a task: handlers, unpinning, window removal. Idempotent:
    /// only the first caller runs the handler; pins drain on every call
    /// (a planner racing an orphan sweep may append pins to an
    /// already-finalized entry, and those must still be released).
    fn finalize(&self, client: &Rc<Client>, set: &Rc<QueueSet>, e: &Rc<PendEntry>) {
        let mut unpinned = 0u64;
        for (space, frames) in e.pins.borrow_mut().drain(..) {
            unpinned += frames.len() as u64;
            space.unpin_frames(&frames);
        }
        client
            .pinned
            .set(client.pinned.get().saturating_sub(unpinned));
        if e.finalized.replace(true) {
            return;
        }
        // The entry leaves the window below; whatever it still had
        // outstanding leaves the pending-load aggregate with it.
        self.shard_pending_sub(client, e.remaining() as u64);
        let fault_code = match (e.aborted.get(), e.failed.get()) {
            (_, Some(f)) => copy_fault_code(f),
            (true, None) => copy_fault_code(CopyFault::Aborted),
            (false, None) => 0,
        };
        // Descriptor state transition for the record/replay trace: one
        // TaskDone per window entry, in finalization order.
        self.temit(
            client.shard.get(),
            TraceEvent::TaskDone {
                tid: e.tid,
                fault: fault_code,
            },
        );
        // The completion becomes durable at the next journal flush; until
        // then the task replays as live and is digest-reconciled at
        // adoption.
        if let Some(j) = &self.journal {
            j.record_complete(e.tid, fault_code);
        }
        // Return the task's admission share and its submission credit —
        // the completion ring is where backpressure unwinds.
        client
            .inflight_tasks
            .set(client.inflight_tasks.get().saturating_sub(1));
        client.inflight_bytes.set(
            client
                .inflight_bytes
                .get()
                .saturating_sub(e.task.len as u64),
        );
        self.global_bytes
            .set(self.global_bytes.get().saturating_sub(e.task.len as u64));
        self.shard_bytes_sub(client, e.task.len as u64);
        // The delivery claim (client memory, survives a crash) is the
        // exactly-once gate: handler and credit fire for the first
        // settlement of this submission across all service incarnations.
        if e.task.descr.claim_delivery() {
            client.grant_credit();
            self.stats.borrow_mut().credits_granted += 1;
            // Handlers run for failed and aborted tasks too: the
            // completion callback observes the outcome through the
            // poisoned descriptor instead of being silently dropped.
            self.deliver_handler(set, &e.task);
        }
        if !e.aborted.get() && e.failed.get().is_none() {
            self.stats.borrow_mut().tasks_completed += 1;
            let sh = &self.shards[client.shard.get()];
            sh.tasks_completed.set(sh.tasks_completed.get() + 1);
        }
        // Window and index removal by key (the window is sorted by unique
        // key, so this replaces the O(n) retain sweep). Runs after the
        // handler: a KFunc may submit, which needs the pending borrow.
        set.index.remove(e);
        let mut pending = set.pending.borrow_mut();
        let pos = pending.partition_point(|p| p.key < e.key);
        if pos < pending.len() && Rc::ptr_eq(&pending[pos], e) {
            pending.remove(pos);
        }
    }

    /// Runs a task's KFUNC inline or queues its UFUNC for post_handlers().
    fn deliver_handler(&self, set: &Rc<QueueSet>, t: &CopyTask) {
        if let Some(h) = &t.func {
            match h {
                Handler::KFunc(f) => f(),
                Handler::UFunc(f) => {
                    // Deliver to the client's handler queue; libCopier
                    // runs it in post_handlers(). A full ring spills into
                    // the unbounded overflow list (drained first by
                    // post_handlers) — handlers are never dropped.
                    if let Err(rejected) = set.uq.handler.push(Handler::UFunc(Rc::clone(f))) {
                        set.handler_overflow.borrow_mut().push_back(rejected.0);
                    }
                }
            }
        }
    }

    /// Records a garbaged destination range on the set (bounded list)
    /// and mirrors it into the journal so the §4.4 dependency wall
    /// survives a service restart.
    fn remember_taint(
        &self,
        client: &Rc<Client>,
        set: &Rc<QueueSet>,
        space: u32,
        lo: u64,
        hi: u64,
        fault: CopyFault,
    ) {
        if let Some(j) = &self.journal {
            let set_idx = client
                .sets
                .borrow()
                .iter()
                .position(|s| Rc::ptr_eq(s, set))
                .unwrap_or(0) as u32;
            j.record_taint(TaintRec {
                client: client.id,
                set_idx,
                space,
                lo,
                hi,
                fault: copy_fault_code(fault),
            });
        }
        let mut t = set.tainted.borrow_mut();
        if t.len() >= 64 {
            t.remove(0);
        }
        t.push(TaintRange {
            space,
            lo,
            hi,
            fault,
        });
    }

    /// §4.4 dependency-ordered cleanup after a fault: the failed task's
    /// destination was never (fully) written, so any later window entry
    /// sourcing from it — directly or through a chain — is poisoned with
    /// the parent fault, in window-key order. Absorption never sees the
    /// dependents (they are finalized out of the window), so it can never
    /// forward from a poisoned source. The garbaged ranges are remembered
    /// on the set so copies submitted in later rounds hit the same wall
    /// until a fresh write fully overwrites the range.
    fn cascade_fault(
        &self,
        set: &Rc<QueueSet>,
        client: &Rc<Client>,
        failed: &Rc<PendEntry>,
        fault: CopyFault,
    ) {
        // Reachability closure over the index instead of a window sweep: a
        // later entry dies iff its source overlaps the destination of an
        // already-dead entry with a *smaller* key (the linear sweep records
        // a victim's taint before checking entries after it, and only
        // them). BFS over garbaged destination ranges computes the same
        // fixed point; victims are then poisoned in window-key order, so
        // signals, handlers, and remembered taints land exactly as the
        // sweep would have produced them.
        let mut killed: BTreeMap<crate::client::OrderKey, Rc<PendEntry>> = BTreeMap::new();
        let mut frontier: Vec<(crate::client::OrderKey, (u32, u64, u64))> =
            vec![(failed.key, failed.task.dst_range())];
        let mut hits = 0u64;
        let mut found: Vec<Rc<PendEntry>> = Vec::new();
        while let Some((bound, (sp, lo, hi))) = frontier.pop() {
            found.clear();
            hits += set
                .index
                .for_each_overlap(crate::pendindex::RangeKind::Src, sp, lo, hi, |p| {
                    if p.key > bound && !p.finished() && !killed.contains_key(&p.key) {
                        found.push(Rc::clone(p));
                    }
                });
            for p in found.drain(..) {
                frontier.push((p.key, p.task.dst_range()));
                killed.insert(p.key, p);
            }
        }
        self.stats.borrow_mut().index_hits += hits;
        for p in killed.values() {
            p.failed.set(Some(fault));
            p.task.descr.poison(fault);
            client.signals.borrow_mut().push(fault);
            let mut st = self.stats.borrow_mut();
            st.faults += 1;
            st.dependents_aborted += 1;
        }
        for p in killed.values() {
            self.finalize(client, set, p);
        }
        let (fsp, flo, fhi) = failed.task.dst_range();
        self.remember_taint(client, set, fsp, flo, fhi, fault);
        for p in killed.values() {
            let (sp, lo, hi) = p.task.dst_range();
            self.remember_taint(client, set, sp, lo, hi, fault);
        }
    }

    /// Orphan reclamation: reclaims everything a dead client left behind
    /// (`exit` with queued or in-flight copies). Queued-but-undrained
    /// descriptors are poisoned `Aborted` so library waiters unblock,
    /// window entries — including deferred absorption obligations — are
    /// aborted and finalized (releasing their pins), CSH rings are
    /// drained, and the client is unregistered. Returns the number of
    /// orphaned tasks reclaimed.
    pub fn reap_client(&self, client: &Rc<Client>) -> u64 {
        let was_dead = client.dead.replace(true);
        let mut reclaimed = 0u64;
        let mut si = 0;
        while let Some(set) = client.set_at(si) {
            si += 1;
            for pair in [&set.uq, &set.kq] {
                while let Some(entry) = pair.copy.pop() {
                    if let QueueEntry::Copy(t) = entry {
                        t.descr.poison(CopyFault::Aborted);
                        reclaimed += 1;
                    }
                }
                while pair.sync.pop().is_some() {}
                while pair.handler.pop().is_some() {}
            }
            // Drain the window front-to-back instead of snapshot-cloning
            // it; `finalize` drops each popped entry's index records. The
            // count is latched up front so a completion handler submitting
            // mid-reap cannot extend the sweep (matching the snapshot
            // semantics this replaces).
            let n = set.pending.borrow().len();
            for _ in 0..n {
                let Some(p) = set.pending.borrow_mut().pop_front() else {
                    break;
                };
                if !p.finished() {
                    p.aborted.set(true);
                    p.task.descr.poison(CopyFault::Aborted);
                    reclaimed += 1;
                }
                self.finalize(client, &set, &p);
            }
            set.tainted.borrow_mut().clear();
            set.handler_overflow.borrow_mut().clear();
        }
        // Return every admission resource the client still held: quota
        // bytes leave the global window, counters zero, and the credit
        // pool refills so nothing leaks across client generations.
        self.global_bytes.set(
            self.global_bytes
                .get()
                .saturating_sub(client.inflight_bytes.get()),
        );
        self.shard_bytes_sub(client, client.inflight_bytes.get());
        client.inflight_tasks.set(0);
        client.inflight_bytes.set(0);
        client.pinned.set(0);
        client.credits.set(client.credit_cap.get());
        // Incremental-aggregate exits (DESIGN.md §18): the client leaves
        // the active set, the cached min-vruntime, and — when delta-folded
        // hashing is on — the shard hash sums. Its window is empty now
        // (the sweep above finalized everything), so the pending
        // aggregate already dropped through finalize.
        self.deactivate(client);
        if !was_dead {
            self.minvr_reap(client);
        }
        if self.hash_cached() {
            let sh = &self.shards[client.shard.get()];
            let (hp, hx) = client.hash_cache.get();
            sh.hp_sum.set(sh.hp_sum.get().wrapping_sub(hp));
            sh.hx_sum.set(sh.hx_sum.get().wrapping_sub(hx));
            client.hash_cache.set((0, 0));
            // The flag stays false so a stale dirty-list entry is skipped.
            client.hash_dirty.set(false);
        }
        self.clients.borrow_mut().retain(|c| !Rc::ptr_eq(c, client));
        self.bump_assign_epoch();
        // The dead client's scrub registrations go with it: any queued
        // heal task was just reaped above (poisoned `Aborted`, pins
        // released through finalize), and the walker must not keep
        // digesting — or re-healing — memory nobody owns anymore.
        self.scrub.borrow_mut().retain(|r| r.client != client.id);
        self.stats.borrow_mut().orphans_reclaimed += reclaimed;
        // The reaped client's Complete records become durable right away
        // so a crash after the reap never resurrects its tasks.
        self.journal_flush();
        reclaimed
    }

    /// Registers a long-lived region for background scrubbing
    /// (§integrity). `primary` is the guarded range; `replica` holds the
    /// same bytes and is what heal copies source from when the walker
    /// finds rot. Golden per-chunk digests are taken now, full-coverage
    /// (stride 1) — the whole point of the scrubber is catching damage
    /// anywhere in the extent. Digesting is host-side only.
    pub fn register_scrub_region(
        &self,
        client: &Rc<Client>,
        space: &Rc<AddressSpace>,
        primary: VirtAddr,
        replica: VirtAddr,
        len: usize,
        chunk: usize,
    ) {
        let chunk = chunk.max(1).min(len.max(1));
        let n = len.div_ceil(chunk).max(1);
        let mut golden = Vec::with_capacity(n);
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            golden.push(space.extent_digest_stride(primary.add(off), clen, 1));
        }
        self.scrub.borrow_mut().push(ScrubRegion {
            client: client.id,
            space: Rc::clone(space),
            primary,
            replica,
            len,
            chunk,
            golden,
            dead: (0..n).map(|_| Cell::new(false)).collect(),
            healing: (0..n).map(|_| Rc::new(Cell::new(false))).collect(),
        });
    }

    /// Applies one oracle-drawn bit-rot event: `pos` selects a bit
    /// uniformly across all registered primaries. The draw was already
    /// consumed (and traced) by the oracle, so the event lands — or
    /// no-ops, when nothing is registered or the page is unmapped —
    /// without touching determinism.
    fn inject_rot(&self, pos: u64) {
        let regions = self.scrub.borrow();
        let total_bits: u64 = regions.iter().map(|r| r.len as u64 * 8).sum();
        if total_bits == 0 {
            return;
        }
        let mut bit = pos % total_bits;
        for r in regions.iter() {
            let rbits = r.len as u64 * 8;
            if bit >= rbits {
                bit -= rbits;
                continue;
            }
            let va = r.primary.add((bit / 8) as usize);
            // Pure translate: rot strikes resident frames; an unmapped
            // page has no bytes to rot. No fault work, no virtual time.
            if let Some(pte) = r.space.translate(va) {
                let pm = r.space.phys();
                let mut b = [0u8];
                pm.read(pte.frame, va.page_off(), &mut b);
                b[0] ^= 1 << (bit % 8);
                pm.write(pte.frame, va.page_off(), &b);
            }
            return;
        }
    }

    /// One scrubber step: re-digests the next live chunk and, on
    /// mismatch, queues a heal copy from the replica through the
    /// ordinary k-queue — the heal is an absorbable, admission-controlled,
    /// shed-able copy task like any other, not a privileged side channel.
    /// A rotted chunk whose replica is also damaged is unrepairable: its
    /// range is remembered as `Corrupted` taint and retired.
    fn scrub_walk(self: &Rc<Self>) {
        let regions = self.scrub.borrow();
        let total: usize = regions.iter().map(|r| r.golden.len()).sum();
        if total == 0 {
            return;
        }
        let mut pos = self.scrub_pos.get() % total;
        for _ in 0..total {
            let (ri, ci) = {
                let mut p = pos;
                let mut found = (0, 0);
                for (i, r) in regions.iter().enumerate() {
                    if p < r.golden.len() {
                        found = (i, p);
                        break;
                    }
                    p -= r.golden.len();
                }
                found
            };
            pos = (pos + 1) % total;
            let r = &regions[ri];
            if r.dead[ci].get() || r.healing[ci].get() {
                continue;
            }
            self.scrub_pos.set(pos);
            let off = ci * r.chunk;
            let clen = r.chunk.min(r.len - off);
            self.stats.borrow_mut().scrub_chunks += 1;
            if r.space.extent_digest_stride(r.primary.add(off), clen, 1) == r.golden[ci] {
                return;
            }
            // Rot found. Heal from the replica if it is still intact.
            let client = {
                let cs = self.clients.borrow();
                cs.iter().find(|c| c.id == r.client).cloned()
            };
            let Some(client) = client else {
                return;
            };
            let Some(set) = client.set_at(0) else {
                return;
            };
            if r.space.extent_digest_stride(r.replica.add(off), clen, 1) != r.golden[ci] {
                self.stats.borrow_mut().scrub_unrepairable += 1;
                r.dead[ci].set(true);
                let lo = r.primary.add(off).0;
                self.remember_taint(
                    &client,
                    &set,
                    r.space.id(),
                    lo,
                    lo + clen as u64,
                    CopyFault::Corrupted,
                );
                return;
            }
            let descr = Rc::new(SegDescriptor::new(clen, self.cfg.segment));
            r.healing[ci].set(true);
            let healing = Rc::clone(&r.healing[ci]);
            let me = Rc::downgrade(self);
            let d2 = Rc::clone(&descr);
            let func = Handler::KFunc(Rc::new(move || {
                healing.set(false);
                if d2.fault().is_none() {
                    if let Some(svc) = me.upgrade() {
                        svc.stats.borrow_mut().scrub_heals += 1;
                    }
                }
            }));
            let task = CopyTask {
                dst_space: Rc::clone(&r.space),
                dst: r.primary.add(off),
                src_space: Rc::clone(&r.space),
                src: r.replica.add(off),
                len: clen,
                seg: self.cfg.segment,
                descr,
                func: Some(func),
                lazy: false,
                // Heal copies are themselves fully verified end to end: a
                // corrupt heal must not silently re-poison the region.
                verify: true,
            };
            if set.kq.copy.push(QueueEntry::Copy(task)).is_err() {
                // Ring full: the heal is shed-able by design; the chunk
                // stays live and the walker retries next period.
                r.healing[ci].set(false);
            } else {
                // The heal re-activates an idle owner exactly like a
                // client submission would (the walk runs before the
                // round's assignment snapshot, so the heal drains this
                // round on both paths).
                self.activate(&client);
            }
            return;
        }
    }

    /// Re-attaches a client that survived a service crash — the recovery
    /// protocol (DESIGN.md §15). The client's QueueSets — rings, pending
    /// window, address index, credits, taints — live in client-owned
    /// memory and survived; what died is the service-private control
    /// state. Reconciling the two against the replayed journal:
    ///
    /// * every window entry's **pins are released** and its in-flight
    ///   ranges cleared — the dead service's dispatch state is gone
    ///   (copied ranges stay: those bytes physically landed);
    /// * entries whose admission never became durable are **dropped
    ///   undelivered** and handed back to the caller for client-side
    ///   resubmission — safe because admissions flush before any of
    ///   their bytes move, so a dropped entry never has partial
    ///   progress;
    /// * journaled entries found finished are **finalized now** (the
    ///   crash hit between landing and finalization); unfinished ones
    ///   are re-adopted and simply continue under the new incarnation;
    /// * journaled-live tasks absent from every window finalized just
    ///   before the crash with their Complete record lost: the
    ///   destination is checked against the journaled extent digests
    ///   and **poisoned [`CopyFault::Torn`]** when it matches neither
    ///   side (neither untouched nor fully copied);
    /// * journaled **taints are re-installed** (deduplicated) so the
    ///   §4.4 dependency wall outlives the restart.
    ///
    /// Exactly-once handler delivery and credit return across all of
    /// this rest on the descriptor's delivery claim, which lives in
    /// client memory and therefore survives the crash.
    ///
    /// Returns the dropped (never-durable) tasks as `(set_idx, task)`
    /// pairs; the library pushes them back into its rings — still
    /// holding their original submission credits — so they run under
    /// the new incarnation.
    pub fn adopt_client(&self, client: &Rc<Client>) -> Vec<(u32, CopyTask)> {
        assert!(!client.dead.get(), "cannot adopt a reaped client");
        if client.id >= self.next_client.get() {
            self.next_client.set(client.id + 1);
        }
        // Re-stamp shard ownership under this incarnation: the hash is
        // stable, but the successor may run a different shard count.
        client.shard.set(self.shard_of_space(client.uspace.id()));
        // Fresh control-plane identity under the successor: a new
        // registration sequence (clients-vec order stays reg_seq order)
        // and clean incremental-aggregate state — the dead service's
        // active flag and hash cache mean nothing to this incarnation.
        client.reg_seq.set(self.alloc_reg_seq());
        client.active.set(false);
        client.hash_cache.set((0, 0));
        client.hash_dirty.set(false);
        self.clients.borrow_mut().push(Rc::clone(client));
        self.minvr_register(client);
        if self.hash_cached() {
            self.mark_hash_dirty(client);
        }
        // The adopted window may hold unfinished entries with no ring
        // push to doorbell them; activation here keeps the fast path's
        // invariant (unsettled ⇒ active).
        self.activate(client);
        self.bump_assign_epoch();
        let recovered = self.recovered.borrow();
        let empty = BTreeMap::new();
        let live = recovered.as_ref().map_or(&empty, |r| &r.live);
        let mut present = std::collections::BTreeSet::new();
        let mut finish: Vec<(Rc<QueueSet>, Rc<PendEntry>)> = Vec::new();
        let mut dropped_tasks: Vec<(u32, CopyTask)> = Vec::new();
        let mut readopted = 0u64;
        let mut si = 0;
        while let Some(set) = client.set_at(si) {
            si += 1;
            let entries: Vec<Rc<PendEntry>> = set.pending.borrow().iter().cloned().collect();
            for e in entries {
                // The dead service's dispatch state is gone: release its
                // pins and clear in-flight ranges. Landed bytes stay.
                let mut unpinned = 0u64;
                for (space, frames) in e.pins.borrow_mut().drain(..) {
                    unpinned += frames.len() as u64;
                    space.unpin_frames(&frames);
                }
                client
                    .pinned
                    .set(client.pinned.get().saturating_sub(unpinned));
                *e.inflight.borrow_mut() = IntervalSet::new();
                if !live.contains_key(&e.tid) {
                    // Admission never became durable: drop undelivered.
                    set.index.remove(&e);
                    {
                        let mut pending = set.pending.borrow_mut();
                        let pos = pending.partition_point(|p| p.key < e.key);
                        if pos < pending.len() && Rc::ptr_eq(&pending[pos], &e) {
                            pending.remove(pos);
                        }
                    }
                    client
                        .inflight_tasks
                        .set(client.inflight_tasks.get().saturating_sub(1));
                    client.inflight_bytes.set(
                        client
                            .inflight_bytes
                            .get()
                            .saturating_sub(e.task.len as u64),
                    );
                    dropped_tasks.push((si as u32 - 1, e.task.clone()));
                    continue;
                }
                present.insert(e.tid);
                // The kept entry re-enters this incarnation's pending-load
                // aggregate (remaining() computed after the in-flight
                // clear above); finalize below subtracts it back for the
                // finished ones, balancing exactly.
                self.shard_pending_add(client, e.remaining() as u64);
                if e.finished() {
                    finish.push((Rc::clone(&set), e));
                } else {
                    readopted += 1;
                }
            }
        }
        // Adopt the client's admitted bytes into this incarnation's
        // global window *before* finalizing, so the subtraction on the
        // finalize path balances.
        self.global_bytes
            .set(self.global_bytes.get() + client.inflight_bytes.get());
        self.shard_bytes_add(client, client.inflight_bytes.get());
        let refinalized = finish.len() as u64;
        for (set, e) in &finish {
            self.finalize(client, set, e);
        }
        // Digest reconciliation: journaled-live tasks absent from every
        // window. Their entry was removed by the dead service's finalize
        // (handler delivered, pins released) but the Complete record was
        // lost; the destination must now look either untouched or fully
        // copied. Anything else is a torn write — poison it.
        for a in live.values().filter(|a| a.client == client.id) {
            if present.contains(&a.tid) {
                continue;
            }
            if a.dst_space != client.uspace.id() {
                // Not sampleable through this client's space (k-space
                // destination); the §4.4 cascade settled it pre-crash.
                if let Some(j) = &self.journal {
                    j.record_complete(a.tid, 0);
                }
                continue;
            }
            // Arbitration digest must sample the same lattice the admit
            // record did, or equal bytes would compare unequal.
            let cur = client.uspace.extent_digest_stride(
                VirtAddr(a.dst),
                a.len as usize,
                self.cfg.admit_digest_stride,
            );
            if cur == a.src_digest || cur == a.dst_digest {
                // Fully copied (Complete record lost) or never started:
                // either way the range is consistent; release it.
                if let Some(j) = &self.journal {
                    j.record_complete(a.tid, 0);
                }
                continue;
            }
            let set = client
                .set_at(a.set_idx as usize)
                .unwrap_or_else(|| client.default_set());
            self.remember_taint(
                client,
                &set,
                a.dst_space,
                a.dst,
                a.dst + a.len,
                CopyFault::Torn,
            );
            if let Some(j) = &self.journal {
                j.record_complete(a.tid, copy_fault_code(CopyFault::Torn));
            }
            self.stats.borrow_mut().torn_poisoned += 1;
        }
        // Re-install journaled taints (the in-memory list also survived —
        // this is the belt for a client whose sets were recreated).
        if let Some(r) = recovered.as_ref() {
            for t in r.taints.iter().filter(|t| t.client == client.id) {
                if let Some(set) = client.set_at(t.set_idx as usize) {
                    let mut list = set.tainted.borrow_mut();
                    let dup = list
                        .iter()
                        .any(|x| x.space == t.space && x.lo == t.lo && x.hi == t.hi);
                    if !dup {
                        if list.len() >= 64 {
                            list.remove(0);
                        }
                        list.push(TaintRange {
                            space: t.space,
                            lo: t.lo,
                            hi: t.hi,
                            fault: copy_fault_from_code(t.fault),
                        });
                    }
                }
            }
        }
        drop(recovered);
        {
            let mut st = self.stats.borrow_mut();
            st.dropped_unjournaled += dropped_tasks.len() as u64;
            st.recovered_tasks += readopted;
            st.recovered_finalized += refinalized;
        }
        client.epoch.set(self.epoch.get());
        // Make the recovery itself durable immediately.
        self.journal_flush();
        dropped_tasks
    }
}

/// Folds one client's window and index state into the `(pending, index)`
/// trace hashes. Every component is iterated in a deterministic order
/// (registration order for sets, window-key order for entries, BTreeMap
/// order inside the index), so equal states hash equal regardless of how
/// they were reached.
fn fold_client_state(c: &Rc<Client>, hp: &mut u64, hx: &mut u64) {
    fold_client_state_inner(c, hp, hx)
}

/// One client's contribution to the commutative multi-shard hashes:
/// the same per-client fold as [`fold_client_state`], but from a fresh
/// FNV offset so contributions can be summed (and later subtracted)
/// independently of iteration order.
fn fold_client_commutative(c: &Rc<Client>) -> (u64, u64) {
    let mut hp = FNV_OFFSET;
    let mut hx = FNV_OFFSET;
    fold_client_state_inner(c, &mut hp, &mut hx);
    (hp, hx)
}

fn fold_client_state_inner(c: &Rc<Client>, hp: &mut u64, hx: &mut u64) {
    let mut si = 0;
    while let Some(set) = c.set_at(si) {
        si += 1;
        for e in set.pending.borrow().iter() {
            *hp = fnv_fold(*hp, e.tid);
            *hp = fnv_fold(*hp, e.key.0);
            *hp = fnv_fold(*hp, e.key.1 as u64);
            *hp = fnv_fold(*hp, e.key.2);
            *hp = fnv_fold(*hp, e.task.len as u64);
            for ivs in [&e.copied, &e.inflight, &e.deferred] {
                for (lo, hi) in ivs.borrow().iter() {
                    *hp = fnv_fold(*hp, lo as u64);
                    *hp = fnv_fold(*hp, hi as u64);
                }
                *hp = fnv_fold(*hp, u64::MAX); // interval-set sentinel
            }
            let flags = (e.promoted.get() as u64)
                | (e.aborted.get() as u64) << 1
                | (e.failed.get().map_or(0, |f| copy_fault_code(f) as u64)) << 2;
            *hp = fnv_fold(*hp, flags);
        }
        *hx = fnv_fold(*hx, set.index.digest());
    }
}

/// Cuts a gap list down to at most `cap` total bytes (copy-slice rounds).
fn truncate_gaps(gaps: Vec<(usize, usize)>, cap: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(gaps.len());
    let mut left = cap;
    for (lo, hi) in gaps {
        if left == 0 {
            break;
        }
        let take = (hi - lo).min(left);
        out.push((lo, lo + take));
        left -= take;
    }
    out
}

fn bump(c: &Cell<u64>) -> u64 {
    let v = c.get();
    c.set(v + 1);
    v
}

/// Maps a memory-subsystem error to the fault surfaced through `csync`.
fn mem_fault(e: MemError) -> CopyFault {
    match e {
        MemError::OutOfMemory | MemError::Fragmented => CopyFault::OutOfMemory,
        _ => CopyFault::Segv,
    }
}

/// Records landed bytes and flips fully covered descriptor segments.
///
/// Zero-length progress (`len == 0`, or `off` at/past the task's end) is
/// a no-op: the old `(end - 1) / seg` then `num_segments() - 1` span math
/// underflowed for empty ranges — debug builds panicked, release builds
/// wrapped to a huge segment index and tripped the `mark` bounds assert.
fn mark_progress(e: &Rc<PendEntry>, off: usize, len: usize) -> (usize, usize) {
    let end = (off + len).min(e.task.len);
    if end <= off {
        return (0, 0);
    }
    let added = e.copied.borrow_mut().insert(off, end);
    let removed = e.inflight.borrow_mut().remove(off, end);
    let d = &e.task.descr;
    let nsegs = d.num_segments();
    if nsegs == 0 {
        return (added, removed);
    }
    let seg = d.segment_size();
    let first = off / seg;
    let last = ((end - 1) / seg).min(nsegs - 1);
    let copied = e.copied.borrow();
    for i in first..=last {
        let (s, t) = d.segment_range(i);
        if copied.covers(s, t) {
            d.mark(i);
        }
    }
    (added, removed)
}

/// Wire encoding of a `CopyFault` for trace and journal records
/// (0 = no fault).
fn copy_fault_code(f: CopyFault) -> u8 {
    match f {
        CopyFault::Segv => 1,
        CopyFault::OutOfMemory => 2,
        CopyFault::Aborted => 3,
        CopyFault::Overloaded => 4,
        CopyFault::Torn => 5,
        CopyFault::Corrupted => 6,
    }
}

/// Inverse of [`copy_fault_code`] for journaled taints. Unknown codes
/// decode as `Torn` — the conservative "do not consume these bytes".
fn copy_fault_from_code(code: u8) -> CopyFault {
    match code {
        1 => CopyFault::Segv,
        2 => CopyFault::OutOfMemory,
        3 => CopyFault::Aborted,
        4 => CopyFault::Overloaded,
        6 => CopyFault::Corrupted,
        _ => CopyFault::Torn,
    }
}

/// Named indexes of the canonical [`CopierStats`] flattening
/// ([`stats_to_vec`] / [`stats_from_vec`]) — the single shape the trace
/// state hash and the journal checkpoint both use. The assignment is
/// **append-only**: committed traces and journal stores encode these
/// positions, so an existing index may never be renumbered; new counters
/// take the next free slot (which is why the integrity counters at 37+
/// interleave dispatch and service fields). `stats_layout_is_frozen`
/// pins every value.
pub mod stats_layout {
    /// `tasks_completed`.
    pub const TASKS_COMPLETED: usize = 0;
    /// `bytes_copied`.
    pub const BYTES_COPIED: usize = 1;
    /// `bytes_absorbed`.
    pub const BYTES_ABSORBED: usize = 2;
    /// `bytes_deferred_executed`.
    pub const BYTES_DEFERRED_EXECUTED: usize = 3;
    /// `syncs`.
    pub const SYNCS: usize = 4;
    /// `promotions`.
    pub const PROMOTIONS: usize = 5;
    /// `aborts`.
    pub const ABORTS: usize = 6;
    /// `faults`.
    pub const FAULTS: usize = 7;
    /// `idle_polls`.
    pub const IDLE_POLLS: usize = 8;
    /// `busy_rounds`.
    pub const BUSY_ROUNDS: usize = 9;
    /// `dispatch.cpu_bytes`.
    pub const DISPATCH_CPU_BYTES: usize = 10;
    /// `dispatch.dma_bytes`.
    pub const DISPATCH_DMA_BYTES: usize = 11;
    /// `dispatch.dma_descriptors`.
    pub const DISPATCH_DMA_DESCRIPTORS: usize = 12;
    /// `dispatch.dma_wait` (nanoseconds).
    pub const DISPATCH_DMA_WAIT_NS: usize = 13;
    /// `dispatch.retries`.
    pub const DISPATCH_RETRIES: usize = 14;
    /// `dispatch.fallback_bytes`.
    pub const DISPATCH_FALLBACK_BYTES: usize = 15;
    /// `proactive_faults`.
    pub const PROACTIVE_FAULTS: usize = 16;
    /// `retries`.
    pub const RETRIES: usize = 17;
    /// `fallback_bytes`.
    pub const FALLBACK_BYTES: usize = 18;
    /// `quarantined_channels`.
    pub const QUARANTINED_CHANNELS: usize = 19;
    /// `orphans_reclaimed`.
    pub const ORPHANS_RECLAIMED: usize = 20;
    /// `dependents_aborted`.
    pub const DEPENDENTS_ABORTED: usize = 21;
    /// `admission_rejected`.
    pub const ADMISSION_REJECTED: usize = 22;
    /// `shed_bytes`.
    pub const SHED_BYTES: usize = 23;
    /// `credits_granted`.
    pub const CREDITS_GRANTED: usize = 24;
    /// `degraded_sync_copies`.
    pub const DEGRADED_SYNC_COPIES: usize = 25;
    /// `pressure_events`.
    pub const PRESSURE_EVENTS: usize = 26;
    /// `hazard_scans`.
    pub const HAZARD_SCANS: usize = 27;
    /// `index_hits`.
    pub const INDEX_HITS: usize = 28;
    /// `index_entries_peak`.
    pub const INDEX_ENTRIES_PEAK: usize = 29;
    /// `rounds_settled`.
    pub const ROUNDS_SETTLED: usize = 30;
    /// `rounds_active`.
    pub const ROUNDS_ACTIVE: usize = 31;
    /// `crashes`.
    pub const CRASHES: usize = 32;
    /// `recovered_tasks`.
    pub const RECOVERED_TASKS: usize = 33;
    /// `recovered_finalized`.
    pub const RECOVERED_FINALIZED: usize = 34;
    /// `dropped_unjournaled`.
    pub const DROPPED_UNJOURNALED: usize = 35;
    /// `torn_poisoned`.
    pub const TORN_POISONED: usize = 36;
    /// `dispatch.corruptions` (appended after the crash-recovery block).
    pub const DISPATCH_CORRUPTIONS: usize = 37;
    /// `dispatch.repairs`.
    pub const DISPATCH_REPAIRS: usize = 38;
    /// `corrupted_poisoned`.
    pub const CORRUPTED_POISONED: usize = 39;
    /// `scrub_chunks`.
    pub const SCRUB_CHUNKS: usize = 40;
    /// `scrub_heals`.
    pub const SCRUB_HEALS: usize = 41;
    /// `scrub_unrepairable`.
    pub const SCRUB_UNREPAIRABLE: usize = 42;
    /// `corrupt_quarantined`.
    pub const CORRUPT_QUARANTINED: usize = 43;
    /// One past the last assigned index.
    pub const LEN: usize = 44;
}

/// Canonical flattening of [`CopierStats`] into the append-only
/// [`stats_layout`] vector shape.
pub fn stats_to_vec(s: &CopierStats) -> Vec<u64> {
    use stats_layout::*;
    let mut v = vec![0u64; LEN];
    v[TASKS_COMPLETED] = s.tasks_completed;
    v[BYTES_COPIED] = s.bytes_copied;
    v[BYTES_ABSORBED] = s.bytes_absorbed;
    v[BYTES_DEFERRED_EXECUTED] = s.bytes_deferred_executed;
    v[SYNCS] = s.syncs;
    v[PROMOTIONS] = s.promotions;
    v[ABORTS] = s.aborts;
    v[FAULTS] = s.faults;
    v[IDLE_POLLS] = s.idle_polls;
    v[BUSY_ROUNDS] = s.busy_rounds;
    v[DISPATCH_CPU_BYTES] = s.dispatch.cpu_bytes as u64;
    v[DISPATCH_DMA_BYTES] = s.dispatch.dma_bytes as u64;
    v[DISPATCH_DMA_DESCRIPTORS] = s.dispatch.dma_descriptors as u64;
    v[DISPATCH_DMA_WAIT_NS] = s.dispatch.dma_wait.as_nanos();
    v[DISPATCH_RETRIES] = s.dispatch.retries;
    v[DISPATCH_FALLBACK_BYTES] = s.dispatch.fallback_bytes as u64;
    v[PROACTIVE_FAULTS] = s.proactive_faults;
    v[RETRIES] = s.retries;
    v[FALLBACK_BYTES] = s.fallback_bytes;
    v[QUARANTINED_CHANNELS] = s.quarantined_channels;
    v[ORPHANS_RECLAIMED] = s.orphans_reclaimed;
    v[DEPENDENTS_ABORTED] = s.dependents_aborted;
    v[ADMISSION_REJECTED] = s.admission_rejected;
    v[SHED_BYTES] = s.shed_bytes;
    v[CREDITS_GRANTED] = s.credits_granted;
    v[DEGRADED_SYNC_COPIES] = s.degraded_sync_copies;
    v[PRESSURE_EVENTS] = s.pressure_events;
    v[HAZARD_SCANS] = s.hazard_scans;
    v[INDEX_HITS] = s.index_hits;
    v[INDEX_ENTRIES_PEAK] = s.index_entries_peak;
    v[ROUNDS_SETTLED] = s.rounds_settled;
    v[ROUNDS_ACTIVE] = s.rounds_active;
    v[CRASHES] = s.crashes;
    v[RECOVERED_TASKS] = s.recovered_tasks;
    v[RECOVERED_FINALIZED] = s.recovered_finalized;
    v[DROPPED_UNJOURNALED] = s.dropped_unjournaled;
    v[TORN_POISONED] = s.torn_poisoned;
    v[DISPATCH_CORRUPTIONS] = s.dispatch.corruptions;
    v[DISPATCH_REPAIRS] = s.dispatch.repairs;
    v[CORRUPTED_POISONED] = s.corrupted_poisoned;
    v[SCRUB_CHUNKS] = s.scrub_chunks;
    v[SCRUB_HEALS] = s.scrub_heals;
    v[SCRUB_UNREPAIRABLE] = s.scrub_unrepairable;
    v[CORRUPT_QUARANTINED] = s.corrupt_quarantined;
    v
}

/// Inverse of [`stats_to_vec`] for checkpoint restore. Fields missing
/// from an older (shorter) checkpoint read as zero, so the vector stays
/// append-only like the digest it feeds.
pub fn stats_from_vec(v: &[u64]) -> CopierStats {
    use stats_layout::*;
    let g = |i: usize| v.get(i).copied().unwrap_or(0);
    CopierStats {
        tasks_completed: g(TASKS_COMPLETED),
        bytes_copied: g(BYTES_COPIED),
        bytes_absorbed: g(BYTES_ABSORBED),
        bytes_deferred_executed: g(BYTES_DEFERRED_EXECUTED),
        syncs: g(SYNCS),
        promotions: g(PROMOTIONS),
        aborts: g(ABORTS),
        faults: g(FAULTS),
        idle_polls: g(IDLE_POLLS),
        busy_rounds: g(BUSY_ROUNDS),
        dispatch: DispatchReport {
            cpu_bytes: g(DISPATCH_CPU_BYTES) as usize,
            dma_bytes: g(DISPATCH_DMA_BYTES) as usize,
            dma_descriptors: g(DISPATCH_DMA_DESCRIPTORS) as usize,
            dma_wait: Nanos(g(DISPATCH_DMA_WAIT_NS)),
            retries: g(DISPATCH_RETRIES),
            fallback_bytes: g(DISPATCH_FALLBACK_BYTES) as usize,
            corruptions: g(DISPATCH_CORRUPTIONS),
            repairs: g(DISPATCH_REPAIRS),
        },
        proactive_faults: g(PROACTIVE_FAULTS),
        retries: g(RETRIES),
        fallback_bytes: g(FALLBACK_BYTES),
        quarantined_channels: g(QUARANTINED_CHANNELS),
        orphans_reclaimed: g(ORPHANS_RECLAIMED),
        dependents_aborted: g(DEPENDENTS_ABORTED),
        admission_rejected: g(ADMISSION_REJECTED),
        shed_bytes: g(SHED_BYTES),
        credits_granted: g(CREDITS_GRANTED),
        degraded_sync_copies: g(DEGRADED_SYNC_COPIES),
        pressure_events: g(PRESSURE_EVENTS),
        hazard_scans: g(HAZARD_SCANS),
        index_hits: g(INDEX_HITS),
        index_entries_peak: g(INDEX_ENTRIES_PEAK),
        rounds_settled: g(ROUNDS_SETTLED),
        rounds_active: g(ROUNDS_ACTIVE),
        crashes: g(CRASHES),
        recovered_tasks: g(RECOVERED_TASKS),
        recovered_finalized: g(RECOVERED_FINALIZED),
        dropped_unjournaled: g(DROPPED_UNJOURNALED),
        torn_poisoned: g(TORN_POISONED),
        corrupted_poisoned: g(CORRUPTED_POISONED),
        scrub_chunks: g(SCRUB_CHUNKS),
        scrub_heals: g(SCRUB_HEALS),
        scrub_unrepairable: g(SCRUB_UNREPAIRABLE),
        corrupt_quarantined: g(CORRUPT_QUARANTINED),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins every committed [`stats_layout`] index: a renumbering would
    /// silently corrupt journal checkpoints and trace state hashes
    /// recorded by older builds, so this test is the freeze.
    #[test]
    fn stats_layout_is_frozen() {
        use stats_layout::*;
        let assigned = [
            TASKS_COMPLETED,
            BYTES_COPIED,
            BYTES_ABSORBED,
            BYTES_DEFERRED_EXECUTED,
            SYNCS,
            PROMOTIONS,
            ABORTS,
            FAULTS,
            IDLE_POLLS,
            BUSY_ROUNDS,
            DISPATCH_CPU_BYTES,
            DISPATCH_DMA_BYTES,
            DISPATCH_DMA_DESCRIPTORS,
            DISPATCH_DMA_WAIT_NS,
            DISPATCH_RETRIES,
            DISPATCH_FALLBACK_BYTES,
            PROACTIVE_FAULTS,
            RETRIES,
            FALLBACK_BYTES,
            QUARANTINED_CHANNELS,
            ORPHANS_RECLAIMED,
            DEPENDENTS_ABORTED,
            ADMISSION_REJECTED,
            SHED_BYTES,
            CREDITS_GRANTED,
            DEGRADED_SYNC_COPIES,
            PRESSURE_EVENTS,
            HAZARD_SCANS,
            INDEX_HITS,
            INDEX_ENTRIES_PEAK,
            ROUNDS_SETTLED,
            ROUNDS_ACTIVE,
            CRASHES,
            RECOVERED_TASKS,
            RECOVERED_FINALIZED,
            DROPPED_UNJOURNALED,
            TORN_POISONED,
            DISPATCH_CORRUPTIONS,
            DISPATCH_REPAIRS,
            CORRUPTED_POISONED,
            SCRUB_CHUNKS,
            SCRUB_HEALS,
            SCRUB_UNREPAIRABLE,
            CORRUPT_QUARANTINED,
        ];
        assert_eq!(assigned.len(), LEN, "every slot below LEN is assigned");
        // The declaration above lists the indexes in their frozen wire
        // order, so position == value pins each one individually.
        for (pos, &idx) in assigned.iter().enumerate() {
            assert_eq!(idx, pos, "stats_layout index renumbered at slot {pos}");
        }
    }

    /// `stats_from_vec(stats_to_vec(s))` is the identity on every field
    /// — made observable by a second flattening. Distinct per-field
    /// values catch any swapped indexes the freeze test's naming missed.
    #[test]
    fn stats_vec_roundtrips() {
        let mut v: Vec<u64> = (1000..1000 + stats_layout::LEN as u64).collect();
        let s = stats_from_vec(&v);
        assert_eq!(stats_to_vec(&s), v);
        // Older (shorter) checkpoints zero-fill the missing tail.
        v.truncate(37);
        let s = stats_from_vec(&v);
        let full = stats_to_vec(&s);
        assert_eq!(&full[..37], &v[..]);
        assert!(full[37..].iter().all(|&x| x == 0));
    }
}
