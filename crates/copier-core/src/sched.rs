//! Copier scheduler and the `copier` cgroup controller (§4.5.2–§4.5.3).
//!
//! Copy is managed as a first-class resource whose unit is *copy length* —
//! not CPU time, whose correspondence to work varies with cache/TLB state.
//! Each Copier thread runs a CFS-like pick: the runnable cgroup with the
//! minimum share-weighted copied length, then the client with the minimum
//! total copied length inside it. A *copy slice* bounds the bytes served
//! per scheduling decision.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use copier_sim::Nanos;

use crate::client::Client;

/// Default copy slice: maximum bytes served per scheduling round.
pub const DEFAULT_COPY_SLICE: usize = 256 * 1024;

/// Whether vruntime `a` is before `b` under wrap-around — the CFS
/// `(s64)(a - b) < 0` idiom. The copied-length accumulators are monotone
/// u64 counters that wrap on long-lived services; a direct `<` would then
/// rank the freshly wrapped (most-served) client as least-served and pin
/// the scheduler to it. Correct as long as no two live vruntimes are more
/// than `u64::MAX / 2` apart, which the copy-slice bound guarantees.
pub fn vruntime_before(a: u64, b: u64) -> bool {
    (a.wrapping_sub(b) as i64) < 0
}

/// The wrap-safe minimum copied-length vruntime among live `clients`
/// (`None` if all are dead). Shards publish this at the round barrier so
/// peers can keep the least-served exemption global without scanning
/// each other's client tables (DESIGN.md §17).
pub fn min_live_vruntime<'a>(clients: impl IntoIterator<Item = &'a Rc<Client>>) -> Option<u64> {
    let mut min: Option<u64> = None;
    for c in clients {
        if c.dead.get() {
            continue;
        }
        let v = c.copied_total.get();
        min = Some(match min {
            None => v,
            Some(m) if vruntime_before(v, m) => v,
            Some(m) => m,
        });
    }
    min
}

/// One control group with a `copier.shares` weight.
pub struct CGroup {
    /// Human-readable name.
    pub name: String,
    /// Relative share of Copier resources (like `cpu.shares`).
    pub shares: Cell<u64>,
    /// Share-weighted copied length (the cgroup vruntime).
    pub vruntime: Cell<u64>,
}

/// The per-service scheduler.
pub struct Scheduler {
    cgroups: RefCell<Vec<Rc<CGroup>>>,
    copy_slice: Cell<usize>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// Creates a scheduler with a single default cgroup (shares = 1024).
    pub fn new() -> Self {
        let s = Scheduler {
            cgroups: RefCell::new(Vec::new()),
            copy_slice: Cell::new(DEFAULT_COPY_SLICE),
        };
        s.create_cgroup("default", 1024);
        s
    }

    /// Creates a cgroup; returns its id.
    pub fn create_cgroup(&self, name: &str, shares: u64) -> usize {
        let mut g = self.cgroups.borrow_mut();
        g.push(Rc::new(CGroup {
            name: name.to_string(),
            shares: Cell::new(shares.max(1)),
            vruntime: Cell::new(0),
        }));
        g.len() - 1
    }

    /// Adjusts `copier.shares` of a cgroup.
    pub fn set_shares(&self, cgroup: usize, shares: u64) {
        self.cgroups.borrow()[cgroup].shares.set(shares.max(1));
    }

    /// The cgroup handle (for inspection).
    pub fn cgroup(&self, id: usize) -> Rc<CGroup> {
        Rc::clone(&self.cgroups.borrow()[id])
    }

    /// Sets the copy slice.
    pub fn set_copy_slice(&self, bytes: usize) {
        self.copy_slice.set(bytes.max(4096));
    }

    /// Current copy slice.
    pub fn copy_slice(&self) -> usize {
        self.copy_slice.get()
    }

    /// Picks the next client to serve among `clients` with work.
    ///
    /// Two-level min-vruntime: cgroup first (share-weighted), then client.
    pub fn pick(
        &self,
        clients: &[Rc<Client>],
        now: Nanos,
        lazy_period: Nanos,
    ) -> Option<Rc<Client>> {
        let groups = self.cgroups.borrow();
        let mut best: Option<(u64, u64, Rc<Client>)> = None;
        for c in clients {
            if !c.has_work(now, lazy_period) {
                continue;
            }
            let gv = groups
                .get(c.cgroup.get())
                .map(|g| g.vruntime.get())
                .unwrap_or(0);
            let cv = c.copied_total.get();
            let better = match &best {
                None => true,
                Some((bgv, bcv, _)) => {
                    // Lexicographic (cgroup, client) order, each level
                    // compared wrap-safely.
                    vruntime_before(gv, *bgv) || (gv == *bgv && vruntime_before(cv, *bcv))
                }
            };
            if better {
                best = Some((gv, cv, Rc::clone(c)));
            }
        }
        best.map(|(_, _, c)| c)
    }

    /// Charges `bytes` of copy to the client and its cgroup. The
    /// accumulators wrap (never saturate): saturation would freeze every
    /// client at `u64::MAX` and erase the fairness order, while wrapping
    /// keeps relative distances — which [`vruntime_before`] compares —
    /// exact across the boundary.
    pub fn charge(&self, client: &Client, bytes: usize) {
        client
            .copied_total
            .set(client.copied_total.get().wrapping_add(bytes as u64));
        let groups = self.cgroups.borrow();
        if let Some(g) = groups.get(client.cgroup.get()) {
            // Weighted: smaller shares accrue vruntime faster.
            let delta = (bytes as u64 * 1024) / g.shares.get();
            g.vruntime.set(g.vruntime.get().wrapping_add(delta));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::SegDescriptor;
    use crate::task::CopyTask;
    use crate::task::QueueEntry;
    use copier_mem::{AddressSpace, AllocPolicy, PhysMem, VirtAddr};

    fn client_with_work(id: u32) -> Rc<Client> {
        let pm = Rc::new(PhysMem::new(4, AllocPolicy::Sequential));
        let space = AddressSpace::new(id, pm);
        let c = Client::new(id, Rc::clone(&space), 16);
        let t = CopyTask {
            dst_space: Rc::clone(&space),
            dst: VirtAddr(0x1000),
            src_space: space,
            src: VirtAddr(0x9000),
            len: 64,
            seg: 64,
            descr: Rc::new(SegDescriptor::new(64, 64)),
            func: None,
            lazy: false,
            verify: false,
        };
        c.default_set().uq.copy.push(QueueEntry::Copy(t)).unwrap();
        c
    }

    #[test]
    fn picks_min_copied_client() {
        let s = Scheduler::new();
        let a = client_with_work(1);
        let b = client_with_work(2);
        a.copied_total.set(1000);
        b.copied_total.set(10);
        let picked = s
            .pick(&[Rc::clone(&a), Rc::clone(&b)], Nanos::ZERO, Nanos::ZERO)
            .unwrap();
        assert_eq!(picked.id, 2);
    }

    #[test]
    fn skips_idle_clients() {
        let s = Scheduler::new();
        let pm = Rc::new(PhysMem::new(4, AllocPolicy::Sequential));
        let idle = Client::new(9, AddressSpace::new(9, pm), 16);
        idle.copied_total.set(0);
        let busy = client_with_work(1);
        busy.copied_total.set(99999);
        let picked = s
            .pick(&[idle, Rc::clone(&busy)], Nanos::ZERO, Nanos::ZERO)
            .unwrap();
        assert_eq!(picked.id, 1);
    }

    #[test]
    fn cgroup_shares_weight_the_pick() {
        let s = Scheduler::new();
        let small = s.create_cgroup("small", 256); // quarter share
        let big = s.create_cgroup("big", 1024);
        let a = client_with_work(1);
        a.cgroup.set(small);
        let b = client_with_work(2);
        b.cgroup.set(big);
        // Charge both the same raw bytes; the small-shares group's
        // vruntime grows 4× faster, so client b is preferred next.
        s.charge(&a, 4096);
        s.charge(&b, 4096);
        assert!(s.cgroup(small).vruntime.get() > s.cgroup(big).vruntime.get());
        let picked = s
            .pick(&[Rc::clone(&a), Rc::clone(&b)], Nanos::ZERO, Nanos::ZERO)
            .unwrap();
        assert_eq!(picked.id, 2);
    }

    #[test]
    fn charge_accumulates_client_total() {
        let s = Scheduler::new();
        let a = client_with_work(1);
        s.charge(&a, 100);
        s.charge(&a, 200);
        assert_eq!(a.copied_total.get(), 300);
    }

    #[test]
    fn min_live_vruntime_skips_dead_and_wraps() {
        let a = client_with_work(1);
        let b = client_with_work(2);
        assert_eq!(min_live_vruntime([] as [&Rc<Client>; 0]), None);
        a.copied_total.set(u64::MAX - 10); // wrapped: actually least-served
        b.copied_total.set(100);
        assert_eq!(
            min_live_vruntime([&a, &b]),
            Some(u64::MAX - 10),
            "wrap-safe order, not numeric order"
        );
        a.dead.set(true);
        assert_eq!(min_live_vruntime([&a, &b]), Some(100));
    }

    #[test]
    fn fairness_order_survives_vruntime_wraparound() {
        // Same class of hazard as the PR 6 ring-occupancy wrap bug: the
        // vruntime accumulators are monotone counters compared for order.
        // Park both clients just below u64::MAX and drive one across the
        // boundary; the wrapped (most-served) client must NOT be ranked
        // least-served.
        let s = Scheduler::new();
        let a = client_with_work(1);
        let b = client_with_work(2);
        let near = u64::MAX - 4096;
        a.copied_total.set(near);
        b.copied_total.set(near);
        s.charge(&a, 8192); // wraps: a is now 8 KiB *ahead* of b
        assert!(a.copied_total.get() < b.copied_total.get(), "a wrapped");
        assert!(vruntime_before(b.copied_total.get(), a.copied_total.get()));
        let picked = s
            .pick(&[Rc::clone(&a), Rc::clone(&b)], Nanos::ZERO, Nanos::ZERO)
            .unwrap();
        assert_eq!(picked.id, 2, "the client that copied less is preferred");
        // And the cgroup level wraps the same way.
        let g = s.cgroup(0);
        g.vruntime.set(u64::MAX - 10);
        s.charge(&a, 4096);
        assert!(g.vruntime.get() < u64::MAX - 10, "cgroup vruntime wrapped");
    }
}
