//! Control-plane journal + checkpoint (DESIGN.md §15).
//!
//! The Copier's *data* plane is already crash-safe by construction —
//! bytes either landed in destination frames or they did not — but the
//! *control* plane (pending windows, address index, credits, taints,
//! stats) lives in service-private memory and dies with the service. The
//! journal is the durable mirror of that control state: an epoch-stamped,
//! FNV-checksummed append-only record log kept in a [`JournalStore`] that
//! outlives any one service incarnation (the stand-in for pmem/a kernel
//! keepalive page in the simulator).
//!
//! Record classes:
//!
//! * **Epoch** — a service incarnation started (carries the tid
//!   high-water mark so restarted services never reuse task ids);
//! * **Admit** — a submission entered the pending window, with its order
//!   key and pre-copy extent digests of both ranges (sampled head/tail
//!   pages — cheap, yet enough to detect a torn destination);
//! * **Complete** — a window entry finalized (clean or with a typed
//!   fault), releasing it from the live set;
//! * **Taint** — a poisoned destination range was remembered;
//! * **Checkpoint** — a compaction snapshot carrying the service stats
//!   vector.
//!
//! Staged records become durable only at an explicit [`Journal::flush`]
//! (the service flushes right after the drain boundary and at round end);
//! a crash between flushes loses the staged tail, and the
//! `MidJournalFlush` crash point tears the *final* record mid-write. The
//! decoder is torn-tail-tolerant: it stops at the first short or
//! checksum-failing record and reports the loss, exactly like a kernel
//! log replay after power failure.
//!
//! Compaction: when the store outgrows its threshold, the log is
//! rewritten as `Checkpoint + Epoch + live Admits + Taints` — the fixed
//! point of replaying the old log — so the journal's size is bounded by
//! live state, not history.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use copier_sim::trace::FNV_OFFSET;

const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Default store size that triggers compaction on flush.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 64 * 1024;

const REC_EPOCH: u8 = 1;
const REC_ADMIT: u8 = 2;
const REC_COMPLETE: u8 = 3;
const REC_TAINT: u8 = 4;
const REC_CHECKPOINT: u8 = 5;

fn checksum(payload: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in payload {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// The byte store a journal appends into. Shared by `Rc` between the
/// owning service and whatever restarts it — the simulator's stand-in
/// for storage that survives a service crash.
pub struct JournalStore {
    bytes: RefCell<Vec<u8>>,
}

impl std::fmt::Debug for JournalStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalStore")
            .field("len", &self.bytes.borrow().len())
            .finish()
    }
}

impl JournalStore {
    /// An empty store.
    pub fn new() -> Rc<Self> {
        Rc::new(JournalStore {
            bytes: RefCell::new(Vec::new()),
        })
    }

    /// Durable bytes currently in the store.
    pub fn len(&self) -> usize {
        self.bytes.borrow().len()
    }

    /// Whether the store holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the raw bytes (tests and tooling).
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.borrow().clone()
    }

    /// Overwrites the raw bytes (tests constructing corrupt stores).
    pub fn restore(&self, bytes: Vec<u8>) {
        *self.bytes.borrow_mut() = bytes;
    }
}

/// A journaled admission: everything needed to reason about a pending
/// task without the service that admitted it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmitRec {
    /// Task id (unique across service incarnations via the Epoch record).
    pub tid: u64,
    /// Owning client id.
    pub client: u32,
    /// Index of the client's queue set the task was drained from.
    pub set_idx: u32,
    /// The window order key `(k_key, privileged, seq)`.
    pub key: (u64, u8, u64),
    /// Destination address-space id.
    pub dst_space: u32,
    /// Destination virtual address.
    pub dst: u64,
    /// Source address-space id.
    pub src_space: u32,
    /// Source virtual address.
    pub src: u64,
    /// Copy length in bytes.
    pub len: u64,
    /// Notification segment size.
    pub seg: u64,
    /// Pre-copy sampled extent digest of the destination range.
    pub dst_digest: u64,
    /// Admission-time sampled extent digest of the source range.
    pub src_digest: u64,
}

/// A journaled taint (poisoned destination range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaintRec {
    /// Owning client id.
    pub client: u32,
    /// Queue-set index the taint lives in.
    pub set_idx: u32,
    /// Tainted address-space id.
    pub space: u32,
    /// Range start (inclusive).
    pub lo: u64,
    /// Range end (exclusive).
    pub hi: u64,
    /// Wire code of the poisoning fault.
    pub fault: u8,
}

/// What a journal replay reconstructed from the store.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// Epoch of the last incarnation that wrote the store.
    pub epoch: u64,
    /// First task id the new incarnation may issue.
    pub next_tid: u64,
    /// Admitted-but-not-completed tasks, by tid.
    pub live: BTreeMap<u64, AdmitRec>,
    /// Remembered taints at crash time.
    pub taints: Vec<TaintRec>,
    /// Stats vector from the most recent checkpoint, if any.
    pub stats: Option<Vec<u64>>,
    /// Whether a torn/corrupt tail was detected (and truncated).
    pub torn_tail: bool,
    /// Records replayed from the store.
    pub records: u64,
}

/// Journal activity counters. Kept separate from `CopierStats` so that
/// enabling journaling leaves the service's own stats byte-identical to
/// a journal-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended (staged) this incarnation.
    pub records: u64,
    /// Payload bytes appended this incarnation.
    pub bytes: u64,
    /// Flushes that moved staged bytes into the store.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
}

/// One service incarnation's writer over a [`JournalStore`].
pub struct Journal {
    store: Rc<JournalStore>,
    epoch: u64,
    staged: RefCell<Vec<u8>>,
    /// Offset in `staged` of the last staged record (torn-flush target).
    last_rec_off: Cell<usize>,
    /// Live (admitted, not completed) tasks as of the staged state.
    live: RefCell<BTreeMap<u64, AdmitRec>>,
    /// Taints as of the staged state (bounded like the service's list).
    taints: RefCell<Vec<TaintRec>>,
    /// Highest tid ever journaled (epoch records carry it forward).
    max_tid: Cell<u64>,
    compact_threshold: Cell<usize>,
    stats: Cell<JournalStats>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("epoch", &self.epoch)
            .field("store_len", &self.store.len())
            .field("staged", &self.staged.borrow().len())
            .field("live", &self.live.borrow().len())
            .finish()
    }
}

impl Journal {
    /// Replays `store` and opens a new epoch over it.
    ///
    /// Returns the writer plus what the replay reconstructed. A torn or
    /// corrupt tail is truncated from the store (its records were never
    /// acknowledged durable). The new epoch's Epoch record is staged and
    /// flushed immediately so even an idle incarnation is visible.
    pub fn attach(store: &Rc<JournalStore>) -> (Journal, Recovered) {
        let recovered = Self::replay(&store.snapshot());
        if recovered.torn_tail {
            // Drop the unreadable tail: re-encode the valid prefix.
            let mut clean = Vec::new();
            Self::reencode_prefix(&store.snapshot(), &mut clean);
            store.restore(clean);
        }
        let epoch = recovered.epoch + 1;
        let j = Journal {
            store: Rc::clone(store),
            epoch,
            staged: RefCell::new(Vec::new()),
            last_rec_off: Cell::new(0),
            live: RefCell::new(recovered.live.clone()),
            taints: RefCell::new(recovered.taints.clone()),
            max_tid: Cell::new(recovered.next_tid.saturating_sub(1)),
            compact_threshold: Cell::new(DEFAULT_COMPACT_THRESHOLD),
            stats: Cell::new(JournalStats::default()),
        };
        let mut payload = vec![REC_EPOCH];
        put_varint(&mut payload, epoch);
        put_varint(&mut payload, recovered.next_tid);
        j.stage(payload);
        j.flush();
        (j, recovered)
    }

    /// This incarnation's epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the store size that triggers compaction.
    pub fn set_compact_threshold(&self, bytes: usize) {
        self.compact_threshold.set(bytes.max(256));
    }

    /// Journal activity counters.
    pub fn stats(&self) -> JournalStats {
        self.stats.get()
    }

    /// Live (admitted, uncompleted) task count as staged.
    pub fn live_len(&self) -> usize {
        self.live.borrow().len()
    }

    fn stage(&self, payload: Vec<u8>) {
        let mut staged = self.staged.borrow_mut();
        self.last_rec_off.set(staged.len());
        staged.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        staged.extend_from_slice(&payload);
        staged.extend_from_slice(&checksum(&payload).to_le_bytes());
        let mut s = self.stats.get();
        s.records += 1;
        s.bytes += payload.len() as u64;
        self.stats.set(s);
    }

    /// Stages an admission record.
    pub fn record_admit(&self, rec: AdmitRec) {
        let mut payload = vec![REC_ADMIT];
        put_varint(&mut payload, self.epoch);
        put_varint(&mut payload, rec.tid);
        put_varint(&mut payload, rec.client as u64);
        put_varint(&mut payload, rec.set_idx as u64);
        put_varint(&mut payload, rec.key.0);
        payload.push(rec.key.1);
        put_varint(&mut payload, rec.key.2);
        put_varint(&mut payload, rec.dst_space as u64);
        put_varint(&mut payload, rec.dst);
        put_varint(&mut payload, rec.src_space as u64);
        put_varint(&mut payload, rec.src);
        put_varint(&mut payload, rec.len);
        put_varint(&mut payload, rec.seg);
        put_varint(&mut payload, rec.dst_digest);
        put_varint(&mut payload, rec.src_digest);
        self.stage(payload);
        self.max_tid.set(self.max_tid.get().max(rec.tid));
        self.live.borrow_mut().insert(rec.tid, rec);
    }

    /// Stages a completion record (fault 0 = clean), releasing the task
    /// from the live set.
    pub fn record_complete(&self, tid: u64, fault: u8) {
        let mut payload = vec![REC_COMPLETE];
        put_varint(&mut payload, self.epoch);
        put_varint(&mut payload, tid);
        payload.push(fault);
        self.stage(payload);
        self.live.borrow_mut().remove(&tid);
    }

    /// Stages a taint record (bounded mirror of the service's list).
    pub fn record_taint(&self, rec: TaintRec) {
        let mut payload = vec![REC_TAINT];
        put_varint(&mut payload, self.epoch);
        put_varint(&mut payload, rec.client as u64);
        put_varint(&mut payload, rec.set_idx as u64);
        put_varint(&mut payload, rec.space as u64);
        put_varint(&mut payload, rec.lo);
        put_varint(&mut payload, rec.hi);
        payload.push(rec.fault);
        self.stage(payload);
        let mut taints = self.taints.borrow_mut();
        if taints.len() >= 64 {
            taints.remove(0);
        }
        taints.push(rec);
    }

    /// Makes staged records durable. Returns whether the store has
    /// outgrown the compaction threshold (the caller then provides the
    /// stats snapshot and calls [`Journal::compact`]).
    pub fn flush(&self) -> bool {
        let mut staged = self.staged.borrow_mut();
        if !staged.is_empty() {
            self.store.bytes.borrow_mut().extend_from_slice(&staged);
            staged.clear();
            self.last_rec_off.set(0);
            let mut s = self.stats.get();
            s.flushes += 1;
            self.stats.set(s);
        }
        self.store.len() > self.compact_threshold.get()
    }

    /// The `MidJournalFlush` crash: flushes staged records but tears the
    /// final one mid-write — only half of its bytes reach the store, so
    /// replay sees a checksum-failing tail.
    pub fn flush_torn(&self) {
        let mut staged = self.staged.borrow_mut();
        if staged.is_empty() {
            return;
        }
        let off = self.last_rec_off.get();
        let tail_len = staged.len() - off;
        // Keep everything before the last record plus half of it: the
        // truncation point is deterministic (no extra PRNG draw).
        let keep = off + tail_len / 2;
        self.store
            .bytes
            .borrow_mut()
            .extend_from_slice(&staged[..keep]);
        staged.clear();
        self.last_rec_off.set(0);
    }

    /// Rewrites the store as `Checkpoint(stats) + Epoch + live Admits +
    /// Taints` — the replay fixed point — bounding the log by live state.
    pub fn compact(&self, stats_vec: &[u64]) {
        let mut out = Vec::new();
        let push = |out: &mut Vec<u8>, payload: Vec<u8>| {
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            let ck = checksum(&payload);
            out.extend_from_slice(&payload);
            out.extend_from_slice(&ck.to_le_bytes());
        };
        let mut ckpt = vec![REC_CHECKPOINT];
        put_varint(&mut ckpt, self.epoch);
        put_varint(&mut ckpt, self.max_tid.get() + 1);
        put_varint(&mut ckpt, stats_vec.len() as u64);
        for &v in stats_vec {
            put_varint(&mut ckpt, v);
        }
        push(&mut out, ckpt);
        let mut ep = vec![REC_EPOCH];
        put_varint(&mut ep, self.epoch);
        put_varint(&mut ep, self.max_tid.get() + 1);
        push(&mut out, ep);
        for rec in self.live.borrow().values() {
            let mut payload = vec![REC_ADMIT];
            put_varint(&mut payload, self.epoch);
            put_varint(&mut payload, rec.tid);
            put_varint(&mut payload, rec.client as u64);
            put_varint(&mut payload, rec.set_idx as u64);
            put_varint(&mut payload, rec.key.0);
            payload.push(rec.key.1);
            put_varint(&mut payload, rec.key.2);
            put_varint(&mut payload, rec.dst_space as u64);
            put_varint(&mut payload, rec.dst);
            put_varint(&mut payload, rec.src_space as u64);
            put_varint(&mut payload, rec.src);
            put_varint(&mut payload, rec.len);
            put_varint(&mut payload, rec.seg);
            put_varint(&mut payload, rec.dst_digest);
            put_varint(&mut payload, rec.src_digest);
            push(&mut out, payload);
        }
        for rec in self.taints.borrow().iter() {
            let mut payload = vec![REC_TAINT];
            put_varint(&mut payload, self.epoch);
            put_varint(&mut payload, rec.client as u64);
            put_varint(&mut payload, rec.set_idx as u64);
            put_varint(&mut payload, rec.space as u64);
            put_varint(&mut payload, rec.lo);
            put_varint(&mut payload, rec.hi);
            payload.push(rec.fault);
            push(&mut out, payload);
        }
        self.store.restore(out);
        let mut s = self.stats.get();
        s.compactions += 1;
        self.stats.set(s);
    }

    /// Decodes one framed record from `buf` at `pos`; `None` on a short
    /// or checksum-failing frame (torn tail).
    fn next_record(buf: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
        if *pos + 4 > buf.len() {
            return None;
        }
        let len = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
        let start = *pos + 4;
        let end = start.checked_add(len)?;
        if end + 8 > buf.len() {
            return None;
        }
        let payload = &buf[start..end];
        let ck = u64::from_le_bytes(buf[end..end + 8].try_into().unwrap());
        if checksum(payload) != ck {
            return None;
        }
        *pos = end + 8;
        Some(payload.to_vec())
    }

    /// Copies the longest valid record prefix of `buf` into `out`.
    fn reencode_prefix(buf: &[u8], out: &mut Vec<u8>) {
        let mut pos = 0usize;
        while Self::next_record(buf, &mut pos).is_some() {}
        out.extend_from_slice(&buf[..pos]);
    }

    /// Replays raw store bytes into a [`Recovered`] state.
    pub fn replay(buf: &[u8]) -> Recovered {
        let mut rec = Recovered::default();
        let mut pos = 0usize;
        loop {
            let Some(payload) = Self::next_record(buf, &mut pos) else {
                rec.torn_tail = pos < buf.len();
                break;
            };
            rec.records += 1;
            let mut p = 1usize;
            let bad = match payload.first() {
                Some(&REC_EPOCH) => (|| {
                    let epoch = get_varint(&payload, &mut p)?;
                    let next_tid = get_varint(&payload, &mut p)?;
                    rec.epoch = rec.epoch.max(epoch);
                    rec.next_tid = rec.next_tid.max(next_tid);
                    Some(())
                })()
                .is_none(),
                Some(&REC_ADMIT) => (|| {
                    let epoch = get_varint(&payload, &mut p)?;
                    let tid = get_varint(&payload, &mut p)?;
                    let client = get_varint(&payload, &mut p)? as u32;
                    let set_idx = get_varint(&payload, &mut p)? as u32;
                    let k0 = get_varint(&payload, &mut p)?;
                    let k1 = *payload.get(p)?;
                    p += 1;
                    let k2 = get_varint(&payload, &mut p)?;
                    let dst_space = get_varint(&payload, &mut p)? as u32;
                    let dst = get_varint(&payload, &mut p)?;
                    let src_space = get_varint(&payload, &mut p)? as u32;
                    let src = get_varint(&payload, &mut p)?;
                    let len = get_varint(&payload, &mut p)?;
                    let seg = get_varint(&payload, &mut p)?;
                    let dst_digest = get_varint(&payload, &mut p)?;
                    let src_digest = get_varint(&payload, &mut p)?;
                    rec.epoch = rec.epoch.max(epoch);
                    rec.next_tid = rec.next_tid.max(tid + 1);
                    rec.live.insert(
                        tid,
                        AdmitRec {
                            tid,
                            client,
                            set_idx,
                            key: (k0, k1, k2),
                            dst_space,
                            dst,
                            src_space,
                            src,
                            len,
                            seg,
                            dst_digest,
                            src_digest,
                        },
                    );
                    Some(())
                })()
                .is_none(),
                Some(&REC_COMPLETE) => (|| {
                    let epoch = get_varint(&payload, &mut p)?;
                    let tid = get_varint(&payload, &mut p)?;
                    let _fault = *payload.get(p)?;
                    rec.epoch = rec.epoch.max(epoch);
                    rec.live.remove(&tid);
                    Some(())
                })()
                .is_none(),
                Some(&REC_TAINT) => (|| {
                    let epoch = get_varint(&payload, &mut p)?;
                    let client = get_varint(&payload, &mut p)? as u32;
                    let set_idx = get_varint(&payload, &mut p)? as u32;
                    let space = get_varint(&payload, &mut p)? as u32;
                    let lo = get_varint(&payload, &mut p)?;
                    let hi = get_varint(&payload, &mut p)?;
                    let fault = *payload.get(p)?;
                    rec.epoch = rec.epoch.max(epoch);
                    if rec.taints.len() >= 64 {
                        rec.taints.remove(0);
                    }
                    rec.taints.push(TaintRec {
                        client,
                        set_idx,
                        space,
                        lo,
                        hi,
                        fault,
                    });
                    Some(())
                })()
                .is_none(),
                Some(&REC_CHECKPOINT) => (|| {
                    let epoch = get_varint(&payload, &mut p)?;
                    let next_tid = get_varint(&payload, &mut p)?;
                    let n = get_varint(&payload, &mut p)? as usize;
                    if n > payload.len() {
                        return None;
                    }
                    let mut stats = Vec::with_capacity(n);
                    for _ in 0..n {
                        stats.push(get_varint(&payload, &mut p)?);
                    }
                    rec.epoch = rec.epoch.max(epoch);
                    rec.next_tid = rec.next_tid.max(next_tid);
                    rec.stats = Some(stats);
                    Some(())
                })()
                .is_none(),
                _ => true,
            };
            if bad {
                // A record that framed correctly but does not parse is
                // corruption past the torn-tail model; stop replay there.
                rec.torn_tail = true;
                break;
            }
        }
        if rec.next_tid == 0 {
            rec.next_tid = 1;
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(tid: u64) -> AdmitRec {
        AdmitRec {
            tid,
            client: 1,
            set_idx: 0,
            key: (0, 1, tid),
            dst_space: 1,
            dst: 0x10_0000 + tid * 0x1000,
            src_space: 1,
            src: 0x50_0000 + tid * 0x1000,
            len: 4096,
            seg: 4096,
            dst_digest: 0xD0 + tid,
            src_digest: 0x50 + tid,
        }
    }

    #[test]
    fn roundtrip_admit_complete_taint() {
        let store = JournalStore::new();
        {
            let (j, r) = Journal::attach(&store);
            assert_eq!(j.epoch(), 1);
            assert_eq!(r.records, 0);
            j.record_admit(admit(1));
            j.record_admit(admit(2));
            j.record_complete(1, 0);
            j.record_taint(TaintRec {
                client: 1,
                set_idx: 0,
                space: 1,
                lo: 0x2000,
                hi: 0x3000,
                fault: 5,
            });
            j.flush();
        }
        let (j2, r) = Journal::attach(&store);
        assert_eq!(j2.epoch(), 2);
        assert!(!r.torn_tail);
        assert_eq!(r.live.len(), 1, "completed task released from live set");
        assert_eq!(r.live[&2], admit(2));
        assert_eq!(r.taints.len(), 1);
        assert_eq!(r.taints[0].fault, 5);
        assert_eq!(r.next_tid, 3);
    }

    #[test]
    fn unflushed_records_are_lost() {
        let store = JournalStore::new();
        {
            let (j, _) = Journal::attach(&store);
            j.record_admit(admit(1));
            j.flush();
            j.record_admit(admit(2)); // staged, never flushed
        }
        let (_, r) = Journal::attach(&store);
        assert!(!r.torn_tail);
        assert_eq!(r.live.len(), 1);
        assert!(r.live.contains_key(&1));
    }

    #[test]
    fn torn_final_record_is_detected_and_truncated() {
        let store = JournalStore::new();
        {
            let (j, _) = Journal::attach(&store);
            j.record_admit(admit(1));
            j.flush();
            j.record_admit(admit(2));
            j.record_admit(admit(3));
            j.flush_torn(); // admit(2) durable, admit(3) torn mid-record
        }
        let r = Journal::replay(&store.snapshot());
        assert!(r.torn_tail, "torn tail must be reported");
        assert_eq!(r.live.len(), 2);
        assert!(r.live.contains_key(&1) && r.live.contains_key(&2));
        // Attach truncates the tail; a second replay is then clean.
        let (_, r2) = Journal::attach(&store);
        assert!(r2.torn_tail);
        let r3 = Journal::replay(&store.snapshot());
        assert!(!r3.torn_tail, "attach must truncate the torn tail");
    }

    #[test]
    fn corrupted_checksum_stops_replay() {
        let store = JournalStore::new();
        {
            let (j, _) = Journal::attach(&store);
            j.record_admit(admit(1));
            j.record_admit(admit(2));
            j.flush();
        }
        let mut bytes = store.snapshot();
        let n = bytes.len();
        bytes[n - 9] ^= 0xff; // flip a payload byte of the final record
        store.restore(bytes);
        let r = Journal::replay(&store.snapshot());
        assert!(r.torn_tail);
        assert_eq!(r.live.len(), 1, "replay stops at the corrupt record");
    }

    #[test]
    fn compaction_preserves_live_state_and_bounds_size() {
        let store = JournalStore::new();
        let (j, _) = Journal::attach(&store);
        j.set_compact_threshold(256);
        for tid in 1..=100u64 {
            j.record_admit(admit(tid));
            if tid % 2 == 0 {
                j.record_complete(tid, 0);
            }
        }
        assert!(j.flush(), "store must outgrow the threshold");
        let before = store.len();
        j.compact(&[7, 8, 9]);
        assert!(store.len() < before, "compaction must shrink the store");
        let (_, r) = Journal::attach(&store);
        assert!(!r.torn_tail);
        assert_eq!(r.live.len(), 50, "only odd tids stay live");
        assert!(r.live.keys().all(|t| t % 2 == 1));
        assert_eq!(r.stats.as_deref(), Some(&[7u64, 8, 9][..]));
        assert_eq!(r.next_tid, 101);
    }

    #[test]
    fn epochs_are_monotone_across_attaches() {
        let store = JournalStore::new();
        for expect in 1..=4u64 {
            let (j, r) = Journal::attach(&store);
            assert_eq!(j.epoch(), expect);
            assert_eq!(r.epoch, expect - 1);
            j.flush();
        }
    }
}
