//! Layered copy absorption (§4.4).
//!
//! When task B (`X→Y`) is about to execute while an earlier task A (`W→X`)
//! is still pending, Copier "short-circuits": the parts of B's source that
//! A has *not yet copied* (and which therefore cannot have been touched by
//! the client — a client must `csync` before access, which would have
//! forced the copy) are read **directly from A's source `W`**, and A's
//! obligation for those ranges is *deferred* off the fast path. Parts A
//! already copied might carry client modifications, so they are read from
//! `X` — the layered rule of Fig. 8-b.
//!
//! The analysis also detects the hazards that forbid reordering:
//! write-after-write on the destination and write-after-read against an
//! earlier task's still-unread source. Those block the batch instead.

use std::collections::BTreeMap;
use std::rc::Rc;

use copier_mem::{AddressSpace, VirtAddr};

use crate::client::{OrderKey, PendEntry};
use crate::interval::ranges_overlap;
use crate::pendindex::{PendIndex, RangeKind};

/// A piece of a task's *effective* source after layering.
#[derive(Clone)]
pub struct SrcPiece {
    /// Offset within the task's destination/source (task-relative).
    pub off: usize,
    /// Length of the piece.
    pub len: usize,
    /// Address space the piece reads from.
    pub space: Rc<AddressSpace>,
    /// Start address of the piece.
    pub va: VirtAddr,
    /// How many times this piece was redirected to an earlier source
    /// (0 = the task's own source; ≥1 = absorbed).
    pub depth: u32,
}

impl std::fmt::Debug for SrcPiece {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SrcPiece")
            .field("off", &self.off)
            .field("len", &self.len)
            .field("space", &self.space.id())
            .field("va", &self.va)
            .field("depth", &self.depth)
            .finish()
    }
}

/// The outcome of absorption analysis for one task.
pub struct AbsorbPlan {
    /// Effective source pieces, ordered by task offset, covering the task.
    pub pieces: Vec<SrcPiece>,
    /// Ranges of *earlier* entries to defer: `(entry, start, end)` in that
    /// entry's task-relative coordinates.
    pub defers: Vec<(Rc<PendEntry>, usize, usize)>,
    /// A hazard forbids executing this task before the earlier ones.
    pub blocked: bool,
    /// The earlier entries causing the hazard (so the service can clear
    /// their deferrals and push them through first).
    pub blockers: Vec<Rc<PendEntry>>,
    /// Bytes redirected away from intermediate buffers.
    pub absorbed_bytes: usize,
}

/// Maximum layering depth (bounds pathological chains).
pub const MAX_ABSORB_DEPTH: u32 = 4;

/// Analyzes `entry` against the `earlier` unfinished entries of its window
/// (in window order). `enabled = false` degrades to the identity plan with
/// hazard detection only (the absorption ablation of Fig. 12-c).
pub fn analyze(entry: &PendEntry, earlier: &[Rc<PendEntry>], enabled: bool) -> AbsorbPlan {
    let t = &entry.task;
    let dst_r = (t.dst.0 as usize, t.dst.0 as usize + t.len);

    // Hazard scan.
    let mut blocked = false;
    let mut blockers: Vec<Rc<PendEntry>> = Vec::new();
    for e in earlier {
        if e.finished() {
            continue;
        }
        let et = &e.task;
        let mut hazard = false;
        // WAW: both write the same destination bytes — order must hold.
        if et.dst_space.id() == t.dst_space.id() {
            let r = (et.dst.0 as usize, et.dst.0 as usize + et.len);
            if ranges_overlap(dst_r, r) {
                hazard = true;
            }
        }
        // WAR: we would overwrite a source the earlier task still reads.
        if et.src_space.id() == t.dst_space.id() {
            let r = (et.src.0 as usize, et.src.0 as usize + et.len);
            if ranges_overlap(dst_r, r) {
                hazard = true;
            }
        }
        if hazard {
            blocked = true;
            blockers.push(Rc::clone(e));
        }
    }

    let mut pieces = vec![SrcPiece {
        off: 0,
        len: t.len,
        space: Rc::clone(&t.src_space),
        va: t.src,
        depth: 0,
    }];
    let mut defers: Vec<(Rc<PendEntry>, usize, usize)> = Vec::new();
    let mut absorbed = 0usize;

    if enabled && !blocked {
        // Layer from the most recent earlier task backwards; redirected
        // pieces can then hit even earlier producers (transitive chains).
        for e in earlier.iter().rev() {
            if e.finished() || e.aborted.get() || e.failed.get().is_some() {
                continue;
            }
            let et = &e.task;
            let e_dst_lo = et.dst.0 as usize;
            let e_dst_hi = e_dst_lo + et.len;
            let mut next: Vec<SrcPiece> = Vec::with_capacity(pieces.len());
            for p in pieces {
                if p.depth >= MAX_ABSORB_DEPTH || p.space.id() != et.dst_space.id() {
                    next.push(p);
                    continue;
                }
                let p_lo = p.va.0 as usize;
                let p_hi = p_lo + p.len;
                let lo = p_lo.max(e_dst_lo);
                let hi = p_hi.min(e_dst_hi);
                if lo >= hi {
                    next.push(p);
                    continue;
                }
                // Head of the piece before the overlap.
                if p_lo < lo {
                    next.push(SrcPiece {
                        off: p.off,
                        len: lo - p_lo,
                        space: Rc::clone(&p.space),
                        va: p.va,
                        depth: p.depth,
                    });
                }
                // Overlapped middle: split by what the earlier task has
                // already copied (entry-relative coordinates).
                let e_rel = (lo - e_dst_lo, hi - e_dst_lo);
                let copied = e.copied.borrow();
                let copied_parts = copied.overlaps(e_rel.0, e_rel.1);
                let gap_parts = copied.gaps(e_rel.0, e_rel.1);
                drop(copied);
                for (s, epart) in copied_parts
                    .iter()
                    .map(|r| (true, r))
                    .chain(gap_parts.iter().map(|r| (false, r)))
                {
                    let (es, ee) = *epart;
                    let task_off = p.off + (e_dst_lo + es - p_lo);
                    if s {
                        // Already copied: data (possibly client-modified)
                        // lives in the earlier task's destination; keep
                        // reading from there.
                        next.push(SrcPiece {
                            off: task_off,
                            len: ee - es,
                            space: Rc::clone(&p.space),
                            va: VirtAddr((e_dst_lo + es) as u64),
                            depth: p.depth,
                        });
                    } else {
                        // Untouched: short-circuit to the earlier source
                        // and defer the earlier task's obligation.
                        next.push(SrcPiece {
                            off: task_off,
                            len: ee - es,
                            space: Rc::clone(&et.src_space),
                            va: et.src.add(es),
                            depth: p.depth + 1,
                        });
                        absorbed += ee - es;
                        defers.push((Rc::clone(e), es, ee));
                    }
                }
                // Tail of the piece after the overlap.
                if hi < p_hi {
                    next.push(SrcPiece {
                        off: p.off + (hi - p_lo),
                        len: p_hi - hi,
                        space: Rc::clone(&p.space),
                        va: VirtAddr(hi as u64),
                        depth: p.depth,
                    });
                }
            }
            next.sort_by_key(|p| p.off);
            pieces = next;
        }
    }

    AbsorbPlan {
        pieces,
        defers,
        blocked,
        blockers,
        absorbed_bytes: absorbed,
    }
}

/// Index-backed [`analyze`]: window queries against the set's
/// [`PendIndex`] instead of sweeping every earlier entry. Produces the
/// same plan — identical pieces (sorted by offset), blockers (window
/// order), `blocked` flag, and absorbed byte total; only the order of the
/// `defers` list may differ (its application is commutative: interval
/// inserts plus an identical `defer_until`). The second return value is
/// the number of index records the queries visited.
///
/// Equivalences with the linear reference, relied on for byte-identical
/// virtual time:
///
/// * "earlier entries in window order" == index records with
///   `key < entry.key`, reduced in key order (window position order equals
///   key order because keys are unique within a set);
/// * the layering loop's backward sweep applies, for each piece, the
///   *latest* live earlier producer overlapping it — here a max-key window
///   query per piece, with split pieces re-queried below that producer's
///   key (the bound a backward sweep would have reached next).
pub fn analyze_indexed(entry: &PendEntry, index: &PendIndex, enabled: bool) -> (AbsorbPlan, u64) {
    let t = &entry.task;
    let bound = entry.key;
    let (dsp, dlo, dhi) = t.dst_range();
    let mut hits = 0u64;

    // Hazard scan: WAW = earlier destinations overlapping our destination,
    // WAR = earlier sources overlapping it. Dedup by key (one entry can
    // match both queries); key order reproduces the window scan's order.
    let mut hazard: BTreeMap<OrderKey, Rc<PendEntry>> = BTreeMap::new();
    for kind in [RangeKind::Dst, RangeKind::Src] {
        hits += index.for_each_overlap(kind, dsp, dlo, dhi, |e| {
            if e.key < bound && !e.finished() {
                hazard.entry(e.key).or_insert_with(|| Rc::clone(e));
            }
        });
    }
    let blockers: Vec<Rc<PendEntry>> = hazard.into_values().collect();
    let blocked = !blockers.is_empty();

    let mut pieces: Vec<SrcPiece> = Vec::new();
    let mut defers: Vec<(Rc<PendEntry>, usize, usize)> = Vec::new();
    let mut absorbed = 0usize;

    // Worklist of (piece, key bound): each piece is matched against the
    // latest live producer below its bound whose destination overlaps it;
    // the split parts inherit that producer's key as their new bound, so
    // transitive chains terminate exactly where the backward sweep would.
    let mut work: Vec<(SrcPiece, OrderKey)> = vec![(
        SrcPiece {
            off: 0,
            len: t.len,
            space: Rc::clone(&t.src_space),
            va: t.src,
            depth: 0,
        },
        bound,
    )];
    while let Some((p, pb)) = work.pop() {
        if !enabled || blocked || p.depth >= MAX_ABSORB_DEPTH {
            pieces.push(p);
            continue;
        }
        let p_lo = p.va.0 as usize;
        let p_hi = p_lo + p.len;
        let mut best: Option<Rc<PendEntry>> = None;
        hits += index.for_each_overlap(
            RangeKind::Dst,
            p.space.id(),
            p_lo as u64,
            p_hi as u64,
            |e| {
                if e.key < pb
                    && !(e.finished() || e.aborted.get() || e.failed.get().is_some())
                    && best.as_ref().is_none_or(|b| e.key > b.key)
                {
                    best = Some(Rc::clone(e));
                }
            },
        );
        let Some(e) = best else {
            pieces.push(p);
            continue;
        };
        let et = &e.task;
        let e_dst_lo = et.dst.0 as usize;
        let e_dst_hi = e_dst_lo + et.len;
        let lo = p_lo.max(e_dst_lo);
        let hi = p_hi.min(e_dst_hi);
        if lo >= hi {
            // Asymmetric-overlap match with an empty intersection (a
            // zero-length range); the linear sweep passes the piece over
            // it untouched — keep looking below this producer's key.
            work.push((p, e.key));
            continue;
        }
        let eb = e.key;
        if p_lo < lo {
            work.push((
                SrcPiece {
                    off: p.off,
                    len: lo - p_lo,
                    space: Rc::clone(&p.space),
                    va: p.va,
                    depth: p.depth,
                },
                eb,
            ));
        }
        let e_rel = (lo - e_dst_lo, hi - e_dst_lo);
        let copied = e.copied.borrow();
        let copied_parts = copied.overlaps(e_rel.0, e_rel.1);
        let gap_parts = copied.gaps(e_rel.0, e_rel.1);
        drop(copied);
        for (already, epart) in copied_parts
            .iter()
            .map(|r| (true, r))
            .chain(gap_parts.iter().map(|r| (false, r)))
        {
            let (es, ee) = *epart;
            let task_off = p.off + (e_dst_lo + es - p_lo);
            if already {
                work.push((
                    SrcPiece {
                        off: task_off,
                        len: ee - es,
                        space: Rc::clone(&p.space),
                        va: VirtAddr((e_dst_lo + es) as u64),
                        depth: p.depth,
                    },
                    eb,
                ));
            } else {
                work.push((
                    SrcPiece {
                        off: task_off,
                        len: ee - es,
                        space: Rc::clone(&et.src_space),
                        va: et.src.add(es),
                        depth: p.depth + 1,
                    },
                    eb,
                ));
                absorbed += ee - es;
                defers.push((Rc::clone(&e), es, ee));
            }
        }
        if hi < p_hi {
            work.push((
                SrcPiece {
                    off: p.off + (hi - p_lo),
                    len: p_hi - hi,
                    space: Rc::clone(&p.space),
                    va: VirtAddr(hi as u64),
                    depth: p.depth,
                },
                eb,
            ));
        }
    }
    pieces.sort_by_key(|p| p.off);

    (
        AbsorbPlan {
            pieces,
            defers,
            blocked,
            blockers,
            absorbed_bytes: absorbed,
        },
        hits,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PendEntry;
    use crate::descriptor::SegDescriptor;
    use crate::interval::IntervalSet;
    use crate::task::CopyTask;
    use copier_mem::{AllocPolicy, PhysMem};
    use copier_sim::Nanos;
    use std::cell::{Cell, RefCell};

    fn space(id: u32) -> Rc<AddressSpace> {
        let pm = Rc::new(PhysMem::new(4, AllocPolicy::Sequential));
        AddressSpace::new(id, pm)
    }

    fn entry(
        tid: u64,
        src_space: &Rc<AddressSpace>,
        src: u64,
        dst_space: &Rc<AddressSpace>,
        dst: u64,
        len: usize,
    ) -> Rc<PendEntry> {
        Rc::new(PendEntry {
            tid,
            key: (0, 1, tid),
            task: CopyTask {
                dst_space: Rc::clone(dst_space),
                dst: VirtAddr(dst),
                src_space: Rc::clone(src_space),
                src: VirtAddr(src),
                len,
                seg: 1024,
                descr: Rc::new(SegDescriptor::new(len, 1024)),
                func: None,
                lazy: false,
                verify: false,
            },
            copied: RefCell::new(IntervalSet::new()),
            inflight: RefCell::new(IntervalSet::new()),
            deferred: RefCell::new(IntervalSet::new()),
            defer_until: Cell::new(Nanos::ZERO),
            promoted: Cell::new(false),
            aborted: Cell::new(false),
            failed: Cell::new(None),
            submitted_at: Nanos::ZERO,
            pins: RefCell::new(Vec::new()),
            finalized: Cell::new(false),
        })
    }

    #[test]
    fn independent_tasks_pass_through() {
        let k = space(1);
        let u = space(2);
        let a = entry(1, &k, 0x1000, &u, 0x8000, 4096);
        let b = entry(2, &k, 0x9000, &u, 0x20000, 4096);
        let plan = analyze(&b, &[a], true);
        assert!(!plan.blocked);
        assert_eq!(plan.pieces.len(), 1);
        assert_eq!(plan.pieces[0].depth, 0);
        assert_eq!(plan.absorbed_bytes, 0);
    }

    #[test]
    fn chain_short_circuits_untouched_bytes() {
        // A: W(0x1000, kspace) → X(0x8000, uspace); B: X → Y(0x20000, uspace).
        let k = space(1);
        let u = space(2);
        let a = entry(1, &k, 0x1000, &u, 0x8000, 4096);
        let b = entry(2, &u, 0x8000, &u, 0x20000, 4096);
        let plan = analyze(&b, &[Rc::clone(&a)], true);
        assert!(!plan.blocked);
        assert_eq!(plan.pieces.len(), 1);
        let p = &plan.pieces[0];
        assert_eq!(p.space.id(), 1, "short-circuit reads from W (kspace)");
        assert_eq!(p.va, VirtAddr(0x1000));
        assert_eq!(p.depth, 1);
        assert_eq!(plan.absorbed_bytes, 4096);
        assert_eq!(plan.defers.len(), 1);
        assert_eq!((plan.defers[0].1, plan.defers[0].2), (0, 4096));
    }

    #[test]
    fn fig8_modified_prefix_reads_layered_sources() {
        // A copied (and client modified) its first 1000 bytes; the rest is
        // untouched. B must read [0,1000) from X and [1000,4096) from W.
        let k = space(1);
        let u = space(2);
        let a = entry(1, &k, 0x1000, &u, 0x8000, 4096);
        a.copied.borrow_mut().insert(0, 1000);
        let b = entry(2, &u, 0x8000, &u, 0x20000, 4096);
        let plan = analyze(&b, &[Rc::clone(&a)], true);
        assert_eq!(plan.pieces.len(), 2);
        assert_eq!(plan.pieces[0].space.id(), 2);
        assert_eq!(plan.pieces[0].va, VirtAddr(0x8000));
        assert_eq!(plan.pieces[0].len, 1000);
        assert_eq!(plan.pieces[1].space.id(), 1);
        assert_eq!(plan.pieces[1].va, VirtAddr(0x1000 + 1000));
        assert_eq!(plan.pieces[1].len, 4096 - 1000);
        assert_eq!(plan.absorbed_bytes, 4096 - 1000);
    }

    #[test]
    fn partial_overlap_splits_head_and_tail() {
        // B reads [0x8000,0x9000); A only wrote [0x8800,0x8c00).
        let k = space(1);
        let u = space(2);
        let a = entry(1, &k, 0x1000, &u, 0x8800, 0x400);
        let b = entry(2, &u, 0x8000, &u, 0x20000, 0x1000);
        let plan = analyze(&b, &[a], true);
        let lens: Vec<usize> = plan.pieces.iter().map(|p| p.len).collect();
        assert_eq!(lens, vec![0x800, 0x400, 0x400]);
        assert_eq!(plan.pieces[1].space.id(), 1);
        assert_eq!(plan.pieces[0].depth, 0);
        assert_eq!(plan.pieces[2].depth, 0);
    }

    #[test]
    fn transitive_chain_layers_twice() {
        // C ← B ← A: A: V→W, B: W→X, C: X→Y, nothing copied yet.
        let s = space(2);
        let a = entry(1, &s, 0x1000, &s, 0x8000, 2048);
        let b = entry(2, &s, 0x8000, &s, 0x10000, 2048);
        let c = entry(3, &s, 0x10000, &s, 0x20000, 2048);
        let plan = analyze(&c, &[Rc::clone(&a), Rc::clone(&b)], true);
        assert_eq!(plan.pieces.len(), 1);
        assert_eq!(plan.pieces[0].va, VirtAddr(0x1000), "reads V directly");
        assert_eq!(plan.pieces[0].depth, 2);
        // Both intermediate tasks get deferred.
        assert_eq!(plan.defers.len(), 2);
    }

    #[test]
    fn waw_hazard_blocks() {
        let s = space(2);
        let a = entry(1, &s, 0x1000, &s, 0x20000, 2048);
        let b = entry(2, &s, 0x9000, &s, 0x20400, 2048); // dst overlaps A's dst
        let plan = analyze(&b, &[a], true);
        assert!(plan.blocked);
    }

    #[test]
    fn war_hazard_blocks() {
        let s = space(2);
        // A reads [0x9000,0x9800); B writes into that range.
        let a = entry(1, &s, 0x9000, &s, 0x20000, 2048);
        let b = entry(2, &s, 0x1000, &s, 0x9400, 2048);
        let plan = analyze(&b, &[a], true);
        assert!(plan.blocked);
    }

    #[test]
    fn disabled_analysis_never_redirects_but_still_detects_hazards() {
        let k = space(1);
        let u = space(2);
        let a = entry(1, &k, 0x1000, &u, 0x8000, 4096);
        let b = entry(2, &u, 0x8000, &u, 0x20000, 4096);
        let plan = analyze(&b, &[a], false);
        assert!(!plan.blocked);
        assert_eq!(plan.absorbed_bytes, 0);
        assert_eq!(plan.pieces.len(), 1);
        assert_eq!(plan.pieces[0].depth, 0);
    }

    #[test]
    fn finished_earlier_tasks_are_transparent() {
        let k = space(1);
        let u = space(2);
        let a = entry(1, &k, 0x1000, &u, 0x8000, 4096);
        a.copied.borrow_mut().insert(0, 4096); // fully done
        let b = entry(2, &u, 0x8000, &u, 0x20000, 4096);
        let plan = analyze(&b, &[a], true);
        assert_eq!(plan.absorbed_bytes, 0);
        assert_eq!(plan.pieces[0].space.id(), 2, "reads X as usual");
    }
}
