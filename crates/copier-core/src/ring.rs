//! Lock-free CSH queue ring buffer (§5.1 "Multithreading and concurrency").
//!
//! The paper's design, reproduced directly: producers *acquire* a slot by
//! advancing `head` with a CAS-bounded fetch, fill the task fields, then set
//! the slot's *valid* bit; the (single) consumer takes a slot at `tail` only
//! once valid, clears it, and advances. Task order follows slot-acquisition
//! order, so the ring is FIFO per queue while allowing concurrent producers
//! (multi-threaded clients submitting to a shared per-process queue).
//!
//! The same type serves two roles: inside the deterministic simulator
//! (single host thread — the atomics cost nothing) and under real OS
//! threads in the `ring_stress` integration test backing Fig. 12-b.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Error returned when the ring has no free slot. Carries the rejected
/// value back to the producer so no submission path can drop it silently
/// — the caller either retries, requeues it elsewhere, or surfaces a
/// typed error.
pub struct RingFull<T>(pub T);

impl<T> std::fmt::Debug for RingFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RingFull(..)")
    }
}

struct Slot<T> {
    valid: AtomicBool,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded MPSC ring buffer.
pub struct Ring<T> {
    slots: Box<[Slot<T>]>,
    /// Next slot to acquire (total enqueues attempted).
    head: AtomicUsize,
    /// Next slot to consume (total dequeues).
    tail: AtomicUsize,
}

// SAFETY: slots are handed out exclusively — a producer owns slot `h` after
// winning the CAS on `head` and publishes with a release store to `valid`;
// the consumer reads after an acquire load of `valid` and releases the slot
// by clearing `valid` only after moving the value out. `T: Send` therefore
// suffices to move values across threads.
unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Ring<T> {
    /// Creates a ring with `capacity` slots (rounded up to a power of two).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        Ring {
            slots: (0..cap)
                .map(|_| Slot {
                    valid: AtomicBool::new(false),
                    val: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Entries currently enqueued (approximate under concurrency).
    ///
    /// Wrapping subtraction, matching `push`'s occupancy check: the
    /// counters are monotone and may wrap `usize`, after which `head`
    /// reads *below* `tail` and a saturating difference would clamp the
    /// occupancy to 0 (under-reporting a possibly full ring). Since the
    /// capacity divides 2^64, `head - tail mod 2^64` is the true
    /// occupancy across the wrap.
    pub fn len(&self) -> usize {
        self.head
            .load(Ordering::Acquire)
            .wrapping_sub(self.tail.load(Ordering::Acquire))
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total values ever pushed (the queue *position* used by barriers).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire) as u64
    }

    /// Producer: enqueues a value; a full ring returns the value back.
    pub fn push(&self, v: T) -> Result<(), RingFull<T>> {
        let cap = self.slots.len();
        let mut h = self.head.load(Ordering::Relaxed);
        loop {
            let t = self.tail.load(Ordering::Acquire);
            if h.wrapping_sub(t) >= cap {
                return Err(RingFull(v));
            }
            match self.head.compare_exchange_weak(
                h,
                h.wrapping_add(1),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => h = cur,
            }
        }
        let slot = &self.slots[h % cap];
        // The slot must have been released by the consumer; under the
        // capacity check above this is guaranteed.
        debug_assert!(!slot.valid.load(Ordering::Acquire));
        // SAFETY: we exclusively own slot `h` after winning the CAS and
        // until we set `valid`; no other producer can acquire the same
        // index and the consumer ignores invalid slots.
        unsafe { (*slot.val.get()).write(v) };
        slot.valid.store(true, Ordering::Release);
        Ok(())
    }

    /// Consumer: dequeues the next value if one is ready.
    ///
    /// Must be called from a single consumer at a time.
    pub fn pop(&self) -> Option<T> {
        let cap = self.slots.len();
        let t = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[t % cap];
        if !slot.valid.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: `valid` was observed with acquire ordering, so the
        // producer's write to the slot happened-before this read; we are
        // the only consumer, so the slot is ours until we clear `valid`.
        let v = unsafe { (*slot.val.get()).assume_init_read() };
        slot.valid.store(false, Ordering::Release);
        self.tail.store(t.wrapping_add(1), Ordering::Release);
        Some(v)
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drain remaining initialized slots so their values are dropped.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let r = Ring::new(8);
        for i in 0..5 {
            r.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let r = Ring::new(4);
        for i in 0..4 {
            r.push(i).unwrap();
        }
        let rejected = r.push(99).expect_err("full ring must reject");
        assert_eq!(rejected.0, 99, "rejected value is returned to the caller");
        assert_eq!(r.pop(), Some(0));
        r.push(99).unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn wraps_around_many_times() {
        let r = Ring::new(4);
        for round in 0..100u64 {
            r.push(round).unwrap();
            assert_eq!(r.pop(), Some(round));
        }
        assert_eq!(r.pushed(), 100);
    }

    #[test]
    fn occupancy_survives_counter_wraparound() {
        // Regression for the ISSUE 6 satellite: `len()` used
        // `saturating_sub` while `push` used `wrapping_sub`, so once the
        // monotone counters wrapped usize, `len()` clamped to 0 while
        // the ring was actually populated. Start the counters just below
        // the wrap (capacity is a power of two, so slot indexing stays
        // aligned) and drive push/pop across the boundary.
        let r = Ring::new(4);
        let start = usize::MAX - 5; // wraps mid-test
        r.head.store(start, Ordering::SeqCst);
        r.tail.store(start, Ordering::SeqCst);
        assert_eq!(r.len(), 0);
        let mut expect_front = 0u64;
        let mut next = 0u64;
        for _ in 0..3 {
            r.push(next).unwrap();
            next += 1;
        }
        for step in 0..12u64 {
            assert_eq!(r.len(), 3, "occupancy wrong at step {step}");
            assert_eq!(r.pop(), Some(expect_front), "FIFO broke at step {step}");
            expect_front += 1;
            r.push(next).unwrap();
            next += 1;
        }
        // Post-wrap: head is now small, tail may still be near MAX or
        // past it; a full ring must still reject.
        r.push(next).unwrap();
        assert_eq!(r.len(), 4);
        assert!(r.push(999).is_err(), "full ring must reject across wrap");
        for _ in 0..4 {
            assert_eq!(r.pop(), Some(expect_front));
            expect_front += 1;
        }
        assert!(r.is_empty());
        assert!(
            r.head.load(Ordering::SeqCst) < start,
            "wrap actually happened"
        );
    }

    #[test]
    fn drop_releases_queued_values() {
        let counter = Arc::new(AtomicUsize::new(0));
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let r = Ring::new(8);
        for _ in 0..3 {
            r.push(D(Arc::clone(&counter))).unwrap();
        }
        drop(r);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn mpsc_under_real_threads() {
        // 4 producers × 10_000 items, one consumer; per-producer FIFO must
        // hold and nothing may be lost or duplicated.
        let r = Arc::new(Ring::<(u8, u32)>::new(256));
        let mut handles = Vec::new();
        for p in 0..4u8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u32 {
                    loop {
                        if r.push((p, i)).is_ok() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut last = [None::<u32>; 4];
        let mut count = 0usize;
        while count < 40_000 {
            if let Some((p, i)) = r.pop() {
                let prev = &mut last[p as usize];
                assert!(prev.map_or(true, |x| x < i), "producer {p} out of order");
                *prev = Some(i);
                count += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(last, [Some(9_999); 4]);
        assert!(r.pop().is_none());
    }
}
