//! Service configuration.

use std::rc::Rc;

use copier_hw::VerifyPolicy;
use copier_sim::{FaultPlan, Nanos, Tracer};

use crate::descriptor::DEFAULT_SEGMENT;
use crate::sched::DEFAULT_COPY_SLICE;

/// How the Copier threads poll client queues (§4.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollMode {
    /// NAPI-like adaptive polling: spin for a budget of idle sweeps, then
    /// park until awakened or the timeout elapses.
    Napi {
        /// Consecutive idle sweeps before parking.
        spin_rounds: u32,
        /// Maximum park duration before a defensive re-poll.
        park_timeout: Nanos,
    },
    /// Scenario-driven (the smartphone mode, §5.3): threads run only while
    /// a target scenario is active and sleep otherwise.
    ScenarioDriven,
}

/// Per-client quotas and global watermarks for admission control.
///
/// Submissions past quota are rejected with [`crate::CopyFault::Overloaded`]
/// instead of silently queued; the matching client-side mechanism is the
/// credit pool carried on the completion path (`copier-client`).
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Per-client in-flight descriptor quota — also the size of the
    /// client's submission-credit pool.
    pub max_client_tasks: u64,
    /// Per-client in-flight byte quota.
    pub max_client_bytes: u64,
    /// Per-client pinned-frame quota: past it, the client's tasks are
    /// deferred (not shed) until completions release pins.
    pub max_client_pinned: u64,
    /// Global windowed-byte high watermark: above it the service sheds
    /// submissions priority-aware (the least-served client is exempt).
    pub global_high_bytes: u64,
    /// Global low watermark: shedding stops once the window drains to it.
    pub global_low_bytes: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_client_tasks: 1024,
            max_client_bytes: 64 * 1024 * 1024,
            max_client_pinned: 16 * 1024,
            global_high_bytes: 256 * 1024 * 1024,
            global_low_bytes: 192 * 1024 * 1024,
        }
    }
}

/// Tunables of a [`crate::service::Copier`] instance.
#[derive(Debug, Clone)]
pub struct CopierConfig {
    /// Slots per CSH ring.
    pub queue_cap: usize,
    /// Default segment granularity for descriptors.
    pub segment: usize,
    /// How long lazy/deferred obligations may linger before execution.
    pub lazy_period: Nanos,
    /// Enable copy absorption (§4.4).
    pub absorption: bool,
    /// Attach the DMA engine (§4.3).
    pub use_dma: bool,
    /// Independent DMA channels (quarantine granularity; ≥ 1).
    pub dma_channels: usize,
    /// Deterministic fault-injection oracle consulted by the DMA engine
    /// (per descriptor) and the ATCache path (per hit). `None` disables
    /// injection entirely.
    pub fault_plan: Option<Rc<FaultPlan>>,
    /// ATCache entries (0 disables the cache).
    pub atcache_capacity: usize,
    /// Polling behavior.
    pub polling: PollMode,
    /// Maximum bytes served per scheduling decision.
    pub copy_slice: usize,
    /// Enable thread auto-scaling between 1 and the provided core count.
    pub auto_scale: bool,
    /// Pending-byte load below which a thread is put to sleep.
    pub low_load: usize,
    /// Pending-byte load above which another thread is woken.
    pub high_load: usize,
    /// Copier-core time charged per drained queue entry.
    pub drain_cost: Nanos,
    /// Scheduler latency to wake a parked Copier thread (kthread wakeup).
    pub wake_latency: Nanos,
    /// Settle window after draining new tasks before scheduling: lets a
    /// burst of submissions land in the same window, enabling e-piggyback
    /// fusing and copy absorption across adjacent tasks (§4.3, §4.4).
    pub aggregation_delay: Nanos,
    /// Admission-control quotas and watermarks.
    pub admission: AdmissionConfig,
    /// Record/replay hook (DESIGN.md §14): the service emits its round
    /// structure, drain/admission/scheduling decisions, and state hashes
    /// into this tracer, and in replay mode is checked against it in
    /// lockstep. Recording is host-side only — virtual-time behaviour is
    /// identical with or without it. `None` disables tracing.
    pub tracer: Option<Rc<Tracer>>,
    /// Control-plane journal store (DESIGN.md §15). When set, the service
    /// journals admissions/completions/taints into it and, on
    /// construction, replays whatever a previous incarnation left there —
    /// the crash-recovery path. Journaling is host-side only: no virtual
    /// time is charged and no PRNG draw is consumed, so a crash-free
    /// journaled run is byte-identical to an unjournaled one. `None`
    /// disables journaling (and recovery).
    pub journal: Option<Rc<crate::journal::JournalStore>>,
    /// End-to-end verification policy (§integrity). `Off` charges nothing
    /// and detects nothing; `Sampled` digests head+tail of each dispatched
    /// extent; `Full` digests every byte. Detection fires bounded repair,
    /// then [`crate::CopyFault::Corrupted`]. Host-side only: no virtual
    /// time is charged, so an uncorrupted run's virtual timeline is
    /// byte-identical across policies.
    pub verify: VerifyPolicy,
    /// Maximum automatic re-copy attempts after a verification mismatch
    /// before the task is poisoned `Corrupted`.
    pub repair_limit: u32,
    /// Verification failures attributed to a DMA channel before it is
    /// quarantined like a hard death (0 disables corruption quarantine).
    pub corrupt_quarantine_threshold: u32,
    /// Page-sampling stride for journal admission digests
    /// (`extent_digest_stride`): 0 keeps the legacy head+tail digest
    /// (cheapest, blind to mid-extent damage), 1 folds every page (full
    /// coverage, O(len)), k ≥ 2 folds head, tail, and every k-th page
    /// (O(len/k), catches damage runs ≥ k pages). Torn-write detection at
    /// recovery inherits this coverage/cost trade-off.
    pub admit_digest_stride: usize,
    /// Scrubber cadence: one registered chunk is re-digested every this
    /// many scheduling rounds (0 disables the scrubber walk).
    pub scrub_period: u64,
    /// Number of control-plane shards (DESIGN.md §17). 1 (the default)
    /// is the classic single-instance service, byte-identical to every
    /// pre-shard build. N > 1 partitions clients across N service cores
    /// by a deterministic hash of the client's address-space id; shards
    /// coordinate admission and fairness through a deterministic round
    /// barrier, so runs stay bit-reproducible from a seed at any shard
    /// count. Requires `cores.len() >= shards`, `auto_scale == false`,
    /// and NAPI polling.
    pub shards: usize,
    /// Debug/reference switch (DESIGN.md §18): when `true`, every
    /// control-plane read path falls back to the legacy full sweeps over
    /// the whole client table (assignment rebuild each round, O(clients)
    /// min-vruntime scans, O(clients × sets) autoscale load sums, full
    /// trace-hash folds). The incremental aggregates are still
    /// *maintained* either way — only the reads differ — so a full-sweep
    /// run is the differential reference the O(active) fast path is
    /// tested against. Outcomes and virtual time are identical in both
    /// modes at fixed (seed, shards).
    pub full_sweep: bool,
}

impl Default for CopierConfig {
    fn default() -> Self {
        CopierConfig {
            queue_cap: 1024,
            segment: DEFAULT_SEGMENT,
            lazy_period: Nanos::from_micros(50),
            absorption: true,
            use_dma: true,
            dma_channels: 1,
            fault_plan: None,
            atcache_capacity: 256,
            polling: PollMode::Napi {
                // SQPOLL-style idle budget (~160 µs of spinning) before
                // parking; keeps the service hot across request gaps.
                spin_rounds: 2048,
                park_timeout: Nanos::from_micros(100),
            },
            copy_slice: DEFAULT_COPY_SLICE,
            auto_scale: false,
            low_load: 16 * 1024,
            high_load: 1024 * 1024,
            drain_cost: Nanos(25),
            wake_latency: Nanos(700),
            aggregation_delay: Nanos(150),
            admission: AdmissionConfig::default(),
            tracer: None,
            journal: None,
            verify: VerifyPolicy::Off,
            repair_limit: 2,
            corrupt_quarantine_threshold: 2,
            admit_digest_stride: 0,
            scrub_period: 64,
            shards: 1,
            full_sweep: false,
        }
    }
}
