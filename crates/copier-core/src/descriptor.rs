//! Segment descriptors: the shared bitmap clients poll in `csync` (§4.1).
//!
//! A descriptor divides a copy of `len` bytes into fixed-size segments and
//! exposes one atomic bit per segment. Copier sets a bit only after the
//! segment's bytes have physically landed; a client that observes the bit
//! may use those bytes immediately — the fine-grained copy-use pipeline.
//!
//! Atomics are used (rather than `Cell`s) because the descriptor is the
//! contract shared across the client/service boundary; the identical type
//! is exercised from real OS threads in the ring stress tests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Why a copy failed; surfaced to `csync` as an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyFault {
    /// The source or destination range was not legally addressable —
    /// the simulated process receives SIGSEGV.
    Segv,
    /// Physical memory was exhausted while resolving pages.
    OutOfMemory,
    /// The task was explicitly aborted (§4.4 `abort` sync task).
    Aborted,
    /// Admission control rejected the submission: the client was past its
    /// in-flight quota, or the service shed load above its global
    /// watermark. Retry after completions return credits.
    Overloaded,
    /// Crash recovery found the destination range neither untouched nor
    /// fully copied (its sampled extent digest matches neither journaled
    /// side): the bytes are partial and must not be consumed. Healed by
    /// a later copy that fully overwrites the range.
    Torn,
    /// End-to-end verification found the destination bytes differ from
    /// the source digest taken at dispatch (silent DMA corruption that
    /// the device reported as success), and bounded automatic repair
    /// could not restore them — or the scrubber found a rotted region
    /// with no intact replica. The bytes must not be consumed.
    Corrupted,
}

/// Default segment granularity (bytes).
pub const DEFAULT_SEGMENT: usize = 1024;

/// A segment-progress descriptor.
pub struct SegDescriptor {
    len: usize,
    seg: usize,
    bits: Vec<AtomicU64>,
    poisoned: AtomicBool,
    fault: std::cell::Cell<Option<CopyFault>>,
    /// Whether the completion side effects (handler delivery + credit
    /// grant) have fired. Lives in the descriptor — client-owned memory
    /// that survives a service crash — so a restarted service and a
    /// resubmitted duplicate settle each submission exactly once.
    delivered: AtomicBool,
}

// SAFETY: `fault` is only written by the (single-threaded) service before
// `poisoned` is set with release ordering and read after an acquire load;
// in the deterministic simulator there is exactly one host thread anyway.
unsafe impl Sync for SegDescriptor {}

impl SegDescriptor {
    /// Creates a descriptor for a copy of `len` bytes at `seg` granularity.
    ///
    /// `len == 0` is legal (like `memcpy(d, s, 0)`): the descriptor has
    /// zero segments and is born complete — `all_ready()` holds
    /// immediately and the service completes the task without moving
    /// bytes.
    pub fn new(len: usize, seg: usize) -> Self {
        let seg = seg.max(1);
        let nsegs = len.div_ceil(seg);
        let words = nsegs.div_ceil(64);
        SegDescriptor {
            len,
            seg,
            bits: (0..words).map(|_| AtomicU64::new(0)).collect(),
            poisoned: AtomicBool::new(false),
            fault: std::cell::Cell::new(None),
            delivered: AtomicBool::new(false),
        }
    }

    /// The copy length this descriptor tracks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this descriptor tracks a zero-byte copy.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Segment granularity in bytes.
    pub fn segment_size(&self) -> usize {
        self.seg
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.len.div_ceil(self.seg)
    }

    /// Marks segment `idx` complete.
    pub fn mark(&self, idx: usize) {
        assert!(idx < self.num_segments());
        self.bits[idx / 64].fetch_or(1 << (idx % 64), Ordering::Release);
    }

    /// Whether segment `idx` is complete.
    pub fn is_marked(&self, idx: usize) -> bool {
        assert!(idx < self.num_segments());
        self.bits[idx / 64].load(Ordering::Acquire) & (1 << (idx % 64)) != 0
    }

    /// Whether every segment overlapping `[off, off+len)` is complete.
    pub fn range_ready(&self, off: usize, len: usize) -> bool {
        if len == 0 || self.len == 0 {
            return true;
        }
        let end = (off + len).min(self.len);
        let first = off / self.seg;
        let last = (end - 1) / self.seg;
        (first..=last).all(|i| self.is_marked(i))
    }

    /// Whether the whole copy is complete.
    pub fn all_ready(&self) -> bool {
        self.range_ready(0, self.len)
    }

    /// Count of completed segments.
    pub fn ready_segments(&self) -> usize {
        (0..self.num_segments())
            .filter(|&i| self.is_marked(i))
            .count()
    }

    /// The byte range covered by segment `idx` (tail segment may be short).
    pub fn segment_range(&self, idx: usize) -> (usize, usize) {
        let start = idx * self.seg;
        (start, ((idx + 1) * self.seg).min(self.len))
    }

    /// Clears all progress and fault state for reuse from a descriptor
    /// pool (§5.1 "descriptor pool").
    ///
    /// Only safe once no in-flight copy references the descriptor.
    pub fn reset(&self) {
        for w in &self.bits {
            w.store(0, Ordering::Release);
        }
        self.fault.set(None);
        self.poisoned.store(false, Ordering::Release);
        self.delivered.store(false, Ordering::Release);
    }

    /// Poisons the descriptor with a fault; `csync` will surface it.
    pub fn poison(&self, fault: CopyFault) {
        self.fault.set(Some(fault));
        self.poisoned.store(true, Ordering::Release);
    }

    /// Returns the recorded fault, if any.
    pub fn fault(&self) -> Option<CopyFault> {
        if self.poisoned.load(Ordering::Acquire) {
            self.fault.get()
        } else {
            None
        }
    }

    /// Claims the one-shot right to deliver this submission's completion
    /// side effects (handler + credit). Returns `true` exactly once per
    /// descriptor lifetime — the atomic swap is the exactly-once gate
    /// that makes duplicate window entries after a crash harmless.
    pub fn claim_delivery(&self) -> bool {
        !self.delivered.swap(true, Ordering::AcqRel)
    }

    /// Whether completion side effects already fired.
    pub fn delivered(&self) -> bool {
        self.delivered.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_math_with_short_tail() {
        let d = SegDescriptor::new(2500, 1024);
        assert_eq!(d.num_segments(), 3);
        assert_eq!(d.segment_range(0), (0, 1024));
        assert_eq!(d.segment_range(2), (2048, 2500));
    }

    #[test]
    fn range_ready_requires_all_touched_segments() {
        let d = SegDescriptor::new(4096, 1024);
        d.mark(0);
        d.mark(1);
        assert!(d.range_ready(0, 2048));
        assert!(d.range_ready(100, 1000));
        assert!(!d.range_ready(2000, 100)); // crosses into segment 1..2? 2000+100 ends 2100 → segment 2
        assert!(!d.range_ready(0, 4096));
        d.mark(2);
        d.mark(3);
        assert!(d.all_ready());
        assert_eq!(d.ready_segments(), 4);
    }

    #[test]
    fn zero_len_query_is_trivially_ready() {
        let d = SegDescriptor::new(128, 64);
        assert!(d.range_ready(100, 0));
    }

    #[test]
    fn zero_len_descriptor_is_born_complete() {
        let d = SegDescriptor::new(0, 1024);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.num_segments(), 0);
        assert_eq!(d.ready_segments(), 0);
        assert!(d.all_ready(), "nothing to copy means already done");
        assert!(d.range_ready(0, 0));
        // Poisoning still works (e.g. taint cascade hits it at submit).
        d.poison(CopyFault::Aborted);
        assert_eq!(d.fault(), Some(CopyFault::Aborted));
        d.reset();
        assert_eq!(d.fault(), None);
        assert!(d.all_ready());
    }

    #[test]
    fn wide_descriptors_use_multiple_words() {
        let d = SegDescriptor::new(100 * 1024, 1024); // 100 segments
        for i in 0..100 {
            assert!(!d.is_marked(i));
            d.mark(i);
            assert!(d.is_marked(i));
        }
        assert!(d.all_ready());
    }

    #[test]
    fn poison_is_observable() {
        let d = SegDescriptor::new(64, 64);
        assert_eq!(d.fault(), None);
        d.poison(CopyFault::Segv);
        assert_eq!(d.fault(), Some(CopyFault::Segv));
    }

    #[test]
    fn delivery_claim_fires_exactly_once_until_reset() {
        let d = SegDescriptor::new(64, 64);
        assert!(!d.delivered());
        assert!(d.claim_delivery(), "first claim wins");
        assert!(!d.claim_delivery(), "duplicates are refused");
        assert!(d.delivered());
        d.reset();
        assert!(!d.delivered(), "reset re-arms the descriptor for reuse");
        assert!(d.claim_delivery());
    }
}
