//! Task types flowing through the CSH queues (§4.1).

use std::rc::Rc;

use copier_mem::{AddressSpace, VirtAddr};

use crate::descriptor::SegDescriptor;

/// Service-assigned task identifier.
pub type TaskId = u64;

/// Privilege level of the submitting queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Privilege {
    /// Kernel-mode queue (sorts first on order ties — §4.2.1).
    K,
    /// User-mode queue.
    U,
}

/// A post-copy handler (§4.1 delegation-based handling).
///
/// `KFunc`s run in Copier's own context upon completion; `UFunc`s are
/// delivered to the client's Handler Queue and run by libCopier.
#[derive(Clone)]
pub enum Handler {
    /// Kernel function: executed by the Copier thread itself.
    KFunc(Rc<dyn Fn()>),
    /// User function: queued for the client's `post_handlers()`.
    UFunc(Rc<dyn Fn()>),
}

impl std::fmt::Debug for Handler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Handler::KFunc(_) => write!(f, "KFunc(..)"),
            Handler::UFunc(_) => write!(f, "UFunc(..)"),
        }
    }
}

/// An asynchronous copy request.
#[derive(Clone)]
pub struct CopyTask {
    /// Destination address space.
    pub dst_space: Rc<AddressSpace>,
    /// Destination start address.
    pub dst: VirtAddr,
    /// Source address space (may differ — cross-address-space copy).
    pub src_space: Rc<AddressSpace>,
    /// Source start address.
    pub src: VirtAddr,
    /// Bytes to copy.
    pub len: usize,
    /// Segment granularity for the descriptor.
    pub seg: usize,
    /// Shared progress descriptor.
    pub descr: Rc<SegDescriptor>,
    /// Optional post-copy handler.
    pub func: Option<Handler>,
    /// Lazy task (§4.4): lowest priority, usually absorbed, executed only
    /// when depended upon or after the lazy period.
    pub lazy: bool,
    /// Per-task full-verification override (§integrity): forces
    /// `VerifyPolicy::Full` for this task regardless of the service-wide
    /// policy. Set by `amemcpy_verified`.
    pub verify: bool,
}

impl std::fmt::Debug for CopyTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CopyTask")
            .field("dst_space", &self.dst_space.id())
            .field("dst", &self.dst)
            .field("src_space", &self.src_space.id())
            .field("src", &self.src)
            .field("len", &self.len)
            .field("seg", &self.seg)
            .field("lazy", &self.lazy)
            .finish()
    }
}

impl CopyTask {
    /// The destination byte range as `(space, start, end)`.
    pub fn dst_range(&self) -> (u32, u64, u64) {
        (
            self.dst_space.id(),
            self.dst.0,
            self.dst.0 + self.len as u64,
        )
    }

    /// The source byte range as `(space, start, end)`.
    pub fn src_range(&self) -> (u32, u64, u64) {
        (
            self.src_space.id(),
            self.src.0,
            self.src.0 + self.len as u64,
        )
    }
}

/// An entry in a Copy Queue.
#[derive(Debug, Clone)]
pub enum QueueEntry {
    /// A copy request.
    Copy(CopyTask),
    /// A cross-queue barrier (§4.2.1): the recorded position (total pushes)
    /// of the *peer* queue at submission time.
    Barrier {
        /// Peer queue position captured when the barrier was planted.
        peer_pos: u64,
    },
}

/// An entry in a Sync Queue.
#[derive(Clone)]
pub struct SyncTask {
    /// Address space the range refers to.
    pub space_id: u32,
    /// Start of the range to make ready.
    pub addr: VirtAddr,
    /// Length of the range.
    pub len: usize,
    /// `abort` variant (§4.4): discard the matching queued task instead of
    /// prioritizing it.
    pub abort: bool,
    /// Identifies the exact task by its descriptor (aborts must not hit a
    /// newer task that reuses the same buffer — sync and copy queues carry
    /// no mutual ordering).
    pub target: Option<Rc<crate::descriptor::SegDescriptor>>,
}

impl std::fmt::Debug for SyncTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncTask")
            .field("space_id", &self.space_id)
            .field("addr", &self.addr)
            .field("len", &self.len)
            .field("abort", &self.abort)
            .field("target", &self.target.is_some())
            .finish()
    }
}
