//! Simulated network stack: sockets, sk_buffs, and a loopback NIC (§5.2).
//!
//! The copies Copier optimizes live here: `send()` copies user data into a
//! kernel sk_buff; `recv()` copies an sk_buff into the user buffer. With
//! checksum offload the protocol layers only touch metadata, so the send
//! copy can run asynchronously until the driver enqueues the packet into
//! the NIC TX queue; the recv copy's Copy-Use window is the application's
//! post-recv processing.
//!
//! IO modes implement the paper's baselines: plain syscalls, Copier,
//! zero-copy send (`MSG_ZEROCOPY`-style pinning with completion
//! notifications), and Userspace Bypass (trap elision with an
//! instrumentation tax on buffer access).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use copier_client::sync_copy;
use copier_core::{Handler, SegDescriptor};
use copier_hw::CpuCopyKind;
use copier_mem::{FrameId, MemError, Prot, VirtAddr, PAGE_SIZE};
use copier_sim::{Core, Nanos, Notify};

use crate::process::{Os, Process};

/// Per-packet protocol processing (TCP/IP headers, socket bookkeeping).
pub const NET_PROC: Nanos = Nanos(500);
/// Loopback wire + NIC latency per packet.
pub const WIRE_DELAY: Nanos = Nanos(1500);
/// Zero-copy send fixed setup (pinning bookkeeping, opt-in checks).
pub const ZC_SETUP: Nanos = Nanos(900);
/// Userspace Bypass dispatch cost (replaces the trap).
pub const UB_ENTRY: Nanos = Nanos(80);

/// What a `send_opts` produced, for completion observation.
pub enum SendHandle {
    /// Synchronous path: nothing to wait for.
    Plain,
    /// Copier path: the kernel copy's descriptor (all-ready ⇒ transmitted
    /// payload fully assembled).
    Copier(Rc<SegDescriptor>),
    /// Zero-copy path: pinned-page completion.
    Zc(Rc<ZcCompletion>),
}

impl SendHandle {
    /// The Copier descriptor, if any.
    pub fn descriptor(&self) -> Option<Rc<SegDescriptor>> {
        match self {
            SendHandle::Copier(d) => Some(Rc::clone(d)),
            _ => None,
        }
    }
}

/// How a syscall's data path is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Normal blocking syscall with a synchronous kernel (ERMS) copy.
    Sync,
    /// Copier-Linux: the kernel submits an async Copy Task (§5.2).
    Copier,
    /// Linux zero-copy send (page pinning + completion queue).
    ZeroCopy,
    /// Userspace Bypass: no trap, but instrumented (slower) buffer access.
    Ub,
}

/// A kernel packet buffer backed by physically contiguous frames.
pub struct Skb {
    /// Kernel virtual address of the payload.
    pub kva: VirtAddr,
    /// Payload length.
    pub len: usize,
    /// Progress descriptor when the payload is being written by Copier;
    /// the NIC/receiver must wait for it before touching the data.
    pub descr: RefCell<Option<Rc<SegDescriptor>>>,
    /// Frames pinned from user space (zero-copy send).
    pub user_pins: RefCell<Vec<FrameId>>,
    /// Completion notify for zero-copy reclaim.
    pub zc_done: Rc<ZcCompletion>,
}

/// Zero-copy completion state (the `MSG_ZEROCOPY` error-queue stand-in).
#[derive(Default)]
pub struct ZcCompletion {
    done: Cell<bool>,
    notify: Notify,
}

impl ZcCompletion {
    /// Whether the NIC has finished with the pinned pages.
    pub fn is_done(&self) -> bool {
        self.done.get()
    }

    /// Waits for reclaim (the app's buffer is reusable afterwards).
    pub async fn wait(&self) {
        if !self.done.get() {
            self.notify.notified().await;
        }
    }
}

/// One endpoint of a connected socket pair.
pub struct Socket {
    /// Socket id (diagnostics).
    pub id: u32,
    rx: RefCell<VecDeque<Rc<Skb>>>,
    rx_notify: Notify,
    peer: RefCell<Option<Rc<Socket>>>,
}

impl Socket {
    /// Queued receive messages.
    pub fn rx_depth(&self) -> usize {
        self.rx.borrow().len()
    }
}

/// The network stack.
pub struct NetStack {
    os: Rc<Os>,
    next_sock: Cell<u32>,
}

impl NetStack {
    /// Creates the stack for an OS instance.
    pub fn new(os: &Rc<Os>) -> Rc<Self> {
        Rc::new(NetStack {
            os: Rc::clone(os),
            next_sock: Cell::new(1),
        })
    }

    /// Creates a connected socket pair (loopback).
    pub fn socket_pair(&self) -> (Rc<Socket>, Rc<Socket>) {
        let mk = |id| {
            Rc::new(Socket {
                id,
                rx: RefCell::new(VecDeque::new()),
                rx_notify: Notify::new(),
                peer: RefCell::new(None),
            })
        };
        let a = mk(self.next_sock.get());
        let b = mk(self.next_sock.get() + 1);
        self.next_sock.set(self.next_sock.get() + 2);
        *a.peer.borrow_mut() = Some(Rc::clone(&b));
        *b.peer.borrow_mut() = Some(Rc::clone(&a));
        (a, b)
    }

    fn alloc_skb(&self, len: usize) -> Result<Rc<Skb>, MemError> {
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        let first = self.os.pm.alloc_contiguous(pages)?;
        let frames: Vec<FrameId> = (0..pages).map(|i| FrameId(first.0 + i as u32)).collect();
        let kva = self.os.kspace.map_shared(&frames, Prot::RW)?;
        // map_shared increfs; drop our allocation reference so the kernel
        // mapping is the sole owner.
        for &f in &frames {
            self.os.pm.decref(f);
        }
        Ok(Rc::new(Skb {
            kva,
            len,
            descr: RefCell::new(None),
            user_pins: RefCell::new(Vec::new()),
            zc_done: Rc::new(ZcCompletion::default()),
        }))
    }

    fn free_skb(&self, skb: &Skb) {
        let pages = skb.len.div_ceil(PAGE_SIZE).max(1);
        let kspace = Rc::clone(&self.os.kspace);
        let kva = skb.kva;
        match kspace.munmap(kva, pages * PAGE_SIZE) {
            Err(MemError::Pinned(_)) => {
                // Another in-flight copy (e.g. an absorption layer reading
                // this skb as its short-circuit source) still pins the
                // frames; Copier locks mappings until copies complete
                // (§4.5.4), so reclaim waits it out asynchronously.
                let h = self.os.h.clone();
                let h2 = h.clone();
                h.spawn("skb-reaper", async move {
                    loop {
                        h2.sleep(Nanos(500)).await;
                        match kspace.munmap(kva, pages * PAGE_SIZE) {
                            Err(MemError::Pinned(_)) => continue,
                            r => {
                                r.expect("skb unmap");
                                return;
                            }
                        }
                    }
                });
            }
            r => r.expect("skb unmap"),
        }
    }

    /// Transmits an skb to the peer: waits for any in-flight Copier write
    /// (the driver's csync point), then delivers after the wire delay.
    fn transmit(self: &Rc<Self>, sock: &Rc<Socket>, skb: Rc<Skb>) {
        let peer = sock.peer.borrow().as_ref().cloned().expect("connected");
        let h = self.os.h.clone();
        let me = Rc::clone(self);
        self.os.h.spawn("nic-tx", async move {
            // Driver sync point: the payload must be complete before the
            // packet enters the TX queue (§5.2 send()).
            let descr = skb.descr.borrow().clone();
            if let Some(d) = descr {
                while !d.all_ready() {
                    if d.fault().is_some() {
                        return; // dropped packet on faulted copy
                    }
                    h.sleep(Nanos(200)).await;
                }
            }
            h.sleep(WIRE_DELAY).await;
            // Zero-copy: the NIC serializes the pinned user pages onto the
            // wire itself (device DMA — no CPU charged), after which the
            // pages are released and the completion is queued.
            let pins: Vec<FrameId> = skb.user_pins.borrow_mut().drain(..).collect();
            let out = if pins.is_empty() {
                skb
            } else {
                let fresh = me.alloc_skb(skb.len).expect("skb alloc");
                let mut done = 0usize;
                while done < skb.len {
                    let take = (skb.len - done).min(PAGE_SIZE);
                    let (df, _) = me
                        .os
                        .kspace
                        .resolve(fresh.kva.add(done), true)
                        .expect("fresh skb mapped");
                    me.os.pm.copy(
                        df,
                        fresh.kva.add(done).page_off(),
                        pins[done / PAGE_SIZE],
                        0,
                        take,
                    );
                    done += take;
                }
                for f in pins {
                    me.os.pm.unpin(f);
                }
                skb.zc_done.done.set(true);
                skb.zc_done.notify.notify_all();
                fresh
            };
            peer.rx.borrow_mut().push_back(out);
            peer.rx_notify.notify_one();
        });
    }

    /// `send(sock, [va, va+len))` under the given mode.
    ///
    /// Returns a zero-copy completion handle when applicable.
    pub async fn send(
        self: &Rc<Self>,
        core: &Rc<Core>,
        proc: &Rc<Process>,
        sock: &Rc<Socket>,
        va: VirtAddr,
        len: usize,
        mode: IoMode,
    ) -> Result<Option<Rc<ZcCompletion>>, MemError> {
        match self.send_opts(core, proc, sock, va, len, mode, 0).await? {
            SendHandle::Zc(z) => Ok(Some(z)),
            _ => Ok(None),
        }
    }

    /// `send` with an explicit Copier queue-set `fd` (per-thread queues);
    /// returns the copy descriptor in Copier mode so callers can observe
    /// transmit completion.
    #[allow(clippy::too_many_arguments)]
    pub async fn send_opts(
        self: &Rc<Self>,
        core: &Rc<Core>,
        proc: &Rc<Process>,
        sock: &Rc<Socket>,
        va: VirtAddr,
        len: usize,
        mode: IoMode,
        fd: usize,
    ) -> Result<SendHandle, MemError> {
        match mode {
            IoMode::Sync | IoMode::Ub => {
                if mode == IoMode::Sync {
                    self.os.trap(core).await;
                } else {
                    core.advance(UB_ENTRY).await;
                }
                let skb = self.alloc_skb(len)?;
                sync_copy(
                    core,
                    &self.os.cost,
                    CpuCopyKind::Erms,
                    &self.os.kspace,
                    skb.kva,
                    &proc.space,
                    va,
                    len,
                )
                .await?;
                if mode == IoMode::Ub {
                    // Instrumented user-buffer access tax.
                    let tax = self
                        .os
                        .cost
                        .cpu_copy(CpuCopyKind::Erms, len)
                        .mul_f64(self.os.cost.ub_access_tax);
                    core.advance(tax).await;
                }
                core.advance(NET_PROC).await;
                self.transmit(sock, skb);
                Ok(SendHandle::Plain)
            }
            IoMode::Copier => {
                self.os.trap(core).await;
                let skb = self.alloc_skb(len)?;
                let lib = proc.lib();
                let sect = lib.kernel_section(fd);
                let submitted = sect
                    .submit(
                        core,
                        &self.os.kspace,
                        skb.kva,
                        &proc.space,
                        va,
                        len,
                        None,
                        false,
                    )
                    .await;
                sect.close(core).await;
                let Ok(d) = submitted else {
                    // Overloaded: degrade this send to the synchronous
                    // kernel copy (§4.6) — the packet still goes out.
                    sync_copy(
                        core,
                        &self.os.cost,
                        CpuCopyKind::Erms,
                        &self.os.kspace,
                        skb.kva,
                        &proc.space,
                        va,
                        len,
                    )
                    .await?;
                    core.advance(NET_PROC).await;
                    self.transmit(sock, skb);
                    return Ok(SendHandle::Plain);
                };
                *skb.descr.borrow_mut() = Some(Rc::clone(&d));
                // Checksum offloaded: protocol layers use metadata only,
                // overlapping with the copy.
                core.advance(NET_PROC).await;
                self.transmit(sock, skb);
                Ok(SendHandle::Copier(d))
            }
            IoMode::ZeroCopy => {
                self.os.trap(core).await;
                // Alignment constraint of remap/pin-based zero-copy.
                if !va.is_page_aligned() {
                    // Linux falls back to a normal copy in this case; we
                    // model the documented behavior.
                    let r =
                        Box::pin(self.send_opts(core, proc, sock, va, len, IoMode::Sync, fd)).await;
                    return r;
                }
                core.advance(ZC_SETUP).await;
                let (frames, work) = proc.space.resolve_and_pin_range(va, len, false)?;
                core.advance(Nanos(
                    self.os.cost.pte_walk.as_nanos() * frames.len() as u64
                        + self.os.cost.page_fault.as_nanos()
                            * (work.demand_zero + work.cow_copy) as u64,
                ))
                .await;
                // CoW-protect the pages against modification: TLB shootdown.
                core.advance(self.os.cost.tlb_shootdown).await;
                let skb = Rc::new(Skb {
                    kva: VirtAddr(0), // payload lives in the pinned frames
                    len,
                    descr: RefCell::new(None),
                    user_pins: RefCell::new(frames),
                    zc_done: Rc::new(ZcCompletion::default()),
                });
                core.advance(NET_PROC).await;
                let done = Rc::clone(&skb.zc_done);
                self.transmit(sock, skb);
                Ok(SendHandle::Zc(done))
            }
        }
    }

    /// Blocks until a message is queued, then receives it into
    /// `[va, va+cap)` under the given mode.
    ///
    /// Datagram semantics: a message longer than `cap` is truncated to
    /// `cap` and the remainder discarded (size your buffers to the
    /// protocol's maximum, as the applications here do).
    ///
    /// Returns the message length and, in Copier mode, its descriptor
    /// (also registered with the process's tracking table so plain
    /// `csync(addr, len)` works).
    pub async fn recv(
        self: &Rc<Self>,
        core: &Rc<Core>,
        proc: &Rc<Process>,
        sock: &Rc<Socket>,
        va: VirtAddr,
        cap: usize,
        mode: IoMode,
    ) -> Result<(usize, Option<Rc<SegDescriptor>>), MemError> {
        self.recv_opts(core, proc, sock, va, cap, mode, false, 0)
            .await
    }

    /// `recv` with an explicit queue-set `fd` and a `lazy` flag marking
    /// the kernel copy a mediator-only Lazy Task (§4.4, the proxy case).
    #[allow(clippy::too_many_arguments)]
    pub async fn recv_opts(
        self: &Rc<Self>,
        core: &Rc<Core>,
        proc: &Rc<Process>,
        sock: &Rc<Socket>,
        va: VirtAddr,
        cap: usize,
        mode: IoMode,
        lazy: bool,
        fd: usize,
    ) -> Result<(usize, Option<Rc<SegDescriptor>>), MemError> {
        // Trap first (entering the syscall), then wait for data (blocking
        // costs a context switch when the queue is empty).
        match mode {
            IoMode::Sync | IoMode::Copier => self.os.trap(core).await,
            IoMode::Ub => core.advance(UB_ENTRY).await,
            IoMode::ZeroCopy => {}
        }
        loop {
            if !sock.rx.borrow().is_empty() {
                break;
            }
            self.os.context_switch(core).await;
            sock.rx_notify.notified().await;
        }
        let skb = sock.rx.borrow_mut().pop_front().expect("non-empty");
        let len = skb.len.min(cap);
        match mode {
            IoMode::Sync | IoMode::Ub => {
                core.advance(NET_PROC).await;
                sync_copy(
                    core,
                    &self.os.cost,
                    CpuCopyKind::Erms,
                    &proc.space,
                    va,
                    &self.os.kspace,
                    skb.kva,
                    len,
                )
                .await?;
                if mode == IoMode::Ub {
                    let tax = self
                        .os
                        .cost
                        .cpu_copy(CpuCopyKind::Erms, len)
                        .mul_f64(self.os.cost.ub_access_tax);
                    core.advance(tax).await;
                }
                self.free_skb(&skb);
                Ok((len, None))
            }
            IoMode::Copier => {
                core.advance(NET_PROC).await;
                let lib = proc.lib();
                let me = Rc::clone(self);
                let skb2 = Rc::clone(&skb);
                // KFUNC: reclaim the socket buffer once the copy is done
                // (§5.2 recv()).
                let kfunc = Handler::KFunc(Rc::new(move || {
                    me.free_skb(&skb2);
                }));
                let sect = lib.kernel_section(fd);
                let submitted = sect
                    .submit(
                        core,
                        &proc.space,
                        va,
                        &self.os.kspace,
                        skb.kva,
                        len,
                        Some(kfunc),
                        lazy,
                    )
                    .await;
                sect.close(core).await;
                match submitted {
                    Ok(d) => Ok((len, Some(d))),
                    Err(_) => {
                        // Overloaded: deliver synchronously (§4.6). The
                        // KFUNC never runs — free the skb here instead.
                        sync_copy(
                            core,
                            &self.os.cost,
                            CpuCopyKind::Erms,
                            &proc.space,
                            va,
                            &self.os.kspace,
                            skb.kva,
                            len,
                        )
                        .await?;
                        self.free_skb(&skb);
                        Ok((len, None))
                    }
                }
            }
            IoMode::ZeroCopy => {
                // The paper does not evaluate zero-copy recv (special NIC
                // architectures required); mirror that.
                unimplemented!("zero-copy recv requires header-data-split NICs")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_sim::{Machine, Sim};

    fn setup(cores: usize, with_copier: bool) -> (Sim, Rc<Os>, Rc<NetStack>) {
        let sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, cores);
        let os = Os::boot(&h, machine, 4096);
        if with_copier {
            let core = os.machine.core(cores - 1);
            os.install_copier(vec![core], Default::default());
        }
        let net = NetStack::new(&os);
        (sim, os, net)
    }

    #[test]
    fn sync_send_recv_roundtrip() {
        let (mut sim, os, net) = setup(1, false);
        let core = os.machine.core(0);
        let p = os.spawn_process();
        let (a, b) = net.socket_pair();
        let os2 = Rc::clone(&os);
        sim.spawn("t", async move {
            let tx = p.space.mmap(8192, Prot::RW, true).unwrap();
            let rx = p.space.mmap(8192, Prot::RW, true).unwrap();
            let data: Vec<u8> = (0..5000).map(|i| (i % 241) as u8).collect();
            p.space.write_bytes(tx, &data).unwrap();
            net.send(&core, &p, &a, tx, 5000, IoMode::Sync)
                .await
                .unwrap();
            let (n, d) = net
                .recv(&core, &p, &b, rx, 8192, IoMode::Sync)
                .await
                .unwrap();
            assert_eq!(n, 5000);
            assert!(d.is_none());
            let mut out = vec![0u8; 5000];
            p.space.read_bytes(rx, &mut out).unwrap();
            assert_eq!(out, data);
            let _ = os2; // keep the OS alive through the test body
        });
        sim.run();
    }

    #[test]
    fn copier_send_recv_roundtrip_with_csync() {
        let (mut sim, os, net) = setup(2, true);
        let core = os.machine.core(0);
        let p = os.spawn_process();
        let (a, b) = net.socket_pair();
        let svc = os.copier();
        sim.spawn("t", async move {
            let lib = p.lib();
            let tx = p.space.mmap(16 * 1024, Prot::RW, true).unwrap();
            let rx = p.space.mmap(16 * 1024, Prot::RW, true).unwrap();
            let data: Vec<u8> = (0..16 * 1024).map(|i| (i % 239) as u8).collect();
            p.space.write_bytes(tx, &data).unwrap();
            net.send(&core, &p, &a, tx, 16 * 1024, IoMode::Copier)
                .await
                .unwrap();
            let (n, d) = net
                .recv(&core, &p, &b, rx, 16 * 1024, IoMode::Copier)
                .await
                .unwrap();
            assert_eq!(n, 16 * 1024);
            assert!(d.is_some());
            // The app syncs before use — plain csync finds the kernel task.
            lib.csync(&core, rx, n).await.unwrap();
            let mut out = vec![0u8; n];
            p.space.read_bytes(rx, &mut out).unwrap();
            assert_eq!(out, data);
            // Let the KFUNC reclaim run.
            lib.csync_all(&core).await.unwrap();
            svc.stop();
        });
        sim.run();
        // skb unmapped by the KFUNC: only the tx/rx user pages remain.
        assert_eq!(os.kspace.mapped_pages(), 0);
    }

    #[test]
    fn copier_send_returns_before_copy_done() {
        let (mut sim, os, net) = setup(2, true);
        let core = os.machine.core(0);
        let p = os.spawn_process();
        let (a, b) = net.socket_pair();
        let svc = os.copier();
        let h = sim.handle();
        let cost = Rc::clone(&os.cost);
        sim.spawn("t", async move {
            let len = 64 * 1024;
            let tx = p.space.mmap(len, Prot::RW, true).unwrap();
            p.space.write_bytes(tx, &vec![7u8; len]).unwrap();
            let t0 = h.now();
            net.send(&core, &p, &a, tx, len, IoMode::Copier)
                .await
                .unwrap();
            let t_send = h.now() - t0;
            // The send syscall must return well before an ERMS copy of the
            // payload would even finish.
            assert!(t_send < cost.cpu_copy(CpuCopyKind::Erms, len));
            // And the data still arrives intact.
            let p2 = Rc::clone(&p);
            let rx = p2.space.mmap(len, Prot::RW, true).unwrap();
            let (n, _) = net
                .recv(&core, &p, &b, rx, len, IoMode::Sync)
                .await
                .unwrap();
            assert_eq!(n, len);
            let mut out = vec![0u8; len];
            p.space.read_bytes(rx, &mut out).unwrap();
            assert!(out.iter().all(|&x| x == 7));
            svc.stop();
        });
        sim.run();
    }

    #[test]
    fn zerocopy_send_pins_and_completes() {
        let (mut sim, os, net) = setup(1, false);
        let core = os.machine.core(0);
        let p = os.spawn_process();
        let (a, b) = net.socket_pair();
        sim.spawn("t", async move {
            let len = 32 * 1024;
            let tx = p.space.mmap(len, Prot::RW, true).unwrap();
            assert!(tx.is_page_aligned());
            p.space.write_bytes(tx, &vec![9u8; len]).unwrap();
            let done = net
                .send(&core, &p, &a, tx, len, IoMode::ZeroCopy)
                .await
                .unwrap()
                .expect("zc completion");
            assert!(!done.is_done(), "pages pinned until NIC finishes");
            let rx = p.space.mmap(len, Prot::RW, true).unwrap();
            let (n, _) = net
                .recv(&core, &p, &b, rx, len, IoMode::Sync)
                .await
                .unwrap();
            assert_eq!(n, len);
            done.wait().await;
            assert!(done.is_done());
        });
        sim.run();
    }

    #[test]
    fn ub_mode_skips_trap_but_taxes_access() {
        // For small messages UB wins (trap dominates); for large ones the
        // instrumentation tax overtakes the saved trap — the paper's
        // observed diminishing returns.
        fn latency(len: usize, mode: IoMode) -> Nanos {
            let (mut sim, os, net) = setup(1, false);
            let core = os.machine.core(0);
            let p = os.spawn_process();
            let (a, _b) = net.socket_pair();
            let h = sim.handle();
            let out = Rc::new(Cell::new(Nanos::ZERO));
            let out2 = Rc::clone(&out);
            sim.spawn("t", async move {
                let tx = p.space.mmap(len.max(4096), Prot::RW, true).unwrap();
                p.space.write_bytes(tx, &vec![1u8; len]).unwrap();
                let t0 = h.now();
                net.send(&core, &p, &a, tx, len, mode).await.unwrap();
                out2.set(h.now() - t0);
            });
            sim.run();
            out.get()
        }
        assert!(latency(256, IoMode::Ub) < latency(256, IoMode::Sync));
        assert!(latency(64 * 1024, IoMode::Ub) > latency(64 * 1024, IoMode::Sync));
    }
}
