//! Android-style Binder IPC with Parcel (§5.2, §6.1.2).
//!
//! Binder's two-step transfer: the client's message is copied by the
//! Binder driver into a kernel buffer, which the server has mapped
//! read-only into its address space (so the "second copy" is free). The
//! Copy-Use window spans the driver's bookkeeping, the server-thread
//! wakeup, and the server's incremental Parcel reads — with Copier, the
//! driver submits an async Copy Task whose descriptor travels at the
//! front of the message (shm descriptor binding), and `Parcel` issues
//! `_csync` before each typed read. Apps above Parcel need no changes.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use copier_core::SegDescriptor;
use copier_hw::CpuCopyKind;
use copier_mem::{FrameId, MemError, Prot, VirtAddr, PAGE_SIZE};
use copier_sim::{Core, Nanos, Notify};

use crate::net::IoMode;
use crate::process::{Os, Process};

/// Driver-side bookkeeping per transaction (queue + thread scheduling).
pub const BINDER_DRIVER_WORK: Nanos = Nanos(2500);

/// A message delivered to the server.
pub struct BinderMessage {
    /// Offset of the payload within the server's mapped receive window.
    pub offset: usize,
    /// Payload length.
    pub len: usize,
    /// Copy descriptor (present when the driver used Copier); bound to the
    /// shared memory per `shm_descr_bind`.
    pub descr: Option<Rc<SegDescriptor>>,
}

/// One direction of a Binder connection.
pub struct BinderChannel {
    os: Rc<Os>,
    /// Kernel VA of the transaction buffer.
    pub kbuf: VirtAddr,
    /// The same buffer mapped into the server (read-only).
    pub server_window: VirtAddr,
    /// The server process.
    pub server: Rc<Process>,
    cap: usize,
    cursor: std::cell::Cell<usize>,
    queue: RefCell<VecDeque<BinderMessage>>,
    notify: Notify,
}

impl BinderChannel {
    /// Creates a channel with a `cap`-byte kernel transaction buffer
    /// mapped into `server`.
    pub fn new(os: &Rc<Os>, server: &Rc<Process>, cap: usize) -> Result<Rc<Self>, MemError> {
        let pages = cap.div_ceil(PAGE_SIZE);
        let first = os.pm.alloc_contiguous(pages)?;
        let frames: Vec<FrameId> = (0..pages).map(|i| FrameId(first.0 + i as u32)).collect();
        let kbuf = os.kspace.map_shared(&frames, Prot::RW)?;
        let server_window = server.space.map_shared(&frames, Prot::RO)?;
        for &f in &frames {
            os.pm.decref(f);
        }
        Ok(Rc::new(BinderChannel {
            os: Rc::clone(os),
            kbuf,
            server_window,
            server: Rc::clone(server),
            cap,
            cursor: std::cell::Cell::new(0),
            queue: RefCell::new(VecDeque::new()),
            notify: Notify::new(),
        }))
    }

    /// Client-side transaction: copies `[va, va+len)` into the kernel
    /// buffer (sync or via Copier) and queues a message for the server.
    pub async fn transact(
        self: &Rc<Self>,
        core: &Rc<Core>,
        client: &Rc<Process>,
        va: VirtAddr,
        len: usize,
        mode: IoMode,
    ) -> Result<(), MemError> {
        assert!(len <= self.cap, "transaction exceeds binder buffer");
        self.os.trap(core).await;
        // Simple bump allocation within the transaction buffer.
        let offset = if self.cursor.get() + len <= self.cap {
            self.cursor.get()
        } else {
            0
        };
        self.cursor.set(offset + len);
        let dst = self.kbuf.add(offset);
        let mut submitted = None;
        if mode == IoMode::Copier {
            let lib = client.lib();
            let sect = lib.kernel_section(0);
            // Overload falls through to the synchronous path below — the
            // transaction still happens, just without async offload
            // (§4.6 break-even fallback).
            submitted = sect
                .submit(
                    core,
                    &self.os.kspace,
                    dst,
                    &client.space,
                    va,
                    len,
                    None,
                    false,
                )
                .await
                .ok();
            sect.close(core).await;
        }
        let descr = match submitted {
            Some(d) => Some(d),
            None => {
                copier_client::sync_copy(
                    core,
                    &self.os.cost,
                    CpuCopyKind::Erms,
                    &self.os.kspace,
                    dst,
                    &client.space,
                    va,
                    len,
                )
                .await?;
                None
            }
        };
        // Driver bookkeeping + server thread scheduling overlap the copy.
        core.advance(BINDER_DRIVER_WORK).await;
        self.queue
            .borrow_mut()
            .push_back(BinderMessage { offset, len, descr });
        self.notify.notify_one();
        Ok(())
    }

    /// Server-side: waits for the next message.
    pub async fn next_message(self: &Rc<Self>, core: &Rc<Core>) -> BinderMessage {
        loop {
            if let Some(m) = self.queue.borrow_mut().pop_front() {
                return m;
            }
            self.os.context_switch(core).await;
            self.notify.notified().await;
        }
    }

    /// Opens a Parcel over a received message (server side).
    pub fn parcel<'a>(self: &Rc<Self>, msg: &'a BinderMessage) -> Parcel<'a> {
        Parcel {
            chan: Rc::clone(self),
            msg,
            pos: 0,
        }
    }
}

/// Typed reader over a Binder message (the Android `Parcel` shape).
///
/// Every read `_csync`s the range first when the message carries a
/// descriptor — apps above Parcel benefit without modification (§5.2).
pub struct Parcel<'a> {
    chan: Rc<BinderChannel>,
    msg: &'a BinderMessage,
    pos: usize,
}

impl Parcel<'_> {
    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.msg.len - self.pos
    }

    async fn ensure(&self, core: &Rc<Core>, len: usize) {
        if let Some(d) = &self.msg.descr {
            // The descriptor is bound to the shared window; wait until the
            // segments covering [pos, pos+len) are ready.
            let lib = self.chan.server.lib();
            lib._csync(
                core,
                d,
                self.pos,
                len,
                crate::process::KERNEL_AS,
                self.chan.kbuf.add(self.msg.offset + self.pos),
                0,
            )
            .await
            .expect("binder copy faulted");
        }
    }

    /// Reads `len` raw bytes through the server's read-only window.
    pub async fn read_bytes(&mut self, core: &Rc<Core>, buf: &mut [u8]) {
        self.ensure(core, buf.len()).await;
        let va = self.chan.server_window.add(self.msg.offset + self.pos);
        self.chan
            .server
            .space
            .read_bytes(va, buf)
            .expect("window mapped");
        // Typed-read bookkeeping cost (bounds checks, cursor updates).
        core.advance(Nanos(40)).await;
        self.pos += buf.len();
    }

    /// Reads a length-prefixed string written by [`write_string_to`].
    pub async fn read_string(&mut self, core: &Rc<Core>) -> Vec<u8> {
        let mut lenb = [0u8; 4];
        self.read_bytes(core, &mut lenb).await;
        let n = u32::from_le_bytes(lenb) as usize;
        let mut s = vec![0u8; n];
        self.read_bytes(core, &mut s).await;
        s
    }
}

/// Serializes `n` copies of `payload` as length-prefixed strings into a
/// client buffer; returns the total size (client-side Parcel writer).
pub fn write_strings(
    proc: &Rc<Process>,
    va: VirtAddr,
    payload: &[u8],
    n: usize,
) -> Result<usize, MemError> {
    let mut off = 0usize;
    for _ in 0..n {
        proc.space
            .write_bytes(va.add(off), &(payload.len() as u32).to_le_bytes())?;
        off += 4;
        proc.space.write_bytes(va.add(off), payload)?;
        off += payload.len();
    }
    Ok(off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_sim::{Machine, Sim};

    fn setup(with_copier: bool) -> (Sim, Rc<Os>) {
        let sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 3);
        let os = Os::boot(&h, machine, 8192);
        if with_copier {
            os.install_copier(vec![os.machine.core(2)], Default::default());
        }
        (sim, os)
    }

    fn roundtrip(mode: IoMode, with_copier: bool) -> Nanos {
        let (mut sim, os) = setup(with_copier);
        let client = os.spawn_process();
        let server = os.spawn_process();
        let chan = BinderChannel::new(&os, &server, 1 << 20).unwrap();
        let ccore = os.machine.core(0);
        let score = os.machine.core(1);
        let h = sim.handle();
        let end = Rc::new(std::cell::Cell::new(Nanos::ZERO));

        let chan2 = Rc::clone(&chan);
        let done = Rc::new(Notify::new());
        let done2 = Rc::clone(&done);
        sim.spawn("server", async move {
            let msg = chan2.next_message(&score).await;
            let mut p = chan2.parcel(&msg);
            let mut total = 0;
            while p.remaining() > 0 {
                let s = p.read_string(&score).await;
                assert_eq!(s.len(), 1024);
                assert!(s.iter().all(|&b| b == 0x5a));
                total += 1;
            }
            assert_eq!(total, 16);
            done2.notify_one();
        });

        let os2 = Rc::clone(&os);
        let end2 = Rc::clone(&end);
        sim.spawn("client", async move {
            let buf = client.space.mmap(64 * 1024, Prot::RW, true).unwrap();
            let len = write_strings(&client, buf, &[0x5a; 1024], 16).unwrap();
            let t0 = h.now();
            chan.transact(&ccore, &client, buf, len, mode)
                .await
                .unwrap();
            done.notified().await;
            end2.set(h.now() - t0);
            if let Some(svc) = os2.copier.borrow().as_ref() {
                svc.stop();
            }
        });
        sim.run();
        end.get()
    }

    #[test]
    fn binder_sync_roundtrip_delivers_strings() {
        let t = roundtrip(IoMode::Sync, false);
        assert!(t > Nanos::ZERO);
    }

    #[test]
    fn binder_copier_roundtrip_is_faster() {
        let t_sync = roundtrip(IoMode::Sync, false);
        let t_cop = roundtrip(IoMode::Copier, true);
        assert!(t_cop < t_sync, "copier {t_cop} should beat sync {t_sync}");
    }
}
