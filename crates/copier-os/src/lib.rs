//! # copier-os — the simulated OS layer (Copier-Linux substrate)
//!
//! The kernel services whose copies Copier optimizes (§5.2): processes and
//! syscall traps, the network stack (`send`/`recv` with sk_buffs, checksum
//! offload, and a loopback NIC), Binder IPC with Parcel, fork/CoW fault
//! handling, and an io_uring-style asynchronous-syscall ring used as a
//! baseline in Fig. 10.

pub mod binder;
pub mod cow;
pub mod net;
pub mod process;
pub mod uring;

pub use binder::{BinderChannel, BinderMessage, Parcel, BINDER_DRIVER_WORK};
pub use cow::{handle_cow_fault, CowOutcome};
pub use net::{IoMode, NetStack, SendHandle, Skb, Socket, ZcCompletion, NET_PROC, WIRE_DELAY};
pub use process::{Os, Process, KERNEL_AS};
pub use uring::{Cqe, Sqe, Uring, RING_OP};
