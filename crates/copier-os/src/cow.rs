//! Copy-on-write fault handling with Copier (§5.2, §6.1.2).
//!
//! The baseline CoW handler allocates a page and copies it synchronously
//! inside the fault. Copier-Linux splits the work: the handler submits a
//! Copy Task for the bulk of the page(s), copies a small leading slice
//! itself (so handler work and Copier copy overlap), `csync`s, and only
//! then swings the PTE — multi-replica semantics that zero-copy methods
//! cannot express (§2.2).

use std::rc::Rc;

use copier_client::sync_copy;
use copier_hw::CpuCopyKind;
use copier_mem::{FrameId, MemError, Prot, Pte, VirtAddr, PAGE_SIZE};
use copier_sim::{Core, Nanos};

use crate::process::{Os, Process};

/// Outcome of one CoW fault resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CowOutcome {
    /// Bytes copied to produce the private replica.
    pub bytes: usize,
    /// Virtual time the faulting thread was blocked.
    pub blocked: Nanos,
}

/// Resolves a write fault on a CoW region of `region_len` bytes starting
/// at `va` (page-aligned). `region_len = PAGE_SIZE` models a base page;
/// `2 MiB` models a huge page whose replica must be produced at once.
///
/// `use_copier = false` is the baseline in-handler copy.
pub async fn handle_cow_fault(
    os: &Rc<Os>,
    core: &Rc<Core>,
    proc: &Rc<Process>,
    va: VirtAddr,
    region_len: usize,
    use_copier: bool,
) -> Result<CowOutcome, MemError> {
    assert!(va.is_page_aligned() && region_len.is_multiple_of(PAGE_SIZE));
    let t0 = os.h.now();
    let pages = region_len / PAGE_SIZE;
    // Fault entry overhead.
    core.advance(os.cost.page_fault).await;

    // Gather the old frames (they must be mapped CoW).
    let mut old = Vec::with_capacity(pages);
    for p in 0..pages {
        let pte = proc
            .space
            .translate(va.add(p * PAGE_SIZE))
            .ok_or(MemError::Segv(va))?;
        old.push(pte.frame);
    }
    // Allocate the private replica (contiguous, like a huge page).
    let first = os.pm.alloc_contiguous(pages)?;
    let new: Vec<FrameId> = (0..pages).map(|i| FrameId(first.0 + i as u32)).collect();

    // Map both ranges into kernel VAs (kmap) to copy through.
    let src_kva = os.kspace.map_shared(&old, Prot::RO)?;
    let dst_kva = os.kspace.map_shared(&new, Prot::RW)?;
    for &f in &new {
        os.pm.decref(f); // ownership handed to the mapping + later the PTE
    }

    if use_copier && region_len > PAGE_SIZE {
        // Split: Copier takes the tail; the handler copies the head while
        // the service streams (§5.2 "divides the work").
        let lib = proc.lib();
        let head = (region_len / 4).max(PAGE_SIZE);
        let tail = region_len - head;
        let sect = lib.kernel_section(0);
        let submitted = sect
            .submit(
                core,
                &os.kspace,
                dst_kva.add(head),
                &os.kspace,
                src_kva.add(head),
                tail,
                None,
                false,
            )
            .await;
        sect.close(core).await;
        match submitted {
            Ok(d) => {
                sync_copy(
                    core,
                    &os.cost,
                    CpuCopyKind::Erms,
                    &os.kspace,
                    dst_kva,
                    &os.kspace,
                    src_kva,
                    head,
                )
                .await?;
                // Sync before making the replica visible (csync
                // guideline 4).
                lib._csync(core, &d, 0, tail, 0, dst_kva.add(head), 0)
                    .await
                    .expect("cow copy");
            }
            Err(_) => {
                // Service overloaded: the whole replica is produced by
                // the in-handler synchronous copy (§4.6 fallback).
                sync_copy(
                    core,
                    &os.cost,
                    CpuCopyKind::Erms,
                    &os.kspace,
                    dst_kva,
                    &os.kspace,
                    src_kva,
                    region_len,
                )
                .await?;
            }
        }
    } else if use_copier {
        // A single base page: the submission overhead dominates; the
        // handler still offloads and overlaps its own bookkeeping.
        let lib = proc.lib();
        let sect = lib.kernel_section(0);
        let submitted = sect
            .submit(
                core, &os.kspace, dst_kva, &os.kspace, src_kva, region_len, None, false,
            )
            .await;
        sect.close(core).await;
        // Fault bookkeeping the handler performs while Copier copies:
        // rmap/anon-vma updates, accounting.
        core.advance(Nanos(700)).await;
        match submitted {
            Ok(d) => {
                lib._csync(core, &d, 0, region_len, 0, dst_kva, 0)
                    .await
                    .expect("cow copy");
            }
            Err(_) => {
                sync_copy(
                    core,
                    &os.cost,
                    CpuCopyKind::Erms,
                    &os.kspace,
                    dst_kva,
                    &os.kspace,
                    src_kva,
                    region_len,
                )
                .await?;
            }
        }
    } else {
        sync_copy(
            core,
            &os.cost,
            CpuCopyKind::Erms,
            &os.kspace,
            dst_kva,
            &os.kspace,
            src_kva,
            region_len,
        )
        .await?;
        // The same bookkeeping, paid after the copy on the critical path.
        core.advance(Nanos(700)).await;
    }

    // Swing the PTEs to the private replica and drop the kmaps.
    for (p, &frame) in new.iter().enumerate().take(pages) {
        proc.space.set_pte(
            va.add(p * PAGE_SIZE),
            Pte {
                frame,
                writable: true,
                cow: false,
            },
        );
        os.pm.incref(frame); // the PTE's reference
    }
    // Copier locks mappings while a copy is in flight (§4.5.4); the kernel
    // waits for the pin to drop before tearing down the kmaps.
    munmap_wait(os, src_kva, region_len).await?;
    munmap_wait(os, dst_kva, region_len).await?;
    Ok(CowOutcome {
        bytes: region_len,
        blocked: os.h.now() - t0,
    })
}

/// Unmaps a kernel range, waiting out transient Copier pins (§4.5.4).
async fn munmap_wait(os: &Rc<Os>, va: VirtAddr, len: usize) -> Result<(), MemError> {
    loop {
        match os.kspace.munmap(va, len) {
            Err(MemError::Pinned(_)) => os.h.sleep(Nanos(200)).await,
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_sim::{Machine, Sim};

    fn run(region: usize, use_copier: bool) -> (Nanos, bool) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let os = Os::boot(&h, machine, 4096);
        if use_copier {
            os.install_copier(vec![os.machine.core(1)], Default::default());
        }
        let parent = os.spawn_process();
        let core = os.machine.core(0);
        let os2 = Rc::clone(&os);
        let out = Rc::new(std::cell::Cell::new((Nanos::ZERO, false)));
        let out2 = Rc::clone(&out);
        sim.spawn("t", async move {
            let va = parent.space.mmap(region, Prot::RW, true).unwrap();
            let data: Vec<u8> = (0..region).map(|i| (i % 251) as u8).collect();
            parent.space.write_bytes(va, &data).unwrap();
            let child_space = parent.space.fork(99).unwrap();

            let o = handle_cow_fault(&os2, &core, &parent, va, region, use_copier)
                .await
                .unwrap();
            // Parent now writes privately; the child still sees the data.
            parent.space.write_bytes(va, b"XX").unwrap();
            let mut buf = vec![0u8; region];
            child_space.read_bytes(va, &mut buf).unwrap();
            let intact = buf == data;
            // And the parent's replica carried the original bytes too.
            let mut pbuf = vec![0u8; region];
            parent.space.read_bytes(va, &mut pbuf).unwrap();
            let replica_ok = pbuf[2..] == data[2..] && &pbuf[..2] == b"XX";
            out2.set((o.blocked, intact && replica_ok));
            if let Some(svc) = os2.copier.borrow().as_ref() {
                svc.stop();
            }
        });
        sim.run();
        out.get()
    }

    #[test]
    fn cow_baseline_correct_4k() {
        let (t, ok) = run(PAGE_SIZE, false);
        assert!(ok);
        assert!(t > Nanos::ZERO);
    }

    #[test]
    fn cow_copier_correct_and_faster_2m() {
        let (t_base, ok1) = run(2 * 1024 * 1024, false);
        let (t_cop, ok2) = run(2 * 1024 * 1024, true);
        assert!(ok1 && ok2);
        let reduction = 1.0 - t_cop.as_nanos() as f64 / t_base.as_nanos() as f64;
        assert!(
            reduction > 0.4,
            "2M blocking time should drop substantially, got {:.1}% ({t_base} → {t_cop})",
            reduction * 100.0
        );
    }

    #[test]
    fn cow_copier_4k_small_gain() {
        let (t_base, _) = run(PAGE_SIZE, false);
        let (t_cop, _) = run(PAGE_SIZE, true);
        // Small pages see a modest change either way (paper: −8%).
        let ratio = t_cop.as_nanos() as f64 / t_base.as_nanos() as f64;
        assert!(
            ratio < 1.25,
            "4K copier path should stay near baseline, ratio {ratio}"
        );
    }
}
