//! io_uring-style asynchronous syscalls (baseline for Fig. 10).
//!
//! A submission ring feeds a kernel poller task (SQPOLL flavor: the
//! poller owns a kernel core, like Copier's dedicated core, making the
//! Fig. 10 comparison fair). Completions arrive on a completion ring.
//! Batch mode amortizes ring doorbells over many operations. The ops
//! themselves execute the plain synchronous data path — io_uring hides
//! *syscall* latency, not the copy itself, which is the paper's point.

use std::rc::Rc;

use copier_mem::VirtAddr;
use copier_sim::{Chan, Core, Nanos, Notify};

use crate::net::{IoMode, NetStack, Socket};
use crate::process::{Os, Process};

/// Cost of writing one SQE / reaping one CQE (ring memory ops).
pub const RING_OP: Nanos = Nanos(40);

/// An asynchronous syscall request.
pub enum Sqe {
    /// `send(sock, va, len)`.
    Send {
        /// Socket to send on.
        sock: Rc<Socket>,
        /// Source buffer.
        va: VirtAddr,
        /// Bytes to send.
        len: usize,
    },
    /// `recv(sock, va, cap)`.
    Recv {
        /// Socket to receive from.
        sock: Rc<Socket>,
        /// Destination buffer.
        va: VirtAddr,
        /// Buffer capacity.
        cap: usize,
    },
}

/// A completion: the operation's byte count.
pub struct Cqe {
    /// Result (bytes transferred).
    pub res: usize,
    /// User data tag echoed from submission order.
    pub tag: u64,
    /// In Copier mode, the recv copy's descriptor — the app must `_csync`
    /// it (or check `all_ready`) before touching the buffer.
    pub descr: Option<Rc<copier_core::SegDescriptor>>,
}

/// An io_uring-like instance bound to one process.
pub struct Uring {
    #[allow(dead_code)] // kept: the ring's lifetime anchors the OS
    os: Rc<Os>,
    proc: Rc<Process>,
    sq: Chan<(u64, Sqe)>,
    cq: Chan<Cqe>,
    cq_notify: Rc<Notify>,
    next_tag: std::cell::Cell<u64>,
    /// When true, the kernel-side copy uses Copier (Fig. 10 "Copier+IOR-b").
    pub copier_mode: std::cell::Cell<bool>,
}

impl Uring {
    /// Creates the ring and spawns its SQPOLL kernel task on `kcore`.
    pub fn new(os: &Rc<Os>, net: &Rc<NetStack>, proc: &Rc<Process>, kcore: Rc<Core>) -> Rc<Self> {
        let u = Rc::new(Uring {
            os: Rc::clone(os),
            proc: Rc::clone(proc),
            sq: Chan::new(),
            cq: Chan::new(),
            cq_notify: Rc::new(Notify::new()),
            next_tag: std::cell::Cell::new(0),
            copier_mode: std::cell::Cell::new(false),
        });
        let u2 = Rc::clone(&u);
        let net = Rc::clone(net);
        os.h.spawn("uring-sqpoll", async move {
            loop {
                let Some((tag, sqe)) = u2.sq.recv().await else {
                    return;
                };
                // The poller pays the ring read; no per-op trap.
                kcore.advance(RING_OP).await;
                let mode = if u2.copier_mode.get() {
                    IoMode::Copier
                } else {
                    IoMode::Sync
                };
                let (res, descr) = match sqe {
                    Sqe::Send { sock, va, len } => {
                        // No trap inside the poller: it already runs in
                        // kernel context. Model by refunding the trap the
                        // data path charges.
                        let r = net
                            .send(&kcore, &u2.proc, &sock, va, len, mode)
                            .await
                            .map(|_| len);
                        (r.unwrap_or(0), None)
                    }
                    Sqe::Recv { sock, va, cap } => {
                        match net.recv(&kcore, &u2.proc, &sock, va, cap, mode).await {
                            Ok((n, d)) => (n, d),
                            Err(_) => (0, None),
                        }
                    }
                };
                u2.cq.send(Cqe { res, tag, descr });
                u2.cq_notify.notify_one();
            }
        });
        u
    }

    /// Submits one operation (non-blocking; the app pays a ring write).
    pub async fn submit(&self, core: &Rc<Core>, sqe: Sqe) -> u64 {
        let tag = self.next_tag.get();
        self.next_tag.set(tag + 1);
        core.advance(RING_OP).await;
        self.sq.send((tag, sqe));
        tag
    }

    /// Waits for one completion.
    pub async fn wait_cqe(&self, core: &Rc<Core>) -> Cqe {
        loop {
            if let Some(c) = self.cq.try_recv() {
                core.advance(RING_OP).await;
                return c;
            }
            self.cq_notify.notified().await;
        }
    }

    /// Submits a batch and waits for all completions (IOR-b in Fig. 10).
    pub async fn submit_batch_wait(&self, core: &Rc<Core>, batch: Vec<Sqe>) -> Vec<Cqe> {
        let n = batch.len();
        for sqe in batch {
            self.submit(core, sqe).await;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.wait_cqe(core).await);
        }
        out
    }

    /// Shuts the poller down.
    pub fn close(&self) {
        self.sq.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_mem::Prot;
    use copier_sim::{Machine, Sim};

    #[test]
    fn uring_send_recv_roundtrip() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let os = Os::boot(&h, machine, 2048);
        let net = NetStack::new(&os);
        let p = os.spawn_process();
        let ring = Uring::new(&os, &net, &p, os.machine.core(1));
        let core = os.machine.core(0);
        let (a, b) = net.socket_pair();
        let ring2 = Rc::clone(&ring);
        sim.spawn("t", async move {
            let tx = p.space.mmap(4096, Prot::RW, true).unwrap();
            let rx = p.space.mmap(4096, Prot::RW, true).unwrap();
            p.space.write_bytes(tx, b"uring payload").unwrap();
            let cqes = ring2
                .submit_batch_wait(
                    &core,
                    vec![Sqe::Send {
                        sock: Rc::clone(&a),
                        va: tx,
                        len: 13,
                    }],
                )
                .await;
            assert_eq!(cqes[0].res, 13);
            ring2
                .submit(
                    &core,
                    Sqe::Recv {
                        sock: Rc::clone(&b),
                        va: rx,
                        cap: 4096,
                    },
                )
                .await;
            let c = ring2.wait_cqe(&core).await;
            assert_eq!(c.res, 13);
            let mut out = [0u8; 13];
            p.space.read_bytes(rx, &mut out).unwrap();
            assert_eq!(&out, b"uring payload");
            ring2.close();
        });
        sim.run();
    }

    #[test]
    fn batching_amortizes_latency() {
        // 16 sends: batched submission must beat one-at-a-time round trips.
        fn run(batch: bool) -> Nanos {
            let mut sim = Sim::new();
            let h = sim.handle();
            let machine = Machine::new(&h, 2);
            let os = Os::boot(&h, machine, 4096);
            let net = NetStack::new(&os);
            let p = os.spawn_process();
            let ring = Uring::new(&os, &net, &p, os.machine.core(1));
            let core = os.machine.core(0);
            let (a, _b) = net.socket_pair();
            let h2 = h.clone();
            let out = Rc::new(std::cell::Cell::new(Nanos::ZERO));
            let out2 = Rc::clone(&out);
            sim.spawn("t", async move {
                let tx = p.space.mmap(4096, Prot::RW, true).unwrap();
                p.space.write_bytes(tx, &[1u8; 1024]).unwrap();
                let t0 = h2.now();
                if batch {
                    let sqes = (0..16)
                        .map(|_| Sqe::Send {
                            sock: Rc::clone(&a),
                            va: tx,
                            len: 1024,
                        })
                        .collect();
                    ring.submit_batch_wait(&core, sqes).await;
                } else {
                    for _ in 0..16 {
                        ring.submit(
                            &core,
                            Sqe::Send {
                                sock: Rc::clone(&a),
                                va: tx,
                                len: 1024,
                            },
                        )
                        .await;
                        ring.wait_cqe(&core).await;
                    }
                }
                out2.set(h2.now() - t0);
                ring.close();
            });
            sim.run();
            out.get()
        }
        assert!(run(true) <= run(false));
    }
}
