//! Simulated processes and the OS container.
//!
//! A [`Process`] couples an address space with a core affinity and
//! (optionally) a libCopier handle. The [`Os`] owns the shared kernel
//! address space, the physical pool, and the subsystems (network stack,
//! Binder, CoW handler) the experiments drive.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use copier_client::CopierHandle;
use copier_core::Copier;
use copier_hw::CostModel;
use copier_mem::{AddressSpace, AllocPolicy, PhysMem};
use copier_sim::{Core, Machine, Nanos, SimHandle};

/// A simulated process.
pub struct Process {
    /// Process id.
    pub pid: u32,
    /// The process's address space.
    pub space: Rc<AddressSpace>,
    /// libCopier handle, when the process is a Copier client.
    pub lib: RefCell<Option<Rc<CopierHandle>>>,
}

impl Process {
    /// The process's Copier handle (panics if not registered).
    pub fn lib(&self) -> Rc<CopierHandle> {
        self.lib
            .borrow()
            .as_ref()
            .cloned()
            .expect("process is not a Copier client")
    }
}

/// The simulated operating system.
pub struct Os {
    /// Simulation handle.
    pub h: SimHandle,
    /// The machine this OS runs on.
    pub machine: Rc<Machine>,
    /// Physical memory.
    pub pm: Rc<PhysMem>,
    /// The kernel's own address space (skbs, Binder buffers, kmaps).
    pub kspace: Rc<AddressSpace>,
    /// The machine cost model.
    pub cost: Rc<CostModel>,
    /// The Copier service, when booted with one.
    pub copier: RefCell<Option<Rc<Copier>>>,
    next_pid: Cell<u32>,
    processes: RefCell<Vec<Rc<Process>>>,
}

/// Address-space id reserved for the kernel.
pub const KERNEL_AS: u32 = 0;

impl Os {
    /// Boots an OS over a machine, with `frames` of physical memory.
    pub fn boot(h: &SimHandle, machine: Rc<Machine>, frames: usize) -> Rc<Self> {
        let pm = Rc::new(PhysMem::new(frames, AllocPolicy::Scattered));
        let kspace = AddressSpace::new(KERNEL_AS, Rc::clone(&pm));
        Rc::new(Os {
            h: h.clone(),
            machine,
            pm,
            kspace,
            cost: Rc::new(CostModel::default()),
            copier: RefCell::new(None),
            next_pid: Cell::new(1),
            processes: RefCell::new(Vec::new()),
        })
    }

    /// Installs (and starts) a Copier service on the given dedicated cores.
    pub fn install_copier(
        self: &Rc<Self>,
        cores: Vec<Rc<Core>>,
        cfg: copier_core::CopierConfig,
    ) -> Rc<Copier> {
        let svc = Copier::new(
            &self.h,
            Rc::clone(&self.pm),
            cores,
            Rc::clone(&self.cost),
            cfg,
        );
        svc.start();
        *self.copier.borrow_mut() = Some(Rc::clone(&svc));
        svc
    }

    /// The installed Copier service.
    pub fn copier(&self) -> Rc<Copier> {
        self.copier
            .borrow()
            .as_ref()
            .cloned()
            .expect("no Copier installed")
    }

    /// Spawns a process; registers it with Copier when one is installed.
    pub fn spawn_process(self: &Rc<Self>) -> Rc<Process> {
        let pid = self.next_pid.get();
        self.next_pid.set(pid + 1);
        let space = AddressSpace::new(pid, Rc::clone(&self.pm));
        let lib = self
            .copier
            .borrow()
            .as_ref()
            .map(|svc| CopierHandle::new(svc, Rc::clone(&space)));
        let p = Rc::new(Process {
            pid,
            space,
            lib: RefCell::new(lib),
        });
        self.processes.borrow_mut().push(Rc::clone(&p));
        p
    }

    /// Charges one syscall trap + return on the caller's core.
    pub async fn trap(&self, core: &Rc<Core>) {
        core.advance(self.cost.syscall).await;
    }

    /// Charges a context switch.
    pub async fn context_switch(&self, core: &Rc<Core>) {
        core.advance(self.cost.context_switch).await;
    }

    /// Sleeps in virtual time (helper).
    pub async fn sleep(&self, d: Nanos) {
        self.h.sleep(d).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copier_sim::Sim;

    #[test]
    fn boot_and_spawn() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 2);
        let os = Os::boot(&h, machine, 1024);
        let svc = os.install_copier(vec![os.machine.core(1)], Default::default());
        let p = os.spawn_process();
        assert_eq!(p.pid, 1);
        assert!(p.lib.borrow().is_some());
        svc.stop();
        sim.run();
    }

    #[test]
    fn processes_without_copier_have_no_lib() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let machine = Machine::new(&h, 1);
        let os = Os::boot(&h, machine, 64);
        let p = os.spawn_process();
        assert!(p.lib.borrow().is_none());
        sim.run();
    }
}
