//! # copier-gen — CopierGen: automatic csync insertion (§5.1.3)
//!
//! The paper's CopierGen is an LLVM/MLIR pass pipeline that finds loads
//! and stores touching buffers involved in async copies and inserts
//! `csync` before them. This reproduction works over a miniature SSA-ish
//! IR with the operations that matter (`alloc`, `load`, `store`, `copy`,
//! `free`, `call`), implements the same insertion rules, and validates
//! the result by interpreting both versions — exactly the array-level
//! scope the paper implements (pointer escape is future work there too;
//! here `call` conservatively syncs everything).

use std::collections::BTreeMap;

/// A buffer name in the IR.
pub type Var = String;

/// Mini-IR instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `%v = alloc n`
    Alloc {
        /// Buffer name.
        v: Var,
        /// Size in bytes.
        n: usize,
    },
    /// `store %v[idx] = val`
    Store {
        /// Buffer.
        v: Var,
        /// Element index.
        idx: usize,
        /// Value.
        val: u8,
    },
    /// `%out = load %v[idx]` — observable.
    Load {
        /// Buffer.
        v: Var,
        /// Element index.
        idx: usize,
    },
    /// `copy %dst, %src, len` — becomes `amemcpy` after the pass.
    Copy {
        /// Destination buffer.
        dst: Var,
        /// Source buffer.
        src: Var,
        /// Bytes.
        len: usize,
    },
    /// `free %v` — deallocation (guideline 2: sync before free).
    Free {
        /// Buffer.
        v: Var,
    },
    /// `call @ext(%v)` — the buffer escapes to an external function
    /// (guideline 3: sync before passing to external code).
    Call {
        /// Escaping buffer.
        v: Var,
    },
    /// Inserted by the pass: `csync %v[0..len]`.
    Csync {
        /// Buffer.
        v: Var,
        /// Bytes to sync.
        len: usize,
    },
}

/// The csync-insertion pass: walks the IR tracking which buffers have
/// *pending* async copies (as destination or source) and inserts `Csync`
/// per the §5.1 guidelines before loads/stores/frees/calls that touch
/// them.
pub fn insert_csync(ir: &[Inst]) -> Vec<Inst> {
    let mut out = Vec::with_capacity(ir.len() + 8);
    // Pending copies: buffer -> bytes pending (dst) / read-pending (src).
    let mut pending_dst: BTreeMap<Var, usize> = BTreeMap::new();
    let mut pending_src: BTreeMap<Var, usize> = BTreeMap::new();
    let sync = |out: &mut Vec<Inst>,
                pending_dst: &mut BTreeMap<Var, usize>,
                pending_src: &mut BTreeMap<Var, usize>,
                v: &Var| {
        if let Some(len) = pending_dst.remove(v) {
            out.push(Inst::Csync { v: v.clone(), len });
        }
        // Syncing a source means waiting for the copies *reading* it: the
        // csync targets those copies' destinations.
        let readers: Vec<Var> = pending_src
            .iter()
            .filter(|(s, _)| *s == v)
            .map(|(s, _)| s.clone())
            .collect();
        for _ in readers {
            pending_src.remove(v);
            // A source is quiesced by syncing every pending destination —
            // conservative: sync all pending.
            let all: Vec<(Var, usize)> = pending_dst.iter().map(|(k, &l)| (k.clone(), l)).collect();
            for (d, l) in all {
                out.push(Inst::Csync {
                    v: d.clone(),
                    len: l,
                });
                pending_dst.remove(&d);
            }
        }
    };
    for inst in ir {
        match inst {
            // Guideline 1: direct data access — sync the destination
            // before reads and writes; sync readers before writing a src.
            Inst::Load { v, .. } => {
                sync(&mut out, &mut pending_dst, &mut pending_src, v);
            }
            Inst::Store { v, .. } => {
                sync(&mut out, &mut pending_dst, &mut pending_src, v);
            }
            // Guideline 2: buffer free.
            Inst::Free { v } => {
                sync(&mut out, &mut pending_dst, &mut pending_src, v);
            }
            // Guideline 3: escape to external code.
            Inst::Call { v } => {
                sync(&mut out, &mut pending_dst, &mut pending_src, v);
            }
            Inst::Copy { dst, src, len } => {
                // A new copy whose operands overlap pending ones is ordered
                // by the service; the pass only needs to avoid unsynced
                // chains through the same destination.
                sync(&mut out, &mut pending_dst, &mut pending_src, dst);
                pending_dst.insert(dst.clone(), *len);
                pending_src.insert(src.clone(), *len);
            }
            Inst::Alloc { .. } | Inst::Csync { .. } => {}
        }
        out.push(inst.clone());
    }
    // Program exit: csync_all.
    for (d, l) in pending_dst {
        out.push(Inst::Csync { v: d, len: l });
    }
    out
}

/// Interpreter outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    /// Values observed by loads, in order.
    pub loads: Vec<u8>,
    /// Final buffer contents.
    pub buffers: BTreeMap<Var, Vec<u8>>,
}

/// Interprets the IR. `async_mode` defers `Copy` until a `Csync` covers
/// its destination (worst-case service schedule); sync mode executes
/// copies inline. A correct pass makes both agree.
pub fn interpret(ir: &[Inst], async_mode: bool) -> Run {
    let mut bufs: BTreeMap<Var, Vec<u8>> = BTreeMap::new();
    let mut pending: Vec<(Var, Var, usize)> = Vec::new();
    let mut loads = Vec::new();
    let flush =
        |bufs: &mut BTreeMap<Var, Vec<u8>>, pending: &mut Vec<(Var, Var, usize)>, v: &Var| {
            // Execute pending copies targeting v (and, transitively, their
            // sources' producers — FIFO order suffices for chains).
            loop {
                let i = pending.iter().position(|(d, _, _)| d == v);
                match i {
                    Some(i) => {
                        // Execute everything up to and including i, in order
                        // (FIFO preserves chain correctness).
                        for (d, s, l) in pending.drain(..=i).collect::<Vec<_>>() {
                            let data: Vec<u8> = bufs[&s][..l].to_vec();
                            bufs.get_mut(&d).unwrap()[..l].copy_from_slice(&data);
                        }
                    }
                    None => break,
                }
            }
        };
    for inst in ir {
        match inst {
            Inst::Alloc { v, n } => {
                bufs.insert(v.clone(), vec![0; *n]);
            }
            Inst::Store { v, idx, val } => {
                bufs.get_mut(v).expect("alloc'd")[*idx] = *val;
            }
            Inst::Load { v, idx } => {
                loads.push(bufs[v][*idx]);
            }
            Inst::Copy { dst, src, len } => {
                if async_mode {
                    pending.push((dst.clone(), src.clone(), *len));
                } else {
                    let data: Vec<u8> = bufs[src][..*len].to_vec();
                    bufs.get_mut(dst).unwrap()[..*len].copy_from_slice(&data);
                }
            }
            Inst::Free { v } => {
                bufs.remove(v);
            }
            Inst::Call { .. } => {}
            Inst::Csync { v, .. } => {
                if async_mode {
                    flush(&mut bufs, &mut pending, v);
                }
            }
        }
    }
    Run {
        loads,
        buffers: bufs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Var {
        s.to_string()
    }

    #[test]
    fn pass_inserts_csync_before_load_of_copied_buffer() {
        let ir = vec![
            Inst::Alloc { v: v("a"), n: 8 },
            Inst::Alloc { v: v("b"), n: 8 },
            Inst::Store {
                v: v("a"),
                idx: 0,
                val: 5,
            },
            Inst::Copy {
                dst: v("b"),
                src: v("a"),
                len: 8,
            },
            Inst::Load { v: v("b"), idx: 0 },
        ];
        let out = insert_csync(&ir);
        let pos_sync = out
            .iter()
            .position(|i| matches!(i, Inst::Csync { v, .. } if v == "b"))
            .expect("csync inserted");
        let pos_load = out
            .iter()
            .position(|i| matches!(i, Inst::Load { .. }))
            .unwrap();
        assert!(pos_sync < pos_load, "csync precedes the load");
    }

    #[test]
    fn pass_syncs_before_free_and_call() {
        let ir = vec![
            Inst::Alloc { v: v("a"), n: 4 },
            Inst::Alloc { v: v("b"), n: 4 },
            Inst::Copy {
                dst: v("b"),
                src: v("a"),
                len: 4,
            },
            Inst::Call { v: v("b") },
            Inst::Copy {
                dst: v("b"),
                src: v("a"),
                len: 4,
            },
            Inst::Free { v: v("b") },
        ];
        let out = insert_csync(&ir);
        let syncs = out
            .iter()
            .filter(|i| matches!(i, Inst::Csync { .. }))
            .count();
        assert!(syncs >= 2, "both the call and the free are protected");
    }

    #[test]
    fn transformed_programs_agree_with_sync_interpretation() {
        // A chain with a client modification in the middle (Fig. 8 shape).
        let ir = vec![
            Inst::Alloc { v: v("a"), n: 8 },
            Inst::Alloc { v: v("b"), n: 8 },
            Inst::Alloc { v: v("c"), n: 8 },
            Inst::Store {
                v: v("a"),
                idx: 0,
                val: 1,
            },
            Inst::Store {
                v: v("a"),
                idx: 1,
                val: 2,
            },
            Inst::Copy {
                dst: v("b"),
                src: v("a"),
                len: 8,
            },
            Inst::Store {
                v: v("b"),
                idx: 0,
                val: 99,
            },
            Inst::Copy {
                dst: v("c"),
                src: v("b"),
                len: 8,
            },
            Inst::Load { v: v("c"), idx: 0 },
            Inst::Load { v: v("c"), idx: 1 },
        ];
        let sync = interpret(&ir, false);
        let passed = insert_csync(&ir);
        let asynced = interpret(&passed, true);
        assert_eq!(sync.loads, vec![99, 2]);
        assert_eq!(sync.loads, asynced.loads);
        assert_eq!(sync.buffers, asynced.buffers);
    }

    #[test]
    fn unsynced_async_diverges_without_the_pass() {
        let ir = vec![
            Inst::Alloc { v: v("a"), n: 4 },
            Inst::Alloc { v: v("b"), n: 4 },
            Inst::Store {
                v: v("a"),
                idx: 0,
                val: 7,
            },
            Inst::Copy {
                dst: v("b"),
                src: v("a"),
                len: 4,
            },
            Inst::Load { v: v("b"), idx: 0 },
        ];
        let sync = interpret(&ir, false);
        let asynced = interpret(&ir, true); // no pass
        assert_ne!(sync.loads, asynced.loads, "stale load without csync");
    }
}
