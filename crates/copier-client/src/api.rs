//! libCopier: the high- and low-level client API (Table 2, §5.1).
//!
//! `amemcpy`/`csync` keep the familiar memcpy shape: submit asynchronously,
//! synchronize immediately before use. The handle maintains per-process
//! default queues, a descriptor pool, and the tracking table that lets
//! `csync(addr, len)` find the descriptor covering an address.
//!
//! Kernel services submit through [`KernelSection`], which plants the
//! cross-queue barrier tasks of §4.2.1 around each trap.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use copier_core::{
    Client, Copier, CopyFault, CopyTask, Handler, QueueEntry, SegDescriptor, SyncTask,
};
use copier_hw::{CostModel, CpuCopyKind};
use copier_mem::{AddressSpace, MemError, VirtAddr};
use copier_sim::{Core, Nanos};

use crate::pool::DescriptorPool;

/// Result of a csync: `Err` if the copy faulted or was aborted.
pub type CsyncResult = Result<(), CopyFault>;

/// Why a submission could not be placed. Every submission path ends in
/// success, a bounded-backoff retry, or one of these — never an unbounded
/// spin and never a silent drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Nonblocking submission found no credit or ring slot available
    /// right now; retry after completions return credits.
    WouldBlock,
    /// The submission could not be placed even after bounded backoff —
    /// the service is overloaded (credit pool and ring stayed exhausted).
    Overloaded,
}

/// Result of an async-copy submission.
pub type SubmitResult = Result<Rc<SegDescriptor>, SubmitError>;

/// Submission retry budget: attempts before a path reports `Overloaded`.
/// Generous — virtual milliseconds of bounded backoff — so transient
/// bursts ride through, while true overload still surfaces as an error.
const MAX_SUBMIT_ATTEMPTS: u32 = 32;

struct Tracked {
    space_id: u32,
    start: u64,
    len: usize,
    descr: Rc<SegDescriptor>,
}

/// Options for the low-level `_amemcpy` (§5.1, Table 2).
#[derive(Default)]
pub struct AmemcpyOpts {
    /// Queue-set index (the `fd`); 0 = the per-process default queues.
    pub fd: usize,
    /// Post-copy handler.
    pub func: Option<Handler>,
    /// Customized descriptor (reuse for recycled I/O buffers); `None`
    /// draws from the pool.
    pub descr: Option<Rc<SegDescriptor>>,
    /// Mark the task lazy (§4.4).
    pub lazy: bool,
    /// Segment granularity; 0 = the service default.
    pub seg: usize,
    /// Source address space override (`None` = the process space).
    pub src_space: Option<Rc<AddressSpace>>,
    /// Destination address space override.
    pub dst_space: Option<Rc<AddressSpace>>,
    /// Skip the tracking table (caller keeps the descriptor and uses
    /// `_csync` with it directly).
    pub untracked: bool,
    /// Force full end-to-end verification for this task (§integrity):
    /// the dispatcher digests the whole source extent at dispatch and
    /// re-digests the destination at completion, regardless of the
    /// service-wide `VerifyPolicy`. Set by `amemcpy_verified`.
    pub verified: bool,
}

/// A per-process libCopier instance.
pub struct CopierHandle {
    /// The service incarnation this handle currently talks to; swapped
    /// by [`CopierHandle::reattach`] after a crash–restart.
    svc: RefCell<Rc<Copier>>,
    /// The registered client (queues and scheduler state).
    pub client: Rc<Client>,
    cost: Rc<CostModel>,
    /// The process's user address space.
    pub uspace: Rc<AddressSpace>,
    pool: DescriptorPool,
    tracked: RefCell<Vec<Tracked>>,
    /// Client-side spin step while waiting in csync.
    pub spin_step: Nanos,
    /// §4.6 synchronous copies performed because the service was down.
    sync_fallbacks: Cell<u64>,
    /// Tasks submitted with per-task full verification
    /// (`amemcpy_verified`).
    verified_submitted: Cell<u64>,
    /// `Corrupted` faults this client observed through csync — copies
    /// whose destination failed end-to-end verification past repair.
    corrupted_seen: Cell<u64>,
}

impl CopierHandle {
    /// Registers a process with the service (`copier_create_mapped_queue`).
    pub fn new(svc: &Rc<Copier>, uspace: Rc<AddressSpace>) -> Rc<Self> {
        let client = svc.register_client(Rc::clone(&uspace));
        Rc::new(CopierHandle {
            svc: RefCell::new(Rc::clone(svc)),
            client,
            cost: Rc::clone(svc.cost_model()),
            uspace,
            pool: DescriptorPool::new(),
            tracked: RefCell::new(Vec::new()),
            spin_step: Nanos(200),
            sync_fallbacks: Cell::new(0),
            verified_submitted: Cell::new(0),
            corrupted_seen: Cell::new(0),
        })
    }

    /// The service this handle currently talks to.
    pub fn service(&self) -> Rc<Copier> {
        self.svc()
    }

    /// The control-plane shard serving this client (DESIGN.md §17):
    /// always 0 on an unsharded service. Purely observational — the
    /// library never routes by shard; the service stamps ownership at
    /// registration/adoption from the address-space hash.
    pub fn shard(&self) -> usize {
        self.client.shard.get()
    }

    /// Current service incarnation (never hold the borrow across an
    /// await: every use clones the `Rc` out immediately).
    fn svc(&self) -> Rc<Copier> {
        Rc::clone(&self.svc.borrow())
    }

    /// Submission doorbell: marks this client active on its shard so the
    /// O(active) control plane (DESIGN.md §18) sees the freshly queued
    /// work, then wakes the service. Used on every path that lands an
    /// entry in a ring; paths that failed to land anything keep the
    /// plain `awaken`.
    fn doorbell(&self) {
        self.svc().doorbell(&self.client);
    }

    /// Synchronous fallback copies performed while the service was down.
    pub fn sync_fallbacks(&self) -> u64 {
        self.sync_fallbacks.get()
    }

    /// Per-client integrity counters:
    /// `(verified_submitted, corrupted_seen)`.
    pub fn integrity_stats(&self) -> (u64, u64) {
        (self.verified_submitted.get(), self.corrupted_seen.get())
    }

    /// Re-attaches this handle to a restarted service incarnation
    /// (DESIGN.md §15 client side). The client's rings, window, credits
    /// and descriptors all live in client-owned memory and survived the
    /// crash; `adopt_client` reconciles them against the new
    /// incarnation's replayed journal and hands back the tasks whose
    /// admission never became durable. Those are resubmitted here —
    /// they still hold their original submission credits, so they go
    /// straight back into the rings without re-taking one. Returns the
    /// number of tasks resubmitted.
    pub async fn reattach(self: &Rc<Self>, core: &Rc<Core>, new_svc: &Rc<Copier>) -> usize {
        let dropped = new_svc.adopt_client(&self.client);
        *self.svc.borrow_mut() = Rc::clone(new_svc);
        let mut n = 0usize;
        for (set_idx, task) in dropped {
            // The drop rolled the task back to "submitted, not yet
            // admitted". Admissions journal before any of their bytes
            // move, so the descriptor carries no real progress; reset
            // re-arms recycled descriptors whose bits predate this
            // submission.
            task.descr.reset();
            let set = self.client.set(set_idx as usize);
            let mut entry = QueueEntry::Copy(task);
            let mut attempt = 0u32;
            loop {
                match set.uq.copy.push(entry) {
                    Ok(()) => {
                        n += 1;
                        break;
                    }
                    Err(rejected) => {
                        entry = rejected.0;
                        if attempt >= MAX_SUBMIT_ATTEMPTS {
                            // The ring stayed full across the whole
                            // budget: surface a typed overload and
                            // return the credit the original
                            // submission still holds.
                            let QueueEntry::Copy(t) = entry else {
                                unreachable!("resubmission entries are copies")
                            };
                            t.descr.poison(CopyFault::Overloaded);
                            self.client.grant_credit();
                            break;
                        }
                        self.backoff(core, attempt).await;
                        attempt += 1;
                    }
                }
            }
        }
        new_svc.doorbell(&self.client);
        n
    }

    /// Creates an extra per-thread queue set (`copier_create_queue`);
    /// returns its fd.
    pub fn create_queue(&self, cap: usize) -> usize {
        self.client.create_queue_set(cap)
    }

    /// One bounded-backoff step: wake the service, then spin (early
    /// attempts, cache-warm) or sleep with exponentially growing slices
    /// (later attempts) so a blocked submitter never monopolizes its core.
    async fn backoff(&self, core: &Rc<Core>, attempt: u32) {
        let svc = self.svc();
        svc.awaken();
        if attempt < 4 {
            core.advance(self.spin_step).await;
        } else {
            let exp = (attempt - 4).min(10);
            let ns = (self.spin_step.as_nanos() << exp).min(200_000);
            svc.sim_handle().sleep(Nanos(ns)).await;
        }
    }

    /// Acquires a submission credit with bounded backoff. `Err` means the
    /// pool stayed empty across the whole retry budget — the client is at
    /// its in-flight quota and the caller must surface `Overloaded`.
    async fn acquire_credit(&self, core: &Rc<Core>) -> Result<(), SubmitError> {
        let mut attempt = 0u32;
        while !self.client.take_credit() {
            if self.client.dead.get() {
                // A dead client's credits never refill; the caller's
                // dead-check right after handles it.
                return Ok(());
            }
            if attempt >= MAX_SUBMIT_ATTEMPTS {
                return Err(SubmitError::Overloaded);
            }
            self.backoff(core, attempt).await;
            attempt += 1;
        }
        Ok(())
    }

    /// High-level async memcpy on the default queues (Table 2).
    pub async fn amemcpy(
        self: &Rc<Self>,
        core: &Rc<Core>,
        dst: VirtAddr,
        src: VirtAddr,
        len: usize,
    ) -> SubmitResult {
        self._amemcpy(core, dst, src, len, AmemcpyOpts::default())
            .await
    }

    /// Verified async memcpy (§integrity): like [`CopierHandle::amemcpy`]
    /// but the service digests the whole source extent at dispatch and
    /// re-checks the destination at completion, regardless of the
    /// service-wide `VerifyPolicy`. Silent corruption on the copy path is
    /// either repaired before the descriptor completes or surfaced as
    /// [`CopyFault::Corrupted`] through csync.
    pub async fn amemcpy_verified(
        self: &Rc<Self>,
        core: &Rc<Core>,
        dst: VirtAddr,
        src: VirtAddr,
        len: usize,
    ) -> SubmitResult {
        self._amemcpy(
            core,
            dst,
            src,
            len,
            AmemcpyOpts {
                verified: true,
                ..AmemcpyOpts::default()
            },
        )
        .await
    }

    /// Registers a long-lived buffer pair with the service's background
    /// scrubber: `primary` is guarded against silent bit-rot, `replica`
    /// must hold the same bytes and is the heal source. Both live in this
    /// process's address space.
    pub fn register_scrub(&self, primary: VirtAddr, replica: VirtAddr, len: usize, chunk: usize) {
        self.svc()
            .register_scrub_region(&self.client, &self.uspace, primary, replica, len, chunk);
    }

    /// Nonblocking async memcpy: submits only if a credit and a ring slot
    /// are available right now, otherwise fails with `WouldBlock` without
    /// burning any wait time.
    pub async fn try_amemcpy(
        self: &Rc<Self>,
        core: &Rc<Core>,
        dst: VirtAddr,
        src: VirtAddr,
        len: usize,
        opts: AmemcpyOpts,
    ) -> SubmitResult {
        if !self.client.take_credit() {
            return Err(SubmitError::WouldBlock);
        }
        let (descr, task) = self.build_task(dst, src, len, &opts);
        core.advance(self.cost.task_submit).await;
        if self.client.dead.get() {
            descr.poison(CopyFault::Aborted);
            self.maybe_track(&opts, &task, &descr);
            return Ok(descr);
        }
        let track_id = task.dst_space.id();
        let set = self.client.set(opts.fd);
        if set.uq.copy.push(QueueEntry::Copy(task)).is_err() {
            self.client.grant_credit();
            self.svc().awaken();
            return Err(SubmitError::WouldBlock);
        }
        if !opts.untracked {
            self.track(track_id, dst, len, Rc::clone(&descr));
        }
        self.doorbell();
        Ok(descr)
    }

    /// Low-level async memcpy with full options (Table 2). Blocks at most
    /// a bounded backoff budget: past it the submission fails with a typed
    /// [`SubmitError::Overloaded`] instead of spinning forever.
    pub async fn _amemcpy(
        self: &Rc<Self>,
        core: &Rc<Core>,
        dst: VirtAddr,
        src: VirtAddr,
        len: usize,
        opts: AmemcpyOpts,
    ) -> SubmitResult {
        // §4.6 availability fallback: between a service crash and the
        // supervisor's restart there is nobody to drain the rings.
        // Copy synchronously on the caller's core instead of queueing
        // into a dead incarnation — the call still returns a completed
        // (or faulted) descriptor, just without the async overlap.
        if self.svc().has_crashed() {
            return self.sync_fallback(core, dst, src, len, opts).await;
        }
        self.acquire_credit(core).await.inspect_err(|_| {
            if let Some(d) = &opts.descr {
                d.reset();
                d.poison(CopyFault::Overloaded);
            }
        })?;
        let (descr, task) = self.build_task(dst, src, len, &opts);
        let track_id = task.dst_space.id();
        core.advance(self.cost.task_submit).await;
        // A reaped (dead) client no longer has a service draining its
        // rings: fail fast instead of queueing into the void (a real
        // process would be gone; this path covers exit races in tests).
        if self.client.dead.get() {
            descr.poison(CopyFault::Aborted);
            if !opts.untracked {
                self.track(track_id, dst, len, Rc::clone(&descr));
            }
            return Ok(descr);
        }
        // Ring full → bounded exponential backoff, waking the service
        // each step; exhaustion surfaces as a typed error, with the
        // consumed credit returned (nothing reached the service).
        let set = self.client.set(opts.fd);
        let mut entry = QueueEntry::Copy(task);
        let mut attempt = 0u32;
        loop {
            match set.uq.copy.push(entry) {
                Ok(()) => break,
                Err(rejected) => {
                    entry = rejected.0;
                    if self.client.dead.get() {
                        descr.poison(CopyFault::Aborted);
                        if !opts.untracked {
                            self.track(track_id, dst, len, Rc::clone(&descr));
                        }
                        return Ok(descr);
                    }
                    if attempt >= MAX_SUBMIT_ATTEMPTS {
                        self.client.grant_credit();
                        descr.poison(CopyFault::Overloaded);
                        return Err(SubmitError::Overloaded);
                    }
                    self.backoff(core, attempt).await;
                    attempt += 1;
                }
            }
        }
        if !opts.untracked {
            self.track(track_id, dst, len, Rc::clone(&descr));
        }
        self.doorbell();
        Ok(descr)
    }

    /// The crash-window synchronous path (§4.6): performs the copy
    /// inline, marks every segment, and settles the completion side
    /// effects (handler, no credit was ever taken) under the same
    /// exactly-once claim the service uses — so a duplicate settle after
    /// recovery is impossible by construction.
    async fn sync_fallback(
        self: &Rc<Self>,
        core: &Rc<Core>,
        dst: VirtAddr,
        src: VirtAddr,
        len: usize,
        opts: AmemcpyOpts,
    ) -> SubmitResult {
        let (descr, task) = self.build_task(dst, src, len, &opts);
        let r = crate::syncops::sync_copy(
            core,
            &self.cost,
            CpuCopyKind::Avx2,
            &task.dst_space,
            dst,
            &task.src_space,
            src,
            len,
        )
        .await;
        match r {
            Ok(_) => {
                for i in 0..descr.num_segments() {
                    descr.mark(i);
                }
                if descr.claim_delivery() {
                    if let Some(Handler::UFunc(f)) = &task.func {
                        f();
                    }
                }
            }
            Err(MemError::OutOfMemory) => descr.poison(CopyFault::OutOfMemory),
            Err(_) => descr.poison(CopyFault::Segv),
        }
        self.sync_fallbacks.set(self.sync_fallbacks.get() + 1);
        self.maybe_track(&opts, &task, &descr);
        Ok(descr)
    }

    /// Builds the descriptor and task for a submission (shared by the
    /// blocking and nonblocking paths).
    fn build_task(
        &self,
        dst: VirtAddr,
        src: VirtAddr,
        len: usize,
        opts: &AmemcpyOpts,
    ) -> (Rc<SegDescriptor>, CopyTask) {
        // `len == 0` is legal, like `memcpy(d, s, 0)`: the descriptor is
        // born all-ready and the service completes the task at the drain
        // boundary without touching memory.
        let seg = if opts.seg == 0 {
            self.svc().config().segment
        } else {
            opts.seg
        };
        let descr = match &opts.descr {
            Some(d) => {
                assert!(d.len() == len && d.segment_size() == seg);
                d.reset();
                Rc::clone(d)
            }
            None => self.pool.take(len, seg),
        };
        let dst_space = opts
            .dst_space
            .clone()
            .unwrap_or_else(|| Rc::clone(&self.uspace));
        let src_space = opts
            .src_space
            .clone()
            .unwrap_or_else(|| Rc::clone(&self.uspace));
        if opts.verified {
            self.verified_submitted
                .set(self.verified_submitted.get() + 1);
        }
        let task = CopyTask {
            dst_space,
            dst,
            src_space,
            src,
            len,
            seg,
            descr: Rc::clone(&descr),
            func: opts.func.clone(),
            lazy: opts.lazy,
            verify: opts.verified,
        };
        (descr, task)
    }

    /// Tracks a task that terminated client-side (dead-client poison)
    /// so csync still finds its tombstone.
    fn maybe_track(&self, opts: &AmemcpyOpts, task: &CopyTask, descr: &Rc<SegDescriptor>) {
        if !opts.untracked {
            self.track(task.dst_space.id(), task.dst, task.len, Rc::clone(descr));
        }
    }

    /// Async memmove: overlapping ranges are split so no task's source is
    /// overwritten before it is read (§4.1 footnote 3). On `Overloaded`
    /// the already-submitted chunks stay in flight (their descriptors are
    /// in the tracking table; `csync` over the range finds them).
    pub async fn amemmove(
        self: &Rc<Self>,
        core: &Rc<Core>,
        dst: VirtAddr,
        src: VirtAddr,
        len: usize,
    ) -> Result<Vec<Rc<SegDescriptor>>, SubmitError> {
        let (d, s) = (dst.0, src.0);
        let overlap = d < s + len as u64 && s < d + len as u64 && d != s;
        if !overlap {
            return Ok(vec![self.amemcpy(core, dst, src, len).await?]);
        }
        let shift = d.abs_diff(s) as usize;
        // Heavy self-overlap degenerates to many chunks; bounce through a
        // synchronous copy below 1/16 shift (documented fallback).
        if shift < len / 16 {
            crate::syncops::sync_memmove(core, &self.cost, &self.uspace, dst, src, len)
                .await
                .expect("sync memmove fallback");
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        if d > s {
            // Forward overlap: submit tail chunks first.
            let mut end = len;
            while end > 0 {
                let start = end.saturating_sub(shift);
                out.push(
                    self.amemcpy(core, dst.add(start), src.add(start), end - start)
                        .await?,
                );
                end = start;
            }
        } else {
            let mut start = 0;
            while start < len {
                let take = shift.min(len - start);
                out.push(
                    self.amemcpy(core, dst.add(start), src.add(start), take)
                        .await?,
                );
                start += take;
            }
        }
        Ok(out)
    }

    /// Registers an externally created copy (e.g. a kernel `recv()` task)
    /// so `csync` can find it by destination address.
    pub fn track(&self, space_id: u32, start: VirtAddr, len: usize, descr: Rc<SegDescriptor>) {
        let mut t = self.tracked.borrow_mut();
        if t.len() > 128 {
            t.retain(|x| !(x.descr.all_ready() || x.descr.fault().is_some()));
            self.pool.recycle();
        }
        t.push(Tracked {
            space_id,
            start: start.0,
            len,
            descr,
        });
    }

    /// High-level csync (Table 2): block until `[addr, addr+len)` of prior
    /// async copies is ready for use.
    pub async fn csync(
        self: &Rc<Self>,
        core: &Rc<Core>,
        addr: VirtAddr,
        len: usize,
    ) -> CsyncResult {
        self.csync_in(core, self.uspace.id(), addr, len, 0).await
    }

    /// csync against an explicit address space and queue set.
    pub async fn csync_in(
        self: &Rc<Self>,
        core: &Rc<Core>,
        space_id: u32,
        addr: VirtAddr,
        len: usize,
        fd: usize,
    ) -> CsyncResult {
        core.advance(self.cost.csync_hit).await;
        let lo = addr.0;
        let hi = addr.0 + len as u64;
        // Collect overlapping tracked copies (newest last; all must hold).
        let waits: Vec<(Rc<SegDescriptor>, usize, usize)> = self
            .tracked
            .borrow()
            .iter()
            .filter(|t| t.space_id == space_id && t.start < hi && lo < t.start + t.len as u64)
            .map(|t| {
                let s = lo.max(t.start) - t.start;
                let e = hi.min(t.start + t.len as u64) - t.start;
                (Rc::clone(&t.descr), s as usize, e as usize)
            })
            .collect();
        for (descr, s, e) in waits {
            match self
                .wait_descr(core, &descr, s, e - s, space_id, addr, len, fd)
                .await
            {
                // An aborted copy was explicitly discarded by this client
                // (§4.4); a later csync over the same buffer must not
                // trip over its tombstone.
                Err(CopyFault::Aborted) => continue,
                Err(fault) => {
                    // A real fault is reported exactly once (errno
                    // semantics): consume the tombstone so later copies
                    // into the same buffer aren't shadowed by it.
                    self.tracked
                        .borrow_mut()
                        .retain(|t| !Rc::ptr_eq(&t.descr, &descr));
                    return Err(fault);
                }
                Ok(()) => {}
            }
        }
        Ok(())
    }

    /// `_csync` (Table 2): wait on a caller-managed descriptor directly,
    /// skipping the tracking-table lookup.
    #[allow(clippy::too_many_arguments)]
    pub async fn _csync(
        self: &Rc<Self>,
        core: &Rc<Core>,
        descr: &Rc<SegDescriptor>,
        off: usize,
        len: usize,
        space_id: u32,
        addr: VirtAddr,
        fd: usize,
    ) -> CsyncResult {
        core.advance(self.cost.csync_hit).await;
        self.wait_descr(core, descr, off, len, space_id, addr, len, fd)
            .await
    }

    #[allow(clippy::too_many_arguments)]
    async fn wait_descr(
        self: &Rc<Self>,
        core: &Rc<Core>,
        descr: &Rc<SegDescriptor>,
        off: usize,
        len: usize,
        space_id: u32,
        addr: VirtAddr,
        sync_len: usize,
        fd: usize,
    ) -> CsyncResult {
        if let Some(f) = descr.fault() {
            if f == CopyFault::Corrupted {
                self.corrupted_seen.set(self.corrupted_seen.get() + 1);
            }
            return Err(f);
        }
        if descr.range_ready(off, len) {
            return Ok(());
        }
        // Submit a Sync Task to promote the segments (§4.1), then poll the
        // descriptor — the client-side blocking cost is real spin time.
        core.advance(self.cost.task_submit).await;
        let set = self.client.set(fd);
        // A full sync ring after bounded retries is benign to give up on:
        // promotion is an optimization, and the polling loop below still
        // completes once the copy lands in FIFO order.
        let mut entry = SyncTask {
            space_id,
            addr,
            len: sync_len,
            abort: false,
            target: None,
        };
        for attempt in 0..4u32 {
            match set.uq.sync.push(entry) {
                Ok(()) => break,
                Err(rejected) => {
                    entry = rejected.0;
                    if attempt == 3 {
                        break;
                    }
                    self.backoff(core, attempt).await;
                }
            }
        }
        self.doorbell();
        // Spin briefly (the paper's polling wait), then yield the core in
        // slices — on a saturated machine a blocked csync must not starve
        // co-scheduled work (sched_yield behavior).
        let h = self.svc().sim_handle().clone();
        let spin_deadline = h.now() + Nanos::from_micros(2);
        loop {
            if let Some(f) = descr.fault() {
                if f == CopyFault::Corrupted {
                    self.corrupted_seen.set(self.corrupted_seen.get() + 1);
                }
                return Err(f);
            }
            if descr.range_ready(off, len) {
                return Ok(());
            }
            // A reaped client will never be served again; unblock the
            // waiter instead of spinning forever.
            if self.client.dead.get() {
                return Err(CopyFault::Aborted);
            }
            if h.now() < spin_deadline {
                core.advance(self.spin_step).await;
            } else {
                h.sleep(Nanos(500)).await;
            }
        }
    }

    /// `csync_all` (Table 2): waits for every tracked async copy, then
    /// runs pending user handlers.
    pub async fn csync_all(self: &Rc<Self>, core: &Rc<Core>) -> CsyncResult {
        let snapshot: Vec<(u32, u64, usize, Rc<SegDescriptor>)> = self
            .tracked
            .borrow()
            .iter()
            .map(|t| (t.space_id, t.start, t.len, Rc::clone(&t.descr)))
            .collect();
        let mut result = Ok(());
        for (sp, start, len, d) in snapshot {
            if let Err(e) = self
                .wait_descr(core, &d, 0, len, sp, VirtAddr(start), len, 0)
                .await
            {
                // Aborted tasks are an expected way to retire tracked
                // copies; real faults are surfaced.
                if e != CopyFault::Aborted {
                    result = Err(e);
                }
            }
        }
        self.post_handlers(core).await;
        self.prune();
        result
    }

    /// Pushes a Sync Task with bounded retries; `false` means the sync
    /// ring stayed full for the whole budget and the request was not
    /// placed (typed outcome — the caller decides whether to retry).
    async fn push_sync(&self, core: &Rc<Core>, fd: usize, st: SyncTask) -> bool {
        let set = self.client.set(fd);
        let mut entry = st;
        let mut attempt = 0u32;
        loop {
            match set.uq.sync.push(entry) {
                Ok(()) => {
                    self.doorbell();
                    return true;
                }
                Err(rejected) => {
                    entry = rejected.0;
                    if attempt >= 8 {
                        return false;
                    }
                    self.backoff(core, attempt).await;
                    attempt += 1;
                }
            }
        }
    }

    /// Submits an `abort` Sync Task (§4.4) discarding a queued copy.
    /// Returns whether the request was placed; a `false` under overload
    /// is benign — the copy simply completes normally.
    pub async fn abort(self: &Rc<Self>, core: &Rc<Core>, addr: VirtAddr, len: usize) -> bool {
        self.abort_in(core, addr, len, 0).await
    }

    /// `abort` against an explicit queue set.
    pub async fn abort_in(
        self: &Rc<Self>,
        core: &Rc<Core>,
        addr: VirtAddr,
        len: usize,
        fd: usize,
    ) -> bool {
        core.advance(self.cost.task_submit).await;
        self.push_sync(
            core,
            fd,
            SyncTask {
                space_id: self.uspace.id(),
                addr,
                len,
                abort: true,
                target: None,
            },
        )
        .await
    }

    /// `abort` a specific task by its descriptor — immune to buffer reuse
    /// races (the preferred form for recycled I/O buffers).
    pub async fn abort_task(
        self: &Rc<Self>,
        core: &Rc<Core>,
        descr: &Rc<SegDescriptor>,
        fd: usize,
    ) -> bool {
        core.advance(self.cost.task_submit).await;
        self.push_sync(
            core,
            fd,
            SyncTask {
                space_id: 0,
                addr: VirtAddr(0),
                len: 0,
                abort: true,
                target: Some(Rc::clone(descr)),
            },
        )
        .await
    }

    /// Runs completed UFUNC handlers (Fig. 4 `post_handlers`). Handlers
    /// that overflowed the bounded ring are drained first so delivery
    /// order is preserved (overflow entries are always older).
    pub async fn post_handlers(self: &Rc<Self>, core: &Rc<Core>) -> usize {
        let mut n = 0;
        let sets: Vec<_> = self.client.sets.borrow().iter().cloned().collect();
        for set in sets {
            loop {
                let h = set.handler_overflow.borrow_mut().pop_front();
                let Some(h) = h else { break };
                if let Handler::UFunc(f) = h {
                    core.advance(Nanos(60)).await;
                    f();
                    n += 1;
                }
            }
            while let Some(h) = set.uq.handler.pop() {
                if let Handler::UFunc(f) = h {
                    core.advance(Nanos(60)).await;
                    f();
                    n += 1;
                }
            }
        }
        n
    }

    /// Drops completed entries from the tracking table and recycles their
    /// descriptors into the pool.
    pub fn prune(&self) {
        self.tracked
            .borrow_mut()
            .retain(|t| !(t.descr.all_ready() || t.descr.fault().is_some()));
        self.pool.recycle();
    }

    /// Opens a kernel submission section for a simulated trap (§4.2.1):
    /// plants a barrier recording the u-queue position now, and another at
    /// [`KernelSection::close`] (the return-to-user barrier). If the
    /// k-ring is full right now, the barrier placement is deferred into
    /// the section's first `submit`, which can backoff — it must precede
    /// any of the section's copies, never be dropped.
    pub fn kernel_section(self: &Rc<Self>, fd: usize) -> KernelSection {
        let set = self.client.set(fd);
        let placed = set
            .kq
            .copy
            .push(QueueEntry::Barrier {
                peer_pos: set.uq.copy.pushed(),
            })
            .is_ok();
        if placed {
            // The barrier sits in the k-ring until drained: ring the
            // doorbell so the O(active) fast path sees it even if no
            // copy follows inside the section.
            self.doorbell();
        }
        KernelSection {
            lib: Rc::clone(self),
            fd,
            open_pending: Cell::new(!placed),
            closed: Cell::new(false),
        }
    }

    /// Plants a k-queue barrier with bounded backoff.
    async fn push_barrier(&self, core: &Rc<Core>, fd: usize) -> Result<(), SubmitError> {
        let set = self.client.set(fd);
        for attempt in 0..MAX_SUBMIT_ATTEMPTS {
            // Recompute the peer position each attempt: it may have moved
            // while we were backing off.
            let placed = set
                .kq
                .copy
                .push(QueueEntry::Barrier {
                    peer_pos: set.uq.copy.pushed(),
                })
                .is_ok();
            if placed {
                self.doorbell();
                return Ok(());
            }
            self.backoff(core, attempt).await;
        }
        Err(SubmitError::Overloaded)
    }

    /// Binds a descriptor registry to a shared-memory region (Table 2's
    /// `shm_descr_bind`). Producers `attach` per-message descriptors;
    /// consumers `csync_shm` by offset.
    pub fn shm_descr_bind(&self, base: VirtAddr, len: usize) -> Rc<ShmBinding> {
        Rc::new(ShmBinding {
            base,
            len,
            descrs: RefCell::new(std::collections::BTreeMap::new()),
        })
    }

    /// Descriptor-pool statistics `(allocs, reuses)`.
    pub fn pool_stats(&self) -> (u64, u64) {
        self.pool.stats()
    }
}

/// A descriptor binding for a shared-memory region (`shm_descr_bind`,
/// Table 2): producers attach the descriptor of each message they copy
/// into the region; consumers `csync` by offset without any table lookup.
/// Android-Binder-style IPC is the canonical user (§5.1).
pub struct ShmBinding {
    base: VirtAddr,
    len: usize,
    descrs: RefCell<std::collections::BTreeMap<u64, (usize, Rc<SegDescriptor>)>>,
}

impl ShmBinding {
    /// Registers the descriptor covering `[off, off+len)` of the region.
    pub fn attach(&self, off: usize, len: usize, descr: Rc<SegDescriptor>) {
        assert!(off + len <= self.len, "binding outside the region");
        self.descrs.borrow_mut().insert(off as u64, (len, descr));
    }

    /// The region's base address.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Waits until `[off, off+len)` of the shared region is ready.
    pub async fn csync_shm(
        &self,
        lib: &Rc<CopierHandle>,
        core: &Rc<Core>,
        off: usize,
        len: usize,
    ) -> CsyncResult {
        let targets: Vec<(Rc<SegDescriptor>, usize, usize)> = self
            .descrs
            .borrow()
            .iter()
            .filter(|(&s, (l, _))| (s as usize) < off + len && off < s as usize + l)
            .map(|(&s, (l, d))| {
                let lo = off.max(s as usize) - s as usize;
                let hi = (off + len).min(s as usize + l) - s as usize;
                (Rc::clone(d), lo, hi)
            })
            .collect();
        for (d, lo, hi) in targets {
            lib._csync(core, &d, lo, hi - lo, 0, self.base.add(off), 0)
                .await?;
        }
        Ok(())
    }
}

/// An open kernel-mode submission window (between trap and return).
pub struct KernelSection {
    lib: Rc<CopierHandle>,
    fd: usize,
    /// The opening barrier could not be placed at open (full k-ring);
    /// the first `submit` places it — with backoff — before any copy.
    open_pending: Cell<bool>,
    /// `close()` already planted the return-to-user barrier; Drop is a
    /// no-op.
    closed: Cell<bool>,
}

impl KernelSection {
    /// Submits a k-mode Copy Task. The descriptor is drawn from the
    /// client's pool and tracked so user-side `csync` finds it. Like
    /// `_amemcpy`, the submission either lands within the bounded backoff
    /// budget or fails typed `Overloaded` (descriptor poisoned) — kernel
    /// callers fall back to a synchronous copy (§4.6).
    #[allow(clippy::too_many_arguments)]
    pub async fn submit(
        &self,
        core: &Rc<Core>,
        dst_space: &Rc<AddressSpace>,
        dst: VirtAddr,
        src_space: &Rc<AddressSpace>,
        src: VirtAddr,
        len: usize,
        func: Option<Handler>,
        lazy: bool,
    ) -> SubmitResult {
        if self.open_pending.get() {
            // The trap-entry barrier must precede the section's copies;
            // without it k/u merge order is wrong, so it is a hard
            // prerequisite rather than a best-effort nicety.
            self.lib.push_barrier(core, self.fd).await?;
            self.open_pending.set(false);
        }
        self.lib.acquire_credit(core).await?;
        let seg = self.lib.svc().config().segment;
        let descr = self.lib.pool.take(len, seg);
        let task = CopyTask {
            dst_space: Rc::clone(dst_space),
            dst,
            src_space: Rc::clone(src_space),
            src,
            len,
            seg,
            descr: Rc::clone(&descr),
            func,
            lazy,
            verify: false,
        };
        core.advance(self.lib.cost.task_submit).await;
        if self.lib.client.dead.get() {
            descr.poison(CopyFault::Aborted);
            self.lib.track(dst_space.id(), dst, len, Rc::clone(&descr));
            return Ok(descr);
        }
        let set = self.lib.client.set(self.fd);
        let mut entry = QueueEntry::Copy(task);
        let mut attempt = 0u32;
        loop {
            match set.kq.copy.push(entry) {
                Ok(()) => break,
                Err(rejected) => {
                    entry = rejected.0;
                    if attempt >= MAX_SUBMIT_ATTEMPTS {
                        self.lib.client.grant_credit();
                        descr.poison(CopyFault::Overloaded);
                        return Err(SubmitError::Overloaded);
                    }
                    self.lib.backoff(core, attempt).await;
                    attempt += 1;
                }
            }
        }
        self.lib.track(dst_space.id(), dst, len, Rc::clone(&descr));
        self.lib.doorbell();
        Ok(descr)
    }

    /// Closes the section, planting the return-to-user barrier with
    /// bounded backoff — the reliable path (Drop can only make a single
    /// best-effort attempt). Returns whether the barrier was placed.
    pub async fn close(self, core: &Rc<Core>) -> bool {
        self.closed.set(true);
        if self.open_pending.get() {
            // The opening barrier was never placed and no copy was
            // submitted: an empty section needs no closing barrier.
            return true;
        }
        self.lib.push_barrier(core, self.fd).await.is_ok()
    }
}

impl Drop for KernelSection {
    fn drop(&mut self) {
        if self.closed.get() || self.open_pending.get() {
            return;
        }
        let set = self.lib.client.set(self.fd);
        // Single best-effort attempt (Drop cannot await a backoff). A
        // lost closing barrier is recoverable: the next section's opening
        // barrier re-establishes the merge key, and no pending k-copies
        // exist outside sections. Callers needing the guarantee use
        // `close()`.
        let placed = set
            .kq
            .copy
            .push(QueueEntry::Barrier {
                peer_pos: set.uq.copy.pushed(),
            })
            .is_ok();
        if placed {
            self.lib.doorbell();
        }
    }
}
