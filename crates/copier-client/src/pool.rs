//! Descriptor pool (§5.1 internal implementation).
//!
//! libCopier pre-allocates descriptors in size classes so that task
//! submission does not pay allocation on the fast path. A descriptor is
//! recycled once no in-flight copy references it (sole `Rc` owner).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use copier_core::SegDescriptor;

/// Free descriptors keyed by `(len, segment)`.
type FreeMap = BTreeMap<(usize, usize), Vec<Rc<SegDescriptor>>>;

/// A pool of reusable descriptors keyed by `(len, segment)`.
#[derive(Default)]
pub struct DescriptorPool {
    free: RefCell<FreeMap>,
    /// Descriptors handed out and awaiting recycling.
    busy: RefCell<Vec<Rc<SegDescriptor>>>,
    allocs: std::cell::Cell<u64>,
    reuses: std::cell::Cell<u64>,
}

impl DescriptorPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes (or creates) a descriptor for a copy of `len` at `seg`.
    pub fn take(&self, len: usize, seg: usize) -> Rc<SegDescriptor> {
        let key = (len, seg);
        if let Some(d) = self.free.borrow_mut().get_mut(&key).and_then(Vec::pop) {
            d.reset();
            self.reuses.set(self.reuses.get() + 1);
            self.busy.borrow_mut().push(Rc::clone(&d));
            return d;
        }
        self.allocs.set(self.allocs.get() + 1);
        let d = Rc::new(SegDescriptor::new(len, seg));
        self.busy.borrow_mut().push(Rc::clone(&d));
        d
    }

    /// Recycles every busy descriptor no longer referenced elsewhere.
    pub fn recycle(&self) {
        let mut busy = self.busy.borrow_mut();
        let mut free = self.free.borrow_mut();
        busy.retain(|d| {
            // One Rc here; a second means the tracker/service still holds it.
            if Rc::strong_count(d) == 1 {
                free.entry((d.len(), d.segment_size()))
                    .or_default()
                    .push(Rc::clone(d));
                false
            } else {
                true
            }
        });
    }

    /// `(fresh allocations, reuses)` — reuse dominates under buffer
    /// recycling workloads.
    pub fn stats(&self) -> (u64, u64) {
        (self.allocs.get(), self.reuses.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_returned_descriptors() {
        let p = DescriptorPool::new();
        let d1 = p.take(4096, 1024);
        d1.mark(0);
        drop(d1);
        p.recycle();
        let d2 = p.take(4096, 1024);
        assert!(!d2.is_marked(0), "recycled descriptor must be reset");
        assert_eq!(p.stats(), (1, 1));
    }

    #[test]
    fn distinct_classes_do_not_mix() {
        let p = DescriptorPool::new();
        let d1 = p.take(4096, 1024);
        drop(d1);
        p.recycle();
        let _d2 = p.take(8192, 1024);
        assert_eq!(p.stats(), (2, 0));
    }

    #[test]
    fn busy_descriptors_are_not_recycled() {
        let p = DescriptorPool::new();
        let d1 = p.take(4096, 1024);
        p.recycle();
        drop(d1);
        let _d2 = p.take(4096, 1024);
        // d1 was still alive at recycle time → fresh allocation.
        assert_eq!(p.stats(), (2, 0));
    }
}
